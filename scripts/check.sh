#!/usr/bin/env sh
# Tier-1 gate: everything CI runs, runnable locally in one shot.
# Fails fast on the first broken step.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --check

echo "== cargo clippy (deny warnings)"
cargo clippy -q --all-targets -- -D warnings

echo "== cargo build --release"
# --workspace: the root manifest is also the umbrella package, and a
# bare `cargo build` would build only it — leaving the acc-lint and
# bench_wallclock binaries the later steps execute stale.
cargo build --release --workspace

echo "== acc-lint (static determinism/wire-safety invariants)"
./target/release/acc-lint

echo "== acc-verify --schedules --smoke (static collective-schedule proofs, p <= 64)"
# Proves leg pairing / deadlock-freedom, reduce conservation, failover
# tag headroom and CLB admissibility for every algorithm x op x p cell
# without running the engine. The nightly job extends this to p=4096.
./target/release/acc-verify --schedules --smoke --max-p 64 --quiet

echo "== cargo test"
cargo test -q

echo "== cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps

echo "== bench_wallclock --smoke --check (gating: per-point noise bounds)"
# ACC_JOBS=2 forces the threaded work-queue path even on one core, so
# the serial-vs-parallel determinism assert inside the binary always
# compares both executor code paths. --check gates: each point is
# compared against the median of the last five same-mode
# BENCH_history.jsonl entries and fails past ACC_BENCH_TOLERANCE_PCT
# (default 25%). ACC_BENCH_GATE=off reports without gating on
# known-noisy hosts.
ACC_JOBS=2 ./target/release/bench_wallclock --smoke --check

echo "== ablation_collectives --smoke (executor-fanned collective matrix)"
# Smoke sweep of the collective engine's full operation x algorithm x
# mode matrix; ACC_JOBS=2 for the same two-code-path reason as above.
ACC_JOBS=2 ./target/release/ablation_collectives --smoke > /dev/null

echo "== ablation_coll_faults --smoke (collective recovery-policy grid)"
# Smoke sweep of the fault-recovery grid: every collective survives a
# mid-schedule card kill under all three recovery policies.
ACC_JOBS=2 ./target/release/ablation_coll_faults --smoke > /dev/null

echo "== ablation_fabric_faults --smoke (multi-switch fault-tolerance grid)"
# Smoke sweep of the fabric grid: trunk outages and switch kills on a
# fat-tree, verified bit-correct under all three recovery policies.
ACC_JOBS=2 ./target/release/ablation_fabric_faults --smoke > /dev/null

echo "All tier-1 checks passed."
