//! Routing determinism and reachability properties for multi-switch
//! fabrics, at the cluster sizes the paper's scaling story cares about
//! (p = 16, 64, 128):
//!
//! * table construction is a pure function — identical across rebuilds
//!   and across concurrent (thread-fanned) construction;
//! * fault-free, every (src, dst) pair is reachable and every walked
//!   path respects the epoch's worst-case hop bound;
//! * any single trunk failure leaves the fabric connected (both shapes
//!   are 2-edge-connected between host-bearing switches) and never
//!   introduces a routing loop — `walk_path` asserts a hop bound of
//!   `switch_count`, so a loop is a panic, not a timeout.

use acc::net::{compute_schedule, walk_path, Attachment, FabricSpec, MacAddr, TrunkOutage};
use acc::sim::{SimDuration, SimTime};

fn at(ms: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(ms)
}

/// One primary attachment per rank, mirroring the cluster wiring.
fn primaries(spec: FabricSpec, p: usize) -> Vec<Attachment> {
    spec.build(p)
        .home
        .iter()
        .enumerate()
        .map(|(rank, &switch)| Attachment {
            mac: MacAddr::for_node(rank, 0),
            switch,
            rank,
        })
        .collect()
}

/// The fabric shapes under test: (spec, p) cells covering both
/// topology families at p = 16, 64 and 128.
fn cells() -> Vec<(FabricSpec, usize)> {
    vec![
        (FabricSpec::FatTree { k: 4 }, 16),
        (FabricSpec::FatTree { k: 8 }, 64),
        (FabricSpec::FatTree { k: 8 }, 128),
        (FabricSpec::Torus3D { dims: [4, 2, 2] }, 16),
        (FabricSpec::Torus3D { dims: [4, 4, 4] }, 64),
        (FabricSpec::Torus3D { dims: [4, 4, 8] }, 128),
    ]
}

#[test]
fn tables_are_identical_across_rebuilds_and_threads() {
    for (spec, p) in cells() {
        let topo = spec.build(p);
        let atts = primaries(spec, p);
        // A representative mixed fault schedule so the property covers
        // failover tables, not just the clean epoch.
        let (a, b) = topo.trunks[topo.trunks.len() / 2];
        let outages = [TrunkOutage {
            a,
            b,
            from: at(10),
            until: at(20),
        }];
        let kills = [(topo.trunks[0].1, at(15))];
        let serial = compute_schedule(&topo, &atts, &outages, &kills);
        let rebuilt = compute_schedule(&topo, &atts, &outages, &kills);
        assert_eq!(serial, rebuilt, "{} p={p}: rebuild changed tables", spec);
        // Four concurrent builds against the same inputs: the result is
        // a pure function of (topo, attachments, faults), so thread
        // count and scheduling order must not matter.
        let threaded: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| s.spawn(|| compute_schedule(&topo, &atts, &outages, &kills)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in threaded {
            assert_eq!(serial, t, "{} p={p}: threaded build diverged", spec);
        }
    }
}

#[test]
fn fault_free_every_pair_is_reachable_within_the_hop_bound() {
    for (spec, p) in cells() {
        let topo = spec.build(p);
        let atts = primaries(spec, p);
        let sched = compute_schedule(&topo, &atts, &[], &[]);
        assert_eq!(
            sched.epochs.len(),
            1,
            "{} p={p}: clean run is one epoch",
            spec
        );
        let e = &sched.epochs[0];
        assert!(
            e.partition.is_none(),
            "{} p={p}: fault-free fabric must not partition",
            spec
        );
        for dst in &atts {
            for src in &atts {
                if src.rank == dst.rank {
                    continue;
                }
                let path =
                    walk_path(&topo, e, src.switch, dst.mac, dst.switch).unwrap_or_else(|| {
                        panic!(
                            "{} p={p}: {} -> {} unroutable fault-free",
                            spec, src.rank, dst.rank
                        )
                    });
                assert!(
                    path.len() <= e.max_path_switches,
                    "{} p={p}: {} -> {} took {} switches, bound is {}",
                    spec,
                    src.rank,
                    dst.rank,
                    path.len(),
                    e.max_path_switches
                );
            }
        }
    }
}

#[test]
fn any_single_trunk_failure_stays_connected_and_loop_free() {
    for (spec, p) in cells() {
        let topo = spec.build(p);
        let atts = primaries(spec, p);
        // Exhaustive over trunks at p=16; a deterministic stride sample
        // at the larger sizes (every trunk variant is still exercised —
        // fat-tree edge-agg and agg-core tiers interleave under the
        // stride, as do the torus dimensions).
        let trunk_stride = if p <= 16 {
            1
        } else {
            topo.trunks.len().div_ceil(16)
        };
        for &(a, b) in topo.trunks.iter().step_by(trunk_stride) {
            let outage = TrunkOutage {
                a,
                b,
                from: at(10),
                until: at(20),
            };
            let sched = compute_schedule(&topo, &atts, &[outage], &[]);
            let e = sched.epoch_at(at(15));
            assert!(
                e.partition.is_none(),
                "{} p={p}: single trunk {a}-{b} down must not partition",
                spec
            );
            // Walk a deterministic sample of pairs, always including
            // ranks homed at the cut trunk's endpoints (the routes the
            // failure actually perturbs). `walk_path` panics on any
            // loop, so termination here is the no-loop property.
            let perturbed: Vec<usize> = atts
                .iter()
                .filter(|att| att.switch == a || att.switch == b)
                .map(|att| att.rank)
                .collect();
            let stride = (p / 8).max(1);
            let sample: Vec<usize> = (0..p).step_by(stride).chain(perturbed).collect();
            for &s in &sample {
                for &d in &sample {
                    if s == d {
                        continue;
                    }
                    let dst = &atts[d];
                    walk_path(&topo, e, atts[s].switch, dst.mac, dst.switch).unwrap_or_else(|| {
                        panic!("{} p={p}, trunk {a}-{b} down: {s} -> {d} unroutable", spec)
                    });
                }
            }
        }
    }
}
