//! Fault-tolerant collectives: every engine cell must survive a
//! mid-schedule card death under all three recovery policies, random
//! fault plans must never corrupt a result (correct data or an
//! attributed hang — nothing in between), and the fault-plan minimizer
//! must work on lockstep schedules.

use acc::coll::{Algorithm, CollectiveOp};
use acc::core::cluster::{ClusterSpec, Technology};
use acc::core::{DeadlineHierarchy, RecoveryPolicy, RunOutcome, RunRequest, Workload};
use acc::sim::{SimDuration, SimRng, SimTime};
use acc_chaos::{FaultEvent, FaultPlan, LinkId};

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

const P: usize = 4;

/// Large enough that every data-moving schedule is still in flight
/// when the 61 ms kill lands (the 60 ms bitstream load gates the
/// start); divisible by 2, 3 and every power of two the algorithms
/// need. Barrier cells carry no payload and may already be done — a
/// post-completion kill still runs the whole recovery protocol and
/// must leave the answer untouched.
const ELEMS: usize = 6144;

/// Every (op, algo) cell is bit-correct under a single mid-schedule
/// card death, for all three recovery policies. The kill time rotates
/// over the first post-configuration milliseconds so the fault lands in
/// different rounds of different schedules.
#[test]
fn every_cell_survives_a_card_kill_under_every_policy() {
    let policies = [
        RecoveryPolicy::Checkpointed,
        RecoveryPolicy::FullRestart,
        RecoveryPolicy::RankLocal,
    ];
    let mut cell = 0u64;
    for op in CollectiveOp::ALL {
        for algo in op.algorithms() {
            assert!(acc::coll::supports(op, algo, P, ELEMS), "{op}/{algo}");
            for policy in policies {
                let node = 1 + (cell % (P as u64 - 1)) as u32; // never rank 0
                let at = ms(61 + cell % 4);
                cell += 1;
                let plan = FaultPlan::new(0xC0DE + cell).with(FaultEvent::CardFailure { node, at });
                let spec = ClusterSpec::new(P, Technology::InicIdeal)
                    .with_fault_plan(plan)
                    .with_recovery_policy(policy);
                let outcome = RunRequest::collective(spec, op, algo, ELEMS).execute();
                assert!(
                    !outcome.is_hung(),
                    "{op}/{algo} {policy:?} hung:\n{:?}",
                    outcome.hang()
                );
                let r = outcome.into_coll();
                assert!(r.verified, "{op}/{algo} {policy:?}: wrong data");
                match policy {
                    RecoveryPolicy::FullRestart => assert_eq!(
                        r.faults.degraded_nodes, P as u64,
                        "{op}/{algo}: full restart degrades every rank"
                    ),
                    RecoveryPolicy::Checkpointed | RecoveryPolicy::RankLocal => {
                        assert_eq!(
                            r.faults.degraded_nodes, 1,
                            "{op}/{algo} {policy:?}: only the dead rank degrades"
                        );
                        assert!(
                            r.faults.resumed_from_phase.is_some(),
                            "{op}/{algo} {policy:?}: the coordinator must resume the run"
                        );
                    }
                }
            }
        }
    }
}

/// A kill landing inside the 60 ms configuration window: the resume is
/// parked until `InicConfigured` and the run still completes correctly
/// with the survivors' cards intact.
#[test]
fn config_window_kill_parks_the_resume_until_configured() {
    for at_ms in [1u64, 30] {
        let plan = FaultPlan::new(0xAB5E).with(FaultEvent::CardFailure {
            node: 2,
            at: ms(at_ms),
        });
        let spec = ClusterSpec::new(P, Technology::InicIdeal).with_fault_plan(plan);
        let outcome =
            RunRequest::collective(spec, CollectiveOp::AllReduce, Algorithm::Ring, ELEMS).execute();
        assert!(
            !outcome.is_hung(),
            "config-window kill must not hang:\n{:?}",
            outcome.hang()
        );
        let r = outcome.into_coll();
        assert!(r.verified);
        assert_eq!(r.faults.degraded_nodes, 1);
        assert_eq!(
            r.faults.resumed_from_phase,
            Some(0),
            "nothing completed before the kill: resume from round 0"
        );
    }
}

/// Build a seeded random fault plan mixing the shapes the soak harness
/// throws at the engine: loss, jitter, a stall window, sometimes a
/// bounded outage, sometimes a card kill.
fn random_plan(seed: u64) -> FaultPlan {
    let mut rng = SimRng::seed_from(seed);
    let mut plan = FaultPlan::new(seed).with(FaultEvent::FrameLoss {
        link: LinkId::All,
        prob: rng.gen_range(20) as f64 / 1000.0,
    });
    if rng.gen_range(2) == 0 {
        plan = plan.with(FaultEvent::LinkJitter {
            link: LinkId::NodeUplink(rng.gen_range(P as u64) as u32),
            max: SimDuration::from_micros(1 + rng.gen_range(200)),
        });
    }
    if rng.gen_range(2) == 0 {
        let from = 1 + rng.gen_range(80);
        plan = plan.with(FaultEvent::NodeStall {
            node: rng.gen_range(P as u64) as u32,
            from: ms(from),
            until: ms(from + 1 + rng.gen_range(3)),
        });
    }
    if rng.gen_range(2) == 0 {
        let from = 1 + rng.gen_range(80);
        plan = plan.with(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(rng.gen_range(P as u64) as u32),
            from: ms(from),
            until: ms(from + 1 + rng.gen_range(5)),
        });
    }
    if rng.gen_range(2) == 0 {
        plan = plan.with(FaultEvent::CardFailure {
            node: rng.gen_range(P as u64) as u32,
            at: ms(1 + rng.gen_range(80)),
        });
    }
    plan
}

/// Property: over seeded random fault plans, recovery never yields
/// wrong data — every run either verifies bit-exact against the oracle
/// or surfaces a structured, attributed `HangReport`. No silent
/// corruption, no panics.
#[test]
fn random_fault_plans_yield_correct_data_or_an_attributed_hang() {
    let cells = [
        (CollectiveOp::AllReduce, Algorithm::Ring),
        (CollectiveOp::ReduceScatter, Algorithm::RecursiveHalving),
        (CollectiveOp::AllGather, Algorithm::RecursiveDoubling),
        (CollectiveOp::AllToAll, Algorithm::Bruck),
    ];
    let mut hangs = 0usize;
    let mut completions = 0usize;
    for seed in 0..12u64 {
        let (op, algo) = cells[seed as usize % cells.len()];
        let plan = random_plan(0x5EED_0000 + seed);
        let spec = ClusterSpec::new(P, Technology::InicIdeal)
            .with_fault_plan(plan.clone())
            .with_quiet(true);
        let horizon = DeadlineHierarchy::for_run(
            &spec,
            &Workload::Collective {
                op,
                algo,
                elems: ELEMS,
            },
        )
        .run_deadline;
        plan.validate_for(P as u32, horizon)
            .unwrap_or_else(|e| panic!("seed {seed}: generated an invalid plan: {e}"));
        match RunRequest::collective(spec, op, algo, ELEMS).execute() {
            RunOutcome::Coll(r) => {
                assert!(r.verified, "seed {seed} {op}/{algo}: wrong data");
                completions += 1;
            }
            RunOutcome::Hung(report) => {
                assert!(
                    report.attribution().contains("on rank"),
                    "seed {seed}: hang must be attributed: {}",
                    report.attribution()
                );
                hangs += 1;
            }
            other => panic!("seed {seed}: unexpected outcome {other:?}"),
        }
    }
    assert_eq!(hangs + completions, 12);
    assert!(
        completions >= 6,
        "most bounded-fault runs should recover and complete ({completions}/12)"
    );
}

/// ddmin on a lockstep schedule: a four-event plan whose only wedging
/// ingredient is an unbounded outage must minimize to exactly that one
/// event, with the noise (loss, jitter, a survivable stall) shed.
#[test]
fn minimizer_isolates_the_wedging_event_on_a_lockstep_schedule() {
    let outage = FaultEvent::LinkOutage {
        link: LinkId::NodeUplink(1),
        from: SimTime::ZERO + SimDuration::from_micros(1),
        until: SimTime::ZERO + SimDuration::from_secs(600),
    };
    let plan = FaultPlan::new(0xDD11)
        .with(FaultEvent::FrameLoss {
            link: LinkId::All,
            prob: 0.005,
        })
        .with(FaultEvent::LinkJitter {
            link: LinkId::NodeUplink(2),
            max: SimDuration::from_micros(50),
        })
        .with(outage.clone())
        .with(FaultEvent::NodeStall {
            node: 3,
            from: ms(61),
            until: ms(63),
        });
    let wedges = |candidate: &FaultPlan| {
        let spec = ClusterSpec::new(P, Technology::InicIdeal)
            .with_fault_plan(candidate.clone())
            .with_quiet(true);
        RunRequest::collective(spec, CollectiveOp::AllReduce, Algorithm::Ring, ELEMS)
            .execute()
            .is_hung()
    };
    assert!(wedges(&plan), "the full plan must wedge the collective");
    let minimal = plan.minimize(|cands| cands.iter().map(wedges).collect());
    assert_eq!(
        minimal.events().len(),
        1,
        "ddmin must shed the three noise events: {minimal:?}"
    );
    assert!(
        matches!(
            minimal.events()[0],
            FaultEvent::LinkOutage {
                link: LinkId::NodeUplink(1),
                ..
            }
        ),
        "the outage is the wedging ingredient: {minimal:?}"
    );
    assert!(wedges(&minimal), "the minimized plan must still wedge");
}
