//! Resilience integration tests: the applications must produce exactly
//! the fault-free answer when the network loses frames, and must
//! complete over the commodity fallback path when an INIC card dies
//! mid-run. Result verification stays ON in every run — each scenario's
//! output is checked against the serial oracle, i.e. the fault-free
//! result. Runs with an attached fault plan also carry the online
//! Auditor, so every assertion below is additionally backed by the
//! conservation invariants it checks during the run.

use acc_chaos::{FaultEvent, FaultPlan, LinkId};
use acc_core::cluster::{run_fft, run_sort, ClusterSpec, Technology};
use acc_core::RecoveryPolicy;
use acc_sim::{SimDuration, SimTime};

/// A plan losing `pct`% of frames independently on every link.
fn lossy_plan(seed: u64, pct: f64) -> FaultPlan {
    FaultPlan::new(seed).with(FaultEvent::FrameLoss {
        link: LinkId::All,
        prob: pct / 100.0,
    })
}

fn spec_with_loss(technology: Technology, pct: f64) -> ClusterSpec {
    ClusterSpec::new(4, technology).with_fault_plan(lossy_plan(0xBAD, pct))
}

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

#[test]
fn sort_correct_under_loss_gigabit() {
    let r = run_sort(spec_with_loss(Technology::GigabitTcp, 2.0), 1 << 16);
    assert!(r.verified, "sorted output must equal the fault-free result");
    assert!(
        r.faults.retransmits > 0,
        "2% loss must force TCP retransmissions"
    );
    assert_eq!(r.faults.degraded_nodes, 0);
}

#[test]
fn sort_correct_under_loss_inic() {
    let r = run_sort(spec_with_loss(Technology::InicIdeal, 2.0), 1 << 16);
    assert!(r.verified, "sorted output must equal the fault-free result");
    assert!(
        r.faults.retransmits > 0,
        "2% loss must force INIC recovery resends"
    );
    assert_eq!(r.faults.degraded_nodes, 0);
}

#[test]
fn fft_correct_under_loss_gigabit() {
    let r = run_fft(spec_with_loss(Technology::GigabitTcp, 1.0), 64);
    assert!(r.verified, "FFT output must equal the fault-free result");
    assert!(
        r.faults.retransmits > 0,
        "1% loss must force TCP retransmissions"
    );
    assert_eq!(r.faults.degraded_nodes, 0);
}

#[test]
fn fft_correct_under_loss_inic() {
    let r = run_fft(spec_with_loss(Technology::InicIdeal, 1.0), 64);
    assert!(r.verified, "FFT output must equal the fault-free result");
    assert!(
        r.faults.retransmits > 0,
        "1% loss must force INIC recovery resends"
    );
    assert_eq!(r.faults.degraded_nodes, 0);
}

#[test]
fn corruption_and_reorder_do_not_corrupt_results() {
    let plan = FaultPlan::new(7)
        .with(FaultEvent::FrameCorruption {
            link: LinkId::All,
            prob: 0.01,
        })
        .with(FaultEvent::FrameReorder {
            link: LinkId::All,
            prob: 0.02,
            delay: SimDuration::from_micros(200),
        });
    for technology in [Technology::GigabitTcp, Technology::InicIdeal] {
        let spec = ClusterSpec::new(4, technology).with_fault_plan(plan.clone());
        let r = run_sort(spec, 1 << 16);
        assert!(r.verified, "{technology:?} result diverged");
    }
}

/// A mid-run permanent card death under the default (checkpointed,
/// rank-local) policy: only the dead rank falls back to its commodity
/// NIC, the survivors keep their INICs, and the collective resumes from
/// the last completed phase instead of restarting from scratch.
#[test]
fn sort_survives_mid_run_card_failure() {
    let plan = FaultPlan::new(0xDEAD).with(FaultEvent::CardFailure { node: 1, at: ms(1) });
    let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan);
    let r = run_sort(spec, 1 << 16);
    assert!(r.verified, "degraded run must still sort correctly");
    assert_eq!(
        r.faults.degraded_nodes, 1,
        "rank-local recovery degrades exactly the dead rank"
    );
    assert!(
        r.faults.resumed_from_phase.is_some(),
        "a card failure must trigger a checkpointed resume"
    );
}

#[test]
fn fft_survives_mid_run_card_failure() {
    let plan = FaultPlan::new(0xF0F0).with(FaultEvent::CardFailure { node: 2, at: ms(1) });
    let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan);
    let r = run_fft(spec, 64);
    assert!(r.verified, "degraded run must still compute the right FFT");
    assert_eq!(
        r.faults.degraded_nodes, 1,
        "rank-local recovery degrades exactly the dead rank"
    );
    assert!(
        r.faults.resumed_from_phase.is_some(),
        "a card failure must trigger a checkpointed resume"
    );
}

/// The same card deaths under the pinned full-restart policy: every
/// rank abandons its card and the whole collective restarts over the
/// commodity fallback NICs — the pre-checkpoint behaviour, kept as an
/// explicit opt-in for the ablation.
#[test]
fn full_restart_policy_degrades_every_rank() {
    let plan = FaultPlan::new(0xDEAD).with(FaultEvent::CardFailure { node: 1, at: ms(1) });
    let spec = ClusterSpec::new(4, Technology::InicIdeal)
        .with_fault_plan(plan)
        .with_recovery_policy(RecoveryPolicy::FullRestart);
    let r = run_sort(spec, 1 << 16);
    assert!(r.verified, "full-restart run must still sort correctly");
    assert_eq!(
        r.faults.degraded_nodes, 4,
        "every rank restarts over the fallback path"
    );

    let plan = FaultPlan::new(0xF0F0).with(FaultEvent::CardFailure { node: 2, at: ms(1) });
    let spec = ClusterSpec::new(4, Technology::InicIdeal)
        .with_fault_plan(plan)
        .with_recovery_policy(RecoveryPolicy::FullRestart);
    let r = run_fft(spec, 64);
    assert!(r.verified, "full-restart run must still compute the FFT");
    assert_eq!(r.faults.degraded_nodes, 4);
}

/// Rank-local recovery without checkpoints: the survivors keep their
/// cards but the collective re-runs from phase 0.
#[test]
fn rank_local_policy_degrades_one_rank() {
    let plan = FaultPlan::new(0xDEAD).with(FaultEvent::CardFailure { node: 1, at: ms(1) });
    let spec = ClusterSpec::new(4, Technology::InicIdeal)
        .with_fault_plan(plan)
        .with_recovery_policy(RecoveryPolicy::RankLocal);
    let r = run_sort(spec, 1 << 16);
    assert!(r.verified, "rank-local run must still sort correctly");
    assert_eq!(r.faults.degraded_nodes, 1);
    assert_eq!(
        r.faults.resumed_from_phase,
        Some(0),
        "without checkpoints the resume is a from-scratch restart"
    );
}

/// A bounded-hold `CardReconfigure` mid-exchange: the card goes dark,
/// buffers what arrives, and resumes without data loss. Both workloads
/// must complete with zero degraded nodes and the fault-free answer —
/// the retransmit machinery and the card's deferral buffers carry the
/// window.
#[test]
fn bounded_reconfigure_window_is_survived() {
    for node in [0u32, 3] {
        let plan = FaultPlan::new(0x5EED).with(FaultEvent::CardReconfigure {
            node,
            at: ms(1),
            hold: SimDuration::from_millis(2),
        });
        let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan.clone());
        let r = run_sort(spec, 1 << 16);
        assert!(r.verified, "reconfigure window must not corrupt the sort");
        assert_eq!(r.faults.degraded_nodes, 0, "no rank may fail over");
        assert!(r.faults.reconfig_windows_survived >= 1);
        assert_eq!(r.faults.resumed_from_phase, None);

        let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan);
        let r = run_fft(spec, 64);
        assert!(r.verified, "reconfigure window must not corrupt the FFT");
        assert_eq!(r.faults.degraded_nodes, 0);
        assert!(r.faults.reconfig_windows_survived >= 1);
    }
}

/// A node stall: the host CPU defers kernel completions and interrupt
/// service for the window, then drains in order. The answer is exactly
/// the fault-free one; the diagnostics record the stalled rank. Two
/// windows guarantee the stalled rank is busy inside at least one: the
/// commodity path exchanges around 1–3 ms, the INIC path wakes when its
/// 60 ms bitstream load completes.
#[test]
fn node_stall_defers_but_does_not_corrupt() {
    let plan = FaultPlan::new(0x57A1)
        .with(FaultEvent::NodeStall {
            node: 2,
            from: ms(1),
            until: ms(3),
        })
        .with(FaultEvent::NodeStall {
            node: 2,
            from: ms(60),
            until: ms(63),
        });
    for technology in [Technology::GigabitTcp, Technology::InicIdeal] {
        let spec = ClusterSpec::new(4, technology).with_fault_plan(plan.clone());
        let r = run_sort(spec, 1 << 16);
        assert!(r.verified, "{technology:?} result diverged under stall");
        assert_eq!(r.faults.degraded_nodes, 0);
        assert!(
            r.faults.stalled_nodes >= 1,
            "{technology:?}: the stalled rank must be recorded"
        );
    }
    let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan);
    let r = run_fft(spec, 64);
    assert!(r.verified, "FFT result diverged under stall");
    assert!(r.faults.stalled_nodes >= 1);
}

/// The zero-probability plan exercises the armed recovery protocol on
/// clean links: checksums and sequence tracking run, but nothing is
/// lost, so nothing is retransmitted.
#[test]
fn armed_protocol_on_clean_links_is_quiet() {
    for technology in [Technology::GigabitTcp, Technology::InicIdeal] {
        let spec = ClusterSpec::new(4, technology).with_fault_plan(FaultPlan::new(5));
        let r = run_sort(spec, 1 << 16);
        assert!(r.verified);
        assert_eq!(r.faults.retransmits, 0);
        assert_eq!(r.switch_drops, 0);
        assert_eq!(r.faults.stalled_nodes, 0);
    }
}
