//! Resilience integration tests: the applications must produce exactly
//! the fault-free answer when the network loses frames, and must
//! complete over the commodity fallback path when an INIC card dies
//! mid-run. Result verification stays ON in every run — each scenario's
//! output is checked against the serial oracle, i.e. the fault-free
//! result.

use acc_chaos::{FaultEvent, FaultPlan, LinkId};
use acc_core::cluster::{run_fft, run_sort, ClusterSpec, Technology};
use acc_sim::{SimDuration, SimTime};

/// A plan losing `pct`% of frames independently on every link.
fn lossy_plan(seed: u64, pct: f64) -> FaultPlan {
    FaultPlan::new(seed).with(FaultEvent::FrameLoss {
        link: LinkId::All,
        prob: pct / 100.0,
    })
}

fn spec_with_loss(technology: Technology, pct: f64) -> ClusterSpec {
    ClusterSpec::new(4, technology).with_fault_plan(lossy_plan(0xBAD, pct))
}

#[test]
fn sort_correct_under_loss_gigabit() {
    let r = run_sort(spec_with_loss(Technology::GigabitTcp, 2.0), 1 << 16);
    assert!(r.verified, "sorted output must equal the fault-free result");
    assert!(r.retransmits > 0, "2% loss must force TCP retransmissions");
    assert_eq!(r.degraded_nodes, 0);
}

#[test]
fn sort_correct_under_loss_inic() {
    let r = run_sort(spec_with_loss(Technology::InicIdeal, 2.0), 1 << 16);
    assert!(r.verified, "sorted output must equal the fault-free result");
    assert!(
        r.retransmits > 0,
        "2% loss must force INIC recovery resends"
    );
    assert_eq!(r.degraded_nodes, 0);
}

#[test]
fn fft_correct_under_loss_gigabit() {
    let r = run_fft(spec_with_loss(Technology::GigabitTcp, 1.0), 64);
    assert!(r.verified, "FFT output must equal the fault-free result");
    assert!(r.retransmits > 0, "1% loss must force TCP retransmissions");
    assert_eq!(r.degraded_nodes, 0);
}

#[test]
fn fft_correct_under_loss_inic() {
    let r = run_fft(spec_with_loss(Technology::InicIdeal, 1.0), 64);
    assert!(r.verified, "FFT output must equal the fault-free result");
    assert!(
        r.retransmits > 0,
        "1% loss must force INIC recovery resends"
    );
    assert_eq!(r.degraded_nodes, 0);
}

#[test]
fn corruption_and_reorder_do_not_corrupt_results() {
    let plan = FaultPlan::new(7)
        .with(FaultEvent::FrameCorruption {
            link: LinkId::All,
            prob: 0.01,
        })
        .with(FaultEvent::FrameReorder {
            link: LinkId::All,
            prob: 0.02,
            delay: SimDuration::from_micros(200),
        });
    for technology in [Technology::GigabitTcp, Technology::InicIdeal] {
        let spec = ClusterSpec::new(4, technology).with_fault_plan(plan.clone());
        let r = run_sort(spec, 1 << 16);
        assert!(r.verified, "{technology:?} result diverged");
    }
}

/// A mid-run permanent card death: all ranks must abandon their cards,
/// restart over the commodity fallback NICs, and still produce the
/// fault-free answer; the run report records the degradation.
#[test]
fn sort_survives_mid_run_card_failure() {
    let plan = FaultPlan::new(0xDEAD).with(FaultEvent::CardFailure {
        node: 1,
        at: SimTime::ZERO + SimDuration::from_millis(1),
    });
    let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan);
    let r = run_sort(spec, 1 << 16);
    assert!(r.verified, "degraded run must still sort correctly");
    assert_eq!(
        r.degraded_nodes, 4,
        "every rank restarts over the fallback path"
    );
}

#[test]
fn fft_survives_mid_run_card_failure() {
    let plan = FaultPlan::new(0xF0F0).with(FaultEvent::CardFailure {
        node: 2,
        at: SimTime::ZERO + SimDuration::from_millis(1),
    });
    let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan);
    let r = run_fft(spec, 64);
    assert!(r.verified, "degraded run must still compute the right FFT");
    assert_eq!(
        r.degraded_nodes, 4,
        "every rank restarts over the fallback path"
    );
}

/// The zero-probability plan exercises the armed recovery protocol on
/// clean links: checksums and sequence tracking run, but nothing is
/// lost, so nothing is retransmitted.
#[test]
fn armed_protocol_on_clean_links_is_quiet() {
    for technology in [Technology::GigabitTcp, Technology::InicIdeal] {
        let spec = ClusterSpec::new(4, technology).with_fault_plan(FaultPlan::new(5));
        let r = run_sort(spec, 1 << 16);
        assert!(r.verified);
        assert_eq!(r.retransmits, 0);
        assert_eq!(r.switch_drops, 0);
    }
}
