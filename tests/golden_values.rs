//! Golden regression values.
//!
//! The whole reproduction is deterministic — integer-picosecond time,
//! seeded workloads, tie-broken event ordering — so key scenario
//! results can be pinned exactly. If a model or protocol change moves
//! any of these numbers, the change is real and EXPERIMENTS.md must be
//! re-generated; this test makes that visible instead of silent.

use acc::coll::{Algorithm, CollectiveOp};
use acc::core::cluster::{run_collective, run_fft, run_sort, ClusterSpec, Technology};
use acc::core::model::{FftModel, SortModel};

#[test]
fn analytic_models_are_pinned() {
    // Pure closed forms (Eqs. 3–17) — these change only if the
    // equations or the Athlon calibration change.
    let fft = FftModel::new(512);
    assert_eq!(fft.partition_size(8).bytes(), 524_288);
    assert_eq!(fft.t_dth(8).as_ps(), 6_250_000_000); // 512 KiB / 80 MiB/s
    assert_eq!(fft.t_trans(8).as_ps(), 25_173_611_114);
    let sort = SortModel::new(1 << 25);
    assert_eq!(sort.recv_buckets(16), 128);
    assert_eq!(sort.t_dth(16).as_ps(), 100_000_000_000); // 8 MiB / 80 MiB/s
    assert_eq!(sort.t_dfg(16).as_ps(), 88_888_888_889);
}

#[test]
fn simulated_scenarios_are_pinned() {
    // Full end-to-end runs; exact picosecond totals. Small sizes keep
    // this fast while still exercising the entire stack.
    let fft_inic = run_fft(ClusterSpec::new(4, Technology::InicIdeal), 64);
    let fft_gige = run_fft(ClusterSpec::new(4, Technology::GigabitTcp), 64);
    let sort_inic = run_sort(ClusterSpec::new(4, Technology::InicIdeal), 1 << 16);
    assert!(fft_inic.verified && fft_gige.verified && sort_inic.verified);
    // If any of these change, regenerate EXPERIMENTS.md.
    let golden = [
        ("fft inic-ideal p4 n64", fft_inic.total.as_ps()),
        ("fft gigabit p4 n64", fft_gige.total.as_ps()),
        ("sort inic-ideal p4 2^16", sort_inic.total.as_ps()),
    ];
    // Determinism: the same runs repeated give identical totals.
    let fft_inic2 = run_fft(ClusterSpec::new(4, Technology::InicIdeal), 64);
    assert_eq!(golden[0].1, fft_inic2.total.as_ps());
    // Sanity envelope: totals are in the right decade (ms scale), so a
    // units regression (ns↔ps) cannot pass silently.
    for (name, ps) in golden {
        let ms = ps as f64 / 1e9;
        assert!(
            (0.05..100.0).contains(&ms),
            "{name}: {ms} ms out of envelope"
        );
    }
}

#[test]
fn simulated_collectives_are_pinned() {
    // One bandwidth-bound and one latency-bound engine cell, on a host
    // path and the combined INIC. Same contract as the scenarios above:
    // if a number moves, a schedule or protocol change is real.
    let ring_inic = run_collective(
        ClusterSpec::new(4, Technology::InicIdeal),
        CollectiveOp::AllReduce,
        Algorithm::Ring,
        8192,
    );
    let rd_gige = run_collective(
        ClusterSpec::new(4, Technology::GigabitTcp),
        CollectiveOp::AllReduce,
        Algorithm::RecursiveDoubling,
        256,
    );
    assert!(ring_inic.verified && rd_gige.verified);
    // Determinism: repeating the run reproduces the total exactly.
    let ring_inic2 = run_collective(
        ClusterSpec::new(4, Technology::InicIdeal),
        CollectiveOp::AllReduce,
        Algorithm::Ring,
        8192,
    );
    assert_eq!(ring_inic.total.as_ps(), ring_inic2.total.as_ps());
    // Sanity envelope (ms scale) so a units regression cannot hide.
    for (name, ps) in [
        ("allreduce ring inic-ideal p4 8192", ring_inic.total.as_ps()),
        ("allreduce rd gigabit p4 256", rd_gige.total.as_ps()),
    ] {
        let ms = ps as f64 / 1e9;
        assert!(
            (0.05..100.0).contains(&ms),
            "{name}: {ms} ms out of envelope"
        );
    }
}

#[test]
fn fft_speedup_shape_is_pinned() {
    // The Fig. 4(a) INIC model curve at the paper's anchor points, to
    // three decimals.
    let m = FftModel::new(256);
    let s = |p: usize| (m.speedup(p) * 1000.0).round() / 1000.0;
    assert_eq!(s(2), 1.342);
    assert_eq!(s(8), 7.779);
    assert_eq!(s(16), 15.94);
}
