//! End-to-end matrix tests for the acc-coll collective engine: every
//! collective × algorithm × technology × processor-count cell verifies
//! numerically against the first-principles oracle, runs
//! deterministically, rejects over-capacity offloads with a structured
//! error, and hangs attributably when a fault plan wedges a round.

use acc::coll::{Algorithm, CollectiveOp, OffloadError};
use acc::core::cluster::{
    plan_collective_offload, run_collective, run_halo, ClusterSpec, Technology,
};
use acc::core::{RunOutcome, RunRequest};
use acc::sim::{SimDuration, SimTime};
use acc_chaos::{FaultEvent, FaultPlan, LinkId};

const PROCS: [usize; 5] = [1, 2, 4, 8, 16];

/// Divisible by every power of two through 16 and by 3 — keeps every
/// algorithm's divisibility precondition satisfiable at one size.
const ELEMS: usize = 96;

#[test]
fn every_cell_verifies_on_every_technology() {
    for op in CollectiveOp::ALL {
        for algo in op.algorithms() {
            for p in PROCS {
                if !acc::coll::supports(op, algo, p, ELEMS) {
                    continue;
                }
                for tech in Technology::ALL {
                    let r = run_collective(ClusterSpec::new(p, tech), op, algo, ELEMS);
                    assert!(r.verified, "{op}/{algo} p={p} {}", tech.label());
                }
            }
        }
    }
}

#[test]
fn uneven_vectors_verify_where_supported() {
    // 91 = 7 × 13 shares no factor with any pow-2 p: exercises the
    // uneven segment bounds of the ring/pairwise family.
    let elems = 91;
    for op in CollectiveOp::ALL {
        for algo in op.algorithms() {
            for p in [2usize, 4, 8] {
                if !acc::coll::supports(op, algo, p, elems) {
                    continue;
                }
                for tech in [Technology::GigabitTcp, Technology::InicIdeal] {
                    let r = run_collective(ClusterSpec::new(p, tech), op, algo, elems);
                    assert!(r.verified, "{op}/{algo} p={p} {} uneven", tech.label());
                }
            }
        }
    }
}

#[test]
fn collective_runs_are_deterministic() {
    for tech in [Technology::GigabitTcp, Technology::InicIdeal] {
        let a = run_collective(
            ClusterSpec::new(8, tech),
            CollectiveOp::ReduceScatter,
            Algorithm::Ring,
            4096,
        );
        let b = run_collective(
            ClusterSpec::new(8, tech),
            CollectiveOp::ReduceScatter,
            Algorithm::Ring,
            4096,
        );
        assert_eq!(a.total, b.total, "{}", tech.label());
        assert_eq!(a.comm, b.comm);
        assert_eq!(a.compute, b.compute);
    }
}

#[test]
fn over_capacity_offload_is_a_structured_error() {
    // A 128-way stream router outgrows the prototype's XC4085XLA; the
    // planner must reject it *before* any cluster is wired, with the
    // CLB arithmetic in the error.
    let schedules = acc::coll::plan::build_all(CollectiveOp::AllReduce, Algorithm::Ring, 128, 128);
    let err = plan_collective_offload(Technology::InicPrototype, &schedules)
        .expect_err("a 128-way collective cannot fit the prototype card");
    let OffloadError::InsufficientLogic {
        required,
        available,
    } = err;
    assert!(required > available, "{err}");
    assert!(
        err.to_string().contains("CLBs"),
        "the rejection must name the budget: {err}"
    );
    // The same schedules fit the next-generation device, and the
    // host-TCP technologies have nothing to reject.
    assert!(plan_collective_offload(Technology::InicIdeal, &schedules)
        .expect("virtex-class device absorbs the fan-out")
        .is_some());
    assert!(plan_collective_offload(Technology::GigabitTcp, &schedules)
        .expect("nothing to offload on host TCP")
        .is_none());
}

#[test]
fn halo_exchange_verifies_and_is_allreduce_heavy() {
    for tech in [
        Technology::GigabitTcp,
        Technology::InicIdeal,
        Technology::InicProtocol,
    ] {
        let r = run_halo(ClusterSpec::new(4, tech), 256, 3);
        assert!(r.verified, "halo {}", tech.label());
        assert!(r.comm > SimDuration::ZERO);
    }
}

#[test]
fn wedged_collective_round_is_attributed_to_phase_and_rank() {
    // An outage swallowing rank 1's uplink past every retransmit: its
    // ring-step sends can never deliver, every peer's gather waits
    // forever, and the liveness layer must name the engine's phase.
    let plan = FaultPlan::new(0xC011).with(FaultEvent::LinkOutage {
        link: LinkId::NodeUplink(1),
        from: SimTime::ZERO + SimDuration::from_micros(1),
        until: SimTime::ZERO + SimDuration::from_secs(600),
    });
    let spec = ClusterSpec::new(4, Technology::InicIdeal)
        .with_fault_plan(plan)
        .with_quiet(true);
    let outcome =
        RunRequest::collective(spec, CollectiveOp::AllReduce, Algorithm::Ring, 8192).execute();
    let report = match &outcome {
        RunOutcome::Hung(r) => r,
        other => panic!("expected a hang, got {other:?}"),
    };
    let culprit = report.culprit.as_ref().expect("culprit named");
    assert_eq!(
        culprit.phase, "collective ring step",
        "the engine phase is named"
    );
    assert!(
        report
            .attribution()
            .contains("collective ring step on rank"),
        "attribution: {}",
        report.attribution()
    );
}
