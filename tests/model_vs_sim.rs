//! Cross-check: the Section 4 closed-form models against the
//! discrete-event simulator.
//!
//! The paper validates its analysis with "preliminary measurements from
//! our prototype"; we go further and require the analytic INIC model to
//! track the simulated ideal INIC within a factor band across the
//! processor sweep, and to order technologies identically.

use acc::core::cluster::{run_fft, run_sort, ClusterSpec, Technology};
use acc::core::model::{FftModel, SortModel};

#[test]
fn fft_transpose_model_tracks_simulated_inic() {
    let rows = 256;
    let model = FftModel::new(rows);
    for p in [2usize, 4, 8] {
        let sim = run_fft(ClusterSpec::new(p, Technology::InicIdeal), rows)
            .transpose
            .as_secs_f64();
        let analytic = model.t_trans(p).as_secs_f64();
        let ratio = sim / analytic;
        assert!(
            (0.5..2.0).contains(&ratio),
            "p={p}: sim {sim:.6}s vs model {analytic:.6}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn fft_model_and_sim_agree_on_scaling_direction() {
    let rows = 256;
    let model = FftModel::new(rows);
    let mut prev_sim = f64::MAX;
    let mut prev_model = f64::MAX;
    for p in [2usize, 4, 8] {
        let sim = run_fft(ClusterSpec::new(p, Technology::InicIdeal), rows)
            .transpose
            .as_secs_f64();
        let analytic = model.t_trans(p).as_secs_f64();
        assert!(sim < prev_sim, "simulated transpose must shrink with P");
        assert!(
            analytic < prev_model,
            "modelled transpose must shrink with P"
        );
        prev_sim = sim;
        prev_model = analytic;
    }
}

#[test]
fn sort_redistribution_model_tracks_simulated_inic() {
    // Eq. 15's worst-case premise (every one of the N receive buckets
    // fills a 64 KiB DMA threshold) only holds once the per-node
    // partition exceeds N × 64 KiB, so cross-check at a scale where it
    // does: 2²⁴ keys over 2–4 nodes gives 16–32 MiB partitions against
    // N = 128 × 64 KiB = 8 MiB.
    let total = 1u64 << 24;
    let model = SortModel::new(total);
    for p in [2usize, 4] {
        let sim = run_sort(ClusterSpec::new(p, Technology::InicIdeal), total)
            .comm
            .as_secs_f64();
        let analytic = model.t_inic(p).as_secs_f64();
        let ratio = sim / analytic;
        assert!(
            (0.4..2.5).contains(&ratio),
            "p={p}: sim {sim:.6}s vs model {analytic:.6}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn count_sort_model_matches_simulated_count_phase() {
    let total = 1u64 << 20;
    let model = SortModel::new(total);
    for p in [2usize, 4, 8] {
        let sim = run_sort(ClusterSpec::new(p, Technology::InicIdeal), total)
            .count
            .as_secs_f64();
        let analytic = model.t_countsort(p).as_secs_f64();
        let ratio = sim / analytic;
        // The driver charges the same kernel model, so these agree
        // tightly (differences come only from uneven key distribution).
        assert!(
            (0.8..1.25).contains(&ratio),
            "p={p}: sim {sim:.6}s vs model {analytic:.6}s"
        );
    }
}
