//! Cross-check: the Section 4 closed-form models against the
//! discrete-event simulator.
//!
//! The paper validates its analysis with "preliminary measurements from
//! our prototype"; we go further and require the analytic INIC model to
//! track the simulated ideal INIC within a factor band across the
//! processor sweep, and to order technologies identically.

use acc::core::cluster::{run_fft, run_sort, ClusterSpec, Technology};
use acc::core::model::{FftModel, SortModel};

#[test]
fn fft_transpose_model_tracks_simulated_inic() {
    let rows = 256;
    let model = FftModel::new(rows);
    for p in [2usize, 4, 8] {
        let sim = run_fft(ClusterSpec::new(p, Technology::InicIdeal), rows)
            .transpose
            .as_secs_f64();
        let analytic = model.t_trans(p).as_secs_f64();
        let ratio = sim / analytic;
        assert!(
            (0.5..2.0).contains(&ratio),
            "p={p}: sim {sim:.6}s vs model {analytic:.6}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn fft_model_and_sim_agree_on_scaling_direction() {
    let rows = 256;
    let model = FftModel::new(rows);
    let mut prev_sim = f64::MAX;
    let mut prev_model = f64::MAX;
    for p in [2usize, 4, 8] {
        let sim = run_fft(ClusterSpec::new(p, Technology::InicIdeal), rows)
            .transpose
            .as_secs_f64();
        let analytic = model.t_trans(p).as_secs_f64();
        assert!(sim < prev_sim, "simulated transpose must shrink with P");
        assert!(
            analytic < prev_model,
            "modelled transpose must shrink with P"
        );
        prev_sim = sim;
        prev_model = analytic;
    }
}

#[test]
fn sort_redistribution_model_tracks_simulated_inic() {
    // Eq. 15's worst-case premise (every one of the N receive buckets
    // fills a 64 KiB DMA threshold) only holds once the per-node
    // partition exceeds N × 64 KiB, so cross-check at a scale where it
    // does: 2²⁴ keys over 2–4 nodes gives 16–32 MiB partitions against
    // N = 128 × 64 KiB = 8 MiB.
    let total = 1u64 << 24;
    let model = SortModel::new(total);
    for p in [2usize, 4] {
        let sim = run_sort(ClusterSpec::new(p, Technology::InicIdeal), total)
            .comm
            .as_secs_f64();
        let analytic = model.t_inic(p).as_secs_f64();
        let ratio = sim / analytic;
        assert!(
            (0.4..2.5).contains(&ratio),
            "p={p}: sim {sim:.6}s vs model {analytic:.6}s (ratio {ratio:.2})"
        );
    }
}

#[test]
fn count_sort_model_matches_simulated_count_phase() {
    let total = 1u64 << 20;
    let model = SortModel::new(total);
    for p in [2usize, 4, 8] {
        let sim = run_sort(ClusterSpec::new(p, Technology::InicIdeal), total)
            .count
            .as_secs_f64();
        let analytic = model.t_countsort(p).as_secs_f64();
        let ratio = sim / analytic;
        // The driver charges the same kernel model, so these agree
        // tightly (differences come only from uneven key distribution).
        assert!(
            (0.8..1.25).contains(&ratio),
            "p={p}: sim {sim:.6}s vs model {analytic:.6}s"
        );
    }
}

/// Every collective × algorithm × technology cell: the round-profile
/// model must predict the simulated total within 2× either way. The
/// calibrated constants currently hold every cell inside [0.70, 1.37];
/// the band leaves headroom for schedule tweaks without masking a
/// mis-modelled path (a wrong fold-site or round count shows up as >3×).
#[test]
fn collective_model_bounds_every_cell_within_2x() {
    use acc::coll::CollectiveOp;
    use acc::core::cluster::run_collective;
    use acc::core::model::CollModel;
    let p = 4;
    let elems = 1 << 13;
    for op in CollectiveOp::ALL {
        for algo in op.algorithms() {
            if !acc::coll::supports(op, algo, p, elems) {
                continue;
            }
            let model = CollModel::collective(op, algo, p, elems);
            for tech in Technology::ALL {
                let sim = run_collective(ClusterSpec::new(p, tech), op, algo, elems)
                    .total
                    .as_secs_f64();
                let analytic = model.total(tech).as_secs_f64();
                let ratio = sim / analytic;
                assert!(
                    (0.5..2.0).contains(&ratio),
                    "{op}/{algo} on {}: sim {sim:.6}s vs model {analytic:.6}s (ratio {ratio:.2})",
                    tech.label()
                );
            }
        }
    }
}

/// The model must extrapolate across processor count, not just hold at
/// the calibration point: the same band at p = 8 on the paths whose
/// round structure changes most with p.
#[test]
fn collective_model_extrapolates_to_more_ranks() {
    use acc::coll::{Algorithm, CollectiveOp};
    use acc::core::cluster::run_collective;
    use acc::core::model::CollModel;
    let p = 8;
    let elems = 1 << 13;
    for (op, algo) in [
        (CollectiveOp::AllReduce, Algorithm::Ring),
        (CollectiveOp::AllGather, Algorithm::RecursiveDoubling),
        (CollectiveOp::AllToAll, Algorithm::Bruck),
    ] {
        let model = CollModel::collective(op, algo, p, elems);
        for tech in [
            Technology::GigabitTcp,
            Technology::InicIdeal,
            Technology::InicProtocol,
        ] {
            let sim = run_collective(ClusterSpec::new(p, tech), op, algo, elems)
                .total
                .as_secs_f64();
            let analytic = model.total(tech).as_secs_f64();
            let ratio = sim / analytic;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{op}/{algo} p=8 on {}: sim {sim:.6}s vs model {analytic:.6}s (ratio {ratio:.2})",
                tech.label()
            );
        }
    }
}
