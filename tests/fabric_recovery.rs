//! Fault-tolerant multi-switch fabrics, end to end: a 3-topology ×
//! 3-fault × 3-recovery-policy matrix over a mid-run allreduce, the
//! headline p=64 fat-tree switch-kill scenario, and the no-fallback
//! (commodity TCP) case where a dead edge switch must surface as an
//! *attributed* partition — never a silent hang.
//!
//! Fault kinds are mapped per topology: on the single switch, where
//! trunk faults cannot exist, the analogous legacy faults (an uplink
//! outage, a card death) fill the Link/Switch columns, so every cell
//! of the matrix is a real run.

use acc::coll::{Algorithm, CollectiveOp};
use acc::core::cluster::{ClusterSpec, Technology};
use acc::core::{RecoveryPolicy, RunOutcome, RunRequest};
use acc::net::FabricSpec;
use acc::sim::{SimDuration, SimTime};
use acc_chaos::{FaultEvent, FaultPlan, LinkId};

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

/// Payload sized so every schedule is still exchanging when the 61 ms
/// fault lands (the 60 ms bitstream load gates the start on INIC
/// runs); divisible by every p in the matrix.
const ELEMS: usize = 6144;

#[derive(Clone, Copy, PartialEq, Debug)]
enum FaultKind {
    None,
    Link,
    Switch,
}

/// The three fabric shapes of the matrix, with their cluster sizes and
/// per-shape fault instantiations.
fn topologies() -> Vec<(FabricSpec, usize)> {
    vec![
        (FabricSpec::SingleSwitch, 8),
        (FabricSpec::FatTree { k: 4 }, 16),
        (FabricSpec::Torus3D { dims: [2, 2, 2] }, 8),
    ]
}

/// The fault plan for one matrix cell, or `None` for the clean column.
fn cell_plan(spec: FabricSpec, kind: FaultKind, seed: u64) -> Option<FaultPlan> {
    let plan = FaultPlan::new(seed);
    let ev = match (spec, kind) {
        (_, FaultKind::None) => return None,
        // Single switch: the closest legacy analogues.
        (FabricSpec::SingleSwitch, FaultKind::Link) => FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(1),
            from: ms(61),
            until: ms(64),
        },
        (FabricSpec::SingleSwitch, FaultKind::Switch) => FaultEvent::CardFailure {
            node: 1,
            at: ms(61),
        },
        // Fat-tree k=4: trunk edge0-agg8 down, or core switch 16 dead.
        // The core kill exercises pure failover routing (no hosts sit
        // on a core, so no rank degrades).
        (FabricSpec::FatTree { .. }, FaultKind::Link) => FaultEvent::LinkDown {
            a: 0,
            b: 8,
            from: ms(61),
            until: ms(64),
        },
        (FabricSpec::FatTree { .. }, FaultKind::Switch) => FaultEvent::SwitchFailure {
            switch: 16,
            at: ms(61),
        },
        // 2x2x2 torus: ring trunk 0-1 down, or switch 1 (rank 1's
        // home) dead — the victim's card dies with it and recovery
        // reroutes rank 1 onto its dual-homed fallback NIC.
        (FabricSpec::Torus3D { .. }, FaultKind::Link) => FaultEvent::LinkDown {
            a: 0,
            b: 1,
            from: ms(61),
            until: ms(64),
        },
        (FabricSpec::Torus3D { .. }, FaultKind::Switch) => FaultEvent::SwitchFailure {
            switch: 1,
            at: ms(61),
        },
    };
    Some(plan.with(ev))
}

/// Ranks a switch kill strands in each topology (and therefore the
/// expected degraded-node count under rank-local recovery).
fn switch_victims(spec: FabricSpec) -> u64 {
    match spec {
        FabricSpec::SingleSwitch => 1,   // the analogous card death
        FabricSpec::FatTree { .. } => 0, // core switch seats no hosts
        FabricSpec::Torus3D { .. } => 1, // one host per switch
    }
}

#[test]
fn fabric_fault_policy_matrix_completes_bit_correct() {
    let policies = [
        RecoveryPolicy::Checkpointed,
        RecoveryPolicy::FullRestart,
        RecoveryPolicy::RankLocal,
    ];
    let mut seed = 0xFAB0u64;
    for (spec, p) in topologies() {
        for kind in [FaultKind::None, FaultKind::Link, FaultKind::Switch] {
            for policy in policies {
                seed += 1;
                let mut cluster = ClusterSpec::new(p, Technology::InicIdeal)
                    .with_fabric(spec)
                    .with_recovery_policy(policy);
                if let Some(plan) = cell_plan(spec, kind, seed) {
                    cluster = cluster.with_fault_plan(plan);
                }
                let outcome = RunRequest::collective(
                    cluster,
                    CollectiveOp::AllReduce,
                    Algorithm::Ring,
                    ELEMS,
                )
                .execute();
                assert!(
                    !outcome.is_hung(),
                    "{spec} p={p} {kind:?} {policy:?} hung:\n{:?}",
                    outcome.hang()
                );
                let r = outcome.into_coll();
                assert!(r.verified, "{spec} p={p} {kind:?} {policy:?}: wrong data");
                match kind {
                    FaultKind::None | FaultKind::Link => assert_eq!(
                        r.faults.degraded_nodes, 0,
                        "{spec} p={p} {kind:?} {policy:?}: transient faults degrade nobody"
                    ),
                    FaultKind::Switch => {
                        let victims = switch_victims(spec);
                        let expect = match policy {
                            // Full restart degrades everyone — but only
                            // if the kill stranded anyone at all.
                            RecoveryPolicy::FullRestart if victims > 0 => p as u64,
                            _ => victims,
                        };
                        assert_eq!(
                            r.faults.degraded_nodes, expect,
                            "{spec} p={p} {policy:?}: degraded-node count"
                        );
                    }
                }
            }
        }
    }
}

/// The headline scenario: a p=64 fat-tree loses a core switch
/// mid-allreduce and the run completes bit-correct over the ECMP
/// failover routes — no degradation, no hang, every frame accounted
/// for by the per-switch conservation audit that faulted runs carry.
#[test]
fn p64_fat_tree_switch_kill_mid_allreduce_completes_over_failover_routes() {
    let plan = FaultPlan::new(0x64FA).with(FaultEvent::SwitchFailure {
        switch: 64, // first core of the k=8 tree
        at: ms(61),
    });
    let spec = ClusterSpec::new(64, Technology::InicIdeal)
        .with_fabric(FabricSpec::FatTree { k: 8 })
        .with_fault_plan(plan);
    let outcome =
        RunRequest::collective(spec, CollectiveOp::AllReduce, Algorithm::Ring, ELEMS).execute();
    assert!(
        !outcome.is_hung(),
        "core-switch kill must fail over, not hang:\n{:?}",
        outcome.hang()
    );
    let r = outcome.into_coll();
    assert!(r.verified, "failover routes must deliver bit-correct data");
    assert_eq!(
        r.faults.degraded_nodes, 0,
        "no host sits on a core switch: nobody degrades"
    );
}

/// No fallback path, no recovery: on commodity TCP a dead edge switch
/// strands its ranks for good. The run must end in a structured,
/// attributed report naming the failed switch and the unreachable
/// ranks — not a silent wedge or an unexplained watchdog trip.
#[test]
fn tcp_edge_switch_kill_yields_attributed_partition_report() {
    let plan = FaultPlan::new(0x7C9).with(FaultEvent::SwitchFailure {
        switch: 0, // edge 0 seats ranks 0 and 1
        at: ms(1),
    });
    let spec = ClusterSpec::new(16, Technology::GigabitTcp)
        .with_fabric(FabricSpec::FatTree { k: 4 })
        .with_fault_plan(plan)
        .with_quiet(true);
    let outcome =
        RunRequest::collective(spec, CollectiveOp::AllReduce, Algorithm::Ring, ELEMS).execute();
    let RunOutcome::Hung(report) = outcome else {
        panic!("stranded TCP ranks cannot complete, got {outcome:?}");
    };
    let partition = report
        .partition
        .as_ref()
        .expect("the hang must carry the fabric partition");
    assert_eq!(partition.dead_switches, vec![0], "names the failed switch");
    assert_eq!(
        partition.unreachable_ranks,
        vec![0, 1],
        "names the stranded ranks"
    );
    let rendered = format!("{report}");
    assert!(
        rendered.contains("fabric partition"),
        "the report surfaces the partition to humans:\n{rendered}"
    );
}
