//! Honest-failure tests: the resource models must *reject* scenarios
//! the real hardware could not run, rather than silently producing
//! numbers for them.

use acc::core::cluster::{run_fft, ClusterSpec, Technology};

#[test]
#[should_panic(expected = "card memory exhausted")]
fn prototype_card_rejects_partitions_beyond_its_memory() {
    // 1024×1024 complex doubles at P=2 needs an 8 MiB receive slab per
    // card; the ACEII model carries 4 MiB. A real deployment would have
    // to shrink the problem or add nodes — the simulator must say so,
    // not fake a timing.
    let mut spec = ClusterSpec::new(2, Technology::InicPrototype);
    spec.verify = false;
    run_fft(spec, 1024);
}

#[test]
fn ideal_card_handles_the_same_partition() {
    // Same scenario on the next-generation card (64 MiB) is fine.
    let mut spec = ClusterSpec::new(2, Technology::InicIdeal);
    spec.verify = false;
    let r = run_fft(spec, 1024);
    assert!(r.total.as_millis_f64() > 0.0);
}

#[test]
#[should_panic(expected = "P must divide rows")]
fn fft_rejects_indivisible_node_counts() {
    run_fft(ClusterSpec::new(3, Technology::GigabitTcp), 64);
}

#[test]
#[should_panic(expected = "power of two")]
fn fft_rejects_non_power_of_two_matrices() {
    run_fft(ClusterSpec::new(2, Technology::GigabitTcp), 96);
}
