//! End-to-end AllReduce (collective-operations extension) tests.

use acc::core::cluster::{run_allreduce, ClusterSpec, Technology};

#[test]
fn allreduce_verifies_on_every_technology() {
    // All five, including the protocol-only INIC mode: the engine's
    // schedules run the raw-gather/unicast-scatter path there, with the
    // fold on the host.
    for tech in Technology::ALL {
        let r = run_allreduce(ClusterSpec::new(4, tech), 10_000);
        assert!(r.verified, "{}", tech.label());
    }
}

#[test]
fn allreduce_across_processor_counts() {
    for p in [1usize, 2, 4, 8, 16] {
        for tech in [Technology::GigabitTcp, Technology::InicIdeal] {
            let r = run_allreduce(ClusterSpec::new(p, tech), 4096);
            assert!(r.verified, "p={p} {}", tech.label());
        }
    }
}

#[test]
fn inic_allreduce_eliminates_host_reduction() {
    let elems = 100_000;
    let inic = run_allreduce(ClusterSpec::new(8, Technology::InicIdeal), elems);
    assert!(inic.reduce.is_zero(), "card must absorb the arithmetic");
    let tcp = run_allreduce(ClusterSpec::new(8, Technology::GigabitTcp), elems);
    assert!(!tcp.reduce.is_zero());
    assert!(
        inic.total < tcp.total,
        "INIC {:?} should beat TCP {:?}",
        inic.total,
        tcp.total
    );
}

#[test]
fn allreduce_is_deterministic() {
    let a = run_allreduce(ClusterSpec::new(4, Technology::InicIdeal), 50_000);
    let b = run_allreduce(ClusterSpec::new(4, Technology::InicIdeal), 50_000);
    assert_eq!(a.total, b.total);
}
