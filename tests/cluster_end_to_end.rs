//! Cross-crate integration: full cluster runs on every technology, with
//! results verified against serial oracles (the `run_*` functions panic
//! internally on any mismatch) and the paper's qualitative orderings
//! asserted.

use acc::core::cluster::{
    run_fft, run_sort, run_sort_custom, ClusterSpec, KeyDistribution, PartitionStrategy, Technology,
};

#[test]
fn fft_verifies_on_every_technology() {
    for tech in Technology::ALL {
        let r = run_fft(ClusterSpec::new(4, tech), 64);
        assert!(r.verified, "{}", tech.label());
        assert!(r.total >= r.compute, "{}", tech.label());
    }
}

#[test]
fn fft_verifies_across_processor_counts() {
    for p in [1usize, 2, 4, 8] {
        for tech in [Technology::GigabitTcp, Technology::InicIdeal] {
            let r = run_fft(ClusterSpec::new(p, tech), 64);
            assert!(r.verified, "p={p} {}", tech.label());
        }
    }
}

#[test]
fn fft_transpose_ordering_matches_the_paper() {
    // Fig. 8(a)'s story at one operating point: INIC ideal beats the
    // prototype beats Gigabit TCP beats Fast Ethernet.
    let p = 8;
    let rows = 256;
    let t = |tech| run_fft(ClusterSpec::new(p, tech), rows).transpose;
    let ideal = t(Technology::InicIdeal);
    let proto = t(Technology::InicPrototype);
    let gige = t(Technology::GigabitTcp);
    let fast = t(Technology::FastEthernet);
    assert!(ideal < proto, "ideal {ideal} !< prototype {proto}");
    assert!(proto < gige, "prototype {proto} !< gigabit {gige}");
    assert!(gige < fast, "gigabit {gige} !< fast {fast}");
}

#[test]
fn fft_inic_runs_never_drop_frames() {
    // The INIC protocol's loss-freedom invariant (`run_fft` also
    // asserts it internally; this documents it at the API level).
    for tech in [Technology::InicIdeal, Technology::InicPrototype] {
        let r = run_fft(ClusterSpec::new(8, tech), 128);
        assert_eq!(r.switch_drops, 0, "{}", tech.label());
    }
}

#[test]
fn sort_verifies_on_every_technology() {
    for tech in Technology::ALL {
        let r = run_sort(ClusterSpec::new(4, tech), 1 << 16);
        assert!(r.verified, "{}", tech.label());
    }
}

#[test]
fn sort_verifies_across_processor_counts() {
    for p in [1usize, 2, 4, 8] {
        for tech in [
            Technology::GigabitTcp,
            Technology::InicIdeal,
            Technology::InicPrototype,
        ] {
            let r = run_sort(ClusterSpec::new(p, tech), 1 << 16);
            assert!(r.verified, "p={p} {}", tech.label());
        }
    }
}

#[test]
fn inic_absorbs_the_bucket_sorts() {
    // Section 3.2.2: both bucket sorts run on the card; host bucket time
    // must be zero on the ideal INIC, and only phase 2 returns on the
    // prototype (Fig. 7).
    let total = 1u64 << 18;
    let ideal = run_sort(ClusterSpec::new(4, Technology::InicIdeal), total);
    assert!(ideal.bucket1.is_zero() && ideal.bucket2.is_zero());
    let proto = run_sort(ClusterSpec::new(4, Technology::InicPrototype), total);
    assert!(proto.bucket1.is_zero());
    assert!(!proto.bucket2.is_zero(), "prototype host must re-bucket");
    let gige = run_sort(ClusterSpec::new(4, Technology::GigabitTcp), total);
    assert!(!gige.bucket1.is_zero() && !gige.bucket2.is_zero());
}

#[test]
fn sort_total_ordering_matches_the_paper() {
    // Fig. 8(b)'s story: ideal INIC < prototype ≤ Gigabit; prototype
    // still beats Gigabit ("the partial bucket sort can improve memory
    // access patterns enough for a performance improvement").
    let total = 1u64 << 20;
    let t = |tech| run_sort(ClusterSpec::new(8, tech), total).total;
    let ideal = t(Technology::InicIdeal);
    let proto = t(Technology::InicPrototype);
    let gige = t(Technology::GigabitTcp);
    assert!(ideal < proto, "ideal {ideal} !< prototype {proto}");
    assert!(proto < gige, "prototype {proto} !< gigabit {gige}");
}

#[test]
fn count_sort_time_is_technology_independent() {
    // Section 4.2: "T_countsort … is the same for any of our
    // implementations".
    let total = 1u64 << 18;
    let counts: Vec<_> = Technology::ALL
        .iter()
        .map(|&tech| run_sort(ClusterSpec::new(4, tech), total).count)
        .collect();
    for w in counts.windows(2) {
        let a = w[0].as_secs_f64();
        let b = w[1].as_secs_f64();
        assert!((a - b).abs() < 0.05 * a.max(b), "{a} vs {b}");
    }
}

#[test]
fn protocol_offload_alone_is_not_enough() {
    // Section 2's central claim: RC and the NIC "enable each other".
    // An INIC used purely as a protocol processor (no datapath
    // operators) must not recover the combined mode's win while the
    // partitions are DRAM-resident.
    // 512² at P=8 keeps the 512 KiB partitions DRAM-resident, where the
    // host's transpose memory passes are expensive. (At small, cache-
    // resident partitions protocol-only can tie or win — the host passes
    // become nearly free; the ablation binary shows both regimes.)
    let p = 8;
    let fft_proto = run_fft(ClusterSpec::new(p, Technology::InicProtocol), 512);
    let fft_comb = run_fft(ClusterSpec::new(p, Technology::InicIdeal), 512);
    assert!(fft_proto.verified && fft_comb.verified);
    assert!(
        fft_comb.total < fft_proto.total,
        "combined {:?} must beat protocol-only {:?}",
        fft_comb.total,
        fft_proto.total
    );
    // Protocol-only keeps the host memory passes; combined absorbs them.
    assert!(fft_comb.transpose_compute.is_zero());
    assert!(!fft_proto.transpose_compute.is_zero());

    let total = 1u64 << 20;
    let sort_tcp = run_sort(ClusterSpec::new(p, Technology::GigabitTcp), total);
    let sort_proto = run_sort(ClusterSpec::new(p, Technology::InicProtocol), total);
    let sort_comb = run_sort(ClusterSpec::new(p, Technology::InicIdeal), total);
    assert!(sort_proto.verified && sort_comb.verified);
    assert!(sort_comb.total < sort_proto.total);
    assert!(sort_proto.total < sort_tcp.total);
    // Protocol-only still pays both host bucket passes.
    assert!(!sort_proto.bucket1.is_zero() && !sort_proto.bucket2.is_zero());
}

#[test]
fn inic_eliminates_protocol_cpu_and_almost_all_interrupts() {
    // Section 4.1's "virtual elimination of interrupts": the commodity
    // path takes hundreds of receive interrupts and burns host CPU on
    // the stack; the INIC path takes exactly one completion interrupt
    // per node per transpose and zero protocol CPU.
    let p = 8;
    let gige = run_fft(ClusterSpec::new(p, Technology::GigabitTcp), 256);
    let inic = run_fft(ClusterSpec::new(p, Technology::InicIdeal), 256);
    assert!(!gige.protocol_cpu.is_zero());
    assert!(
        gige.interrupts > 100,
        "gige took {} interrupts",
        gige.interrupts
    );
    assert!(inic.protocol_cpu.is_zero());
    // Two transposes × P nodes × one completion interrupt.
    assert_eq!(inic.interrupts, 2 * p as u64);
    assert!(gige.interrupts > 10 * inic.interrupts);
}

#[test]
fn skewed_keys_stay_correct_and_splitters_restore_balance() {
    // The paper's uniform-key assumption, stress-tested: Gaussian keys
    // under top-bits partitioning still sort correctly (the INIC credit
    // flow control absorbs the incast at the hot ranks), but the
    // makespan degrades; sampled splitters — the pre-sort sampling the
    // paper recommends — recover it.
    let p = 8;
    let total = 1u64 << 20;
    let skewed = run_sort_custom(
        ClusterSpec::new(p, Technology::InicIdeal),
        total,
        KeyDistribution::Gaussian,
        PartitionStrategy::TopBits,
    );
    assert!(skewed.verified);
    let balanced = run_sort_custom(
        ClusterSpec::new(p, Technology::InicIdeal),
        total,
        KeyDistribution::Gaussian,
        PartitionStrategy::SampledSplitters,
    );
    assert!(balanced.verified);
    assert!(
        balanced.total.as_secs_f64() < 0.7 * skewed.total.as_secs_f64(),
        "splitters {:?} should clearly beat top-bits {:?} on skewed keys",
        balanced.total,
        skewed.total
    );
    // And on uniform keys, splitters cost (almost) nothing.
    let uniform_split = run_sort_custom(
        ClusterSpec::new(p, Technology::InicIdeal),
        total,
        KeyDistribution::Uniform,
        PartitionStrategy::SampledSplitters,
    );
    let uniform_top = run_sort(ClusterSpec::new(p, Technology::InicIdeal), total);
    assert!(uniform_split.verified);
    let ratio = uniform_split.total.as_secs_f64() / uniform_top.total.as_secs_f64();
    assert!(
        ratio < 1.25,
        "splitter overhead on uniform keys: {ratio:.2}x"
    );
}

#[test]
fn skewed_keys_work_over_tcp_too() {
    let r = run_sort_custom(
        ClusterSpec::new(4, Technology::GigabitTcp),
        1 << 18,
        KeyDistribution::Gaussian,
        PartitionStrategy::SampledSplitters,
    );
    assert!(r.verified);
}

#[test]
fn runs_are_reproducible() {
    let spec = ClusterSpec::new(4, Technology::GigabitTcp);
    let a = run_fft(spec.clone(), 64);
    let b = run_fft(spec.clone(), 64);
    assert_eq!(a.total, b.total);
    assert_eq!(a.transpose, b.transpose);
    let c = run_sort(spec.clone(), 1 << 16);
    let d = run_sort(spec, 1 << 16);
    assert_eq!(c.total, d.total);
}

#[test]
fn seed_changes_workload_but_not_correctness() {
    for seed in [1u64, 99, 0xDEAD] {
        let mut spec = ClusterSpec::new(4, Technology::InicIdeal);
        spec.seed = seed;
        assert!(run_sort(spec.clone(), 1 << 16).verified);
        assert!(run_fft(spec, 64).verified);
    }
}
