//! Text codec for [`FaultPlan`] — the repro-artifact format.
//!
//! A minimized fault plan must survive a trip through a file: the soak
//! campaign writes the plan into a repro artifact, and `--repro`
//! replays it in a fresh process. The format is line-oriented plain
//! text so a human can read the artifact and trim it by hand:
//!
//! ```text
//! # acc fault plan v1
//! seed 0xdead
//! link-outage link=up:1 from=1000000 until=30000000000000
//! card-failure node=2 at=5000000
//! ```
//!
//! Times are picosecond integers (the simulator's native unit, so the
//! roundtrip is exact); probabilities print with `{:?}`, Rust's
//! shortest-roundtrip float notation, so `from_text(to_text(p)) == p`
//! for every plan. Blank lines and `#` comments are ignored; unknown
//! `key=value` fields are ignored for forward compatibility; unknown
//! directives are an error (a typo must not silently weaken a plan).

use acc_sim::{DataSize, SimDuration, SimTime};

use crate::{FaultEvent, FaultPlan, LinkId};

fn link_str(link: LinkId) -> String {
    match link {
        LinkId::All => "all".to_owned(),
        LinkId::NodeUplink(i) => format!("up:{i}"),
        LinkId::SwitchDownlink(i) => format!("down:{i}"),
    }
}

fn time_ps(t: SimTime) -> u64 {
    t.since(SimTime::ZERO).as_ps()
}

impl FaultPlan {
    /// Serialize the plan to the `# acc fault plan v1` text format.
    pub fn to_text(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("# acc fault plan v1\n");
        writeln!(out, "seed {:#x}", self.seed).expect("write to String");
        for ev in &self.events {
            match *ev {
                FaultEvent::FrameLoss { link, prob } => {
                    writeln!(out, "frame-loss link={} prob={prob:?}", link_str(link))
                }
                FaultEvent::FrameCorruption { link, prob } => {
                    writeln!(
                        out,
                        "frame-corruption link={} prob={prob:?}",
                        link_str(link)
                    )
                }
                FaultEvent::FrameReorder { link, prob, delay } => writeln!(
                    out,
                    "frame-reorder link={} prob={prob:?} delay={}",
                    link_str(link),
                    delay.as_ps()
                ),
                FaultEvent::LinkJitter { link, max } => writeln!(
                    out,
                    "link-jitter link={} max={}",
                    link_str(link),
                    max.as_ps()
                ),
                FaultEvent::LinkOutage { link, from, until } => writeln!(
                    out,
                    "link-outage link={} from={} until={}",
                    link_str(link),
                    time_ps(from),
                    time_ps(until)
                ),
                FaultEvent::BufferSqueeze {
                    link,
                    from,
                    until,
                    capacity,
                } => writeln!(
                    out,
                    "buffer-squeeze link={} from={} until={} capacity={}",
                    link_str(link),
                    time_ps(from),
                    time_ps(until),
                    capacity.bytes()
                ),
                FaultEvent::NodeStall { node, from, until } => writeln!(
                    out,
                    "node-stall node={node} from={} until={}",
                    time_ps(from),
                    time_ps(until)
                ),
                FaultEvent::CardFailure { node, at } => {
                    writeln!(out, "card-failure node={node} at={}", time_ps(at))
                }
                FaultEvent::CardReconfigure { node, at, hold } => writeln!(
                    out,
                    "card-reconfigure node={node} at={} hold={}",
                    time_ps(at),
                    hold.as_ps()
                ),
                FaultEvent::LinkDown { a, b, from, until } => writeln!(
                    out,
                    "link-down a={a} b={b} from={} until={}",
                    time_ps(from),
                    time_ps(until)
                ),
                FaultEvent::SwitchFailure { switch, at } => {
                    writeln!(out, "switch-failure switch={switch} at={}", time_ps(at))
                }
            }
            .expect("write to String");
        }
        out
    }

    /// Parse a plan from the text format [`FaultPlan::to_text`] emits.
    ///
    /// # Errors
    /// Returns a message naming the offending line and what was wrong
    /// with it.
    pub fn from_text(text: &str) -> Result<FaultPlan, String> {
        let mut seed: Option<u64> = None;
        let mut events = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let ln = idx + 1;
            let mut toks = line.split_whitespace();
            let directive = toks.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = toks.collect();
            match directive {
                "seed" => {
                    if seed.is_some() {
                        return Err(format!("line {ln}: duplicate seed"));
                    }
                    let v = rest
                        .first()
                        .ok_or_else(|| format!("line {ln}: seed needs a value"))?;
                    seed = Some(parse_u64(v, ln)?);
                }
                "frame-loss" => events.push(FaultEvent::FrameLoss {
                    link: link_field(&rest, ln)?,
                    prob: f64_field(&rest, "prob", ln)?,
                }),
                "frame-corruption" => events.push(FaultEvent::FrameCorruption {
                    link: link_field(&rest, ln)?,
                    prob: f64_field(&rest, "prob", ln)?,
                }),
                "frame-reorder" => events.push(FaultEvent::FrameReorder {
                    link: link_field(&rest, ln)?,
                    prob: f64_field(&rest, "prob", ln)?,
                    delay: SimDuration::from_ps(u64_field(&rest, "delay", ln)?),
                }),
                "link-jitter" => events.push(FaultEvent::LinkJitter {
                    link: link_field(&rest, ln)?,
                    max: SimDuration::from_ps(u64_field(&rest, "max", ln)?),
                }),
                "link-outage" => events.push(FaultEvent::LinkOutage {
                    link: link_field(&rest, ln)?,
                    from: time_field(&rest, "from", ln)?,
                    until: time_field(&rest, "until", ln)?,
                }),
                "buffer-squeeze" => events.push(FaultEvent::BufferSqueeze {
                    link: link_field(&rest, ln)?,
                    from: time_field(&rest, "from", ln)?,
                    until: time_field(&rest, "until", ln)?,
                    capacity: DataSize::from_bytes(u64_field(&rest, "capacity", ln)?),
                }),
                "node-stall" => events.push(FaultEvent::NodeStall {
                    node: node_field(&rest, ln)?,
                    from: time_field(&rest, "from", ln)?,
                    until: time_field(&rest, "until", ln)?,
                }),
                "card-failure" => events.push(FaultEvent::CardFailure {
                    node: node_field(&rest, ln)?,
                    at: time_field(&rest, "at", ln)?,
                }),
                "card-reconfigure" => events.push(FaultEvent::CardReconfigure {
                    node: node_field(&rest, ln)?,
                    at: time_field(&rest, "at", ln)?,
                    hold: SimDuration::from_ps(u64_field(&rest, "hold", ln)?),
                }),
                "link-down" => events.push(FaultEvent::LinkDown {
                    a: switch_field(&rest, "a", ln)?,
                    b: switch_field(&rest, "b", ln)?,
                    from: time_field(&rest, "from", ln)?,
                    until: time_field(&rest, "until", ln)?,
                }),
                "switch-failure" => events.push(FaultEvent::SwitchFailure {
                    switch: switch_field(&rest, "switch", ln)?,
                    at: time_field(&rest, "at", ln)?,
                }),
                other => {
                    return Err(format!("line {ln}: unknown directive '{other}'"));
                }
            }
        }
        let seed = seed.ok_or_else(|| "missing 'seed' line".to_owned())?;
        Ok(FaultPlan { seed, events })
    }
}

fn field<'a>(rest: &[&'a str], key: &str, ln: usize) -> Result<&'a str, String> {
    for tok in rest {
        if let Some(after) = tok.strip_prefix(key) {
            if let Some(value) = after.strip_prefix('=') {
                return Ok(value);
            }
        }
    }
    Err(format!("line {ln}: missing field '{key}='"))
}

fn parse_u64(v: &str, ln: usize) -> Result<u64, String> {
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    parsed.map_err(|_| format!("line {ln}: '{v}' is not an unsigned integer"))
}

fn u64_field(rest: &[&str], key: &str, ln: usize) -> Result<u64, String> {
    parse_u64(field(rest, key, ln)?, ln)
}

fn f64_field(rest: &[&str], key: &str, ln: usize) -> Result<f64, String> {
    let v = field(rest, key, ln)?;
    v.parse()
        .map_err(|_| format!("line {ln}: '{v}' is not a number"))
}

fn node_field(rest: &[&str], ln: usize) -> Result<u32, String> {
    let v = field(rest, "node", ln)?;
    v.parse()
        .map_err(|_| format!("line {ln}: '{v}' is not a node index"))
}

fn switch_field(rest: &[&str], key: &str, ln: usize) -> Result<u32, String> {
    let v = field(rest, key, ln)?;
    v.parse()
        .map_err(|_| format!("line {ln}: '{v}' is not a switch index"))
}

fn time_field(rest: &[&str], key: &str, ln: usize) -> Result<SimTime, String> {
    Ok(SimTime::ZERO + SimDuration::from_ps(u64_field(rest, key, ln)?))
}

fn link_field(rest: &[&str], ln: usize) -> Result<LinkId, String> {
    let v = field(rest, "link", ln)?;
    if v == "all" {
        return Ok(LinkId::All);
    }
    if let Some(i) = v.strip_prefix("up:") {
        return i
            .parse()
            .map(LinkId::NodeUplink)
            .map_err(|_| format!("line {ln}: bad uplink index '{i}'"));
    }
    if let Some(i) = v.strip_prefix("down:") {
        return i
            .parse()
            .map(LinkId::SwitchDownlink)
            .map_err(|_| format!("line {ln}: bad downlink index '{i}'"));
    }
    Err(format!(
        "line {ln}: bad link '{v}' (expected all, up:<n>, or down:<n>)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_sim::SimRng;

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    fn one_of_each() -> FaultPlan {
        FaultPlan::new(0xDEAD_BEEF)
            .with(FaultEvent::FrameLoss {
                link: LinkId::All,
                prob: 0.017,
            })
            .with(FaultEvent::FrameCorruption {
                link: LinkId::NodeUplink(2),
                prob: 1e-3,
            })
            .with(FaultEvent::FrameReorder {
                link: LinkId::SwitchDownlink(1),
                prob: 0.25,
                delay: SimDuration::from_micros(40),
            })
            .with(FaultEvent::LinkJitter {
                link: LinkId::All,
                max: SimDuration::from_nanos(1300),
            })
            .with(FaultEvent::LinkOutage {
                link: LinkId::NodeUplink(1),
                from: ms(1),
                until: ms(30_000),
            })
            .with(FaultEvent::BufferSqueeze {
                link: LinkId::SwitchDownlink(0),
                from: ms(5),
                until: ms(6),
                capacity: DataSize::from_bytes(4096),
            })
            .with(FaultEvent::NodeStall {
                node: 3,
                from: ms(7),
                until: ms(8),
            })
            .with(FaultEvent::CardFailure { node: 2, at: ms(9) })
            .with(FaultEvent::CardReconfigure {
                node: 0,
                at: ms(10),
                hold: SimDuration::from_millis(2),
            })
            .with(FaultEvent::LinkDown {
                a: 0,
                b: 8,
                from: ms(11),
                until: ms(12),
            })
            .with(FaultEvent::SwitchFailure {
                switch: 17,
                at: ms(13),
            })
    }

    #[test]
    fn every_event_kind_roundtrips() {
        let plan = one_of_each();
        let text = plan.to_text();
        assert_eq!(FaultPlan::from_text(&text), Ok(plan));
    }

    #[test]
    fn random_plans_roundtrip() {
        let mut rng = SimRng::seed_from(0xC0DEC);
        for _ in 0..200 {
            let mut plan = FaultPlan::new(rng.next_u64());
            let n = rng.gen_range(6) as usize;
            for _ in 0..n {
                let link = match rng.gen_range(3) {
                    0 => LinkId::All,
                    1 => LinkId::NodeUplink(rng.gen_range(8) as u32),
                    _ => LinkId::SwitchDownlink(rng.gen_range(8) as u32),
                };
                let t =
                    |rng: &mut SimRng| SimTime::ZERO + SimDuration::from_ps(rng.next_u64() >> 20);
                let ev = match rng.gen_range(11) {
                    0 => FaultEvent::FrameLoss {
                        link,
                        prob: rng.gen_f64(),
                    },
                    1 => FaultEvent::FrameCorruption {
                        link,
                        prob: rng.gen_f64(),
                    },
                    2 => FaultEvent::FrameReorder {
                        link,
                        prob: rng.gen_f64(),
                        delay: SimDuration::from_ps(rng.gen_range(1 << 40)),
                    },
                    3 => FaultEvent::LinkJitter {
                        link,
                        max: SimDuration::from_ps(rng.gen_range(1 << 40)),
                    },
                    4 => FaultEvent::LinkOutage {
                        link,
                        from: t(&mut rng),
                        until: t(&mut rng),
                    },
                    5 => FaultEvent::BufferSqueeze {
                        link,
                        from: t(&mut rng),
                        until: t(&mut rng),
                        capacity: DataSize::from_bytes(rng.gen_range(1 << 20)),
                    },
                    6 => FaultEvent::NodeStall {
                        node: rng.gen_range(8) as u32,
                        from: t(&mut rng),
                        until: t(&mut rng),
                    },
                    7 => FaultEvent::CardFailure {
                        node: rng.gen_range(8) as u32,
                        at: t(&mut rng),
                    },
                    8 => FaultEvent::CardReconfigure {
                        node: rng.gen_range(8) as u32,
                        at: t(&mut rng),
                        hold: SimDuration::from_ps(rng.gen_range(1 << 40)),
                    },
                    9 => FaultEvent::LinkDown {
                        a: rng.gen_range(64) as u32,
                        b: rng.gen_range(64) as u32,
                        from: t(&mut rng),
                        until: t(&mut rng),
                    },
                    _ => FaultEvent::SwitchFailure {
                        switch: rng.gen_range(64) as u32,
                        at: t(&mut rng),
                    },
                };
                plan.push(ev);
            }
            let text = plan.to_text();
            assert_eq!(FaultPlan::from_text(&text), Ok(plan), "text was:\n{text}");
        }
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# header\n\nseed 7\n# mid comment\n  \ncard-failure node=1 at=5\n";
        let plan = FaultPlan::from_text(text).expect("parses");
        assert_eq!(plan.seed(), 7);
        assert_eq!(plan.events().len(), 1);
    }

    #[test]
    fn parse_errors_name_the_line_and_problem() {
        let missing_seed = FaultPlan::from_text("card-failure node=1 at=5\n");
        assert!(missing_seed.unwrap_err().contains("missing 'seed'"));
        let bad = FaultPlan::from_text("seed 1\nfrobnicate node=1\n").unwrap_err();
        assert!(
            bad.contains("line 2") && bad.contains("frobnicate"),
            "{bad}"
        );
        let bad = FaultPlan::from_text("seed 1\ncard-failure node=1\n").unwrap_err();
        assert!(bad.contains("line 2") && bad.contains("'at='"), "{bad}");
        let bad =
            FaultPlan::from_text("seed 1\nframe-loss link=sideways:3 prob=0.5\n").unwrap_err();
        assert!(bad.contains("bad link"), "{bad}");
        let bad = FaultPlan::from_text("seed 1\nseed 2\n").unwrap_err();
        assert!(bad.contains("duplicate seed"), "{bad}");
        let bad = FaultPlan::from_text("seed 1\nlink-down a=0 from=1 until=2\n").unwrap_err();
        assert!(bad.contains("'b='"), "{bad}");
        let bad = FaultPlan::from_text("seed 1\nswitch-failure switch=x at=2\n").unwrap_err();
        assert!(bad.contains("not a switch index"), "{bad}");
    }

    #[test]
    fn hex_and_decimal_seeds_both_parse() {
        assert_eq!(FaultPlan::from_text("seed 0xff\n").unwrap().seed(), 255);
        assert_eq!(FaultPlan::from_text("seed 255\n").unwrap().seed(), 255);
    }
}
