//! Automatic fault-plan minimization — delta debugging for chaos.
//!
//! A soak campaign that trips over a hang hands back the fault plan
//! that caused it, but that plan is a haystack: dozens of events, most
//! of them irrelevant. [`FaultPlan::minimize`] shrinks it to a locally
//! minimal plan that *still* fails, in two stages:
//!
//! 1. **Event-set ddmin** (Zeller's delta debugging): repeatedly try
//!    subsets and complements of the event list at increasing
//!    granularity, keeping any candidate that still fails, until no
//!    single chunk can be removed. The result is 1-minimal: removing
//!    any one surviving event makes the failure disappear.
//! 2. **Parameter shrinking**: bounded rounds of halving every
//!    magnitude a surviving event carries (probabilities, jitter and
//!    reorder delays, outage/stall/squeeze window lengths, reconfigure
//!    holds), keeping a halving only if the plan still fails. An
//!    outage that must outlast the card's retransmit-abandonment
//!    horizon, say, shrinks down to the smallest window that still
//!    kills the run — which is itself diagnostic.
//!
//! # Determinism
//!
//! The minimizer is batch-oriented: each round builds the full,
//! deterministically ordered candidate list and hands it to the oracle
//! *as a slice*, and the oracle returns one verdict per candidate. The
//! minimizer always takes the **first** failing candidate in list
//! order — so the reduction path depends only on the verdicts, never on
//! the order (or parallelism) in which the oracle chose to evaluate
//! the candidates. An oracle backed by a deterministic simulator
//! therefore yields byte-identical minimal plans at any `--jobs` count.
//!
//! Dropping events never perturbs the survivors: each link's RNG
//! stream is derived from the plan seed and the link identity alone
//! (see the crate docs), so a candidate's remaining faults replay
//! exactly as they did in the full plan.

use crate::{FaultEvent, FaultPlan};

/// Upper bound on parameter-shrinking rounds (one accepted halving per
/// round). 32 rounds can halve a picosecond-resolution window from
/// years down to nothing, so the bound never truncates a real
/// reduction; it only guarantees termination against a pathological
/// oracle.
const MAX_SHRINK_ROUNDS: usize = 32;

impl FaultPlan {
    /// Shrink this plan to a locally minimal one that still fails,
    /// according to `still_fails`.
    ///
    /// The oracle receives a batch of candidate plans and must return
    /// `true` at index `i` iff candidate `i` still reproduces the
    /// failure. Batches are independent: candidates within one batch
    /// may be evaluated in any order or in parallel. The caller is
    /// expected to have established that `self` itself fails; a plan
    /// that never failed minimizes to something arbitrary (typically
    /// itself).
    ///
    /// # Panics
    /// Panics if the oracle returns a verdict vector of the wrong
    /// length.
    pub fn minimize<F>(&self, mut still_fails: F) -> FaultPlan
    where
        F: FnMut(&[FaultPlan]) -> Vec<bool>,
    {
        let mut events = self.events.clone();

        // Stage 1: ddmin over the event set.
        let mut n = 2usize;
        while events.len() >= 2 && n <= events.len() {
            let chunks = partition(events.len(), n);
            let mut candidates: Vec<Vec<FaultEvent>> = Vec::new();
            for r in &chunks {
                candidates.push(events[r.clone()].to_vec());
            }
            // At n == 2 every complement equals the other subset, so
            // testing them would double the batch for nothing.
            if n > 2 {
                for r in &chunks {
                    let mut c = Vec::with_capacity(events.len() - (r.end - r.start));
                    c.extend_from_slice(&events[..r.start]);
                    c.extend_from_slice(&events[r.end..]);
                    candidates.push(c);
                }
            }
            let verdicts = self.judge(&candidates, &mut still_fails);
            match verdicts.iter().position(|&f| f) {
                Some(i) => {
                    events = candidates.swap_remove(i);
                    // Reduced to a subset: restart at coarsest
                    // granularity. Reduced to a complement: one chunk
                    // is gone, so the granularity shrinks with it.
                    n = if i < chunks.len() { 2 } else { (n - 1).max(2) };
                }
                None if n < events.len() => n = (2 * n).min(events.len()),
                None => break,
            }
        }

        // Stage 2: shrink the magnitudes the survivors carry.
        for _ in 0..MAX_SHRINK_ROUNDS {
            let mut shrunk: Vec<(usize, FaultEvent)> = Vec::new();
            for (i, ev) in events.iter().enumerate() {
                for candidate in halvings(ev) {
                    shrunk.push((i, candidate));
                }
            }
            if shrunk.is_empty() {
                break;
            }
            let candidates: Vec<Vec<FaultEvent>> = shrunk
                .iter()
                .map(|(i, replacement)| {
                    let mut evs = events.clone();
                    evs[*i] = replacement.clone();
                    evs
                })
                .collect();
            let verdicts = self.judge(&candidates, &mut still_fails);
            match verdicts.iter().position(|&f| f) {
                Some(k) => {
                    let (i, replacement) = shrunk.swap_remove(k);
                    events[i] = replacement;
                }
                None => break,
            }
        }

        FaultPlan {
            seed: self.seed,
            events,
        }
    }

    /// Wrap candidate event lists into plans (same seed — the link RNG
    /// streams must replay identically) and consult the oracle.
    fn judge<F>(&self, candidates: &[Vec<FaultEvent>], still_fails: &mut F) -> Vec<bool>
    where
        F: FnMut(&[FaultPlan]) -> Vec<bool>,
    {
        let plans: Vec<FaultPlan> = candidates
            .iter()
            .map(|evs| FaultPlan {
                seed: self.seed,
                events: evs.clone(),
            })
            .collect();
        let verdicts = still_fails(&plans);
        assert_eq!(
            verdicts.len(),
            plans.len(),
            "minimization oracle must return one verdict per candidate"
        );
        verdicts
    }
}

/// Split `0..len` into `n` contiguous, near-equal, non-empty ranges.
fn partition(len: usize, n: usize) -> Vec<std::ops::Range<usize>> {
    let n = n.min(len);
    let mut ranges = Vec::with_capacity(n);
    let mut start = 0;
    for i in 0..n {
        // Distribute the remainder over the leading chunks.
        let size = len / n + usize::from(i < len % n);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// The halved variants of one event — each candidate halves exactly one
/// magnitude, and degenerate halvings (zero windows, vanishing
/// probabilities) are not proposed at all.
fn halvings(ev: &FaultEvent) -> Vec<FaultEvent> {
    use acc_sim::{SimDuration, SimTime};
    let half_prob = |p: f64| if p > 1e-9 { Some(p / 2.0) } else { None };
    let half_dur = |d: SimDuration| {
        if d.as_ps() >= 2 {
            Some(SimDuration::from_ps(d.as_ps() / 2))
        } else {
            None
        }
    };
    let half_window =
        |from: SimTime, until: SimTime| half_dur(until.since(from)).map(|d| (from, from + d));
    match *ev {
        FaultEvent::FrameLoss { link, prob } => half_prob(prob)
            .map(|prob| FaultEvent::FrameLoss { link, prob })
            .into_iter()
            .collect(),
        FaultEvent::FrameCorruption { link, prob } => half_prob(prob)
            .map(|prob| FaultEvent::FrameCorruption { link, prob })
            .into_iter()
            .collect(),
        FaultEvent::FrameReorder { link, prob, delay } => half_prob(prob)
            .map(|prob| FaultEvent::FrameReorder { link, prob, delay })
            .into_iter()
            .chain(half_dur(delay).map(|delay| FaultEvent::FrameReorder { link, prob, delay }))
            .collect(),
        FaultEvent::LinkJitter { link, max } => half_dur(max)
            .map(|max| FaultEvent::LinkJitter { link, max })
            .into_iter()
            .collect(),
        FaultEvent::LinkOutage { link, from, until } => half_window(from, until)
            .map(|(from, until)| FaultEvent::LinkOutage { link, from, until })
            .into_iter()
            .collect(),
        FaultEvent::BufferSqueeze {
            link,
            from,
            until,
            capacity,
        } => half_window(from, until)
            .map(|(from, until)| FaultEvent::BufferSqueeze {
                link,
                from,
                until,
                capacity,
            })
            .into_iter()
            .collect(),
        FaultEvent::NodeStall { node, from, until } => half_window(from, until)
            .map(|(from, until)| FaultEvent::NodeStall { node, from, until })
            .into_iter()
            .collect(),
        // Instantaneous, magnitude-free events: nothing to shrink.
        FaultEvent::CardFailure { .. } | FaultEvent::SwitchFailure { .. } => Vec::new(),
        FaultEvent::CardReconfigure { node, at, hold } => half_dur(hold)
            .map(|hold| FaultEvent::CardReconfigure { node, at, hold })
            .into_iter()
            .collect(),
        FaultEvent::LinkDown { a, b, from, until } => half_window(from, until)
            .map(|(from, until)| FaultEvent::LinkDown { a, b, from, until })
            .into_iter()
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LinkId;
    use acc_sim::{SimDuration, SimTime};

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    fn noise(i: u32) -> FaultEvent {
        FaultEvent::FrameLoss {
            link: LinkId::NodeUplink(i),
            prob: 0.01,
        }
    }

    fn culprit_a() -> FaultEvent {
        FaultEvent::CardFailure { node: 1, at: ms(5) }
    }

    fn culprit_b() -> FaultEvent {
        FaultEvent::NodeStall {
            node: 2,
            from: ms(1),
            until: ms(2),
        }
    }

    /// Oracle: fails iff the plan still contains every event in `need`.
    fn needs_all(need: Vec<FaultEvent>) -> impl FnMut(&[FaultPlan]) -> Vec<bool> {
        move |batch: &[FaultPlan]| {
            batch
                .iter()
                .map(|p| need.iter().all(|ev| p.events().contains(ev)))
                .collect()
        }
    }

    #[test]
    fn ddmin_isolates_a_two_event_culprit_from_noise() {
        let mut plan = FaultPlan::new(42).with(culprit_a());
        for i in 0..5 {
            plan.push(noise(i));
        }
        plan.push(culprit_b());
        for i in 5..9 {
            plan.push(noise(i));
        }
        let minimal = plan.minimize(needs_all(vec![culprit_a(), culprit_b()]));
        assert_eq!(minimal.events(), &[culprit_a(), culprit_b()]);
        assert_eq!(minimal.seed(), 42, "seed survives minimization");
    }

    #[test]
    fn ties_resolve_to_the_first_failing_candidate() {
        // Either culprit alone reproduces; the minimizer must pick the
        // earlier one in candidate order, deterministically.
        let plan = FaultPlan::new(7).with(culprit_a()).with(culprit_b());
        let oracle = |batch: &[FaultPlan]| {
            batch
                .iter()
                .map(|p| p.events().contains(&culprit_a()) || p.events().contains(&culprit_b()))
                .collect()
        };
        let minimal = plan.minimize(oracle);
        assert_eq!(minimal.events(), &[culprit_a()]);
    }

    #[test]
    fn minimization_is_reproducible() {
        let mut plan = FaultPlan::new(9);
        for i in 0..12 {
            plan.push(noise(i));
        }
        plan.push(culprit_a());
        let a = plan.minimize(needs_all(vec![culprit_a()]));
        let b = plan.minimize(needs_all(vec![culprit_a()]));
        assert_eq!(a, b);
        assert_eq!(a.events(), &[culprit_a()]);
    }

    #[test]
    fn parameter_shrinking_finds_the_smallest_failing_window() {
        // Fails while the outage lasts at least 10 ms: 80 → 40 → 20 →
        // 10 all fail, 5 succeeds, so 10 ms is the fixpoint.
        let threshold = SimDuration::from_millis(10);
        let plan = FaultPlan::new(3).with(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(0),
            from: ms(2),
            until: ms(82),
        });
        let oracle = |batch: &[FaultPlan]| {
            batch
                .iter()
                .map(|p| {
                    p.events().iter().any(|ev| match *ev {
                        FaultEvent::LinkOutage { from, until, .. } => {
                            until.since(from) >= threshold
                        }
                        _ => false,
                    })
                })
                .collect()
        };
        let minimal = plan.minimize(oracle);
        match minimal.events() {
            [FaultEvent::LinkOutage { from, until, .. }] => {
                assert_eq!(until.since(*from), threshold);
                assert_eq!(*from, ms(2), "window start is preserved");
            }
            other => panic!("unexpected minimal events: {other:?}"),
        }
    }

    #[test]
    fn magnitude_free_plans_have_nothing_to_shrink() {
        // A lone CardFailure: ddmin cannot drop it and no halvings
        // exist, so exactly zero shrink batches reach the oracle after
        // the (skipped) ddmin stage.
        let plan = FaultPlan::new(5).with(culprit_a());
        let mut batches = 0;
        let minimal = plan.minimize(|batch: &[FaultPlan]| {
            batches += 1;
            vec![true; batch.len()]
        });
        assert_eq!(minimal.events(), &[culprit_a()]);
        assert_eq!(batches, 0, "no candidates were ever generated");
    }

    #[test]
    fn ddmin_isolates_a_switch_failure_from_noise() {
        // Mirrors ddmin_isolates_a_two_event_culprit_from_noise for the
        // fabric fault kinds: a SwitchFailure + LinkDown pair buried in
        // link noise survives, everything else is shed.
        let kill = FaultEvent::SwitchFailure {
            switch: 9,
            at: ms(4),
        };
        let cut = FaultEvent::LinkDown {
            a: 0,
            b: 8,
            from: ms(1),
            until: ms(3),
        };
        let mut plan = FaultPlan::new(11).with(kill.clone());
        for i in 0..6 {
            plan.push(noise(i));
        }
        plan.push(cut.clone());
        let minimal = plan.minimize(needs_all(vec![kill.clone(), cut.clone()]));
        assert_eq!(minimal.events(), &[kill, cut]);
    }

    #[test]
    fn link_down_window_shrinks_to_the_failing_minimum() {
        let threshold = SimDuration::from_millis(8);
        let plan = FaultPlan::new(13).with(FaultEvent::LinkDown {
            a: 2,
            b: 5,
            from: ms(10),
            until: ms(74),
        });
        let oracle = |batch: &[FaultPlan]| {
            batch
                .iter()
                .map(|p| {
                    p.events().iter().any(|ev| match *ev {
                        FaultEvent::LinkDown { from, until, .. } => until.since(from) >= threshold,
                        _ => false,
                    })
                })
                .collect()
        };
        let minimal = plan.minimize(oracle);
        match minimal.events() {
            [FaultEvent::LinkDown { a, b, from, until }] => {
                assert_eq!((*a, *b), (2, 5), "endpoints survive shrinking");
                assert_eq!(until.since(*from), threshold);
                assert_eq!(*from, ms(10), "window start is preserved");
            }
            other => panic!("unexpected minimal events: {other:?}"),
        }
    }

    #[test]
    fn switch_failure_is_magnitude_free() {
        let kill = FaultEvent::SwitchFailure {
            switch: 3,
            at: ms(2),
        };
        let plan = FaultPlan::new(5).with(kill.clone());
        let mut batches = 0;
        let minimal = plan.minimize(|batch: &[FaultPlan]| {
            batches += 1;
            vec![true; batch.len()]
        });
        assert_eq!(minimal.events(), &[kill]);
        assert_eq!(batches, 0, "no candidates were ever generated");
    }

    #[test]
    fn partition_covers_the_range_with_nonempty_chunks() {
        for len in 1..20usize {
            for n in 1..=len {
                let ranges = partition(len, n);
                assert_eq!(ranges.len(), n);
                assert_eq!(ranges[0].start, 0);
                assert_eq!(ranges[ranges.len() - 1].end, len);
                for w in ranges.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
                assert!(ranges.iter().all(|r| !r.is_empty()));
            }
        }
    }
}
