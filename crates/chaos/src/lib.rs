//! # acc-chaos — deterministic fault injection
//!
//! A [`FaultPlan`] is a seeded, declarative description of everything
//! that goes wrong during a run: frame loss, corruption, reordering and
//! jitter on individual links, switch-buffer squeezes, node stall
//! windows, and FPGA card failures. Scenarios attach a plan before
//! wiring; the cluster builder compiles the link-level events into
//! per-port [`Impairment`]s and schedules the card failures.
//!
//! Everything is deterministic: each link derives its own RNG stream
//! from the plan seed and the link's identity alone, so the same plan
//! produces bit-identical fault sequences regardless of how many links
//! exist, the order they are wired, or what traffic the others carry.
//! That independence is also what lets the [`minimize`](FaultPlan::minimize)
//! delta-debugger drop events from a plan without perturbing how the
//! survivors replay, and the [`to_text`](FaultPlan::to_text) /
//! [`from_text`](FaultPlan::from_text) codec carry a minimized plan
//! into a repro artifact and back without loss.

#![forbid(unsafe_code)]

mod codec;
mod minimize;

use acc_net::Impairment;
use acc_sim::{DataSize, SimDuration, SimRng, SimTime};

/// One direction of one edge in the star topology.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LinkId {
    /// Node `i` → switch (the node's NIC/card uplink egress).
    NodeUplink(u32),
    /// Switch → node `i` (the switch output port toward that node).
    SwitchDownlink(u32),
    /// Every link in both directions.
    All,
}

impl LinkId {
    /// Whether an event targeted at `self` applies to concrete link
    /// `other` (`All` matches everything; `All` itself is never a
    /// concrete link).
    fn covers(self, other: LinkId) -> bool {
        self == LinkId::All || self == other
    }

    /// A stable small integer unique per concrete link, for deriving
    /// that link's RNG stream.
    fn stream_key(self) -> u64 {
        match self {
            LinkId::NodeUplink(i) => 2 * u64::from(i),
            LinkId::SwitchDownlink(i) => 2 * u64::from(i) + 1,
            LinkId::All => panic!("All is not a concrete link"),
        }
    }
}

/// One injected fault.
#[derive(Clone, PartialEq, Debug)]
pub enum FaultEvent {
    /// Independent per-frame loss with probability `prob`.
    FrameLoss { link: LinkId, prob: f64 },
    /// Independent per-frame payload corruption with probability `prob`.
    FrameCorruption { link: LinkId, prob: f64 },
    /// Delay a frame by `delay` with probability `prob`, letting later
    /// frames overtake it.
    FrameReorder {
        link: LinkId,
        prob: f64,
        delay: SimDuration,
    },
    /// Uniform random extra delay in `[0, max)` on every frame.
    LinkJitter { link: LinkId, max: SimDuration },
    /// Total blackout of a link during `[from, until)`.
    LinkOutage {
        link: LinkId,
        from: SimTime,
        until: SimTime,
    },
    /// Squeeze a port buffer down to `capacity` during `[from, until)`
    /// (models switch memory pressure from background traffic).
    BufferSqueeze {
        link: LinkId,
        from: SimTime,
        until: SimTime,
        capacity: DataSize,
    },
    /// Node `node` freezes during `[from, until)`: nothing it sends gets
    /// out and nothing sent to it arrives (both link directions black
    /// out).
    NodeStall {
        node: u32,
        from: SimTime,
        until: SimTime,
    },
    /// Node `node`'s INIC card dies permanently at `at`; the host must
    /// fall back to its commodity path.
    CardFailure { node: u32, at: SimTime },
    /// Node `node`'s card goes dark for a reconfiguration window of
    /// `hold` starting at `at`. The card itself survives: it buffers or
    /// NACK-defers traffic during the window and resumes without data
    /// loss, so this compiles to a card-level event (see
    /// [`FaultPlan::card_reconfigures`]), not a link impairment.
    CardReconfigure {
        node: u32,
        at: SimTime,
        hold: SimDuration,
    },
    /// Fabric fault: the trunk between switches `a` and `b` carries
    /// nothing during `[from, until)` (both directions black out, and
    /// routing swaps to failover tables at the boundary). Only
    /// meaningful on multi-switch fabrics; switch ids are validated
    /// against the topology by
    /// [`validate_for_fabric`](FaultPlan::validate_for_fabric).
    LinkDown {
        a: u32,
        b: u32,
        from: SimTime,
        until: SimTime,
    },
    /// Fabric fault: switch `switch` dies permanently at `at`. Frames
    /// already queued drain; everything arriving later is blackholed,
    /// and ranks homed on the switch lose their primary attachment.
    SwitchFailure { switch: u32, at: SimTime },
}

/// A seeded, fully deterministic fault schedule for one run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan drawing all randomness from `seed`.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            events: Vec::new(),
        }
    }

    /// Builder-style event append.
    #[must_use]
    pub fn with(mut self, ev: FaultEvent) -> FaultPlan {
        self.events.push(ev);
        self
    }

    /// Append an event.
    pub fn push(&mut self, ev: FaultEvent) {
        self.events.push(ev);
    }

    /// The plan seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The RNG stream for one concrete link: a function of the plan
    /// seed and the link identity only.
    fn link_rng(&self, link: LinkId) -> SimRng {
        SimRng::seed_from(
            self.seed
                .wrapping_add(link.stream_key().wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }

    /// Compile every event touching concrete link `link` into an
    /// [`Impairment`], or `None` if the link is clean (so ports on the
    /// happy path carry no per-frame cost).
    pub fn impairment_for(&self, link: LinkId) -> Option<Impairment> {
        let mut imp = Impairment::new(self.link_rng(link));
        for ev in &self.events {
            match *ev {
                FaultEvent::FrameLoss { link: l, prob } if l.covers(link) => {
                    imp = imp.with_loss(prob);
                }
                FaultEvent::FrameCorruption { link: l, prob } if l.covers(link) => {
                    imp = imp.with_corruption(prob);
                }
                FaultEvent::FrameReorder {
                    link: l,
                    prob,
                    delay,
                } if l.covers(link) => {
                    imp = imp.with_reorder(prob, delay);
                }
                FaultEvent::LinkJitter { link: l, max } if l.covers(link) => {
                    imp = imp.with_jitter(max);
                }
                FaultEvent::LinkOutage {
                    link: l,
                    from,
                    until,
                } if l.covers(link) => {
                    imp = imp.with_outage(from, until);
                }
                FaultEvent::BufferSqueeze {
                    link: l,
                    from,
                    until,
                    capacity,
                } if l.covers(link) => {
                    imp = imp.with_squeeze(from, until, capacity);
                }
                FaultEvent::NodeStall { node, from, until }
                    if LinkId::NodeUplink(node) == link || LinkId::SwitchDownlink(node) == link =>
                {
                    imp = imp.with_outage(from, until);
                }
                _ => {}
            }
        }
        if imp.is_active() {
            Some(imp)
        } else {
            None
        }
    }

    /// Permanent card deaths, as `(node, at)` pairs in event order.
    pub fn card_failures(&self) -> Vec<(u32, SimTime)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::CardFailure { node, at } => Some((node, at)),
                _ => None,
            })
            .collect()
    }

    /// Whether any card dies permanently under this plan.
    pub fn has_card_failures(&self) -> bool {
        self.events
            .iter()
            .any(|ev| matches!(ev, FaultEvent::CardFailure { .. }))
    }

    /// Stall windows for `node`, as `(from, until)` pairs in event order.
    pub fn stall_windows(&self, node: u32) -> Vec<(SimTime, SimTime)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::NodeStall {
                    node: n,
                    from,
                    until,
                } if n == node => Some((from, until)),
                _ => None,
            })
            .collect()
    }

    /// Card reconfiguration windows, as `(node, at, hold)` triples in
    /// event order.
    pub fn card_reconfigures(&self) -> Vec<(u32, SimTime, SimDuration)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::CardReconfigure { node, at, hold } => Some((node, at, hold)),
                _ => None,
            })
            .collect()
    }

    /// Trunk outage windows, as `(a, b, from, until)` in event order.
    pub fn link_downs(&self) -> Vec<(u32, u32, SimTime, SimTime)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::LinkDown { a, b, from, until } => Some((a, b, from, until)),
                _ => None,
            })
            .collect()
    }

    /// Permanent switch deaths, as `(switch, at)` pairs in event order.
    pub fn switch_failures(&self) -> Vec<(u32, SimTime)> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::SwitchFailure { switch, at } => Some((switch, at)),
                _ => None,
            })
            .collect()
    }

    /// Whether the plan injects any fabric-level fault (trunk outage or
    /// switch death).
    pub fn has_fabric_faults(&self) -> bool {
        self.events.iter().any(|ev| {
            matches!(
                ev,
                FaultEvent::LinkDown { .. } | FaultEvent::SwitchFailure { .. }
            )
        })
    }

    /// Compile the [`LinkDown`](FaultEvent::LinkDown) windows covering
    /// the trunk `(from_switch, to_switch)` (matched in either order)
    /// into an outage impairment for that *direction* of the trunk, or
    /// `None` if the trunk is clean. Each direction draws its own RNG
    /// stream, disjoint from every node link's stream.
    pub fn trunk_impairment(&self, from_switch: u32, to_switch: u32) -> Option<Impairment> {
        let key = (1u64 << 32) | (u64::from(from_switch) << 16) | u64::from(to_switch);
        let rng = SimRng::seed_from(
            self.seed
                .wrapping_add(key.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        );
        let mut imp = Impairment::new(rng);
        for ev in &self.events {
            if let FaultEvent::LinkDown { a, b, from, until } = *ev {
                let hit =
                    (a == from_switch && b == to_switch) || (a == to_switch && b == from_switch);
                if hit {
                    imp = imp.with_outage(from, until);
                }
            }
        }
        if imp.is_active() {
            Some(imp)
        } else {
            None
        }
    }

    /// The last instant at which the plan's *stateful* events can
    /// still be perturbing a run: the maximum end of any window, card
    /// death, or reconfigure hold. `None` for plans of purely
    /// stateless impairments (loss, corruption, reorder, jitter —
    /// always active, adding delay proportional to traffic, not a
    /// horizon). Deadline derivation extends a run's liveness bound by
    /// this much: nothing can be expected to finish before the last
    /// window lifts.
    pub fn horizon(&self) -> Option<SimTime> {
        self.events
            .iter()
            .filter_map(|ev| match *ev {
                FaultEvent::LinkOutage { until, .. }
                | FaultEvent::BufferSqueeze { until, .. }
                | FaultEvent::NodeStall { until, .. }
                | FaultEvent::LinkDown { until, .. } => Some(until),
                FaultEvent::CardFailure { at, .. } | FaultEvent::SwitchFailure { at, .. } => {
                    Some(at)
                }
                FaultEvent::CardReconfigure { at, hold, .. } => Some(at + hold),
                FaultEvent::FrameLoss { .. }
                | FaultEvent::FrameCorruption { .. }
                | FaultEvent::FrameReorder { .. }
                | FaultEvent::LinkJitter { .. } => None,
            })
            .max()
    }

    /// Check the plan against a cluster of `p` nodes: every node
    /// reference must be `< p`, every window must have positive
    /// duration, two outages may not overlap on the same link (their
    /// union is ambiguous for the per-link RNG replay), and no node's
    /// card may die twice (the second death has no card left to kill,
    /// so it is always a scenario bug).
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self, p: u32) -> Result<(), String> {
        self.validate_impl(p, None)
    }

    /// [`validate`](FaultPlan::validate), plus: every event must begin
    /// before `run_horizon` (the scenario's whole-run deadline). An
    /// event that starts at or after the horizon can never fire — the
    /// plan silently tests less than it claims to, which is always a
    /// scenario bug.
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate_for(&self, p: u32, run_horizon: SimTime) -> Result<(), String> {
        self.validate_impl(p, Some(run_horizon))
    }

    fn validate_impl(&self, p: u32, run_horizon: Option<SimTime>) -> Result<(), String> {
        let check_node = |what: &str, node: u32| {
            if node >= p {
                Err(format!("{what} references node {node}, but P = {p}"))
            } else {
                Ok(())
            }
        };
        let check_link = |what: &str, link: LinkId| match link {
            LinkId::NodeUplink(n) | LinkId::SwitchDownlink(n) => check_node(what, n),
            LinkId::All => Ok(()),
        };
        let check_start = |what: String, start: SimTime| match run_horizon {
            Some(h) if start >= h => Err(format!(
                "{what} starts at {start}, at or beyond the run horizon {h} — it can never fire"
            )),
            _ => Ok(()),
        };
        let mut outages: Vec<(LinkId, SimTime, SimTime)> = Vec::new();
        let mut dead_cards: Vec<u32> = Vec::new();
        let mut trunk_downs: Vec<((u32, u32), SimTime, SimTime)> = Vec::new();
        let mut dead_switches: Vec<u32> = Vec::new();
        for ev in &self.events {
            match *ev {
                FaultEvent::FrameLoss { link, .. } => check_link("FrameLoss", link)?,
                FaultEvent::FrameCorruption { link, .. } => check_link("FrameCorruption", link)?,
                FaultEvent::FrameReorder { link, .. } => check_link("FrameReorder", link)?,
                FaultEvent::LinkJitter { link, .. } => check_link("LinkJitter", link)?,
                FaultEvent::LinkOutage { link, from, until } => {
                    check_link("LinkOutage", link)?;
                    if until <= from {
                        return Err(format!(
                            "LinkOutage on {link:?} has zero duration ({from} .. {until})"
                        ));
                    }
                    for &(other, f, u) in &outages {
                        let same = link.covers(other) || other.covers(link);
                        if same && from < u && f < until {
                            return Err(format!(
                                "overlapping outages on {link:?}: [{f} .. {u}) and \
                                 [{from} .. {until})"
                            ));
                        }
                    }
                    outages.push((link, from, until));
                    check_start(format!("LinkOutage on {link:?}"), from)?;
                }
                FaultEvent::BufferSqueeze {
                    link, from, until, ..
                } => {
                    check_link("BufferSqueeze", link)?;
                    if until <= from {
                        return Err(format!(
                            "BufferSqueeze on {link:?} has zero duration ({from} .. {until})"
                        ));
                    }
                    check_start(format!("BufferSqueeze on {link:?}"), from)?;
                }
                FaultEvent::NodeStall { node, from, until } => {
                    check_node("NodeStall", node)?;
                    if until <= from {
                        return Err(format!(
                            "NodeStall on node {node} has zero duration ({from} .. {until})"
                        ));
                    }
                    check_start(format!("NodeStall on node {node}"), from)?;
                }
                FaultEvent::CardFailure { node, at } => {
                    check_node("CardFailure", node)?;
                    if dead_cards.contains(&node) {
                        return Err(format!(
                            "node {node} has more than one CardFailure: a card dies \
                             permanently, so the second failure has nothing left to kill"
                        ));
                    }
                    dead_cards.push(node);
                    check_start(format!("CardFailure on node {node}"), at)?;
                }
                FaultEvent::CardReconfigure { node, at, hold } => {
                    check_node("CardReconfigure", node)?;
                    if hold == SimDuration::ZERO {
                        return Err(format!("CardReconfigure on node {node} has zero hold"));
                    }
                    check_start(format!("CardReconfigure on node {node}"), at)?;
                }
                FaultEvent::LinkDown { a, b, from, until } => {
                    if a == b {
                        return Err(format!("LinkDown names switch {a} on both ends"));
                    }
                    if until <= from {
                        return Err(format!(
                            "LinkDown on trunk {a}-{b} has zero duration ({from} .. {until})"
                        ));
                    }
                    let key = (a.min(b), a.max(b));
                    for &(other, f, u) in &trunk_downs {
                        if other == key && from < u && f < until {
                            return Err(format!(
                                "overlapping LinkDowns on trunk {a}-{b}: [{f} .. {u}) and \
                                 [{from} .. {until})"
                            ));
                        }
                    }
                    trunk_downs.push((key, from, until));
                    check_start(format!("LinkDown on trunk {a}-{b}"), from)?;
                }
                FaultEvent::SwitchFailure { switch, at } => {
                    if dead_switches.contains(&switch) {
                        return Err(format!(
                            "switch {switch} has more than one SwitchFailure: a switch dies \
                             permanently, so the second failure has nothing left to kill"
                        ));
                    }
                    dead_switches.push(switch);
                    check_start(format!("SwitchFailure on switch {switch}"), at)?;
                }
            }
        }
        Ok(())
    }

    /// [`validate_for`](FaultPlan::validate_for), plus topology checks
    /// for fabric faults: every [`LinkDown`](FaultEvent::LinkDown) must
    /// name an existing trunk of `fabric` and every
    /// [`SwitchFailure`](FaultEvent::SwitchFailure) an existing switch;
    /// fabric faults on a single-switch cluster are rejected outright
    /// (there is no trunk to cut).
    ///
    /// # Errors
    /// Returns a human-readable description of the first problem found.
    pub fn validate_for_fabric(
        &self,
        p: u32,
        run_horizon: SimTime,
        fabric: &acc_net::FabricSpec,
    ) -> Result<(), String> {
        self.validate_impl(p, Some(run_horizon))?;
        if !self.has_fabric_faults() {
            return Ok(());
        }
        if *fabric == acc_net::FabricSpec::SingleSwitch {
            return Err(
                "plan injects fabric faults, but the cluster is a single switch \
                 with no trunks"
                    .to_string(),
            );
        }
        fabric.validate(p as usize)?;
        let topo = fabric.build(p as usize);
        for ev in &self.events {
            match *ev {
                FaultEvent::LinkDown { a, b, .. } => {
                    let n = topo.switch_count as u32;
                    if a >= n || b >= n {
                        return Err(format!(
                            "LinkDown on trunk {a}-{b}, but fabric {fabric} has {n} switches"
                        ));
                    }
                    if !topo.has_trunk(a as usize, b as usize) {
                        return Err(format!(
                            "LinkDown on {a}-{b}, but fabric {fabric} has no such trunk"
                        ));
                    }
                }
                FaultEvent::SwitchFailure { switch, .. } => {
                    let n = topo.switch_count as u32;
                    if switch >= n {
                        return Err(format!(
                            "SwitchFailure on switch {switch}, but fabric {fabric} has \
                             {n} switches"
                        ));
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_net::Verdict;

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    #[test]
    fn clean_links_compile_to_none() {
        let plan = FaultPlan::new(1).with(FaultEvent::FrameLoss {
            link: LinkId::NodeUplink(2),
            prob: 0.5,
        });
        assert!(plan.impairment_for(LinkId::NodeUplink(2)).is_some());
        assert!(plan.impairment_for(LinkId::NodeUplink(3)).is_none());
        assert!(plan.impairment_for(LinkId::SwitchDownlink(2)).is_none());
    }

    #[test]
    fn all_covers_every_concrete_link() {
        let plan = FaultPlan::new(1).with(FaultEvent::FrameLoss {
            link: LinkId::All,
            prob: 0.1,
        });
        for i in 0..4 {
            assert!(plan.impairment_for(LinkId::NodeUplink(i)).is_some());
            assert!(plan.impairment_for(LinkId::SwitchDownlink(i)).is_some());
        }
    }

    #[test]
    fn link_streams_are_independent_and_reproducible() {
        let plan = FaultPlan::new(0xFA11).with(FaultEvent::FrameLoss {
            link: LinkId::All,
            prob: 0.3,
        });
        let fate = |link: LinkId| {
            let mut imp = plan.impairment_for(link).unwrap();
            (0..256)
                .map(|_| matches!(imp.judge(SimTime::ZERO), Verdict::Drop))
                .collect::<Vec<bool>>()
        };
        // Same link → identical sequence; sibling link → a different one.
        assert_eq!(fate(LinkId::NodeUplink(0)), fate(LinkId::NodeUplink(0)));
        assert_ne!(fate(LinkId::NodeUplink(0)), fate(LinkId::NodeUplink(1)));
        assert_ne!(fate(LinkId::NodeUplink(0)), fate(LinkId::SwitchDownlink(0)));
    }

    #[test]
    fn node_stall_blacks_out_both_directions() {
        let plan = FaultPlan::new(9).with(FaultEvent::NodeStall {
            node: 1,
            from: ms(10),
            until: ms(20),
        });
        for link in [LinkId::NodeUplink(1), LinkId::SwitchDownlink(1)] {
            let mut imp = plan.impairment_for(link).unwrap();
            assert!(matches!(imp.judge(ms(15)), Verdict::Drop));
            assert!(matches!(imp.judge(ms(25)), Verdict::Deliver));
        }
        assert!(plan.impairment_for(LinkId::NodeUplink(0)).is_none());
    }

    #[test]
    fn card_failures_extracted_in_order() {
        let plan = FaultPlan::new(3)
            .with(FaultEvent::CardFailure { node: 2, at: ms(5) })
            .with(FaultEvent::FrameLoss {
                link: LinkId::All,
                prob: 0.01,
            })
            .with(FaultEvent::CardFailure { node: 0, at: ms(9) });
        assert!(plan.has_card_failures());
        assert_eq!(plan.card_failures(), vec![(2, ms(5)), (0, ms(9))]);
        assert!(!FaultPlan::new(3).has_card_failures());
    }

    #[test]
    fn reconfigure_is_a_card_event_not_a_link_impairment() {
        // The card buffers/NACK-defers during the hold and loses no
        // data, so a reconfigure must NOT compile to a wire outage —
        // it is delivered to the card itself via the accessor.
        let plan = FaultPlan::new(4).with(FaultEvent::CardReconfigure {
            node: 0,
            at: ms(1),
            hold: SimDuration::from_millis(2),
        });
        assert!(!plan.has_card_failures());
        assert!(plan.impairment_for(LinkId::NodeUplink(0)).is_none());
        assert!(plan.impairment_for(LinkId::SwitchDownlink(0)).is_none());
        assert_eq!(
            plan.card_reconfigures(),
            vec![(0, ms(1), SimDuration::from_millis(2))]
        );
    }

    #[test]
    fn stall_windows_extracted_per_node() {
        let plan = FaultPlan::new(6)
            .with(FaultEvent::NodeStall {
                node: 1,
                from: ms(2),
                until: ms(3),
            })
            .with(FaultEvent::NodeStall {
                node: 3,
                from: ms(5),
                until: ms(6),
            });
        assert_eq!(plan.stall_windows(1), vec![(ms(2), ms(3))]);
        assert_eq!(plan.stall_windows(3), vec![(ms(5), ms(6))]);
        assert!(plan.stall_windows(0).is_empty());
    }

    #[test]
    fn validate_accepts_a_well_formed_plan() {
        let plan = FaultPlan::new(8)
            .with(FaultEvent::FrameLoss {
                link: LinkId::All,
                prob: 0.01,
            })
            .with(FaultEvent::LinkOutage {
                link: LinkId::NodeUplink(1),
                from: ms(1),
                until: ms(2),
            })
            .with(FaultEvent::LinkOutage {
                link: LinkId::NodeUplink(1),
                from: ms(3),
                until: ms(4),
            })
            .with(FaultEvent::NodeStall {
                node: 3,
                from: ms(1),
                until: ms(2),
            })
            .with(FaultEvent::CardReconfigure {
                node: 0,
                at: ms(1),
                hold: SimDuration::from_millis(1),
            });
        assert_eq!(plan.validate(4), Ok(()));
    }

    #[test]
    fn validate_rejects_out_of_range_nodes() {
        let plan = FaultPlan::new(8).with(FaultEvent::CardFailure { node: 4, at: ms(1) });
        assert!(plan.validate(4).unwrap_err().contains("node 4"));
        let plan = FaultPlan::new(8).with(FaultEvent::FrameLoss {
            link: LinkId::SwitchDownlink(9),
            prob: 0.5,
        });
        assert!(plan.validate(4).unwrap_err().contains("node 9"));
    }

    #[test]
    fn validate_rejects_zero_duration_windows() {
        let plan = FaultPlan::new(8).with(FaultEvent::NodeStall {
            node: 0,
            from: ms(2),
            until: ms(2),
        });
        assert!(plan.validate(4).unwrap_err().contains("zero duration"));
        let plan = FaultPlan::new(8).with(FaultEvent::CardReconfigure {
            node: 0,
            at: ms(1),
            hold: SimDuration::ZERO,
        });
        assert!(plan.validate(4).unwrap_err().contains("zero hold"));
    }

    #[test]
    fn validate_rejects_overlapping_outages_on_one_link() {
        let plan = FaultPlan::new(8)
            .with(FaultEvent::LinkOutage {
                link: LinkId::NodeUplink(1),
                from: ms(1),
                until: ms(3),
            })
            .with(FaultEvent::LinkOutage {
                link: LinkId::All,
                from: ms(2),
                until: ms(4),
            });
        assert!(plan.validate(4).unwrap_err().contains("overlapping"));
        // Disjoint windows on the same link stay legal.
        let plan = FaultPlan::new(8)
            .with(FaultEvent::LinkOutage {
                link: LinkId::NodeUplink(1),
                from: ms(1),
                until: ms(3),
            })
            .with(FaultEvent::LinkOutage {
                link: LinkId::NodeUplink(1),
                from: ms(3),
                until: ms(4),
            });
        assert_eq!(plan.validate(4), Ok(()));
    }

    #[test]
    fn validate_rejects_duplicate_card_failures_per_node() {
        let plan = FaultPlan::new(8)
            .with(FaultEvent::CardFailure { node: 1, at: ms(2) })
            .with(FaultEvent::CardFailure { node: 1, at: ms(9) });
        let err = plan.validate(4).unwrap_err();
        assert!(
            err.contains("node 1") && err.contains("more than one CardFailure"),
            "{err}"
        );
        // Different nodes may each lose their card once.
        let plan = FaultPlan::new(8)
            .with(FaultEvent::CardFailure { node: 1, at: ms(2) })
            .with(FaultEvent::CardFailure { node: 2, at: ms(9) });
        assert_eq!(plan.validate(4), Ok(()));
    }

    #[test]
    fn validate_for_rejects_events_that_can_never_fire() {
        let horizon = ms(100);
        let late = |ev: FaultEvent| {
            let err = FaultPlan::new(1)
                .with(ev)
                .validate_for(4, horizon)
                .unwrap_err();
            assert!(err.contains("can never fire"), "{err}");
            assert!(err.contains("run horizon"), "{err}");
        };
        late(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(0),
            from: ms(100),
            until: ms(200),
        });
        late(FaultEvent::BufferSqueeze {
            link: LinkId::SwitchDownlink(1),
            from: ms(150),
            until: ms(200),
            capacity: DataSize::from_bytes(512),
        });
        late(FaultEvent::NodeStall {
            node: 2,
            from: ms(101),
            until: ms(102),
        });
        late(FaultEvent::CardFailure {
            node: 3,
            at: ms(400),
        });
        late(FaultEvent::CardReconfigure {
            node: 0,
            at: ms(100),
            hold: SimDuration::from_millis(1),
        });
        // Starting before the horizon is enough, even if the window
        // runs past it — the event does fire.
        let plan = FaultPlan::new(1).with(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(0),
            from: ms(99),
            until: ms(500),
        });
        assert_eq!(plan.validate_for(4, horizon), Ok(()));
        // Stateless impairments have no start instant to be late.
        let plan = FaultPlan::new(1).with(FaultEvent::FrameLoss {
            link: LinkId::All,
            prob: 0.5,
        });
        assert_eq!(plan.validate_for(4, horizon), Ok(()));
    }

    #[test]
    fn horizon_is_the_latest_stateful_instant() {
        assert_eq!(FaultPlan::new(1).horizon(), None);
        // Stateless impairments contribute no horizon.
        let plan = FaultPlan::new(1).with(FaultEvent::LinkJitter {
            link: LinkId::All,
            max: SimDuration::from_millis(1),
        });
        assert_eq!(plan.horizon(), None);
        let plan = FaultPlan::new(1)
            .with(FaultEvent::LinkOutage {
                link: LinkId::NodeUplink(0),
                from: ms(1),
                until: ms(40),
            })
            .with(FaultEvent::CardReconfigure {
                node: 1,
                at: ms(50),
                hold: SimDuration::from_millis(25),
            })
            .with(FaultEvent::CardFailure {
                node: 2,
                at: ms(60),
            });
        assert_eq!(plan.horizon(), Some(ms(75)));
    }

    #[test]
    fn fabric_faults_extracted_and_extend_horizon() {
        let plan = FaultPlan::new(2)
            .with(FaultEvent::LinkDown {
                a: 0,
                b: 8,
                from: ms(5),
                until: ms(50),
            })
            .with(FaultEvent::SwitchFailure {
                switch: 3,
                at: ms(80),
            });
        assert!(plan.has_fabric_faults());
        assert_eq!(plan.link_downs(), vec![(0, 8, ms(5), ms(50))]);
        assert_eq!(plan.switch_failures(), vec![(3, ms(80))]);
        assert_eq!(plan.horizon(), Some(ms(80)));
        assert!(!FaultPlan::new(2).has_fabric_faults());
    }

    #[test]
    fn trunk_impairment_covers_both_orders_with_distinct_streams() {
        let plan = FaultPlan::new(7).with(FaultEvent::LinkDown {
            a: 1,
            b: 4,
            from: ms(10),
            until: ms(20),
        });
        for (f, t) in [(1u32, 4u32), (4, 1)] {
            let mut imp = plan.trunk_impairment(f, t).expect("trunk is faulted");
            assert!(matches!(imp.judge(ms(15)), Verdict::Drop));
            assert!(matches!(imp.judge(ms(25)), Verdict::Deliver));
        }
        assert!(plan.trunk_impairment(0, 1).is_none());
        assert!(plan.trunk_impairment(2, 4).is_none());
    }

    #[test]
    fn validate_rejects_malformed_fabric_faults() {
        let plan = FaultPlan::new(1).with(FaultEvent::LinkDown {
            a: 2,
            b: 2,
            from: ms(1),
            until: ms(2),
        });
        assert!(plan.validate(4).unwrap_err().contains("both ends"));
        let plan = FaultPlan::new(1).with(FaultEvent::LinkDown {
            a: 1,
            b: 2,
            from: ms(2),
            until: ms(2),
        });
        assert!(plan.validate(4).unwrap_err().contains("zero duration"));
        let plan = FaultPlan::new(1)
            .with(FaultEvent::LinkDown {
                a: 1,
                b: 2,
                from: ms(1),
                until: ms(5),
            })
            .with(FaultEvent::LinkDown {
                a: 2,
                b: 1,
                from: ms(4),
                until: ms(9),
            });
        assert!(plan.validate(4).unwrap_err().contains("overlapping"));
        let plan = FaultPlan::new(1)
            .with(FaultEvent::SwitchFailure {
                switch: 1,
                at: ms(1),
            })
            .with(FaultEvent::SwitchFailure {
                switch: 1,
                at: ms(2),
            });
        assert!(plan
            .validate(4)
            .unwrap_err()
            .contains("more than one SwitchFailure"));
    }

    #[test]
    fn validate_for_fabric_checks_the_topology() {
        use acc_net::FabricSpec;
        let horizon = ms(1_000);
        let tree = FabricSpec::FatTree { k: 4 };
        let ok = FaultPlan::new(1)
            .with(FaultEvent::LinkDown {
                a: 0,
                b: 8,
                from: ms(1),
                until: ms(2),
            })
            .with(FaultEvent::SwitchFailure {
                switch: 19,
                at: ms(5),
            });
        assert_eq!(ok.validate_for_fabric(16, horizon, &tree), Ok(()));

        // Edge 0 and edge 1 share no trunk in a fat-tree.
        let bad_trunk = FaultPlan::new(1).with(FaultEvent::LinkDown {
            a: 0,
            b: 1,
            from: ms(1),
            until: ms(2),
        });
        assert!(bad_trunk
            .validate_for_fabric(16, horizon, &tree)
            .unwrap_err()
            .contains("no such trunk"));
        let bad_switch = FaultPlan::new(1).with(FaultEvent::SwitchFailure {
            switch: 20,
            at: ms(5),
        });
        assert!(bad_switch
            .validate_for_fabric(16, horizon, &tree)
            .unwrap_err()
            .contains("20 switches"));
        // Fabric faults on a single switch are a scenario bug.
        assert!(ok
            .validate_for_fabric(16, horizon, &FabricSpec::SingleSwitch)
            .unwrap_err()
            .contains("single switch"));
        // Node-level plans remain valid on any fabric.
        let node_plan = FaultPlan::new(1).with(FaultEvent::CardFailure { node: 3, at: ms(5) });
        assert_eq!(
            node_plan.validate_for_fabric(16, horizon, &FabricSpec::SingleSwitch),
            Ok(())
        );
    }

    #[test]
    fn random_well_formed_plans_validate_and_random_violations_do_not() {
        let p = 8u32;
        let horizon = ms(1_000);
        let mut rng = SimRng::seed_from(0x7E57);
        for _ in 0..100 {
            // Well-formed by construction: windows strictly inside the
            // horizon, per-link outages on distinct links, one card
            // failure per node.
            let mut plan = FaultPlan::new(rng.next_u64());
            for node in 0..p {
                if rng.gen_bool(0.3) {
                    let from = ms(1 + rng.gen_range(400));
                    plan.push(FaultEvent::LinkOutage {
                        link: LinkId::NodeUplink(node),
                        from,
                        until: from + SimDuration::from_millis(1 + rng.gen_range(100)),
                    });
                }
                if rng.gen_bool(0.3) {
                    plan.push(FaultEvent::CardFailure {
                        node,
                        at: ms(rng.gen_range(999)),
                    });
                }
                if rng.gen_bool(0.3) {
                    plan.push(FaultEvent::FrameLoss {
                        link: LinkId::SwitchDownlink(node),
                        prob: rng.gen_f64(),
                    });
                }
            }
            assert_eq!(plan.validate(p), Ok(()));
            assert_eq!(plan.validate_for(p, horizon), Ok(()));

            // One random violation must flip the verdict, with a
            // message that names the problem.
            let mut bad = plan.clone();
            let expect = match rng.gen_range(3) {
                0 => {
                    bad.push(FaultEvent::CardFailure {
                        node: 0,
                        at: ms(500),
                    });
                    bad.push(FaultEvent::CardFailure {
                        node: 0,
                        at: ms(600),
                    });
                    "more than one CardFailure"
                }
                1 => {
                    bad.push(FaultEvent::NodeStall {
                        node: 1,
                        from: horizon + SimDuration::from_millis(rng.gen_range(50)),
                        until: horizon + SimDuration::from_millis(100),
                    });
                    "can never fire"
                }
                _ => {
                    bad.push(FaultEvent::LinkOutage {
                        link: LinkId::All,
                        from: ms(1),
                        until: ms(999),
                    });
                    bad.push(FaultEvent::LinkOutage {
                        link: LinkId::All,
                        from: ms(2),
                        until: ms(998),
                    });
                    "overlapping"
                }
            };
            let err = bad.validate_for(p, horizon).unwrap_err();
            assert!(err.contains(expect), "expected '{expect}' in: {err}");
        }
    }
}
