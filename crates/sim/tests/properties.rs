//! Property tests over the simulation kernel's arithmetic foundations.

use proptest::prelude::*;

use acc_sim::{Bandwidth, DataSize, SimDuration, SimRng, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn time_add_then_since_roundtrips(base in 0u64..1 << 50, delta in 0u64..1 << 50) {
        let t0 = SimTime::from_ps(base);
        let d = SimDuration::from_ps(delta);
        prop_assert_eq!((t0 + d).since(t0), d);
        prop_assert!((t0 + d) >= t0);
    }

    #[test]
    fn transfer_time_is_monotone_in_size(
        a in 0u64..1 << 32,
        b in 0u64..1 << 32,
        mib in 1u64..100_000,
    ) {
        let bw = Bandwidth::from_mib_per_sec(mib);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            bw.transfer_time(DataSize::from_bytes(lo))
                <= bw.transfer_time(DataSize::from_bytes(hi))
        );
    }

    #[test]
    fn transfer_time_is_antitone_in_rate(
        bytes in 1u64..1 << 32,
        r1 in 1u64..100_000,
        r2 in 1u64..100_000,
    ) {
        let (slow, fast) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let size = DataSize::from_bytes(bytes);
        prop_assert!(
            Bandwidth::from_mib_per_sec(fast).transfer_time(size)
                <= Bandwidth::from_mib_per_sec(slow).transfer_time(size)
        );
    }

    #[test]
    fn transfer_time_never_undershoots_exact_value(
        bytes in 1u64..1 << 30,
        rate in 1u64..1 << 32,
    ) {
        // Rounded-up integer picoseconds must cover the exact quotient.
        let bw = Bandwidth::from_bytes_per_sec(rate);
        let t = bw.transfer_time(DataSize::from_bytes(bytes));
        let exact = bytes as f64 / rate as f64;
        prop_assert!(t.as_secs_f64() >= exact - 1e-12);
        // And never overshoot by more than one picosecond.
        prop_assert!(t.as_secs_f64() <= exact + 2e-12);
    }

    #[test]
    fn rng_range_bounds_hold(seed in any::<u64>(), n in 1u64..=1 << 48) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..32 {
            prop_assert!(rng.gen_range(n) < n);
        }
    }

    #[test]
    fn rng_streams_reproducible(seed in any::<u64>()) {
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn duration_scaling_distributes(d in 0u64..1 << 40, k in 0u64..1 << 10) {
        let dur = SimDuration::from_ps(d);
        let mut sum = SimDuration::ZERO;
        for _ in 0..k.min(100) {
            sum += dur;
        }
        prop_assert_eq!(sum, dur * k.min(100));
    }

    #[test]
    fn datasize_division_equals_transfer_time(
        bytes in 0u64..1 << 40,
        mib in 1u64..10_000,
    ) {
        let bw = Bandwidth::from_mib_per_sec(mib);
        let size = DataSize::from_bytes(bytes);
        prop_assert_eq!(size / bw, bw.transfer_time(size));
    }
}
