//! Randomized invariant tests over the simulation kernel's arithmetic
//! foundations, driven by the kernel's own seeded RNG so every failure
//! reproduces from the fixed seeds.

use acc_sim::{Bandwidth, DataSize, SimDuration, SimRng, SimTime};

#[test]
fn time_add_then_since_roundtrips() {
    let mut g = SimRng::seed_from(0xB1);
    for _ in 0..256 {
        let base = g.gen_range(1 << 50);
        let delta = g.gen_range(1 << 50);
        let t0 = SimTime::from_ps(base);
        let d = SimDuration::from_ps(delta);
        assert_eq!((t0 + d).since(t0), d);
        assert!((t0 + d) >= t0);
    }
}

#[test]
fn transfer_time_is_monotone_in_size() {
    let mut g = SimRng::seed_from(0xB2);
    for _ in 0..256 {
        let a = g.gen_range(1 << 32);
        let b = g.gen_range(1 << 32);
        let mib = 1 + g.gen_range(99_999);
        let bw = Bandwidth::from_mib_per_sec(mib);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        assert!(
            bw.transfer_time(DataSize::from_bytes(lo))
                <= bw.transfer_time(DataSize::from_bytes(hi))
        );
    }
}

#[test]
fn transfer_time_is_antitone_in_rate() {
    let mut g = SimRng::seed_from(0xB3);
    for _ in 0..256 {
        let bytes = 1 + g.gen_range((1 << 32) - 1);
        let r1 = 1 + g.gen_range(99_999);
        let r2 = 1 + g.gen_range(99_999);
        let (slow, fast) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
        let size = DataSize::from_bytes(bytes);
        assert!(
            Bandwidth::from_mib_per_sec(fast).transfer_time(size)
                <= Bandwidth::from_mib_per_sec(slow).transfer_time(size)
        );
    }
}

#[test]
fn transfer_time_never_undershoots_exact_value() {
    let mut g = SimRng::seed_from(0xB4);
    for _ in 0..256 {
        let bytes = 1 + g.gen_range((1 << 30) - 1);
        let rate = 1 + g.gen_range((1u64 << 32) - 1);
        // Rounded-up integer picoseconds must cover the exact quotient.
        let bw = Bandwidth::from_bytes_per_sec(rate);
        let t = bw.transfer_time(DataSize::from_bytes(bytes));
        let exact = bytes as f64 / rate as f64;
        assert!(t.as_secs_f64() >= exact - 1e-12);
        // And never overshoot by more than one picosecond.
        assert!(t.as_secs_f64() <= exact + 2e-12);
    }
}

#[test]
fn rng_range_bounds_hold() {
    let mut g = SimRng::seed_from(0xB5);
    for _ in 0..256 {
        let seed = g.next_u64();
        let n = 1 + g.gen_range(1 << 48);
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..32 {
            assert!(rng.gen_range(n) < n);
        }
    }
}

#[test]
fn rng_streams_reproducible() {
    let mut g = SimRng::seed_from(0xB6);
    for _ in 0..256 {
        let seed = g.next_u64();
        let mut a = SimRng::seed_from(seed);
        let mut b = SimRng::seed_from(seed);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

#[test]
fn duration_scaling_distributes() {
    let mut g = SimRng::seed_from(0xB7);
    for _ in 0..256 {
        let d = g.gen_range(1 << 40);
        let k = g.gen_range(1 << 10).min(100);
        let dur = SimDuration::from_ps(d);
        let mut sum = SimDuration::ZERO;
        for _ in 0..k {
            sum += dur;
        }
        assert_eq!(sum, dur * k);
    }
}

#[test]
fn datasize_division_equals_transfer_time() {
    let mut g = SimRng::seed_from(0xB8);
    for _ in 0..256 {
        let bytes = g.gen_range(1 << 40);
        let mib = 1 + g.gen_range(9_999);
        let bw = Bandwidth::from_mib_per_sec(mib);
        let size = DataSize::from_bytes(bytes);
        assert_eq!(size / bw, bw.transfer_time(size));
    }
}
