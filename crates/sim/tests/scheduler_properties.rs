//! Randomized equivalence tests between the timing-wheel scheduler and
//! the reference `BinaryHeap` queue it replaced.
//!
//! The engine's determinism contract hangs on one property: the wheel
//! pops events in exactly the `(time, seq)` total order the heap would
//! have produced, for *any* interleaving of pushes and pops. These tests
//! drive identical randomized sequences through both implementations and
//! assert identical `(time, seq, target)` pop order — including the
//! adversarial shapes: same-timestamp bursts (tie-break), deltas spread
//! across every wheel level, far-future events that land in the overflow
//! bucket, and drain-to-empty rebasing. All randomness flows through the
//! kernel's own seeded RNG, so any failure reproduces from the fixed
//! seeds.

use acc_sim::event::ScheduledEvent;
use acc_sim::{ComponentId, EventQueue, HeapQueue, SimRng, SimTime, TimingWheel};

/// Pop one event from each queue and assert full agreement, including
/// the payload (guards against the wheel's slab pool handing back a
/// recycled slot with the wrong event's payload).
fn assert_next_identical(wheel: &mut TimingWheel, heap: &mut HeapQueue) -> Option<SimTime> {
    let w = wheel.pop();
    let h = heap.pop();
    match (w, h) {
        (None, None) => None,
        (Some(w), Some(h)) => {
            assert_eq!(
                (w.time, w.seq, w.target),
                (h.time, h.seq, h.target),
                "wheel and heap disagree on pop order"
            );
            let wp = w.payload.downcast::<u64>().expect("u64 payload");
            let hp = h.payload.downcast::<u64>().expect("u64 payload");
            assert_eq!(wp, hp, "payloads diverged for the same (time, seq)");
            Some(w.time)
        }
        (w, h) => panic!(
            "queue lengths diverged: wheel yielded {:?}, heap yielded {:?}",
            w.map(|e| (e.time, e.seq)),
            h.map(|e| (e.time, e.seq))
        ),
    }
}

/// A time delta whose magnitude exercises a random wheel level: from
/// sub-slot (same 8.192 ns bucket) through every hierarchy level up to
/// the 2^61 ps horizon and beyond (overflow bucket).
fn random_delta(g: &mut SimRng) -> u64 {
    let shift = g.gen_range(64);
    g.gen_range(1 << shift)
}

#[test]
fn random_push_pop_sequences_pop_identically() {
    let mut g = SimRng::seed_from(0xB_EE1);
    for _round in 0..20 {
        let mut wheel = TimingWheel::new();
        let mut heap = HeapQueue::new();
        let mut now = 0u64;
        let mut live = 0usize;
        for _ in 0..400 {
            if live == 0 || g.gen_bool(0.6) {
                // Push a burst: times anchored at `now`, like a
                // component scheduling from the current event.
                let burst = 1 + g.gen_range(8) as usize;
                for _ in 0..burst {
                    let t = SimTime::from_ps(now.saturating_add(random_delta(&mut g)));
                    let target = ComponentId::from_raw(g.gen_range(64) as usize);
                    let tag = g.next_u64();
                    wheel.push(t, target, Box::new(tag));
                    heap.push(t, target, Box::new(tag));
                    live += 1;
                }
            } else {
                let t = assert_next_identical(&mut wheel, &mut heap).expect("live > 0");
                now = t.as_ps();
                live -= 1;
            }
            assert_eq!(wheel.len(), heap.len());
        }
        // Drain: the full residual set must agree too.
        while assert_next_identical(&mut wheel, &mut heap).is_some() {}
    }
}

#[test]
fn same_timestamp_bursts_break_ties_by_insertion_order() {
    let mut g = SimRng::seed_from(0x71E5);
    let mut wheel = TimingWheel::new();
    let mut heap = HeapQueue::new();
    let mut now = 0u64;
    for _ in 0..200 {
        // A burst of events at one instant, from interleaved "senders".
        now += 1 + random_delta(&mut g);
        let t = SimTime::from_ps(now);
        for _ in 0..(2 + g.gen_range(30)) {
            let target = ComponentId::from_raw(g.gen_range(8) as usize);
            let tag = g.next_u64();
            wheel.push(t, target, Box::new(tag));
            heap.push(t, target, Box::new(tag));
        }
        // Partially drain so some ties cross a settle() boundary.
        for _ in 0..g.gen_range(20) {
            if assert_next_identical(&mut wheel, &mut heap).is_none() {
                break;
            }
        }
    }
    while assert_next_identical(&mut wheel, &mut heap).is_some() {}
}

#[test]
fn far_future_events_route_through_overflow_identically() {
    let mut g = SimRng::seed_from(0x0F10);
    let mut wheel = TimingWheel::new();
    let mut heap = HeapQueue::new();
    // Mix near events with times beyond the 2^61 ps wheel horizon; every
    // pop of a near event shrinks the horizon gap until the overflow
    // bucket drains back into the wheel levels.
    let far_times = [
        u64::MAX,
        u64::MAX - 1,
        1 << 62,
        (1 << 62) + 1,
        (1 << 61) + (1 << 40),
        3 << 61,
    ];
    for (i, &t) in far_times.iter().enumerate() {
        let target = ComponentId::from_raw(i);
        let tag = g.next_u64();
        wheel.push(SimTime::from_ps(t), target, Box::new(tag));
        heap.push(SimTime::from_ps(t), target, Box::new(tag));
    }
    let mut now = 0u64;
    for _ in 0..300 {
        if g.gen_bool(0.5) {
            let t = SimTime::from_ps(now.saturating_add(random_delta(&mut g)));
            let target = ComponentId::from_raw(g.gen_range(64) as usize);
            let tag = g.next_u64();
            wheel.push(t, target, Box::new(tag));
            heap.push(t, target, Box::new(tag));
        } else if let Some(t) = assert_next_identical(&mut wheel, &mut heap) {
            now = t.as_ps();
        }
    }
    while assert_next_identical(&mut wheel, &mut heap).is_some() {}
}

#[test]
fn drain_to_empty_and_rebase_preserves_order() {
    // Repeatedly empty the wheel completely, then push at a distant
    // time: the wheel rebases its cursor each time, the heap does not —
    // orders must still match.
    let mut g = SimRng::seed_from(0xEBA5E);
    let mut wheel = TimingWheel::new();
    let mut heap = HeapQueue::new();
    let mut now = 0u64;
    for _ in 0..50 {
        now = now.saturating_add(random_delta(&mut g));
        let n = 1 + g.gen_range(12);
        for _ in 0..n {
            let t = SimTime::from_ps(now.saturating_add(random_delta(&mut g)));
            let target = ComponentId::from_raw(g.gen_range(16) as usize);
            let tag = g.next_u64();
            wheel.push(t, target, Box::new(tag));
            heap.push(t, target, Box::new(tag));
        }
        while let Some(t) = assert_next_identical(&mut wheel, &mut heap) {
            now = t.as_ps();
        }
        assert_eq!(wheel.next_time(), None);
    }
}

#[test]
fn facade_with_oracle_armed_survives_random_load() {
    // The production facade cross-checks every push/pop against its
    // embedded heap when the oracle is armed; this drives the pair with
    // the same randomized shapes as above so the internal assertions
    // run, and independently re-checks the emitted order out here.
    let mut g = SimRng::seed_from(0xFACADE);
    let mut q = EventQueue::new();
    q.set_oracle(true);
    assert!(q.oracle_enabled());
    let mut now = 0u64;
    let mut last: Option<(SimTime, u64)> = None;
    let mut check = |ev: ScheduledEvent| {
        if let Some((t, s)) = last {
            assert!(
                (ev.time, ev.seq) > (t, s),
                "facade emitted {:?} after {:?}",
                (ev.time, ev.seq),
                (t, s)
            );
        }
        last = Some((ev.time, ev.seq));
        ev.time.as_ps()
    };
    for _ in 0..600 {
        if q.is_empty() || g.gen_bool(0.55) {
            let t = SimTime::from_ps(now.saturating_add(random_delta(&mut g)));
            q.push(
                t,
                ComponentId::from_raw(g.gen_range(32) as usize),
                Box::new(()),
            );
        } else {
            now = check(q.pop().expect("non-empty"));
        }
    }
    while let Some(ev) = q.pop() {
        check(ev);
    }
}
