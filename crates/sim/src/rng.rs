//! Deterministic random number generation for simulations.
//!
//! A thin wrapper over a splitmix64/xoshiro-style generator implemented
//! in-crate so results are stable across `rand` crate versions — the
//! figures in EXPERIMENTS.md must regenerate bit-identically even after a
//! dependency bump. The `rand`-based helpers in `acc-algos` are used only
//! for workload *generation*, where the seed is recorded alongside the
//! experiment.

/// xoshiro256++ seeded via splitmix64, as recommended by its authors.
///
/// Not cryptographic; plenty for jittering timings and sampling loss.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed the generator. Any seed (including 0) is valid.
    pub fn seed_from(seed: u64) -> Self {
        // splitmix64 expansion of the 64-bit seed into 256 bits of state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SimRng { s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, n)` using Lemire's multiply-shift rejection.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        // Unbiased: reject the short range of the low product.
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p.clamp(0.0, 1.0)
    }

    /// Derive an independent child generator (for giving each component
    /// its own stream without coupling their consumption order).
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(99);
        let mut b = SimRng::seed_from(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn gen_range_stays_in_range() {
        let mut rng = SimRng::seed_from(7);
        for n in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(rng.gen_range(n) < n);
            }
        }
    }

    #[test]
    fn gen_range_one_is_always_zero() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..10 {
            assert_eq!(rng.gen_range(1), 0);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SimRng::seed_from(123);
        let mut buckets = [0u32; 10];
        let trials = 100_000;
        for _ in 0..trials {
            buckets[rng.gen_range(10) as usize] += 1;
        }
        let expected = trials / 10;
        for (i, &b) in buckets.iter().enumerate() {
            let dev = (b as i64 - expected as i64).abs();
            assert!(
                dev < expected as i64 / 10,
                "bucket {i} count {b} deviates too far from {expected}"
            );
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = SimRng::seed_from(3);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn fork_produces_independent_stream() {
        let mut parent = SimRng::seed_from(42);
        let mut child = parent.fork();
        // Child does not replay the parent's stream.
        let p: Vec<u64> = (0..10).map(|_| parent.next_u64()).collect();
        let c: Vec<u64> = (0..10).map(|_| child.next_u64()).collect();
        assert_ne!(p, c);
    }
}
