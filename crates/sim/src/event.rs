//! The future-event list: a hierarchical timing wheel with a pooled
//! event slab, plus the original binary heap kept as a cross-check
//! oracle.
//!
//! # Why a wheel
//!
//! The engine's hot path is `push` + `pop` once per simulated event.
//! A `BinaryHeap` pays `O(log n)` comparisons *and* moves a ~40-byte
//! `ScheduledEvent` through the heap array on every sift — and the std
//! heap's sift machinery alone costs ~10 ns per push/pop pair even at
//! depth 1 on this class of host. The [`TimingWheel`] replaces it with
//! two zones sized for how simulations actually schedule:
//!
//! * **near zone** — a sorted ring ([`VecDeque`]) of imminent events
//!   ordered by the packed 128-bit key `time << 64 | seq`, payloads
//!   held inline. `pop` is `pop_front`; an insert is a plain
//!   `push_back` whenever the new event sorts last, which is the
//!   overwhelmingly common case (self-timers, same-instant fan-out
//!   bursts, and FIFO port drains all arrive in key order).
//! * **wheel zone** — 8 levels × 64 slots of slab indices into an
//!   event pool (a free-list, so slots are recycled instead of
//!   reallocated and only 4-byte indices move between buckets). Level
//!   `l` buckets by bits `[13+6l, 19+6l)` of the picosecond timestamp:
//!   level 0 slots are 2^13 ps ≈ 8.2 ns wide, level 7 spans cover
//!   2^61 ps ≈ 26 simulated days. An overflow bucket holds the (rare)
//!   events beyond the top level's horizon, e.g. "never"-sentinel
//!   timers.
//!
//! # Exact order preservation
//!
//! Every queue in this module pops in strictly increasing `(time, seq)`
//! order, where `seq` is the monotone insertion counter. The wheel's
//! invariant: every wheel event's level-0 slot is strictly after
//! `base`'s, so every wheel event is strictly later than every near
//! event, and the sorted near ring always holds the global minimum at
//! its front. When the near ring drains, [`TimingWheel::settle`]
//! advances `base` to the earliest occupied slot *start* across all
//! levels (never past a pending event) and cascades that slot down one
//! level — re-bucketed by the same rules — until the near ring is
//! populated again. Within a wheel slot, order is irrelevant: events
//! only ever reach the near ring, whose sorted insert re-establishes
//! exact `(time, seq)` order. Ties at the same timestamp therefore pop
//! in insertion order, exactly as the old heap did.
//!
//! # The oracle
//!
//! [`HeapQueue`] is the original `BinaryHeap` implementation behind the
//! same API. [`EventQueue`] runs the wheel in release builds; in debug
//! builds (and whenever [`EventQueue::set_oracle`] arms it) every push
//! is mirrored into a shadow `HeapQueue` and every pop is cross-checked
//! against it, so the entire test suite doubles as a wheel-vs-heap
//! equivalence proof on every run.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::component::ComponentId;
use crate::time::SimTime;

/// An event scheduled for delivery to a component.
///
/// The payload is type-erased; each domain crate defines its own message
/// enums and downcasts in its `Component::handle` implementation. This
/// mirrors how real buses carry opaque transactions that endpoints decode.
pub struct ScheduledEvent {
    /// Delivery instant.
    pub time: SimTime,
    /// Monotone insertion sequence number; breaks time ties so execution
    /// order is independent of queue internals.
    pub seq: u64,
    /// Destination component.
    pub target: ComponentId,
    /// Opaque message payload.
    pub payload: Box<dyn Any>,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first. Same-time events deliver in scheduling order, which
        // is what a causally-ordered hardware bus would do.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The original `BinaryHeap` future-event list, kept as the reference
/// implementation: property tests drive it in lockstep with the wheel,
/// and [`EventQueue`]'s debug oracle shadows every operation through it.
#[derive(Default)]
pub struct HeapQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl HeapQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty queue with room for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> Self {
        HeapQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedule `payload` for `target` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, target: ComponentId, payload: Box<dyn Any>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Peek at the delivery time of the earliest event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Peek at the delivery time and target of the earliest event.
    pub fn peek_head(&self) -> Option<(SimTime, ComponentId)> {
        self.heap.peek().map(|e| (e.time, e.target))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Current backing-store capacity (diagnostics).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }
}

// ---------------------------------------------------------------------
// Timing wheel
// ---------------------------------------------------------------------

/// log2 of the slot count per level.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Wheel levels; level 7 slots are 2^55 ps wide, so the wheel horizon is
/// 2^61 ps (~26 simulated days) past `base`. Farther events overflow.
const LEVELS: usize = 8;
/// log2 of the level-0 slot width in picoseconds (8.192 ns). Fine enough
/// that a slot rarely holds more than one protocol timestep; coarse
/// enough that 8 levels cover every scenario horizon.
const SHIFT0: u32 = 13;
/// Free-list terminator / "no slot" marker.
const NIL: u32 = u32::MAX;

/// Level `l` bucket shift.
#[inline]
const fn level_shift(level: usize) -> u32 {
    SHIFT0 + SLOT_BITS * level as u32
}

/// Packed near-ring key: exact `(time, seq)` order in one comparison.
#[inline]
const fn near_key(time_ps: u64, seq: u64) -> u128 {
    ((time_ps as u128) << 64) | seq as u128
}

/// An imminent event, payload inline: events in the near ring never
/// touch the pool, so the hot immediate-delivery path (push straight to
/// near, pop from near) does no slab bookkeeping at all.
struct NearEvent {
    key: u128,
    target: ComponentId,
    payload: Box<dyn Any>,
}

/// One pooled event slot. `payload: None` marks a free slot whose
/// `next_free` threads the free list.
struct PoolSlot {
    time_ps: u64,
    seq: u64,
    target: ComponentId,
    payload: Option<Box<dyn Any>>,
    next_free: u32,
}

/// Hierarchical timing-wheel future-event list with a slab event pool.
///
/// See the module docs for the design and the ordering argument. The
/// API is identical to [`HeapQueue`]; the two are interchangeable and
/// pop every sequence in the same exact `(time, seq)` order.
pub struct TimingWheel {
    /// Near zone: imminent events sorted ascending by key; front pops
    /// next. Sorted-insert cost is O(1) for in-order arrivals (the
    /// common case) and bounded by the ring length otherwise.
    // acc-lint: allow(R9, reason = "holds only the imminent time window: settle() refills it one wheel slot at a time, so occupancy tracks events within a single slot horizon, not the whole future-event list")
    near: VecDeque<NearEvent>,
    /// Event pool for wheel/overflow events; free slots are threaded
    /// through `free_head`.
    pool: Vec<PoolSlot>,
    free_head: u32,
    /// Wheel zone: slab indices bucketed by timestamp bits.
    levels: Box<[[Vec<u32>; SLOTS]; LEVELS]>,
    /// Per-level slot-occupancy bitmaps (bit `s` = slot `s` non-empty).
    occupied: [u64; LEVELS],
    /// Wheel origin: all wheel events have a level-0 slot strictly after
    /// `base`'s; all near events have one at or before it. Never past a
    /// pending event, monotonically non-decreasing while non-empty.
    base: u64,
    /// Events beyond the top level's horizon, and the min time among them.
    overflow: Vec<u32>,
    overflow_min: u64,
    len: usize,
    next_seq: u64,
}

impl Default for TimingWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl TimingWheel {
    /// Create an empty wheel.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty wheel whose near ring holds `capacity` imminent
    /// events before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        TimingWheel {
            near: VecDeque::with_capacity(capacity),
            pool: Vec::new(),
            free_head: NIL,
            levels: Box::new(std::array::from_fn(|_| std::array::from_fn(|_| Vec::new()))),
            occupied: [0; LEVELS],
            base: 0,
            overflow: Vec::new(),
            overflow_min: u64::MAX,
            len: 0,
            next_seq: 0,
        }
    }

    /// Current near-ring capacity (diagnostics and pre-sizing tests).
    pub fn capacity(&self) -> usize {
        self.near.capacity()
    }

    /// Current event-pool capacity (pool-recycling diagnostics).
    pub fn pool_capacity(&self) -> usize {
        self.pool.capacity()
    }

    /// Insert into the sorted near ring. In-order arrivals (`key`
    /// sorting last) are a plain `push_back`.
    #[inline]
    fn near_insert(&mut self, ev: NearEvent) {
        match self.near.back() {
            Some(back) if back.key > ev.key => {
                let mut lo = 0usize;
                let mut hi = self.near.len();
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    if self.near[mid].key < ev.key {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                self.near.insert(lo, ev);
            }
            _ => self.near.push_back(ev),
        }
    }

    #[inline]
    fn alloc_slot(
        &mut self,
        time_ps: u64,
        seq: u64,
        target: ComponentId,
        payload: Box<dyn Any>,
    ) -> u32 {
        let idx = self.free_head;
        if idx != NIL {
            let slot = &mut self.pool[idx as usize];
            self.free_head = slot.next_free;
            slot.time_ps = time_ps;
            slot.seq = seq;
            slot.target = target;
            slot.payload = Some(payload);
            idx
        } else {
            let idx = self.pool.len();
            debug_assert!(idx < NIL as usize, "event pool exceeds u32 indices");
            self.pool.push(PoolSlot {
                time_ps,
                seq,
                target,
                payload: Some(payload),
                next_free: NIL,
            });
            idx as u32
        }
    }

    /// Schedule `payload` for `target` at absolute instant `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, target: ComponentId, payload: Box<dyn Any>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let t = time.as_ps();
        if self.len == 0 {
            // Empty queue: re-anchor the wheel so the event lands in the
            // near ring directly.
            self.base = t;
        }
        self.len += 1;
        if (t >> SHIFT0) <= (self.base >> SHIFT0) {
            // In (or before) the current level-0 slot: competes for the
            // next pop. Payload rides in the ring; no pool slot needed.
            self.near_insert(NearEvent {
                key: near_key(t, seq),
                target,
                payload,
            });
        } else {
            let idx = self.alloc_slot(t, seq, target, payload);
            self.route_wheelward(idx);
        }
    }

    /// Bucket pooled entry `idx` into a wheel level or the overflow
    /// list. Caller guarantees its level-0 slot is after `base`'s.
    #[inline]
    fn route_wheelward(&mut self, idx: u32) {
        let t = self.pool[idx as usize].time_ps;
        let base = self.base;
        for level in 0..LEVELS {
            let shift = level_shift(level);
            let delta = (t >> shift) - (base >> shift);
            if delta < SLOTS as u64 {
                let slot_idx = ((t >> shift) & (SLOTS as u64 - 1)) as usize;
                self.levels[level][slot_idx].push(idx);
                self.occupied[level] |= 1 << slot_idx;
                return;
            }
        }
        self.overflow_min = self.overflow_min.min(t);
        self.overflow.push(idx);
    }

    /// Move pooled entry `idx` into the near ring, freeing its slot.
    fn pool_to_near(&mut self, idx: u32) {
        let slot = &mut self.pool[idx as usize];
        let payload = slot
            .payload
            .take()
            .expect("timing wheel: routed entry points at a free pool slot");
        let ev = NearEvent {
            key: near_key(slot.time_ps, slot.seq),
            target: slot.target,
            payload,
        };
        slot.next_free = self.free_head;
        self.free_head = idx;
        self.near_insert(ev);
    }

    /// Re-bucket pooled entry `idx` after `base` advanced: near ring if
    /// it is now imminent, else back into the wheel/overflow.
    fn route(&mut self, idx: u32) {
        let t = self.pool[idx as usize].time_ps;
        if (t >> SHIFT0) <= (self.base >> SHIFT0) {
            self.pool_to_near(idx);
        } else {
            self.route_wheelward(idx);
        }
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        let ev = self.near.pop_front()?;
        self.len -= 1;
        let out = ScheduledEvent {
            time: SimTime::from_ps((ev.key >> 64) as u64),
            seq: ev.key as u64,
            target: ev.target,
            payload: ev.payload,
        };
        if self.near.is_empty() && self.len > 0 {
            self.settle();
        }
        Some(out)
    }

    /// Refill the near ring from the wheel: advance `base` to the
    /// earliest occupied slot start (never past a pending event) and
    /// cascade that slot down one level, repeating until the near ring
    /// is non-empty. Called only when events remain and near is empty.
    fn settle(&mut self) {
        while self.near.is_empty() {
            // Earliest occupied slot start per level; the global minimum
            // bounds every pending event's time from below.
            let mut best: Option<(u64, usize)> = None;
            for level in 0..LEVELS {
                if self.occupied[level] == 0 {
                    continue;
                }
                let shift = level_shift(level);
                let cur = self.base >> shift;
                // Occupied slots all lie in the 64-slot window starting
                // at `cur`, so a rotated-bitmap scan (inclusive of `cur`:
                // cascades can leave events in the current slot) finds
                // the earliest unambiguously.
                let rot = self.occupied[level].rotate_right((cur & 63) as u32);
                let dist = u64::from(rot.trailing_zeros());
                let start = (cur + dist) << shift;
                if best.is_none_or(|(s, _)| start < s) {
                    best = Some((start, level));
                }
            }
            // Overflow participates in the minimum: its events must be
            // re-bucketed before `base` may advance past them.
            if !self.overflow.is_empty() && best.is_none_or(|(s, _)| self.overflow_min <= s) {
                self.base = self.overflow_min;
                self.overflow_min = u64::MAX;
                let mut items = std::mem::take(&mut self.overflow);
                for idx in items.drain(..) {
                    self.route(idx);
                }
                // route() may have re-overflowed events still beyond the
                // new horizon; fold them into the recycled Vec.
                items.append(&mut self.overflow);
                self.overflow = items;
                continue;
            }
            let Some((start, _)) = best else {
                return; // genuinely empty (len bookkeeping keeps this unreachable)
            };
            self.base = start;
            // Cascade *every* level's slot that starts exactly at the new
            // base, highest level first: a coarse slot starting here can
            // hold events earlier than a fine slot starting here, and
            // they all must reach the near ring together before any pop.
            for level in (0..LEVELS).rev() {
                let shift = level_shift(level);
                let cur = self.base >> shift;
                let slot_idx = (cur & 63) as usize;
                if self.occupied[level] & (1 << slot_idx) == 0 || (cur << shift) != start {
                    continue;
                }
                self.occupied[level] &= !(1 << slot_idx);
                let mut events = std::mem::take(&mut self.levels[level][slot_idx]);
                if level == 0 {
                    for idx in events.drain(..) {
                        self.pool_to_near(idx);
                    }
                } else {
                    for idx in events.drain(..) {
                        self.route(idx);
                    }
                }
                self.levels[level][slot_idx] = events; // recycle capacity
            }
        }
    }

    /// Peek at the delivery time of the earliest event.
    #[inline]
    pub fn next_time(&self) -> Option<SimTime> {
        self.near
            .front()
            .map(|ev| SimTime::from_ps((ev.key >> 64) as u64))
    }

    /// Peek at the delivery time and target of the earliest event
    /// (liveness diagnostics: "who was the queue head waiting on").
    pub fn peek_head(&self) -> Option<(SimTime, ComponentId)> {
        self.near
            .front()
            .map(|ev| (SimTime::from_ps((ev.key >> 64) as u64), ev.target))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

// ---------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------

/// Deterministic future-event list: the [`TimingWheel`], optionally
/// shadowed by a [`HeapQueue`] oracle that cross-checks every pop.
///
/// Debug builds arm the oracle by default, so `cargo test` exercises
/// every scenario through *both* schedulers and asserts they agree on
/// the full `(time, seq, target)` pop sequence. Release builds (golden
/// regeneration, benches, campaigns) run the wheel alone.
pub struct EventQueue {
    wheel: TimingWheel,
    oracle: Option<Box<HeapQueue>>,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty queue with room for `capacity` imminent events
    /// before the near ring reallocates. Scenario engines pre-size with
    /// this so the first burst of scheduling does not pay repeated
    /// grow-and-copy cycles.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            wheel: TimingWheel::with_capacity(capacity),
            oracle: if cfg!(debug_assertions) {
                Some(Box::new(HeapQueue::with_capacity(capacity)))
            } else {
                None
            },
        }
    }

    /// Arm or disarm the heap oracle. With the oracle armed, every push
    /// is mirrored and every pop asserted identical across the two
    /// schedulers. Must be toggled while the queue is empty.
    pub fn set_oracle(&mut self, on: bool) {
        assert!(
            self.wheel.is_empty(),
            "EventQueue oracle toggled with events pending"
        );
        self.oracle = if on {
            Some(Box::new(HeapQueue::new()))
        } else {
            None
        };
    }

    /// Whether the cross-check oracle is armed.
    pub fn oracle_enabled(&self) -> bool {
        self.oracle.is_some()
    }

    /// Current near-ring capacity (diagnostics and pre-sizing tests).
    pub fn capacity(&self) -> usize {
        self.wheel.capacity()
    }

    /// Schedule `payload` for `target` at absolute instant `time`.
    #[inline]
    pub fn push(&mut self, time: SimTime, target: ComponentId, payload: Box<dyn Any>) {
        if self.oracle.is_none() {
            return self.wheel.push(time, target, payload);
        }
        self.push_mirrored(time, target, payload);
    }

    /// Push with the oracle armed: mirror into the shadow heap.
    #[cold]
    fn push_mirrored(&mut self, time: SimTime, target: ComponentId, payload: Box<dyn Any>) {
        // The oracle tracks (time, seq, target) only; payloads are not
        // duplicable, so it carries an empty one.
        self.oracle
            .as_mut()
            .expect("EventQueue push_mirrored called with no oracle")
            .push(time, target, Box::new(()));
        self.wheel.push(time, target, payload);
    }

    /// Remove and return the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        if self.oracle.is_none() {
            return self.wheel.pop();
        }
        self.pop_cross_checked()
    }

    /// Pop with the oracle armed: pop both schedulers and assert they
    /// agree on `(time, seq, target)`.
    #[cold]
    fn pop_cross_checked(&mut self) -> Option<ScheduledEvent> {
        let got = self.wheel.pop();
        let want = self
            .oracle
            .as_mut()
            .expect("EventQueue pop_cross_checked called with no oracle")
            .pop();
        let got_key = got.as_ref().map(|e| (e.time, e.seq, e.target));
        let want_key = want.as_ref().map(|e| (e.time, e.seq, e.target));
        assert!(
            got_key == want_key,
            "timing wheel diverged from heap oracle: wheel popped {got_key:?}, \
             oracle expected {want_key:?}"
        );
        got
    }

    /// Peek at the delivery time of the earliest event.
    #[inline]
    pub fn next_time(&self) -> Option<SimTime> {
        self.wheel.next_time()
    }

    /// Peek at the delivery time and target of the earliest event
    /// (liveness diagnostics: "who was the queue head waiting on").
    pub fn peek_head(&self) -> Option<(SimTime, ComponentId)> {
        self.wheel.peek_head()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.wheel.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.wheel.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.wheel.scheduled_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn id(n: usize) -> ComponentId {
        ComponentId::from_raw(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        q.push(t(5), id(0), Box::new(5u32));
        q.push(t(1), id(0), Box::new(1u32));
        q.push(t(3), id(0), Box::new(3u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::ZERO, id(0), Box::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_ps(10), id(1), Box::new(()));
        q.push(SimTime::from_ps(2), id(1), Box::new(()));
        assert_eq!(q.next_time(), Some(SimTime::from_ps(2)));
        q.pop();
        assert_eq!(q.next_time(), Some(SimTime::from_ps(10)));
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, id(0), Box::new(()));
        q.push(SimTime::ZERO, id(0), Box::new(()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn out_of_order_near_inserts_stay_sorted() {
        // Same level-0 slot, descending arrival order: exercises the
        // sorted-insert slow path of the near ring.
        let mut q = EventQueue::new();
        for ps in (0..64u64).rev() {
            q.push(SimTime::from_ps(ps), id(0), Box::new(ps));
        }
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u64>().unwrap())
            .collect();
        assert_eq!(popped, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn wide_time_spread_pops_sorted() {
        // Cover every wheel level plus the overflow bucket: spreads from
        // picoseconds to beyond the 2^61 ps horizon.
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..60u32)
            .map(|i| 1u64.checked_shl(i).unwrap_or(u64::MAX))
            .chain([0, 5, u64::MAX, 1 << 62, (1 << 62) + 1])
            .collect();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_ps(t), id(i % 3), Box::new(t));
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        let popped: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u64>().unwrap())
            .collect();
        assert_eq!(popped, sorted);
    }

    #[test]
    fn interleaved_push_pop_preserves_order() {
        // Schedule-as-you-go, like a component chain: each pop triggers
        // a push slightly in the future, crossing slot boundaries.
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, id(0), Box::new(0u64));
        let mut last = None;
        let mut popped = 0u64;
        while let Some(ev) = q.pop() {
            let t = ev.time.as_ps();
            assert!(last.is_none_or(|l| l <= t), "time went backwards");
            last = Some(t);
            popped += 1;
            if popped < 1000 {
                // Variable stride: crosses level-0 and level-1 slots.
                q.push(
                    SimTime::from_ps(t + 1 + (popped % 7) * 4096),
                    id(0),
                    Box::new(popped),
                );
            }
        }
        assert_eq!(popped, 1000);
    }

    #[test]
    fn pool_recycles_slots() {
        let mut q = TimingWheel::new();
        for round in 0..10u64 {
            // Spread each round across many level-0 slots so events pass
            // through the wheel (and thus the pool), then drain fully.
            for i in 0..100u64 {
                q.push(
                    SimTime::from_ps(round * 10_000_000 + i * 100_000),
                    id(0),
                    Box::new(i),
                );
            }
            for _ in 0..100 {
                q.pop();
            }
        }
        // Steady-state churn must not grow the pool past one round's
        // worth of live events.
        assert!(
            q.pool_capacity() <= 128,
            "pool grew to {} slots for 100 live events",
            q.pool_capacity()
        );
    }

    #[test]
    fn oracle_toggles_and_shadows() {
        let mut q = EventQueue::new();
        q.set_oracle(true);
        assert!(q.oracle_enabled());
        for i in 0..50u64 {
            q.push(SimTime::from_ps(i * 3 % 17), id(0), Box::new(i));
        }
        while q.pop().is_some() {}
        q.set_oracle(false);
        assert!(!q.oracle_enabled());
    }

    #[test]
    #[should_panic(expected = "oracle toggled with events pending")]
    fn oracle_toggle_rejected_when_nonempty() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, id(0), Box::new(()));
        q.set_oracle(true);
    }
}
