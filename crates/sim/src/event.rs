//! The event queue: a deterministic priority queue of scheduled events.

use std::any::Any;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::component::ComponentId;
use crate::time::SimTime;

/// An event scheduled for delivery to a component.
///
/// The payload is type-erased; each domain crate defines its own message
/// enums and downcasts in its `Component::handle` implementation. This
/// mirrors how real buses carry opaque transactions that endpoints decode.
pub struct ScheduledEvent {
    /// Delivery instant.
    pub time: SimTime,
    /// Monotone insertion sequence number; breaks time ties so execution
    /// order is independent of heap internals.
    pub seq: u64,
    /// Destination component.
    pub target: ComponentId,
    /// Opaque message payload.
    pub payload: Box<dyn Any>,
}

impl PartialEq for ScheduledEvent {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for ScheduledEvent {}

impl PartialOrd for ScheduledEvent {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledEvent {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq)
        // pops first. Same-time events deliver in scheduling order, which
        // is what a causally-ordered hardware bus would do.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event list.
#[derive(Default)]
pub struct EventQueue {
    heap: BinaryHeap<ScheduledEvent>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty queue with room for `capacity` pending events
    /// before the heap reallocates. Scenario engines pre-size with this
    /// so the first burst of scheduling does not pay repeated
    /// grow-and-copy cycles on the heap's backing array.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Current heap capacity (diagnostics and pre-sizing tests).
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }

    /// Schedule `payload` for `target` at absolute instant `time`.
    pub fn push(&mut self, time: SimTime, target: ComponentId, payload: Box<dyn Any>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(ScheduledEvent {
            time,
            seq,
            target,
            payload,
        });
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<ScheduledEvent> {
        self.heap.pop()
    }

    /// Peek at the delivery time of the earliest event.
    pub fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Peek at the delivery time and target of the earliest event
    /// (liveness diagnostics: "who was the queue head waiting on").
    pub fn peek_head(&self) -> Option<(SimTime, ComponentId)> {
        self.heap.peek().map(|e| (e.time, e.target))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (diagnostics).
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn id(n: usize) -> ComponentId {
        ComponentId::from_raw(n)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        let t = |ms| SimTime::ZERO + SimDuration::from_millis(ms);
        q.push(t(5), id(0), Box::new(5u32));
        q.push(t(1), id(0), Box::new(1u32));
        q.push(t(3), id(0), Box::new(3u32));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..100u32 {
            q.push(SimTime::ZERO, id(0), Box::new(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| *e.payload.downcast::<u32>().unwrap())
            .collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn next_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.next_time(), None);
        q.push(SimTime::from_ps(10), id(1), Box::new(()));
        q.push(SimTime::from_ps(2), id(1), Box::new(()));
        assert_eq!(q.next_time(), Some(SimTime::from_ps(2)));
        q.pop();
        assert_eq!(q.next_time(), Some(SimTime::from_ps(10)));
    }

    #[test]
    fn counts_scheduled_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(SimTime::ZERO, id(0), Box::new(()));
        q.push(SimTime::ZERO, id(0), Box::new(()));
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
