//! # acc-sim — deterministic discrete-event simulation kernel
//!
//! This crate is the foundation of the ACC (Adaptable Computing Cluster)
//! reproduction. Every hardware artifact the paper measures — Ethernet
//! links, switches, PCI buses, DMA engines, interrupt controllers, FPGA
//! datapaths — is modelled as a [`Component`] exchanging timestamped events
//! through a single [`Simulation`] engine.
//!
//! Design goals:
//!
//! * **Determinism.** Simulated time is an integer number of picoseconds
//!   ([`SimTime`]); the event queue breaks ties by insertion sequence
//!   number, and all randomness flows through a seeded RNG. Running the
//!   same scenario twice produces bit-identical results, so the figures in
//!   EXPERIMENTS.md regenerate exactly.
//! * **Isolation.** Components never hold references to each other; all
//!   interaction is via events addressed by [`ComponentId`]. This mirrors
//!   how the real hardware blocks interact (bus transactions, wires,
//!   interrupts) and keeps the borrow checker trivially satisfied.
//! * **Observability.** A [`stats::StatsRegistry`] collects counters,
//!   gauges and time-series probes; a bounded [`trace::TraceBuffer`]
//!   records recent events for debugging failed scenarios.
//!
//! ## Quick example
//!
//! ```
//! use acc_sim::{Simulation, Component, Ctx, SimDuration};
//!
//! struct Ping { peer: acc_sim::ComponentId, left: u32 }
//!
//! impl Component for Ping {
//!     fn handle(&mut self, _ev: Box<dyn std::any::Any>, ctx: &mut Ctx) {
//!         if self.left > 0 {
//!             self.left -= 1;
//!             ctx.send_in(SimDuration::from_nanos(500), self.peer, ());
//!         }
//!     }
//!     fn name(&self) -> &str { "ping" }
//! }
//!
//! let mut sim = Simulation::new(42);
//! let a = sim.reserve_id();
//! let b = sim.reserve_id();
//! sim.register(a, Ping { peer: b, left: 3 });
//! sim.register(b, Ping { peer: a, left: 3 });
//! sim.schedule_at(acc_sim::SimTime::ZERO, a, ());
//! sim.run();
//! assert_eq!(sim.now().as_nanos(), 3000);
//! ```

#![forbid(unsafe_code)]

pub mod component;
pub mod engine;
pub mod event;
pub mod liveness;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use component::{Component, ComponentId, Ctx};
pub use engine::Simulation;
pub use event::{EventQueue, HeapQueue, TimingWheel};
pub use liveness::{ComponentWait, HangKind, LivenessReport, Watchdog};
pub use rng::SimRng;
pub use stats::StatsRegistry;
pub use time::{Bandwidth, DataSize, SimDuration, SimTime};
