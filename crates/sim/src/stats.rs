//! Statistics collection: counters, gauges, histograms and time series.
//!
//! Keys are `(scope, name)` string pairs — scope is usually a component
//! name such as `"nic3"` or `"switch"`. Cheap enough for simulation-rate
//! updates; values are pulled after a run for report generation.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// A monotonically increasing event counter.
///
/// Arithmetic saturates at `u64::MAX`: a counter that a very long soak
/// drives past 2⁶⁴ pegs at the ceiling instead of panicking in debug
/// builds (or silently wrapping in release, which would corrupt the
/// conservation checks built on these values).
#[derive(Default, Debug, Clone)]
pub struct Counter {
    value: u64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&mut self) {
        self.value = self.value.saturating_add(1);
    }

    /// Increment by `n`.
    pub fn add(&mut self, n: u64) {
        self.value = self.value.saturating_add(n);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value
    }
}

/// A last-writer-wins instantaneous value.
#[derive(Default, Debug, Clone)]
pub struct Gauge {
    value: f64,
    /// `None` until the first `set` — a zero default would misreport
    /// the maximum of a gauge that only ever held negative values.
    max_seen: Option<f64>,
}

impl Gauge {
    /// Set the current value, tracking the maximum ever seen.
    pub fn set(&mut self, v: f64) {
        self.value = v;
        if self.max_seen.is_none_or(|m| v > m) {
            self.max_seen = Some(v);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.value
    }

    /// Maximum value ever set (0.0 if never set, matching `get`).
    pub fn max(&self) -> f64 {
        self.max_seen.unwrap_or(0.0)
    }
}

/// An append-only `(time, value)` series, e.g. queue depth over time.
#[derive(Default, Debug, Clone)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Append a sample.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// All samples in insertion (= time) order.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of sample values (0.0 for an empty series).
    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|&(_, v)| v).sum::<f64>() / self.points.len() as f64
    }

    /// Maximum sample value (0.0 for an empty series).
    pub fn max(&self) -> f64 {
        self.points.iter().map(|&(_, v)| v).fold(0.0_f64, f64::max)
    }
}

/// A fixed-boundary histogram over `f64` samples.
#[derive(Debug, Clone)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
}

impl Histogram {
    /// Create with ascending bucket upper bounds; an implicit overflow
    /// bucket catches values above the last bound.
    ///
    /// # Panics
    /// Panics if `bounds` is empty or not strictly ascending.
    pub fn new(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += v;
    }

    /// Total samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean of all samples (0.0 if none).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Registry of all metrics, keyed by `(scope, name)`.
///
/// Counters live in a two-level map (`scope → name → Counter`) so the
/// per-event hot path — components bump counters on every frame — is a
/// pair of `&str` lookups with **zero allocations** once the counter
/// exists. The flat `(String, String)` key the registry used before
/// cost two `String` allocations per increment just to form the lookup
/// key.
#[derive(Default)]
pub struct StatsRegistry {
    counters: BTreeMap<String, BTreeMap<String, Counter>>,
    gauges: BTreeMap<(String, String), Gauge>,
    series: BTreeMap<(String, String), Series>,
}

impl StatsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fetch or create a counter. Allocation-free after the counter's
    /// first use.
    pub fn counter(&mut self, scope: &str, name: &str) -> &mut Counter {
        if !self.counters.contains_key(scope) {
            self.counters.insert(scope.to_owned(), BTreeMap::new());
        }
        let scoped = self.counters.get_mut(scope).expect("scope just ensured");
        if !scoped.contains_key(name) {
            scoped.insert(name.to_owned(), Counter::default());
        }
        scoped.get_mut(name).expect("counter just ensured")
    }

    /// Fetch or create a gauge.
    pub fn gauge(&mut self, scope: &str, name: &str) -> &mut Gauge {
        self.gauges
            .entry((scope.to_owned(), name.to_owned()))
            .or_default()
    }

    /// Fetch or create a time series.
    pub fn series(&mut self, scope: &str, name: &str) -> &mut Series {
        self.series
            .entry((scope.to_owned(), name.to_owned()))
            .or_default()
    }

    /// Read a counter value if it exists.
    pub fn counter_value(&self, scope: &str, name: &str) -> Option<u64> {
        self.counters
            .get(scope)
            .and_then(|scoped| scoped.get(name))
            .map(Counter::get)
    }

    /// Read a gauge value if it exists.
    pub fn gauge_value(&self, scope: &str, name: &str) -> Option<f64> {
        self.gauges
            .get(&(scope.to_owned(), name.to_owned()))
            .map(Gauge::get)
    }

    /// Read a gauge's maximum-ever value if it exists.
    pub fn gauge_max(&self, scope: &str, name: &str) -> Option<f64> {
        self.gauges
            .get(&(scope.to_owned(), name.to_owned()))
            .map(Gauge::max)
    }

    /// Read a series if it exists.
    pub fn series_ref(&self, scope: &str, name: &str) -> Option<&Series> {
        self.series.get(&(scope.to_owned(), name.to_owned()))
    }

    /// Iterate all counters in deterministic (sorted key) order.
    pub fn counters(&self) -> impl Iterator<Item = ((&str, &str), u64)> {
        self.counters.iter().flat_map(|(scope, scoped)| {
            scoped
                .iter()
                .map(move |(name, c)| ((scope.as_str(), name.as_str()), c.get()))
        })
    }

    /// Render every metric as a sorted text block (debugging, goldens).
    pub fn dump(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for ((scope, name), v) in self.counters() {
            let _ = writeln!(out, "counter {scope}.{name} = {v}");
        }
        for ((scope, name), g) in &self.gauges {
            let _ = writeln!(
                out,
                "gauge   {scope}.{name} = {} (max {})",
                g.get(),
                g.max()
            );
        }
        for ((scope, name), s) in &self.series {
            let _ = writeln!(
                out,
                "series  {scope}.{name}: n={} mean={:.3} max={:.3}",
                s.len(),
                s.mean(),
                s.max()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut reg = StatsRegistry::new();
        reg.counter("nic0", "frames_tx").inc();
        reg.counter("nic0", "frames_tx").add(4);
        assert_eq!(reg.counter_value("nic0", "frames_tx"), Some(5));
        assert_eq!(reg.counter_value("nic0", "missing"), None);
    }

    #[test]
    fn counter_saturates_instead_of_overflowing() {
        // Regression: `inc`/`add` used unchecked `+=`, so a long soak
        // that pushed a counter past u64::MAX panicked in debug builds.
        let mut c = Counter::default();
        c.add(u64::MAX - 1);
        c.inc();
        assert_eq!(c.get(), u64::MAX);
        c.inc();
        assert_eq!(c.get(), u64::MAX, "inc saturates at the ceiling");
        c.add(1 << 40);
        assert_eq!(c.get(), u64::MAX, "add saturates at the ceiling");
    }

    #[test]
    fn counters_iterate_sorted_by_scope_then_name() {
        let mut reg = StatsRegistry::new();
        reg.counter("b", "y").inc();
        reg.counter("a", "z").inc();
        reg.counter("a", "x").add(2);
        let keys: Vec<(&str, &str)> = reg.counters().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![("a", "x"), ("a", "z"), ("b", "y")]);
    }

    #[test]
    fn gauge_tracks_max() {
        let mut reg = StatsRegistry::new();
        let g = reg.gauge("switch", "queue_depth");
        g.set(3.0);
        g.set(10.0);
        g.set(2.0);
        assert_eq!(g.get(), 2.0);
        assert_eq!(g.max(), 10.0);
    }

    #[test]
    fn gauge_max_of_negative_values_is_negative() {
        // Regression: `max_seen` used to default to 0.0, so a gauge
        // that only ever held negative values reported max 0.0.
        let mut reg = StatsRegistry::new();
        let g = reg.gauge("host", "clock_skew");
        g.set(-5.0);
        g.set(-2.0);
        g.set(-9.0);
        assert_eq!(g.get(), -9.0);
        assert_eq!(g.max(), -2.0);
    }

    #[test]
    fn series_statistics() {
        let mut s = Series::default();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        s.push(SimTime::from_ps(1), 1.0);
        s.push(SimTime::from_ps(2), 3.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 5.0, 50.0, 500.0, 0.1] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert_eq!(h.total(), 5);
        assert!((h.mean() - 111.12).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_bad_bounds() {
        Histogram::new(vec![1.0, 1.0]);
    }

    #[test]
    fn dump_is_deterministic_and_sorted() {
        let mut reg = StatsRegistry::new();
        reg.counter("b", "x").inc();
        reg.counter("a", "y").add(2);
        let d = reg.dump();
        let a_pos = d.find("a.y").unwrap();
        let b_pos = d.find("b.x").unwrap();
        assert!(a_pos < b_pos);
    }
}
