//! Simulated time, durations, data sizes and bandwidths.
//!
//! All timing in the simulator is integer picoseconds. At 1 Gb/s one byte
//! serialises in 8 000 ps, so picosecond resolution keeps even Gigabit
//! Ethernet byte times exactly representable; a `u64` of picoseconds spans
//! ~213 days of simulated time, far beyond any scenario in the paper.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per second.
const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute instant in simulated time (picoseconds since simulation
/// start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// Largest representable instant; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Raw picoseconds since simulation start.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds since simulation start (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Milliseconds since simulation start as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    /// Panics if `earlier` is later than `self`; simulated time never runs
    /// backwards, so this indicates a scenario bug.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("SimTime::since: earlier instant is in the future"),
        )
    }

    /// Saturating difference, for code that tolerates reordered probes.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// Largest representable duration; used as an "infinite" timeout.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns * 1_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// picosecond. Negative and non-finite inputs are clamped to zero, so
    /// derived cost models cannot schedule into the past.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * PS_PER_SEC as f64).round() as u64)
    }

    /// Raw picoseconds.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Milliseconds as a float (for reporting only).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1.0e9
    }

    /// True if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Checked multiplication by a count (e.g. per-packet cost × packets).
    pub fn checked_mul(self, n: u64) -> Option<SimDuration> {
        self.0.checked_mul(n).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("SimTime overflow: scenario exceeds ~213 days"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", fmt_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ps(self.0))
    }
}

/// Human-readable picosecond formatting with an auto-selected unit.
fn fmt_ps(ps: u64) -> String {
    if ps >= PS_PER_SEC {
        format!("{:.6}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= 1_000_000_000 {
        format!("{:.3}ms", ps as f64 / 1.0e9)
    } else if ps >= 1_000_000 {
        format!("{:.3}us", ps as f64 / 1.0e6)
    } else if ps >= 1_000 {
        format!("{:.3}ns", ps as f64 / 1.0e3)
    } else {
        format!("{ps}ps")
    }
}

/// An amount of data in bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DataSize(u64);

impl DataSize {
    /// No data.
    pub const ZERO: DataSize = DataSize(0);

    /// Construct from bytes.
    pub const fn from_bytes(b: u64) -> Self {
        DataSize(b)
    }

    /// Construct from binary kilobytes (KiB).
    pub const fn from_kib(k: u64) -> Self {
        DataSize(k * 1024)
    }

    /// Construct from binary megabytes (MiB).
    pub const fn from_mib(m: u64) -> Self {
        DataSize(m * 1024 * 1024)
    }

    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        self.0
    }

    /// Size in KiB as a float (reporting).
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub fn checked_add(self, rhs: DataSize) -> Option<DataSize> {
        self.0.checked_add(rhs.0).map(DataSize)
    }
}

impl Add for DataSize {
    type Output = DataSize;
    fn add(self, rhs: DataSize) -> DataSize {
        DataSize(self.0.checked_add(rhs.0).expect("DataSize overflow"))
    }
}

impl AddAssign for DataSize {
    fn add_assign(&mut self, rhs: DataSize) {
        *self = *self + rhs;
    }
}

impl Sub for DataSize {
    type Output = DataSize;
    fn sub(self, rhs: DataSize) -> DataSize {
        DataSize(self.0.checked_sub(rhs.0).expect("DataSize underflow"))
    }
}

impl Mul<u64> for DataSize {
    type Output = DataSize;
    fn mul(self, rhs: u64) -> DataSize {
        DataSize(self.0.checked_mul(rhs).expect("DataSize overflow"))
    }
}

impl fmt::Debug for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KiB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl fmt::Display for DataSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A transfer rate.
///
/// Internally bytes/second; constructors exist for the units the paper
/// uses: megabits/s for network links (decimal, as Ethernet rates are) and
/// MB/s for bus and card rates. Note the paper's Section 4 rates (80 and
/// 90 "MB/s") are binary mega (×1024×1024) — see [`Bandwidth::from_mib_per_sec`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bandwidth {
    bytes_per_sec: u64,
}

impl Bandwidth {
    /// From raw bytes per second.
    pub const fn from_bytes_per_sec(b: u64) -> Self {
        Bandwidth { bytes_per_sec: b }
    }

    /// From decimal megabits per second (e.g. Ethernet's 100 Mb/s, 1000 Mb/s).
    pub const fn from_mbit_per_sec(mbit: u64) -> Self {
        Bandwidth {
            bytes_per_sec: mbit * 1_000_000 / 8,
        }
    }

    /// From decimal megabytes per second (e.g. PCI's 132 MB/s = 33 MHz × 4 B).
    pub const fn from_mb_per_sec(mb: u64) -> Self {
        Bandwidth {
            bytes_per_sec: mb * 1_000_000,
        }
    }

    /// From binary megabytes (MiB) per second. The paper's Eq. 6–9 rates
    /// divide by `80 × 1024 × 1024` and `90 × 1024 × 1024`, i.e. MiB/s.
    pub const fn from_mib_per_sec(mib: u64) -> Self {
        Bandwidth {
            bytes_per_sec: mib * 1024 * 1024,
        }
    }

    /// Rate in bytes per second.
    pub const fn bytes_per_sec(self) -> u64 {
        self.bytes_per_sec
    }

    /// Rate in MiB/s as a float (reporting).
    pub fn as_mib_per_sec_f64(self) -> f64 {
        self.bytes_per_sec as f64 / (1024.0 * 1024.0)
    }

    /// Time to move `size` at this rate, rounded up to the next picosecond.
    ///
    /// # Panics
    /// Panics on a zero rate; a zero-bandwidth resource is a configuration
    /// error, not a modelling input.
    pub fn transfer_time(self, size: DataSize) -> SimDuration {
        assert!(self.bytes_per_sec > 0, "zero bandwidth");
        // ceil(size * PS_PER_SEC / rate) using u128 to avoid overflow.
        let num = size.bytes() as u128 * PS_PER_SEC as u128;
        let den = self.bytes_per_sec as u128;
        SimDuration::from_ps(num.div_ceil(den) as u64)
    }

    /// The slower of two rates — the streaming rate of two pipeline stages
    /// in series.
    pub fn min(self, other: Bandwidth) -> Bandwidth {
        if self.bytes_per_sec <= other.bytes_per_sec {
            self
        } else {
            other
        }
    }

    /// Scale this rate by a factor in `[0, 1]` (e.g. DMA efficiency).
    pub fn scaled(self, factor: f64) -> Bandwidth {
        assert!(
            (0.0..=1.0).contains(&factor),
            "bandwidth scale factor out of range: {factor}"
        );
        Bandwidth {
            bytes_per_sec: (self.bytes_per_sec as f64 * factor) as u64,
        }
    }
}

impl Div<Bandwidth> for DataSize {
    type Output = SimDuration;
    fn div(self, rhs: Bandwidth) -> SimDuration {
        rhs.transfer_time(self)
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}MiB/s", self.as_mib_per_sec_f64())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_micros(5);
        assert_eq!(t.as_nanos(), 5_000);
        let d = t.since(SimTime::ZERO);
        assert_eq!(d, SimDuration::from_micros(5));
        assert_eq!((t + d).since(t), d);
    }

    #[test]
    #[should_panic(expected = "earlier instant is in the future")]
    fn since_panics_on_backwards_time() {
        SimTime::ZERO.since(SimTime::from_ps(1));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn from_secs_f64_clamps_pathological_inputs() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
    }

    #[test]
    fn gigabit_byte_time_is_exact() {
        // 1 Gb/s = 125,000,000 B/s; one byte = 8 ns = 8000 ps exactly.
        let gig = Bandwidth::from_mbit_per_sec(1000);
        assert_eq!(
            gig.transfer_time(DataSize::from_bytes(1)),
            SimDuration::from_nanos(8)
        );
        // A 1500-byte frame serialises in 12 µs.
        assert_eq!(
            gig.transfer_time(DataSize::from_bytes(1500)),
            SimDuration::from_micros(12)
        );
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 3 bytes at 7 B/s: 3/7 s = 428571428571.43 ps → rounds up.
        let bw = Bandwidth::from_bytes_per_sec(7);
        let t = bw.transfer_time(DataSize::from_bytes(3));
        assert_eq!(t.as_ps(), 428_571_428_572);
    }

    #[test]
    fn paper_rates_use_binary_megabytes() {
        // Eq. 6: S/P over 80 × 1024 × 1024.
        let host_to_card = Bandwidth::from_mib_per_sec(80);
        assert_eq!(host_to_card.bytes_per_sec(), 80 * 1024 * 1024);
        let t = host_to_card.transfer_time(DataSize::from_mib(80));
        assert_eq!(t, SimDuration::from_secs(1));
    }

    #[test]
    fn datasize_div_bandwidth_sugar() {
        let t = DataSize::from_mib(90) / Bandwidth::from_mib_per_sec(90);
        assert_eq!(t, SimDuration::from_secs(1));
    }

    #[test]
    fn bandwidth_min_and_scale() {
        let a = Bandwidth::from_mib_per_sec(80);
        let b = Bandwidth::from_mib_per_sec(90);
        assert_eq!(a.min(b), a);
        assert_eq!(b.min(a), a);
        let half = b.scaled(0.5);
        assert_eq!(half.bytes_per_sec(), 45 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bandwidth_scale_rejects_out_of_range() {
        Bandwidth::from_mib_per_sec(1).scaled(1.5);
    }

    #[test]
    fn display_picks_sane_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(8)), "8.000ns");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", DataSize::from_kib(64)), "64.00KiB");
    }

    #[test]
    fn datasize_arithmetic() {
        let a = DataSize::from_kib(1) + DataSize::from_bytes(24);
        assert_eq!(a.bytes(), 1048);
        assert_eq!((a - DataSize::from_bytes(24)).bytes(), 1024);
        assert_eq!((DataSize::from_bytes(3) * 4).bytes(), 12);
        assert_eq!(
            DataSize::from_bytes(5).saturating_sub(DataSize::from_kib(1)),
            DataSize::ZERO
        );
    }
}
