//! Components and the scheduling context handed to their event handlers.

use std::any::Any;
use std::fmt;

use crate::event::EventQueue;
use crate::rng::SimRng;
use crate::stats::StatsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::TraceBuffer;

/// Opaque handle identifying a registered [`Component`].
///
/// Ids are dense indices assigned by [`crate::Simulation::reserve_id`]; they
/// are cheap to copy and hash and stable for the life of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(usize);

impl ComponentId {
    /// Construct from a raw index. Intended for the engine and for tests;
    /// ids not handed out by `reserve_id` will panic at dispatch.
    pub const fn from_raw(idx: usize) -> Self {
        ComponentId(idx)
    }

    /// The raw dense index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A simulated hardware or software block.
///
/// Implementations receive type-erased payloads and downcast to their own
/// message enums. Unknown payload types should panic: receiving a message
/// you cannot decode is a wiring bug in the scenario, not a runtime
/// condition.
///
/// The `Any` supertrait lets scenario drivers downcast components back to
/// their concrete types after a run to extract results.
pub trait Component: Any {
    /// Deliver one event. `ctx` provides the current time, scheduling, the
    /// shared RNG, statistics and tracing.
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx);

    /// Human-readable name used in traces and stats keys.
    fn name(&self) -> &str;

    /// One-line description of what this component is currently waiting
    /// for (credits held, parked resume, frames in flight), or `None`
    /// when it has nothing to report. Collected into the
    /// [`crate::liveness::LivenessReport`] when a guarded run trips its
    /// watchdog; idle or stateless components keep the default.
    fn wait_state(&self) -> Option<String> {
        None
    }
}

/// Mutable simulation services available to a component while it handles an
/// event. Borrowed pieces of the engine — never stored.
pub struct Ctx<'a> {
    pub(crate) now: SimTime,
    pub(crate) self_id: ComponentId,
    pub(crate) queue: &'a mut EventQueue,
    pub(crate) rng: &'a mut SimRng,
    pub(crate) stats: &'a mut StatsRegistry,
    pub(crate) trace: &'a mut TraceBuffer,
}

impl Ctx<'_> {
    /// The current simulated instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the component currently handling an event.
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// Deliver `payload` to `target` after `delay`.
    pub fn send_in<M: Any>(&mut self, delay: SimDuration, target: ComponentId, payload: M) {
        self.queue.push(self.now + delay, target, Box::new(payload));
    }

    /// Deliver `payload` to `target` at the current instant (after all
    /// events already queued for this instant).
    pub fn send_now<M: Any>(&mut self, target: ComponentId, payload: M) {
        self.send_in(SimDuration::ZERO, target, payload);
    }

    /// Schedule a message back to the sending component itself.
    pub fn self_in<M: Any>(&mut self, delay: SimDuration, payload: M) {
        let id = self.self_id;
        self.send_in(delay, id, payload);
    }

    /// The shared deterministic RNG.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }

    /// The statistics registry.
    pub fn stats(&mut self) -> &mut StatsRegistry {
        self.stats
    }

    /// Record a trace entry attributed to the current component and time.
    pub fn trace(&mut self, msg: impl Into<String>) {
        self.trace.record(self.now, self.self_id, msg.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    /// A component that counts deliveries and echoes to itself `n` times.
    struct Echo {
        remaining: u32,
        seen: u32,
    }

    impl Component for Echo {
        fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
            let _msg: Box<u32> = ev.downcast().expect("echo expects u32");
            self.seen += 1;
            ctx.stats().counter("echo", "seen").inc();
            if self.remaining > 0 {
                self.remaining -= 1;
                ctx.self_in(SimDuration::from_nanos(10), 0u32);
            }
        }
        fn name(&self) -> &str {
            "echo"
        }
    }

    #[test]
    fn self_scheduling_advances_time() {
        let mut sim = Simulation::new(1);
        let id = sim.reserve_id();
        sim.register(
            id,
            Echo {
                remaining: 4,
                seen: 0,
            },
        );
        sim.schedule_at(SimTime::ZERO, id, 0u32);
        sim.run();
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_nanos(40));
        assert_eq!(sim.stats().counter_value("echo", "seen"), Some(5));
    }

    #[test]
    fn component_id_debug_format() {
        assert_eq!(format!("{:?}", ComponentId::from_raw(7)), "#7");
        assert_eq!(ComponentId::from_raw(7).index(), 7);
    }
}
