//! Bounded event tracing for post-mortem debugging of scenarios.

use std::collections::VecDeque;

use crate::component::ComponentId;
use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// When the traced action happened.
    pub time: SimTime,
    /// Which component recorded it.
    pub component: ComponentId,
    /// Free-form message.
    pub message: String,
}

/// A ring buffer of recent [`TraceEntry`] records.
///
/// Disabled by default (zero capacity, zero cost); enable per scenario via
/// [`crate::Simulation::enable_trace`]. When a scenario assertion fails the
/// engine dumps the tail of this buffer, which is usually enough to see the
/// last few protocol exchanges before the failure.
pub struct TraceBuffer {
    entries: VecDeque<TraceEntry>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// A buffer that records nothing.
    pub fn disabled() -> Self {
        TraceBuffer {
            entries: VecDeque::new(),
            capacity: 0,
            dropped: 0,
        }
    }

    /// A buffer keeping the most recent `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        TraceBuffer {
            entries: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Whether tracing is active.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Record an entry (no-op when disabled).
    pub fn record(&mut self, time: SimTime, component: ComponentId, message: String) {
        if self.capacity == 0 {
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry {
            time,
            component,
            message,
        });
    }

    /// Entries currently retained, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter()
    }

    /// How many entries were evicted by the ring.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Render retained entries as text, oldest first, prefixed with an
    /// eviction note when the ring has wrapped. This is what the engine
    /// prints when a scenario assertion fails mid-run.
    pub fn dump_to_string(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if self.dropped > 0 {
            let _ = writeln!(out, "... {} earlier entries dropped ...", self.dropped);
        }
        for e in &self.entries {
            let _ = writeln!(out, "[{}] {:?} {}", e.time, e.component, e.message);
        }
        out
    }

    /// Alias for [`TraceBuffer::dump_to_string`].
    pub fn dump(&self) -> String {
        self.dump_to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let mut t = TraceBuffer::disabled();
        assert!(!t.enabled());
        t.record(SimTime::ZERO, ComponentId::from_raw(0), "x".into());
        assert_eq!(t.entries().count(), 0);
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = TraceBuffer::with_capacity(3);
        for i in 0..5 {
            t.record(
                SimTime::from_ps(i),
                ComponentId::from_raw(0),
                format!("m{i}"),
            );
        }
        let msgs: Vec<&str> = t.entries().map(|e| e.message.as_str()).collect();
        assert_eq!(msgs, vec!["m2", "m3", "m4"]);
        assert_eq!(t.dropped(), 2);
        assert!(t.dump().contains("2 earlier entries dropped"));
    }

    #[test]
    fn dump_formats_entries() {
        let mut t = TraceBuffer::with_capacity(2);
        t.record(
            SimTime::from_ps(1_000),
            ComponentId::from_raw(3),
            "hello".into(),
        );
        let d = t.dump();
        assert!(d.contains("#3"));
        assert!(d.contains("hello"));
        assert_eq!(d, t.dump_to_string());
    }
}
