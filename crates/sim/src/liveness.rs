//! Liveness watchdog: structured hang detection for guarded runs.
//!
//! A discrete-event scenario can fail to terminate in two ways the plain
//! [`run`](crate::Simulation::run) loop cannot distinguish from progress:
//!
//! * **event spin** — components keep scheduling each other with
//!   time-advancing events (retransmit timers, credit probes) so the queue
//!   never drains;
//! * **same-timestamp livelock** — a cycle of zero-delay events pins the
//!   clock while the event counter climbs.
//!
//! [`Watchdog`] bounds both, plus an optional simulated-time deadline, and
//! [`crate::Simulation::run_guarded`] converts a tripped bound into a
//! structured [`LivenessReport`] instead of a panic or an infinite loop.
//! The report names every component that declares a wait state
//! ([`crate::Component::wait_state`]), the event-queue head, and the tail
//! of the [`crate::trace::TraceBuffer`] — the same post-mortem surface a
//! component panic produces.
//!
//! The guarded loop adds **zero events** to the simulation: it only
//! observes the queue between steps, so a clean run under `run_guarded`
//! is bit-identical to the same run under `run`.

use std::fmt;

use crate::component::ComponentId;
use crate::time::SimTime;

/// Progress bounds for a guarded run. All bounds are optional; the
/// default ([`Watchdog::unlimited`]) never trips and makes
/// [`crate::Simulation::run_guarded`] equivalent to
/// [`crate::Simulation::run`].
#[derive(Debug, Clone, Copy)]
pub struct Watchdog {
    /// Abort after this many events processed within the guarded call.
    pub event_budget: u64,
    /// Abort after this many consecutive events without the committed
    /// simulation time advancing (same-timestamp livelock detector).
    pub stall_events: u64,
    /// Abort when the next pending event lies beyond this simulated
    /// instant. The clock is *not* advanced to the deadline — the abort
    /// happens before the offending event is popped.
    pub deadline: Option<SimTime>,
}

impl Watchdog {
    /// A watchdog with every bound disabled.
    pub fn unlimited() -> Self {
        Watchdog {
            event_budget: u64::MAX,
            stall_events: u64::MAX,
            deadline: None,
        }
    }

    /// Set the event budget for the guarded call.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Set the no-commit-advance (same-timestamp livelock) threshold.
    pub fn with_stall_events(mut self, events: u64) -> Self {
        self.stall_events = events;
        self
    }

    /// Set the simulated-time deadline.
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Which watchdog bound tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HangKind {
    /// The per-call event budget was exhausted while events remained.
    EventBudgetExhausted,
    /// The clock failed to advance for `stall_events` consecutive events.
    NoCommitAdvance,
    /// The next pending event lies beyond the simulated-time deadline.
    DeadlineExceeded,
}

impl fmt::Display for HangKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HangKind::EventBudgetExhausted => "event budget exhausted",
            HangKind::NoCommitAdvance => "no commit advance (same-timestamp livelock)",
            HangKind::DeadlineExceeded => "simulated-time deadline exceeded",
        };
        f.write_str(s)
    }
}

/// One component's self-declared wait state at abort time.
#[derive(Debug, Clone)]
pub struct ComponentWait {
    /// The component's id.
    pub id: ComponentId,
    /// The component's [`crate::Component::name`].
    pub name: String,
    /// What the component reported via [`crate::Component::wait_state`].
    pub wait: String,
}

/// Structured description of a run that tripped the [`Watchdog`].
#[derive(Debug, Clone)]
pub struct LivenessReport {
    /// Which bound tripped.
    pub kind: HangKind,
    /// Committed simulated time at abort.
    pub now: SimTime,
    /// Total events processed by the engine (lifetime, not per-call).
    pub events_processed: u64,
    /// Events still pending in the queue.
    pub events_pending: usize,
    /// Delivery time and target of the queue head, if any.
    pub queue_head: Option<(SimTime, ComponentId)>,
    /// Every component that declared a wait state.
    pub components: Vec<ComponentWait>,
    /// Tail of the trace buffer (empty when tracing is disabled).
    pub trace_tail: String,
}

impl fmt::Display for LivenessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "liveness failure: {}", self.kind)?;
        writeln!(
            f,
            "  at t={} after {} events ({} pending)",
            self.now, self.events_processed, self.events_pending
        )?;
        match self.queue_head {
            Some((t, target)) => writeln!(f, "  queue head: t={t} -> {target:?}")?,
            None => writeln!(f, "  queue head: <empty>")?,
        }
        if self.components.is_empty() {
            writeln!(f, "  no component declared a wait state")?;
        } else {
            writeln!(f, "  waiting components:")?;
            for c in &self.components {
                writeln!(f, "    {:?} {}: {}", c.id, c.name, c.wait)?;
            }
        }
        if !self.trace_tail.is_empty() {
            writeln!(f, "  trace tail:")?;
            for line in self.trace_tail.lines() {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_watchdog_has_no_bounds() {
        let wd = Watchdog::default();
        assert_eq!(wd.event_budget, u64::MAX);
        assert_eq!(wd.stall_events, u64::MAX);
        assert!(wd.deadline.is_none());
    }

    #[test]
    fn builder_sets_bounds() {
        let wd = Watchdog::unlimited()
            .with_event_budget(10)
            .with_stall_events(5)
            .with_deadline(SimTime::from_ps(99));
        assert_eq!(wd.event_budget, 10);
        assert_eq!(wd.stall_events, 5);
        assert_eq!(wd.deadline, Some(SimTime::from_ps(99)));
    }

    #[test]
    fn report_display_names_components_and_head() {
        let report = LivenessReport {
            kind: HangKind::EventBudgetExhausted,
            now: SimTime::from_ps(1_000),
            events_processed: 42,
            events_pending: 3,
            queue_head: Some((SimTime::from_ps(2_000), ComponentId::from_raw(7))),
            components: vec![ComponentWait {
                id: ComponentId::from_raw(1),
                name: "nic".into(),
                wait: "2 frames in flight".into(),
            }],
            trace_tail: "[t] #1 last exchange\n".into(),
        };
        let text = report.to_string();
        assert!(text.contains("event budget exhausted"));
        assert!(text.contains("#7"));
        assert!(text.contains("nic: 2 frames in flight"));
        assert!(text.contains("last exchange"));
    }
}
