//! The simulation engine: component registry + event loop.

use std::any::Any;

use crate::component::{Component, ComponentId, Ctx};
use crate::event::EventQueue;
use crate::liveness::{ComponentWait, HangKind, LivenessReport, Watchdog};
use crate::rng::SimRng;
use crate::stats::StatsRegistry;
use crate::time::SimTime;
use crate::trace::TraceBuffer;

/// The discrete-event simulation engine.
///
/// Owns all components, the future-event list, the RNG, statistics and the
/// trace buffer. Scenarios are built in two phases: reserve ids (so
/// components can be wired to each other before construction), register the
/// component objects, then seed initial events and [`run`](Self::run).
pub struct Simulation {
    components: Vec<Option<Box<dyn Component>>>,
    queue: EventQueue,
    now: SimTime,
    rng: SimRng,
    stats: StatsRegistry,
    trace: TraceBuffer,
    events_processed: u64,
    /// Safety valve: panic if a scenario exceeds this many events
    /// (default: effectively unlimited). Helps catch livelock bugs such as
    /// two protocol stacks ACKing each other forever.
    event_limit: u64,
    /// Suppress stderr diagnostics (trace-tail dumps on panics and
    /// watchdog aborts). Set by harnesses that run many *expected*
    /// failures, e.g. the fault-plan minimizer testing candidate plans.
    quiet: bool,
}

/// Pending-event headroom every engine starts with. Cluster scenarios
/// burst hundreds of frames into the future-event list at phase
/// boundaries; starting the heap at this size skips the early
/// grow-and-copy cycles for ~128 KiB of memory, noise at simulation
/// scale.
const INITIAL_EVENT_CAPACITY: usize = 4096;

/// Component-registry headroom (a P=16 cluster with fallback NICs,
/// coordinator and auditor registers ~50 components).
const INITIAL_COMPONENT_CAPACITY: usize = 64;

impl Simulation {
    /// Create an engine with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Simulation {
            components: Vec::with_capacity(INITIAL_COMPONENT_CAPACITY),
            queue: EventQueue::with_capacity(INITIAL_EVENT_CAPACITY),
            now: SimTime::ZERO,
            rng: SimRng::seed_from(seed),
            stats: StatsRegistry::new(),
            trace: TraceBuffer::disabled(),
            events_processed: 0,
            event_limit: u64::MAX,
            quiet: false,
        }
    }

    /// Enable the bounded trace buffer (keeps the most recent `capacity`
    /// entries).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceBuffer::with_capacity(capacity);
    }

    /// Set a hard limit on processed events; exceeding it panics with a
    /// trace dump. Useful in tests to catch event livelock.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Suppress stderr diagnostics (trace-tail dumps on component panics
    /// and watchdog aborts). The structured [`LivenessReport`] still
    /// carries the trace tail; only the eager printing is silenced.
    pub fn set_quiet(&mut self, quiet: bool) {
        self.quiet = quiet;
    }

    /// Reserve a fresh [`ComponentId`]. The slot must be filled with
    /// [`register`](Self::register) before any event addressed to it is
    /// delivered.
    pub fn reserve_id(&mut self) -> ComponentId {
        let id = ComponentId::from_raw(self.components.len());
        self.components.push(None);
        id
    }

    /// Install a component in a previously reserved slot.
    ///
    /// # Panics
    /// Panics if the slot is already occupied.
    pub fn register<C: Component + 'static>(&mut self, id: ComponentId, component: C) {
        let slot = &mut self.components[id.index()];
        assert!(slot.is_none(), "component slot {:?} registered twice", id);
        *slot = Some(Box::new(component));
    }

    /// Convenience: reserve an id and register in one step, for components
    /// that do not need to know their own id before construction.
    pub fn add<C: Component + 'static>(&mut self, component: C) -> ComponentId {
        let id = self.reserve_id();
        self.register(id, component);
        id
    }

    /// Schedule an initial event at an absolute instant.
    pub fn schedule_at<M: Any>(&mut self, time: SimTime, target: ComponentId, payload: M) {
        assert!(
            time >= self.now,
            "cannot schedule into the past ({time} < {})",
            self.now
        );
        self.queue.push(time, target, Box::new(payload));
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The statistics registry.
    pub fn stats(&self) -> &StatsRegistry {
        &self.stats
    }

    /// Mutable access to the statistics registry (for pre-run registration
    /// or post-run probes).
    pub fn stats_mut(&mut self) -> &mut StatsRegistry {
        &mut self.stats
    }

    /// The trace buffer (entries only exist if tracing was enabled).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Immutable access to a registered component, downcast to `C`.
    ///
    /// Scenario drivers use this after `run()` to pull results out of
    /// terminal components.
    pub fn component<C: Component>(&self, id: ComponentId) -> &C {
        let c: &dyn Component = self.components[id.index()]
            .as_deref()
            .expect("component slot never registered");
        let any: &dyn Any = c;
        any.downcast_ref::<C>().expect("component type mismatch")
    }

    /// Mutable access to a registered component, downcast to `C`.
    pub fn component_mut<C: Component>(&mut self, id: ComponentId) -> &mut C {
        let c: &mut dyn Component = self.components[id.index()]
            .as_deref_mut()
            .expect("component slot never registered");
        let any: &mut dyn Any = c;
        any.downcast_mut::<C>().expect("component type mismatch")
    }

    /// Process a single event. Returns `false` when the queue is empty.
    #[inline]
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.queue.pop() else {
            return false;
        };
        self.dispatch(ev);
        true
    }

    /// Deliver one popped event to its component. The failure paths
    /// (limit breach, unregistered target, traced panics) are outlined
    /// so this body inlines into the run loops.
    #[inline]
    fn dispatch(&mut self, ev: crate::event::ScheduledEvent) {
        debug_assert!(ev.time >= self.now, "event queue produced stale event");
        self.now = ev.time;
        self.events_processed += 1;
        if self.events_processed > self.event_limit {
            self.event_limit_breached();
        }
        let Some(component) = self.components[ev.target.index()].as_deref_mut() else {
            unregistered_target(ev.target);
        };
        if !self.trace.enabled() {
            // Hot path: the component is borrowed in place (disjoint from
            // the queue/rng/stats fields Ctx borrows), and a panic simply
            // unwinds — with no trace buffer there is nothing to dump, so
            // the catch_unwind landing pad would be pure overhead.
            let mut ctx = Ctx {
                now: self.now,
                self_id: ev.target,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stats: &mut self.stats,
                trace: &mut self.trace,
            };
            component.handle(ev.payload, &mut ctx);
            return;
        }
        // Traced path: catch component panics so a failing scenario
        // assertion can be annotated with the trace tail before
        // unwinding — the post-mortem surface the trace buffer exists
        // for.
        let target = ev.target;
        let outcome = {
            let mut ctx = Ctx {
                now: self.now,
                self_id: target,
                queue: &mut self.queue,
                rng: &mut self.rng,
                stats: &mut self.stats,
                trace: &mut self.trace,
            };
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                component.handle(ev.payload, &mut ctx);
            }))
        };
        if let Err(cause) = outcome {
            if !self.quiet {
                eprintln!(
                    "--- trace tail at failure (t={}, component {:?}) ---\n{}",
                    self.now,
                    target,
                    self.trace.dump_to_string()
                );
            }
            std::panic::resume_unwind(cause);
        }
    }

    /// Livelock breaker, outlined from the dispatch hot path.
    #[cold]
    fn event_limit_breached(&self) -> ! {
        // acc-lint: allow(R5, reason = "livelock breaker: exceeding the event limit means the scenario will never converge; fail loudly with the trace dump rather than spin forever")
        panic!(
            "event limit exceeded ({} events) — likely livelock.\n{}",
            self.event_limit,
            self.trace.dump()
        );
    }

    /// Run until the event queue is exhausted. Returns the final time.
    pub fn run(&mut self) -> SimTime {
        while let Some(ev) = self.queue.pop() {
            self.dispatch(ev);
        }
        self.now
    }

    /// Run until the queue is exhausted or a [`Watchdog`] bound trips,
    /// whichever is first.
    ///
    /// On a tripped bound this returns a structured [`LivenessReport`]
    /// instead of panicking or looping forever: per-component wait
    /// states, the queue head, and the trace tail (also dumped to stderr
    /// unless [`set_quiet`](Self::set_quiet) was called — the same
    /// post-mortem surface a component panic produces). The clock is
    /// never advanced past the last committed event, and the guarded
    /// loop itself schedules **no events**, so a run that completes
    /// under `run_guarded` is bit-identical to the same run under
    /// [`run`](Self::run).
    pub fn run_guarded(&mut self, wd: &Watchdog) -> Result<SimTime, Box<LivenessReport>> {
        let start_events = self.events_processed;
        let mut last_now = self.now;
        let mut last_advance_events = self.events_processed;
        loop {
            let Some(head) = self.queue.next_time() else {
                return Ok(self.now);
            };
            if let Some(deadline) = wd.deadline {
                if head > deadline {
                    return Err(self.liveness_report(HangKind::DeadlineExceeded));
                }
            }
            if self.events_processed - start_events >= wd.event_budget {
                return Err(self.liveness_report(HangKind::EventBudgetExhausted));
            }
            self.step();
            if self.now > last_now {
                last_now = self.now;
                last_advance_events = self.events_processed;
            } else if self.events_processed - last_advance_events >= wd.stall_events {
                return Err(self.liveness_report(HangKind::NoCommitAdvance));
            }
        }
    }

    /// Snapshot the engine's liveness state into a report (and dump the
    /// trace tail to stderr unless quiet, mirroring the panic path).
    fn liveness_report(&self, kind: HangKind) -> Box<LivenessReport> {
        let components = self
            .components
            .iter()
            .enumerate()
            .filter_map(|(idx, slot)| {
                let c = slot.as_deref()?;
                let wait = c.wait_state()?;
                Some(ComponentWait {
                    id: ComponentId::from_raw(idx),
                    name: c.name().to_string(),
                    wait,
                })
            })
            .collect();
        let report = Box::new(LivenessReport {
            kind,
            now: self.now,
            events_processed: self.events_processed,
            events_pending: self.queue.len(),
            queue_head: self.queue.peek_head(),
            components,
            trace_tail: self.trace.dump_to_string(),
        });
        if self.trace.enabled() && !self.quiet {
            eprintln!(
                "--- trace tail at liveness failure ({kind}, t={}) ---\n{}",
                self.now, report.trace_tail
            );
        }
        report
    }

    /// Run until the queue empties or `deadline` is reached, whichever is
    /// first. Events scheduled at exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(t) = self.queue.next_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        if self.now < deadline && self.queue.next_time().is_some() {
            // Stopped by deadline with pending later events: advance the
            // clock to the deadline so callers observe a consistent "ran
            // until" time.
            self.now = deadline;
        }
        self.now
    }
}

/// Wiring-invariant failure, outlined from the dispatch hot path.
#[cold]
fn unregistered_target(target: ComponentId) -> ! {
    // acc-lint: allow(R5, reason = "wiring invariant: an event addressed to an unregistered component is a scenario construction bug; no recovery is possible mid-run")
    panic!("event for unregistered component {target:?}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Counter {
        count: u64,
    }

    impl Component for Counter {
        fn handle(&mut self, _ev: Box<dyn Any>, _ctx: &mut Ctx) {
            self.count += 1;
        }
        fn name(&self) -> &str {
            "counter"
        }
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Simulation::new(0);
        let id = sim.add(Counter { count: 0 });
        for ms in [1u64, 2, 3, 10] {
            sim.schedule_at(SimTime::ZERO + SimDuration::from_millis(ms), id, ());
        }
        let deadline = SimTime::ZERO + SimDuration::from_millis(5);
        sim.run_until(deadline);
        assert_eq!(sim.component::<Counter>(id).count, 3);
        assert_eq!(sim.now(), deadline);
        sim.run();
        assert_eq!(sim.component::<Counter>(id).count, 4);
    }

    #[test]
    #[should_panic(expected = "event limit exceeded")]
    fn event_limit_catches_livelock() {
        struct Livelock;
        impl Component for Livelock {
            fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
                ctx.self_in(SimDuration::from_nanos(1), ());
            }
            fn name(&self) -> &str {
                "livelock"
            }
        }
        let mut sim = Simulation::new(0);
        sim.set_event_limit(1000);
        let id = sim.add(Livelock);
        sim.schedule_at(SimTime::ZERO, id, ());
        sim.run();
    }

    #[test]
    #[should_panic(expected = "scenario assertion failed")]
    fn component_panic_dumps_trace_tail_and_propagates() {
        struct Asserter;
        impl Component for Asserter {
            fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
                ctx.trace("last protocol exchange before the failure");
                panic!("scenario assertion failed");
            }
            fn name(&self) -> &str {
                "asserter"
            }
        }
        let mut sim = Simulation::new(0);
        sim.enable_trace(16);
        let id = sim.add(Asserter);
        sim.schedule_at(SimTime::ZERO, id, ());
        // The trace tail goes to stderr on the way out; the panic still
        // reaches the caller unchanged.
        sim.run();
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn double_registration_panics() {
        let mut sim = Simulation::new(0);
        let id = sim.reserve_id();
        sim.register(id, Counter { count: 0 });
        sim.register(id, Counter { count: 0 });
    }

    #[test]
    fn component_accessors_roundtrip() {
        let mut sim = Simulation::new(0);
        let id = sim.add(Counter { count: 7 });
        assert_eq!(sim.component::<Counter>(id).count, 7);
        sim.component_mut::<Counter>(id).count = 9;
        assert_eq!(sim.component::<Counter>(id).count, 9);
    }

    #[test]
    fn guarded_clean_run_matches_unguarded() {
        fn build() -> (Simulation, ComponentId) {
            let mut sim = Simulation::new(7);
            let id = sim.add(Counter { count: 0 });
            for ms in [1u64, 2, 3] {
                sim.schedule_at(SimTime::ZERO + SimDuration::from_millis(ms), id, ());
            }
            (sim, id)
        }
        let (mut plain, pid) = build();
        let end_plain = plain.run();
        let (mut guarded, gid) = build();
        let wd = Watchdog::unlimited()
            .with_event_budget(1_000)
            .with_stall_events(100)
            .with_deadline(SimTime::ZERO + SimDuration::from_millis(10));
        let end_guarded = guarded.run_guarded(&wd).expect("clean run must not trip");
        assert_eq!(end_plain, end_guarded);
        assert_eq!(plain.events_processed(), guarded.events_processed());
        assert_eq!(
            plain.component::<Counter>(pid).count,
            guarded.component::<Counter>(gid).count
        );
    }

    #[test]
    fn guarded_run_catches_same_timestamp_livelock() {
        struct Livelock;
        impl Component for Livelock {
            fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
                ctx.send_now(ctx.self_id(), ());
            }
            fn name(&self) -> &str {
                "livelock"
            }
            fn wait_state(&self) -> Option<String> {
                Some("spinning at a single timestamp".into())
            }
        }
        let mut sim = Simulation::new(0);
        let id = sim.add(Livelock);
        sim.schedule_at(SimTime::ZERO, id, ());
        let wd = Watchdog::unlimited().with_stall_events(64);
        let report = sim
            .run_guarded(&wd)
            .expect_err("livelock must trip the watchdog");
        assert_eq!(report.kind, crate::liveness::HangKind::NoCommitAdvance);
        assert_eq!(report.now, SimTime::ZERO);
        assert_eq!(report.components.len(), 1);
        assert_eq!(report.components[0].name, "livelock");
        assert!(report.components[0].wait.contains("spinning"));
        assert!(report.queue_head.is_some());
    }

    #[test]
    fn guarded_run_enforces_event_budget() {
        struct Spinner;
        impl Component for Spinner {
            fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
                ctx.self_in(SimDuration::from_nanos(1), ());
            }
            fn name(&self) -> &str {
                "spinner"
            }
        }
        let mut sim = Simulation::new(0);
        let id = sim.add(Spinner);
        sim.schedule_at(SimTime::ZERO, id, ());
        let wd = Watchdog::unlimited().with_event_budget(100);
        let report = sim
            .run_guarded(&wd)
            .expect_err("event spin must exhaust the budget");
        assert_eq!(report.kind, crate::liveness::HangKind::EventBudgetExhausted);
        // Budget is enforced exactly: no more than 100 events processed.
        assert_eq!(sim.events_processed(), 100);
    }

    #[test]
    fn guarded_run_stops_at_sim_time_deadline_without_advancing() {
        let mut sim = Simulation::new(0);
        let id = sim.add(Counter { count: 0 });
        for ms in [1u64, 2, 50] {
            sim.schedule_at(SimTime::ZERO + SimDuration::from_millis(ms), id, ());
        }
        let deadline = SimTime::ZERO + SimDuration::from_millis(10);
        let wd = Watchdog::unlimited().with_deadline(deadline);
        let report = sim
            .run_guarded(&wd)
            .expect_err("pending event beyond deadline must trip");
        assert_eq!(report.kind, crate::liveness::HangKind::DeadlineExceeded);
        // The two in-deadline events ran; the clock stays at the last
        // committed event rather than jumping to the deadline.
        assert_eq!(sim.component::<Counter>(id).count, 2);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::from_millis(2));
        assert_eq!(report.events_pending, 1);
    }

    #[test]
    fn guarded_report_carries_trace_tail() {
        struct Tracer;
        impl Component for Tracer {
            fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
                ctx.trace("credit probe retry");
                ctx.send_now(ctx.self_id(), ());
            }
            fn name(&self) -> &str {
                "tracer"
            }
        }
        let mut sim = Simulation::new(0);
        sim.enable_trace(8);
        sim.set_quiet(true);
        let id = sim.add(Tracer);
        sim.schedule_at(SimTime::ZERO, id, ());
        let wd = Watchdog::unlimited().with_stall_events(16);
        let report = sim.run_guarded(&wd).expect_err("must trip");
        assert!(report.trace_tail.contains("credit probe retry"));
    }

    #[test]
    fn identical_seeds_are_deterministic() {
        fn run_once() -> (u64, u64) {
            struct Random {
                sum: u64,
            }
            impl Component for Random {
                fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
                    self.sum = self.sum.wrapping_add(ctx.rng().next_u64());
                    if !self.sum.is_multiple_of(3) {
                        ctx.self_in(SimDuration::from_nanos(self.sum % 100 + 1), ());
                    }
                }
                fn name(&self) -> &str {
                    "random"
                }
            }
            let mut sim = Simulation::new(12345);
            let id = sim.add(Random { sum: 0 });
            sim.schedule_at(SimTime::ZERO, id, ());
            sim.run();
            (sim.component::<Random>(id).sum, sim.now().as_ps())
        }
        assert_eq!(run_once(), run_once());
    }
}
