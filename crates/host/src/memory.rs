//! The PC memory hierarchy model.
//!
//! The paper repeatedly leans on memory-hierarchy effects:
//!
//! * FFT compute time has knees "at 2–3 processors and 6–8 processors
//!   where the local partition fits into a faster level of the memory
//!   hierarchy" (Section 4.1);
//! * the receive-side bucket sort exists precisely to make count-sort
//!   working sets cache-resident (Section 3.2);
//! * "cache memory bandwidth on a commodity processor is much higher
//!   than the comparable memory bandwidth for an INIC", which is why
//!   count sort stays on the host (Section 3.2.2).
//!
//! The model is deliberately simple: each level has a capacity and a
//! sustained bandwidth, and a working set streams at the bandwidth of the
//! smallest level that holds it. That is exactly the granularity the
//! paper's analysis uses.

use acc_sim::{Bandwidth, DataSize, SimDuration};

/// One level of the hierarchy.
#[derive(Clone, Copy, Debug)]
pub struct MemoryLevel {
    /// Level name for reports ("L1", "L2", "DRAM").
    pub name: &'static str,
    /// Capacity of this level.
    pub capacity: DataSize,
    /// Sustained streaming bandwidth when the working set resides here.
    pub bandwidth: Bandwidth,
}

/// An ordered (smallest/fastest first) memory hierarchy.
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    levels: Vec<MemoryLevel>,
}

impl MemoryHierarchy {
    /// Build from levels ordered fastest-first.
    ///
    /// # Panics
    /// Panics if levels are not strictly increasing in capacity and
    /// non-increasing in bandwidth.
    pub fn new(levels: Vec<MemoryLevel>) -> MemoryHierarchy {
        assert!(!levels.is_empty(), "hierarchy needs at least one level");
        for w in levels.windows(2) {
            assert!(
                w[0].capacity < w[1].capacity,
                "level capacities must increase"
            );
            assert!(
                w[0].bandwidth >= w[1].bandwidth,
                "level bandwidths must not increase"
            );
        }
        MemoryHierarchy { levels }
    }

    /// The hierarchy of the prototype's 1 GHz Athlon (Thunderbird) nodes:
    /// 64 KiB L1D at ~8 GiB/s, 256 KiB full-speed L2 at ~2.5 GiB/s, and
    /// PC133 SDRAM sustaining ~400 MiB/s on copy-like access patterns.
    pub fn athlon_1ghz() -> MemoryHierarchy {
        MemoryHierarchy::new(vec![
            MemoryLevel {
                name: "L1",
                capacity: DataSize::from_kib(64),
                bandwidth: Bandwidth::from_mib_per_sec(8192),
            },
            MemoryLevel {
                name: "L2",
                capacity: DataSize::from_kib(256),
                bandwidth: Bandwidth::from_mib_per_sec(2560),
            },
            MemoryLevel {
                name: "DRAM",
                capacity: DataSize::from_mib(512),
                bandwidth: Bandwidth::from_mib_per_sec(400),
            },
        ])
    }

    /// The level a working set of `size` resides in (the smallest level
    /// that holds it; working sets beyond the last level still report the
    /// last level — the machine pages rather than failing).
    pub fn level_for(&self, size: DataSize) -> &MemoryLevel {
        self.levels
            .iter()
            .find(|l| size <= l.capacity)
            .unwrap_or_else(|| self.levels.last().expect("non-empty"))
    }

    /// Sustained bandwidth for streaming over a working set of `size`.
    pub fn effective_bandwidth(&self, size: DataSize) -> Bandwidth {
        self.level_for(size).bandwidth
    }

    /// Time to stream `bytes` once over a working set of `working_set`
    /// total size.
    pub fn stream_time(&self, bytes: DataSize, working_set: DataSize) -> SimDuration {
        self.effective_bandwidth(working_set).transfer_time(bytes)
    }

    /// The levels, fastest first.
    pub fn levels(&self) -> &[MemoryLevel] {
        &self.levels
    }

    /// Convenience: does a working set fit in any cache level (i.e. not
    /// the final DRAM level)?
    pub fn fits_in_cache(&self, size: DataSize) -> bool {
        self.levels[..self.levels.len() - 1]
            .iter()
            .any(|l| size <= l.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn athlon_levels_are_ordered() {
        let m = MemoryHierarchy::athlon_1ghz();
        assert_eq!(m.levels().len(), 3);
        assert_eq!(m.levels()[0].name, "L1");
        assert_eq!(m.levels()[2].name, "DRAM");
    }

    #[test]
    fn level_selection_by_working_set() {
        let m = MemoryHierarchy::athlon_1ghz();
        assert_eq!(m.level_for(DataSize::from_kib(32)).name, "L1");
        assert_eq!(m.level_for(DataSize::from_kib(64)).name, "L1");
        assert_eq!(m.level_for(DataSize::from_kib(65)).name, "L2");
        assert_eq!(m.level_for(DataSize::from_kib(300)).name, "DRAM");
        // Beyond physical memory still reports DRAM.
        assert_eq!(m.level_for(DataSize::from_mib(1024)).name, "DRAM");
    }

    #[test]
    fn fft_partition_knees_match_paper() {
        // 256×256 complex doubles = 1 MiB total. The per-processor
        // partition is 1 MiB / P: it drops into L2 going from P=2 (512
        // KiB, DRAM) to P=4 (256 KiB, L2) — the paper's "2–3 processors"
        // knee — and into L1 between P=8 and P=16 — the "6–8" knee is the
        // same effect for the row working set.
        let m = MemoryHierarchy::athlon_1ghz();
        let total = DataSize::from_mib(1);
        let part = |p: u64| DataSize::from_bytes(total.bytes() / p);
        assert_eq!(m.level_for(part(2)).name, "DRAM");
        assert_eq!(m.level_for(part(4)).name, "L2");
        assert_eq!(m.level_for(part(16)).name, "L1");
    }

    #[test]
    fn cache_bandwidth_dwarfs_dram() {
        // The Section 3.2.2 justification for host-side count sort.
        let m = MemoryHierarchy::athlon_1ghz();
        let cache = m.effective_bandwidth(DataSize::from_kib(128));
        let dram = m.effective_bandwidth(DataSize::from_mib(64));
        assert!(cache.bytes_per_sec() >= 4 * dram.bytes_per_sec());
    }

    #[test]
    fn stream_time_uses_working_set_level() {
        let m = MemoryHierarchy::athlon_1ghz();
        let in_cache = m.stream_time(DataSize::from_kib(128), DataSize::from_kib(128));
        let in_dram = m.stream_time(DataSize::from_kib(128), DataSize::from_mib(16));
        assert!(in_cache < in_dram);
    }

    #[test]
    fn fits_in_cache_boundary() {
        let m = MemoryHierarchy::athlon_1ghz();
        assert!(m.fits_in_cache(DataSize::from_kib(256)));
        assert!(!m.fits_in_cache(DataSize::from_kib(257)));
    }

    #[test]
    #[should_panic(expected = "capacities must increase")]
    fn rejects_unordered_levels() {
        MemoryHierarchy::new(vec![
            MemoryLevel {
                name: "a",
                capacity: DataSize::from_kib(64),
                bandwidth: Bandwidth::from_mib_per_sec(100),
            },
            MemoryLevel {
                name: "b",
                capacity: DataSize::from_kib(64),
                bandwidth: Bandwidth::from_mib_per_sec(50),
            },
        ]);
    }
}
