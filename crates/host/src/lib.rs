//! # acc-host — commodity PC node models
//!
//! The paper's whole argument rests on specific weaknesses of the 2001
//! commodity PC: a slow shared PCI bus, a shallow memory hierarchy,
//! DMA engines that are only efficient for large transfers, and
//! interrupt costs high enough that Gigabit-rate per-packet interrupts
//! are impossible. This crate models each of those, calibrated to the
//! prototype's 1 GHz Athlon / 32-bit 33 MHz PCI testbed (Section 5).
//!
//! * [`memory`] — a three-level memory hierarchy whose effective
//!   bandwidth depends on working-set size; produces the cache-fit
//!   "knees" the paper notes at 2–3 and 6–8 processors.
//! * [`kernels`] — calibrated time models for the computational kernels
//!   (per-row 1D FFT, local transpose, bucket sort, count sort) with the
//!   constants anchored to the paper's own measurements.
//! * [`bus`] — a shared bus component with round-robin arbitration,
//!   used for both the system PCI bus (132 MB/s) and the ACEII card's
//!   single internal bus — the prototype's headline bottleneck.
//! * [`interrupts`] — per-interrupt CPU costs and the interrupt
//!   moderation (coalescing) state machine whose interaction with TCP
//!   slow start degrades short transfers (Section 4.1).
//! * [`stall`] — node stall windows during which the CPU defers all
//!   event servicing (the host half of `NodeStall` fault injection).

#![forbid(unsafe_code)]

pub mod bus;
pub mod interrupts;
pub mod kernels;
pub mod memory;
pub mod stall;

pub use bus::{BusDone, BusParams, BusRequest, SharedBus};
pub use interrupts::{InterruptCosts, InterruptModerator, ModerationPolicy};
pub use kernels::HostKernels;
pub use memory::{MemoryHierarchy, MemoryLevel};
pub use stall::StallSchedule;
