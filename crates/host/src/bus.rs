//! A shared bus with round-robin burst arbitration.
//!
//! Two instances appear in every prototype-INIC scenario:
//!
//! * the **system PCI bus** (32-bit 33 MHz ⇒ 132 MB/s peak), shared by
//!   the NIC/ACEII card DMA and everything else on the motherboard;
//! * the **ACEII on-card bus** — "a single 132 MB/s bus used to access
//!   both the Gigabit Ethernet and host memory" (Section 6), the
//!   prototype's defining bottleneck: host-DMA and network streams that
//!   the ideal INIC overlaps must time-share it.
//!
//! Requesters submit [`BusRequest`]s; the bus transfers them in bounded
//! bursts with per-burst arbitration overhead, rotating round-robin
//! across requesters so one long DMA cannot starve the MAC. A
//! [`BusDone`] event is returned to the requester when its whole request
//! has crossed.

use std::any::Any;
use std::collections::VecDeque;

use acc_sim::{Bandwidth, Component, ComponentId, Ctx, DataSize, SimDuration};

/// Bus configuration.
#[derive(Clone, Copy, Debug)]
pub struct BusParams {
    /// Peak transfer rate.
    pub rate: Bandwidth,
    /// Maximum burst length before re-arbitration.
    pub burst: DataSize,
    /// Arbitration + address-phase overhead per burst.
    pub per_burst_overhead: SimDuration,
}

impl BusParams {
    /// 32-bit 33 MHz PCI: 132 MB/s peak, 4 KiB bursts, ~1 µs of
    /// arbitration/address/turnaround per burst — yielding the ~100 MB/s
    /// sustained figure typical of 2001 chipsets.
    pub fn pci_32_33() -> BusParams {
        BusParams {
            rate: Bandwidth::from_mb_per_sec(132),
            burst: DataSize::from_kib(4),
            per_burst_overhead: SimDuration::from_micros(1),
        }
    }

    /// The ACEII card's single internal bus — same electrical class as
    /// the system PCI (Section 6 gives 132 MB/s).
    pub fn aceii_card_bus() -> BusParams {
        BusParams::pci_32_33()
    }

    /// Sustained rate for a long transfer under these parameters.
    pub fn sustained_rate(&self) -> Bandwidth {
        let burst_time = self.rate.transfer_time(self.burst) + self.per_burst_overhead;
        Bandwidth::from_bytes_per_sec((self.burst.bytes() as f64 / burst_time.as_secs_f64()) as u64)
    }

    /// Closed-form time for `bytes` crossing an *uncontended* bus —
    /// used by analytic models and to validate the component against.
    pub fn uncontended_time(&self, bytes: DataSize) -> SimDuration {
        if bytes.bytes() == 0 {
            return SimDuration::ZERO;
        }
        let full = bytes.bytes() / self.burst.bytes();
        let tail = bytes.bytes() % self.burst.bytes();
        let mut t = (self.rate.transfer_time(self.burst) + self.per_burst_overhead) * full;
        if tail > 0 {
            t += self.rate.transfer_time(DataSize::from_bytes(tail)) + self.per_burst_overhead;
        }
        t
    }
}

/// Request to move `bytes` across the bus. Direction does not matter to
/// the timing model; contention is what is being modelled.
#[derive(Clone, Copy, Debug)]
pub struct BusRequest {
    /// Transfer length.
    pub bytes: DataSize,
    /// Who to notify on completion.
    pub requester: ComponentId,
    /// Requester-chosen tag echoed in [`BusDone`].
    pub tag: u64,
}

/// Completion notification.
#[derive(Clone, Copy, Debug)]
pub struct BusDone {
    /// The tag from the originating [`BusRequest`].
    pub tag: u64,
}

/// Internal: the current burst finished.
struct BurstDone;

struct Transfer {
    requester: ComponentId,
    tag: u64,
    remaining: DataSize,
}

/// The bus component.
pub struct SharedBus {
    label: String,
    params: BusParams,
    /// Per-requester FIFO lanes, visited round-robin.
    // acc-lint: allow(R9, reason = "lane table, not a queue: the outer Vec gains one entry per distinct requester (the component set is fixed at build), and each per-lane FIFO carries that engine's in-flight transfers drained round-robin")
    lanes: Vec<(ComponentId, VecDeque<Transfer>)>,
    rr_next: usize,
    busy: bool,
    /// Lane whose head transfer owns the in-flight burst.
    active_lane: Option<usize>,
    bytes_moved: u64,
}

impl SharedBus {
    /// New idle bus.
    pub fn new(label: impl Into<String>, params: BusParams) -> SharedBus {
        SharedBus {
            label: label.into(),
            params,
            lanes: Vec::new(),
            rr_next: 0,
            busy: false,
            active_lane: None,
            bytes_moved: 0,
        }
    }

    /// Total bytes transferred so far.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    fn lane_mut(&mut self, requester: ComponentId) -> &mut VecDeque<Transfer> {
        if let Some(idx) = self.lanes.iter().position(|(id, _)| *id == requester) {
            return &mut self.lanes[idx].1;
        }
        self.lanes.push((requester, VecDeque::new()));
        &mut self.lanes.last_mut().expect("just pushed").1
    }

    fn start_burst_if_idle(&mut self, ctx: &mut Ctx) {
        if self.busy {
            return;
        }
        let n = self.lanes.len();
        if n == 0 {
            return;
        }
        // Find the next non-empty lane round-robin.
        for off in 0..n {
            let idx = (self.rr_next + off) % n;
            if self.lanes[idx].1.is_empty() {
                continue;
            }
            // Grant a burst to the head transfer of this lane.
            let burst_len;
            {
                let head = self.lanes[idx].1.front_mut().expect("non-empty lane");
                burst_len =
                    DataSize::from_bytes(head.remaining.bytes().min(self.params.burst.bytes()));
                head.remaining = head.remaining.saturating_sub(burst_len);
            }
            self.busy = true;
            self.bytes_moved += burst_len.bytes();
            // Rotate the arbitration pointer past this lane so the next
            // grant visits the other requesters first.
            self.rr_next = (idx + 1) % n;
            let t = self.params.rate.transfer_time(burst_len) + self.params.per_burst_overhead;
            self.active_lane = Some(idx);
            ctx.self_in(t, BurstDone);
            return;
        }
    }

    fn finish_burst(&mut self, ctx: &mut Ctx) {
        let idx = self
            .active_lane
            .take()
            .expect("BurstDone with no active lane");
        self.busy = false;
        let done = {
            let head = self.lanes[idx].1.front().expect("active lane emptied");
            head.remaining == DataSize::ZERO
        };
        if done {
            let t = self.lanes[idx].1.pop_front().expect("checked non-empty");
            ctx.send_now(t.requester, BusDone { tag: t.tag });
            ctx.stats().counter(&self.label, "transfers_done").inc();
        }
        self.start_burst_if_idle(ctx);
    }
}

impl Component for SharedBus {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        let ev = match ev.downcast::<BusRequest>() {
            Ok(req) => {
                assert!(req.bytes.bytes() > 0, "zero-byte bus request");
                ctx.stats().counter(&self.label, "requests").inc();
                let requester = req.requester;
                self.lane_mut(requester).push_back(Transfer {
                    requester: req.requester,
                    tag: req.tag,
                    remaining: req.bytes,
                });
                self.start_burst_if_idle(ctx);
                return;
            }
            Err(ev) => ev,
        };
        match ev.downcast::<BurstDone>() {
            Ok(_) => self.finish_burst(ctx),
            Err(_) => panic!("bus {}: unknown event", self.label),
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_sim::{SimTime, Simulation};

    /// Records completion times of its bus requests.
    struct Requester {
        bus: ComponentId,
        submit: Vec<(u64, DataSize)>,
        completions: Vec<(u64, SimTime)>,
    }

    impl Component for Requester {
        fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
            if ev.downcast_ref::<()>().is_some() {
                let me = ctx.self_id();
                for (tag, bytes) in self.submit.drain(..) {
                    ctx.send_now(
                        self.bus,
                        BusRequest {
                            bytes,
                            requester: me,
                            tag,
                        },
                    );
                }
            } else if let Ok(done) = ev.downcast::<BusDone>() {
                self.completions.push((done.tag, ctx.now()));
            } else {
                panic!("requester: unknown event");
            }
        }
        fn name(&self) -> &str {
            "requester"
        }
    }

    fn build(
        submissions: Vec<Vec<(u64, DataSize)>>,
    ) -> (Simulation, Vec<ComponentId>, ComponentId) {
        let mut sim = Simulation::new(0);
        let bus_id = sim.reserve_id();
        let reqs: Vec<ComponentId> = submissions
            .into_iter()
            .map(|submit| {
                sim.add(Requester {
                    bus: bus_id,
                    submit,
                    completions: vec![],
                })
            })
            .collect();
        sim.register(bus_id, SharedBus::new("pci", BusParams::pci_32_33()));
        for &r in &reqs {
            sim.schedule_at(SimTime::ZERO, r, ());
        }
        (sim, reqs, bus_id)
    }

    #[test]
    fn single_transfer_matches_closed_form() {
        let bytes = DataSize::from_kib(64);
        let (mut sim, reqs, _) = build(vec![vec![(1, bytes)]]);
        sim.run();
        let done = &sim.component::<Requester>(reqs[0]).completions;
        assert_eq!(done.len(), 1);
        let expect = BusParams::pci_32_33().uncontended_time(bytes);
        assert_eq!(done[0].1, SimTime::ZERO + expect);
    }

    #[test]
    fn sustained_rate_is_below_peak() {
        let p = BusParams::pci_32_33();
        let sustained = p.sustained_rate().bytes_per_sec();
        assert!(sustained < p.rate.bytes_per_sec());
        // ~128 MB/s with 4 KiB bursts and 1 µs overhead per burst.
        assert!(
            (120_000_000..132_000_000).contains(&sustained),
            "{sustained}"
        );
    }

    #[test]
    fn two_requesters_share_fairly() {
        // Both move 1 MiB concurrently: each should finish in about the
        // time 2 MiB takes alone (i.e. bandwidth halves), and the two
        // finish within one burst of each other.
        let mb = DataSize::from_mib(1);
        let (mut sim, reqs, _) = build(vec![vec![(1, mb)], (vec![(2, mb)])]);
        sim.run();
        let t0 = sim.component::<Requester>(reqs[0]).completions[0].1;
        let t1 = sim.component::<Requester>(reqs[1]).completions[0].1;
        let both = BusParams::pci_32_33().uncontended_time(DataSize::from_mib(2));
        let later = t0.max(t1);
        assert_eq!(later, SimTime::ZERO + both);
        let gap = later.since(t0.min(t1));
        // Strict alternation would give a one-burst gap; lane-creation
        // order lets the first requester win one extra early burst, so
        // allow two.
        let one_burst = BusParams::pci_32_33().uncontended_time(DataSize::from_kib(4));
        assert!(gap <= one_burst * 2, "finish gap {gap} too large");
    }

    #[test]
    fn fifo_within_one_requester() {
        let (mut sim, reqs, _) = build(vec![vec![
            (1, DataSize::from_kib(8)),
            (2, DataSize::from_kib(8)),
            (3, DataSize::from_kib(8)),
        ]]);
        sim.run();
        let done = &sim.component::<Requester>(reqs[0]).completions;
        let tags: Vec<u64> = done.iter().map(|&(t, _)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn bus_counts_bytes() {
        let (mut sim, _, bus) = build(vec![vec![(1, DataSize::from_kib(10))]]);
        sim.run();
        assert_eq!(sim.component::<SharedBus>(bus).bytes_moved(), 10 * 1024);
    }

    #[test]
    fn three_requesters_share_round_robin() {
        // Each of three concurrent 1 MiB transfers finishes within one
        // burst of total/3 pacing, and the last at exactly the
        // all-alone time for 3 MiB.
        let mb = DataSize::from_mib(1);
        let (mut sim, reqs, _) = build(vec![vec![(1, mb)], vec![(2, mb)], vec![(3, mb)]]);
        sim.run();
        let times: Vec<f64> = reqs
            .iter()
            .map(|&r| sim.component::<Requester>(r).completions[0].1.as_secs_f64())
            .collect();
        let all = BusParams::pci_32_33()
            .uncontended_time(DataSize::from_mib(3))
            .as_secs_f64();
        let latest = times.iter().cloned().fold(0.0, f64::max);
        assert!((latest - all).abs() < 1e-9, "latest {latest} vs {all}");
        // Fairness: no requester finishes before ~2/3 of the total.
        let earliest = times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(earliest > 0.6 * all, "earliest {earliest} vs {all}");
    }

    #[test]
    #[should_panic(expected = "zero-byte bus request")]
    fn zero_byte_request_is_rejected() {
        let (mut sim, _, bus) = build(vec![]);
        let fake = ComponentId::from_raw(0);
        sim.schedule_at(
            SimTime::ZERO,
            bus,
            BusRequest {
                bytes: DataSize::ZERO,
                requester: fake,
                tag: 0,
            },
        );
        sim.run();
    }

    #[test]
    fn contention_halves_effective_bandwidth() {
        // The prototype's problem in miniature: host-DMA and MAC streams
        // sharing one 132 MB/s bus each see ~half the sustained rate.
        let mb = DataSize::from_mib(4);
        let (mut sim, reqs, _) = build(vec![vec![(1, mb)], vec![(2, mb)]]);
        sim.run();
        let t = sim.component::<Requester>(reqs[0]).completions[0]
            .1
            .as_secs_f64();
        let alone = BusParams::pci_32_33().uncontended_time(mb).as_secs_f64();
        let ratio = t / alone;
        assert!((1.9..2.1).contains(&ratio), "contention ratio {ratio}");
    }
}
