//! Interrupt costs and moderation (coalescing).
//!
//! Two facts from the paper drive this module (Section 4.1):
//!
//! 1. "modern systems are incapable of handling an interrupt per packet
//!    at the full data rate of Gigabit Ethernet" — at ~81 k frames/s and
//!    ~12 µs per interrupt the CPU would saturate, so
//! 2. "high speed network interfaces typically use some form of
//!    interrupt mitigation — based on a time-out or number of messages
//!    received ... but it interacts poorly with TCP slow-start for short
//!    messages" — the coalescing timer adds latency to every ACK-clocked
//!    round trip, which is fatal when cwnd is still small.
//!
//! The INIC "virtually eliminates interrupts from the communication
//! path" — it needs no moderation at all: a single completion interrupt
//! per bulk transfer, charged by the INIC card model directly.

use acc_sim::SimDuration;

/// CPU costs of interrupt-driven receive processing, calibrated to a
/// 2001-era Linux 2.4 kernel on the 1 GHz Athlon.
#[derive(Clone, Copy, Debug)]
pub struct InterruptCosts {
    /// Fixed cost of taking one interrupt (context save, handler entry,
    /// cache pollution).
    pub per_interrupt: SimDuration,
    /// Per-segment protocol processing (checksum already on NIC; header
    /// parsing, socket demux, copy scheduling).
    pub per_segment: SimDuration,
}

impl InterruptCosts {
    /// The calibration used throughout: 12 µs per interrupt, 3 µs per
    /// segment. At these costs per-frame interrupts at GigE line rate
    /// would consume ~122% of the CPU — the infeasibility the paper
    /// asserts (checked by a unit test below).
    pub fn athlon_linux24() -> InterruptCosts {
        InterruptCosts {
            per_interrupt: SimDuration::from_micros(12),
            per_segment: SimDuration::from_micros(3),
        }
    }

    /// Total CPU time to service one interrupt covering `segments`
    /// coalesced segments.
    pub fn service_time(&self, segments: u32) -> SimDuration {
        self.per_interrupt + self.per_segment * u64::from(segments)
    }
}

/// When the NIC raises a receive interrupt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModerationPolicy {
    /// Interrupt on every frame (the infeasible baseline; kept for the
    /// protocol ablation bench).
    PerFrame,
    /// Coalesce: interrupt when `max_frames` are pending or `timeout`
    /// after the first pending frame, whichever first. SysKonnect-class
    /// defaults are tens of frames / ~100 µs.
    Coalesced {
        /// Frame-count threshold.
        max_frames: u32,
        /// Timer from first un-serviced frame.
        timeout: SimDuration,
    },
}

impl ModerationPolicy {
    /// The SysKonnect-like default used for the Gigabit Ethernet runs.
    pub fn syskonnect_default() -> ModerationPolicy {
        ModerationPolicy::Coalesced {
            max_frames: 16,
            timeout: SimDuration::from_micros(100),
        }
    }
}

/// What the NIC model must do after notifying the moderator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ModeratorAction {
    /// Raise the interrupt now.
    FireNow,
    /// Arm (or keep) a timer to fire after this delay from *now*.
    ArmTimer(SimDuration),
    /// Nothing to do (timer already armed, or spurious timer).
    None,
}

/// The coalescing state machine. Pure — the owning NIC component calls
/// [`on_frame`](Self::on_frame) per arrival, schedules timers for
/// [`ModeratorAction::ArmTimer`], calls [`on_timer`](Self::on_timer) when
/// they fire, and [`service`](Self::service) when the interrupt is taken.
#[derive(Clone, Debug)]
pub struct InterruptModerator {
    policy: ModerationPolicy,
    pending: u32,
    timer_armed: bool,
    /// Timer generation counter: a serviced batch invalidates in-flight
    /// timers so a stale timer event is recognised and ignored.
    generation: u64,
    interrupts_raised: u64,
    frames_seen: u64,
}

impl InterruptModerator {
    /// New moderator with the given policy.
    pub fn new(policy: ModerationPolicy) -> InterruptModerator {
        InterruptModerator {
            policy,
            pending: 0,
            timer_armed: false,
            generation: 0,
            interrupts_raised: 0,
            frames_seen: 0,
        }
    }

    /// A frame has arrived in the NIC ring.
    pub fn on_frame(&mut self) -> ModeratorAction {
        self.pending += 1;
        self.frames_seen += 1;
        match self.policy {
            ModerationPolicy::PerFrame => ModeratorAction::FireNow,
            ModerationPolicy::Coalesced {
                max_frames,
                timeout,
            } => {
                if self.pending >= max_frames {
                    ModeratorAction::FireNow
                } else if !self.timer_armed {
                    self.timer_armed = true;
                    ModeratorAction::ArmTimer(timeout)
                } else {
                    ModeratorAction::None
                }
            }
        }
    }

    /// A previously armed timer fired; `generation` is the value of
    /// [`timer_generation`](Self::timer_generation) captured when it was
    /// armed.
    pub fn on_timer(&mut self, generation: u64) -> ModeratorAction {
        if generation != self.generation || self.pending == 0 {
            // Stale: an interrupt already serviced this batch.
            return ModeratorAction::None;
        }
        ModeratorAction::FireNow
    }

    /// Current timer generation; capture when arming a timer.
    pub fn timer_generation(&self) -> u64 {
        self.generation
    }

    /// The interrupt is being taken: returns the number of frames
    /// serviced and resets the batch.
    pub fn service(&mut self) -> u32 {
        let n = self.pending;
        self.pending = 0;
        self.timer_armed = false;
        self.generation += 1;
        self.interrupts_raised += 1;
        n
    }

    /// Frames seen / interrupts raised so far (for the ablation reports).
    pub fn totals(&self) -> (u64, u64) {
        (self.frames_seen, self.interrupts_raised)
    }

    /// Frames currently awaiting an interrupt.
    pub fn pending(&self) -> u32 {
        self.pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_frame_interrupts_are_infeasible_at_line_rate() {
        // The Section 4.1 claim: max-size GigE frames arrive every
        // 12.304 µs; servicing each costs 15 µs > arrival interval.
        let costs = InterruptCosts::athlon_linux24();
        let per_frame = costs.service_time(1);
        let arrival_interval = SimDuration::from_nanos(12_304);
        assert!(per_frame > arrival_interval);
    }

    #[test]
    fn coalescing_restores_feasibility() {
        // 16 frames per interrupt: 12 + 16×3 = 60 µs per 16×12.3 µs.
        let costs = InterruptCosts::athlon_linux24();
        let batch = costs.service_time(16);
        let arrival_interval = SimDuration::from_nanos(12_304 * 16);
        assert!(batch < arrival_interval);
    }

    #[test]
    fn per_frame_policy_fires_every_time() {
        let mut m = InterruptModerator::new(ModerationPolicy::PerFrame);
        for _ in 0..5 {
            assert_eq!(m.on_frame(), ModeratorAction::FireNow);
            assert_eq!(m.service(), 1);
        }
        assert_eq!(m.totals(), (5, 5));
    }

    #[test]
    fn coalesced_fires_on_count_threshold() {
        let mut m = InterruptModerator::new(ModerationPolicy::Coalesced {
            max_frames: 3,
            timeout: SimDuration::from_micros(100),
        });
        assert!(matches!(m.on_frame(), ModeratorAction::ArmTimer(_)));
        assert_eq!(m.on_frame(), ModeratorAction::None);
        assert_eq!(m.on_frame(), ModeratorAction::FireNow);
        assert_eq!(m.service(), 3);
    }

    #[test]
    fn coalesced_timer_flushes_partial_batch() {
        let mut m = InterruptModerator::new(ModerationPolicy::syskonnect_default());
        let action = m.on_frame();
        let generation = m.timer_generation();
        assert!(matches!(action, ModeratorAction::ArmTimer(_)));
        assert_eq!(m.on_timer(generation), ModeratorAction::FireNow);
        assert_eq!(m.service(), 1);
    }

    #[test]
    fn stale_timer_is_ignored() {
        let mut m = InterruptModerator::new(ModerationPolicy::Coalesced {
            max_frames: 2,
            timeout: SimDuration::from_micros(100),
        });
        m.on_frame();
        let stale_generation = m.timer_generation();
        assert_eq!(m.on_frame(), ModeratorAction::FireNow); // threshold
        assert_eq!(m.service(), 2);
        // The armed timer now fires late: must be recognised as stale.
        assert_eq!(m.on_timer(stale_generation), ModeratorAction::None);
    }

    #[test]
    fn timer_rearms_for_next_batch() {
        let mut m = InterruptModerator::new(ModerationPolicy::syskonnect_default());
        m.on_frame();
        let generation = m.timer_generation();
        m.on_timer(generation);
        m.service();
        // Next frame after service arms a fresh timer.
        assert!(matches!(m.on_frame(), ModeratorAction::ArmTimer(_)));
    }
}
