//! Node stall windows: the CPU-side half of `FaultEvent::NodeStall`.
//!
//! A stalled node's processor services nothing — kernel completions,
//! interrupt handlers and driver state machines all freeze until the
//! window closes. The wire half (both link directions blacked out) is
//! compiled by `acc-chaos` into port impairments; this type lets a
//! driver defer its own event handling for the same windows, so the
//! host-side work resumes exactly at `until` instead of being silently
//! processed mid-stall.

use acc_sim::SimTime;

/// A sorted set of half-open `[from, until)` windows during which a
/// node's CPU is frozen.
#[derive(Debug, Clone, Default)]
pub struct StallSchedule {
    windows: Vec<(SimTime, SimTime)>,
}

impl StallSchedule {
    /// Build from `(from, until)` pairs in any order.
    pub fn new(mut windows: Vec<(SimTime, SimTime)>) -> StallSchedule {
        windows.sort();
        StallSchedule { windows }
    }

    /// Whether the schedule has no windows (the happy-path case: one
    /// `Vec::is_empty` check per event, nothing else).
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// If `now` falls inside a stall window, the instant the CPU wakes
    /// up; `None` when the node is running. Windows are half-open, so
    /// an event deferred to `until` is then serviced normally.
    pub fn deferral(&self, now: SimTime) -> Option<SimTime> {
        self.windows
            .iter()
            .find(|&&(from, until)| now >= from && now < until)
            .map(|&(_, until)| until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use acc_sim::SimDuration;

    fn ms(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    #[test]
    fn empty_schedule_never_defers() {
        let s = StallSchedule::default();
        assert!(s.is_empty());
        assert_eq!(s.deferral(ms(5)), None);
    }

    #[test]
    fn windows_are_half_open() {
        let s = StallSchedule::new(vec![(ms(10), ms(20))]);
        assert_eq!(s.deferral(ms(9)), None);
        assert_eq!(s.deferral(ms(10)), Some(ms(20)));
        assert_eq!(s.deferral(ms(19)), Some(ms(20)));
        assert_eq!(s.deferral(ms(20)), None);
    }

    #[test]
    fn unordered_windows_are_sorted() {
        let s = StallSchedule::new(vec![(ms(30), ms(40)), (ms(10), ms(20))]);
        assert_eq!(s.deferral(ms(15)), Some(ms(20)));
        assert_eq!(s.deferral(ms(35)), Some(ms(40)));
        assert_eq!(s.deferral(ms(25)), None);
    }
}
