//! Calibrated host-CPU cost models for the application kernels.
//!
//! The simulator charges compute time from closed-form models whose
//! constants are anchored to the paper's own measurements on the 1 GHz
//! Athlon testbed:
//!
//! * **Count sort** — Fig. 5(a) shows ≈2.3 s for the full 2²⁵-key problem
//!   on one processor ⇒ ≈15 M keys/s when buckets are cache-resident.
//! * **Bucket sort** — Section 4.2 attributes "over 5 seconds in the
//!   serial implementation" to the two bucket-sort phases of 2²⁵ keys
//!   ⇒ ≈13 M keys/s per pass on DRAM-resident data.
//! * **1D FFT** — FFTW-class split-radix code sustains a few hundred
//!   MFLOPS on this machine; 350 MFLOPS cache-resident / 150 MFLOPS
//!   DRAM-resident reproduces the compute curve and its cache knees
//!   (the paper: "the curve is smooth except at 2–3 and 6–8 processors
//!   where the local partition fits into a faster level of the memory
//!   hierarchy").
//! * **Quicksort** — the paper measured count sort "as much as 2.5×
//!   faster than quicksort"; the model gives quicksort the standard
//!   `n log n` comparison cost at a rate that lands in that ratio.
//!
//! All methods return [`SimDuration`] so drivers charge them directly.

use acc_sim::{DataSize, SimDuration};

use crate::memory::MemoryHierarchy;

/// Calibrated per-node kernel cost models.
#[derive(Clone, Debug)]
pub struct HostKernels {
    mem: MemoryHierarchy,
    /// Effective FFT rate when the working set is cache-resident (FLOP/s).
    flops_cache: f64,
    /// Effective FFT rate when the working set streams from DRAM.
    flops_dram: f64,
    /// Bucket-sort throughput, cache-resident (keys/s).
    bucket_rate_cache: f64,
    /// Bucket-sort throughput, DRAM-resident (keys/s).
    bucket_rate_dram: f64,
    /// Count-sort throughput when the bucket fits cache (keys/s).
    count_rate_cache: f64,
    /// Count-sort throughput when it does not (keys/s).
    count_rate_dram: f64,
    /// Quicksort rate divisor: comparisons/s.
    quicksort_cmp_rate: f64,
    /// Fraction of streaming bandwidth achieved by the strided accesses
    /// of a local matrix transpose in DRAM.
    transpose_efficiency_dram: f64,
    /// Same, when the block is cache-resident.
    transpose_efficiency_cache: f64,
}

impl HostKernels {
    /// The 1 GHz Athlon calibration used throughout the reproduction.
    pub fn athlon_1ghz() -> HostKernels {
        HostKernels {
            mem: MemoryHierarchy::athlon_1ghz(),
            flops_cache: 350.0e6,
            flops_dram: 150.0e6,
            bucket_rate_cache: 40.0e6,
            bucket_rate_dram: 13.0e6,
            count_rate_cache: 15.0e6,
            count_rate_dram: 5.0e6,
            quicksort_cmp_rate: 90.0e6,
            transpose_efficiency_dram: 0.35,
            transpose_efficiency_cache: 0.8,
        }
    }

    /// The memory hierarchy behind these models.
    pub fn memory(&self) -> &MemoryHierarchy {
        &self.mem
    }

    /// Time for one 1D complex-double FFT of length `n`, given the total
    /// per-processor working set (which decides the cache residency of
    /// the row data). Cost = `5 n log₂ n` FLOPs at the effective rate.
    pub fn fft_row_time(&self, n: usize, working_set: DataSize) -> SimDuration {
        assert!(
            n.is_power_of_two() && n >= 2,
            "FFT length must be a power of two ≥ 2"
        );
        let flops = 5.0 * n as f64 * (n.trailing_zeros() as f64);
        let rate = if self.mem.fits_in_cache(working_set) {
            self.flops_cache
        } else {
            self.flops_dram
        };
        SimDuration::from_secs_f64(flops / rate)
    }

    /// Paper Eq. 4: `T_compute = 2 × T_1D-FFT(rows) × rows / P`, with the
    /// per-processor partition (`rows² × 16 / P` bytes) as the working
    /// set.
    pub fn fft_compute_time(&self, rows: usize, p: usize) -> SimDuration {
        assert!(p >= 1);
        let partition = DataSize::from_bytes(rows as u64 * rows as u64 * 16 / p as u64);
        let per_row = self.fft_row_time(rows, partition);
        SimDuration::from_secs_f64(2.0 * per_row.as_secs_f64() * rows as f64 / p as f64)
    }

    /// Host-side local transpose of a `bytes` partition (phase 1.1 in
    /// Fig. 2a): read + write passes at strided-access efficiency.
    pub fn local_transpose_time(&self, bytes: DataSize) -> SimDuration {
        let bw = self.mem.effective_bandwidth(bytes);
        let eff = if self.mem.fits_in_cache(bytes) {
            self.transpose_efficiency_cache
        } else {
            self.transpose_efficiency_dram
        };
        // Two streams (load + store) through the bottleneck level.
        let effective = bw.scaled(eff);
        effective.transfer_time(bytes) * 2
    }

    /// Host-side final permutation / interleave (phase 2.3 in Fig. 2a) —
    /// same access pattern class as the local transpose.
    pub fn final_permutation_time(&self, bytes: DataSize) -> SimDuration {
        self.local_transpose_time(bytes)
    }

    /// One stable bucket-distribution pass over `n_keys` keys whose data
    /// occupies `working_set`.
    pub fn bucket_sort_time(&self, n_keys: u64, working_set: DataSize) -> SimDuration {
        let rate = if self.mem.fits_in_cache(working_set) {
            self.bucket_rate_cache
        } else {
            self.bucket_rate_dram
        };
        SimDuration::from_secs_f64(n_keys as f64 / rate)
    }

    /// Count sort of `n_keys` keys; `bucket_bytes` is the per-bucket
    /// working set that decides cache residency (the ≥128-bucket rule).
    pub fn count_sort_time(&self, n_keys: u64, bucket_bytes: DataSize) -> SimDuration {
        let rate = if self.mem.fits_in_cache(bucket_bytes) {
            self.count_rate_cache
        } else {
            self.count_rate_dram
        };
        SimDuration::from_secs_f64(n_keys as f64 / rate)
    }

    /// Quicksort baseline: `1.39 n log₂ n` expected comparisons.
    pub fn quicksort_time(&self, n_keys: u64) -> SimDuration {
        if n_keys < 2 {
            return SimDuration::ZERO;
        }
        let n = n_keys as f64;
        let cmps = 1.39 * n * n.log2();
        SimDuration::from_secs_f64(cmps / self.quicksort_cmp_rate)
    }

    /// Element-wise reduction of `sources` double-precision vectors of
    /// `elems` elements each: memory-bound streaming of every source
    /// plus the accumulator traffic.
    pub fn reduce_time(&self, elems: u64, sources: u64) -> SimDuration {
        let stream_bytes = DataSize::from_bytes(sources * elems * 8);
        let working = DataSize::from_bytes((sources + 1) * elems * 8);
        // One read stream per source plus accumulator read+write ≈ 1.5×.
        let bw = self.mem.effective_bandwidth(working).scaled(0.66);
        bw.transfer_time(stream_bytes)
    }

    /// Plain memory copy of `bytes` within a `working_set`-sized region.
    pub fn memcpy_time(&self, bytes: DataSize, working_set: DataSize) -> SimDuration {
        // Load + store.
        self.mem
            .effective_bandwidth(working_set)
            .transfer_time(bytes)
            * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k() -> HostKernels {
        HostKernels::athlon_1ghz()
    }

    #[test]
    fn count_sort_calibration_matches_fig5a() {
        // 2²⁵ keys in cache-resident buckets ≈ 2.2 s (paper shows ≈2.3 s).
        let t = k().count_sort_time(1 << 25, DataSize::from_kib(128));
        let secs = t.as_secs_f64();
        assert!((1.9..2.6).contains(&secs), "count sort {secs} s");
    }

    #[test]
    fn serial_bucket_sorting_exceeds_five_seconds() {
        // Section 4.2: "over 5 seconds in the serial implementation" for
        // the two DRAM-resident bucket passes of 2²⁵ keys.
        let kern = k();
        let per_pass = kern.bucket_sort_time(1 << 25, DataSize::from_mib(128));
        let both = per_pass + per_pass;
        assert!(both.as_secs_f64() > 5.0, "got {} s", both.as_secs_f64());
        assert!(both.as_secs_f64() < 7.0, "got {} s", both.as_secs_f64());
    }

    #[test]
    fn count_sort_beats_quicksort_by_about_2_5x() {
        // Section 3.2: count sort "as much as 2.5× faster than quicksort".
        let kern = k();
        let n = 1u64 << 22;
        let qs = kern.quicksort_time(n).as_secs_f64();
        // Pipeline: one bucket pass over the full DRAM-resident array,
        // then cache-resident count sorts (the measured configuration).
        let cs = kern
            .bucket_sort_time(n, DataSize::from_bytes(n * 4))
            .as_secs_f64()
            + kern
                .count_sort_time(n, DataSize::from_kib(128))
                .as_secs_f64();
        let ratio = qs / cs;
        assert!(
            (1.8..3.2).contains(&ratio),
            "quicksort/countsort ratio {ratio}"
        );
    }

    #[test]
    fn fft_compute_knees_at_cache_boundaries() {
        // 256×256: partition leaves DRAM between P=2 and P=4 — per-row
        // time drops by the cache/DRAM rate ratio there, and scaling is
        // superlinear across the knee.
        let kern = k();
        let t2 = kern.fft_compute_time(256, 2).as_secs_f64();
        let t4 = kern.fft_compute_time(256, 4).as_secs_f64();
        let t8 = kern.fft_compute_time(256, 8).as_secs_f64();
        assert!(t2 / t4 > 2.0, "superlinear drop at knee: {}", t2 / t4);
        // Past the knee, scaling is linear again.
        let lin = t4 / t8;
        assert!((1.9..2.1).contains(&lin), "linear past knee: {lin}");
    }

    #[test]
    fn fft_serial_time_is_paper_scale() {
        // 512×512 serial compute should be tens-to-hundreds of ms
        // (Fig. 4(b) shows transpose-phase times up to ~180 ms on a
        // comparable scale).
        let t = k().fft_compute_time(512, 1).as_millis_f64();
        assert!((100.0..400.0).contains(&t), "512² serial compute {t} ms");
    }

    #[test]
    fn local_transpose_slower_than_memcpy() {
        let kern = k();
        let s = DataSize::from_mib(4);
        assert!(kern.local_transpose_time(s) > kern.memcpy_time(s, s));
    }

    #[test]
    fn cache_resident_kernels_are_faster() {
        let kern = k();
        let small = DataSize::from_kib(128);
        let big = DataSize::from_mib(16);
        assert!(kern.bucket_sort_time(1 << 20, small) < kern.bucket_sort_time(1 << 20, big));
        assert!(kern.count_sort_time(1 << 20, small) < kern.count_sort_time(1 << 20, big));
        assert!(kern.fft_row_time(256, small) < kern.fft_row_time(256, big));
    }

    #[test]
    fn quicksort_degenerate_inputs() {
        assert_eq!(k().quicksort_time(0), SimDuration::ZERO);
        assert_eq!(k().quicksort_time(1), SimDuration::ZERO);
        assert!(k().quicksort_time(2) > SimDuration::ZERO);
    }
}
