//! Verifier ⇔ simulator agreement, and the zero-false-negative
//! mutation property.
//!
//! The static verifier is only trustworthy if it accepts exactly what
//! the lockstep simulator accepts. Two obligations:
//!
//! 1. **Agreement on clean schedules** — every algorithm × op × p cell
//!    the builders support at p ∈ 2..=16 passes both the simulator
//!    (`run_lockstep` output == `oracle`) and the verifier.
//! 2. **Zero false negatives under mutation** — a seeded xorshift
//!    mutator breaks schedules in every way the engine could observe
//!    (dropped/duplicated/mis-sized/retargeted legs, fold-op swaps);
//!    whenever the simulator rejects a mutant (panic or wrong output),
//!    the verifier must reject it too. Pairing-visible mutations must
//!    be rejected outright.

use std::panic::{catch_unwind, AssertUnwindSafe};

use acc_coll::plan::{self, build_all, oracle, run_lockstep, RecvOp, Schedule};
use acc_coll::verify::{default_elems, verify_conservation, verify_schedules};
use acc_coll::{Algorithm, CollectiveOp};

/// xorshift64: deterministic, seedable, no external deps.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn inputs_for(p: usize, elems: usize) -> Vec<Vec<f64>> {
    (0..p)
        .map(|r| (0..elems).map(|i| ((r * 31 + i * 7) % 97) as f64).collect())
        .collect()
}

/// The simulator's verdict: does lockstep execution complete and match
/// the semantic oracle?
fn simulator_accepts(op: CollectiveOp, p: usize, elems: usize, schedules: &[Schedule]) -> bool {
    let inputs = inputs_for(p, elems);
    let outputs = match catch_unwind(AssertUnwindSafe(|| run_lockstep(schedules, &inputs))) {
        Ok(outputs) => outputs,
        Err(_) => return false,
    };
    outputs == oracle(op, p, &inputs)
}

/// The verifier's verdict: structural pairing + modular conservation.
fn verifier_accepts(op: CollectiveOp, elems: usize, schedules: &[Schedule]) -> bool {
    verify_schedules(schedules).is_ok() && verify_conservation(op, elems, schedules).is_ok()
}

#[test]
fn verifier_and_simulator_agree_on_every_clean_cell() {
    let mut cells = 0;
    for p in 2..=16usize {
        for op in CollectiveOp::ALL {
            let elems = default_elems(op, p);
            for algo in op.algorithms() {
                if !plan::supports(op, algo, p, elems) {
                    continue;
                }
                let schedules = build_all(op, algo, p, elems);
                assert!(
                    simulator_accepts(op, p, elems, &schedules),
                    "simulator rejects clean {op}/{algo} p={p}"
                );
                assert!(
                    verifier_accepts(op, elems, &schedules),
                    "verifier rejects clean {op}/{algo} p={p}"
                );
                cells += 1;
            }
        }
    }
    assert!(cells > 100, "grid collapsed: only {cells} cells exercised");
}

// --- mutation machinery ----------------------------------------------------

#[derive(Clone, Copy, Debug)]
enum Mutation {
    DropSend,
    DropRecv,
    DuplicateSend,
    ShrinkRecvRange,
    RetargetSend,
    SwapRecvOp,
}

/// Apply `m` to a random legal site; `false` when the schedule set has
/// no applicable site.
fn apply(m: Mutation, schedules: &mut [Schedule], rng: &mut Rng) -> bool {
    let p = schedules.len();
    // Collect candidate (rank, round) sites so the pick is uniform-ish.
    let sites = |want_send: bool, schedules: &[Schedule]| -> Vec<(usize, usize)> {
        let mut v = Vec::new();
        for (rank, s) in schedules.iter().enumerate() {
            for (t, round) in s.rounds.iter().enumerate() {
                let n = if want_send {
                    round.sends.len()
                } else {
                    round.recvs.len()
                };
                if n > 0 {
                    v.push((rank, t));
                }
            }
        }
        v
    };
    match m {
        Mutation::DropSend => {
            let v = sites(true, schedules);
            if v.is_empty() {
                return false;
            }
            let (rank, t) = v[rng.below(v.len())];
            let sends = &mut schedules[rank].rounds[t].sends;
            let i = rng.below(sends.len());
            sends.remove(i);
            true
        }
        Mutation::DropRecv => {
            let v = sites(false, schedules);
            if v.is_empty() {
                return false;
            }
            let (rank, t) = v[rng.below(v.len())];
            let recvs = &mut schedules[rank].rounds[t].recvs;
            let i = rng.below(recvs.len());
            recvs.remove(i);
            true
        }
        Mutation::DuplicateSend => {
            let v = sites(true, schedules);
            if v.is_empty() {
                return false;
            }
            let (rank, t) = v[rng.below(v.len())];
            let sends = &mut schedules[rank].rounds[t].sends;
            let dup = sends[rng.below(sends.len())].clone();
            sends.push(dup);
            true
        }
        Mutation::ShrinkRecvRange => {
            let v = sites(false, schedules);
            if v.is_empty() {
                return false;
            }
            let (rank, t) = v[rng.below(v.len())];
            let recvs = &mut schedules[rank].rounds[t].recvs;
            let i = rng.below(recvs.len());
            let Some(rng_) = recvs[i].ranges.iter_mut().find(|r| r.end > r.start) else {
                return false;
            };
            rng_.end -= 1;
            true
        }
        Mutation::RetargetSend => {
            if p < 3 {
                return false;
            }
            let v = sites(true, schedules);
            if v.is_empty() {
                return false;
            }
            let (rank, t) = v[rng.below(v.len())];
            let taken: Vec<usize> = schedules[rank].rounds[t]
                .sends
                .iter()
                .map(|s| s.to)
                .collect();
            let sends = &mut schedules[rank].rounds[t].sends;
            let i = rng.below(sends.len());
            let start = rng.below(p);
            let new_to = (0..p)
                .map(|k| (start + k) % p)
                .find(|&cand| cand != rank && !taken.contains(&cand));
            let Some(new_to) = new_to else {
                return false;
            };
            sends[i].to = new_to;
            true
        }
        Mutation::SwapRecvOp => {
            let v = sites(false, schedules);
            if v.is_empty() {
                return false;
            }
            let (rank, t) = v[rng.below(v.len())];
            let recvs = &mut schedules[rank].rounds[t].recvs;
            let i = rng.below(recvs.len());
            recvs[i].op = match recvs[i].op {
                RecvOp::Sum => RecvOp::Copy,
                RecvOp::Copy => RecvOp::Sum,
                RecvOp::Discard => RecvOp::Sum,
            };
            true
        }
    }
}

#[test]
fn verifier_has_zero_false_negatives_on_the_mutation_grid() {
    // The simulator panics on broken pairings; keep the log quiet so
    // thousands of expected panics don't swamp the test output.
    std::panic::set_hook(Box::new(|_| {}));
    let mutations = [
        Mutation::DropSend,
        Mutation::DropRecv,
        Mutation::DuplicateSend,
        Mutation::ShrinkRecvRange,
        Mutation::RetargetSend,
        Mutation::SwapRecvOp,
    ];
    let mut tried = 0usize;
    let mut sim_rejected = 0usize;
    for p in [4usize, 5, 8, 16] {
        for op in CollectiveOp::ALL {
            let elems = default_elems(op, p);
            for algo in op.algorithms() {
                if !plan::supports(op, algo, p, elems) {
                    continue;
                }
                let clean = build_all(op, algo, p, elems);
                for (mi, &m) in mutations.iter().enumerate() {
                    for seed in 0..3u64 {
                        let mut rng = Rng(0x9E37_79B9_7F4A_7C15
                            ^ (seed + 1).wrapping_mul(p as u64 * 131 + mi as u64 * 17 + 1));
                        let mut mutant = clean.clone();
                        if !apply(m, &mut mutant, &mut rng) {
                            continue;
                        }
                        tried += 1;
                        let sim_ok = simulator_accepts(op, p, elems, &mutant);
                        let ver_ok = verifier_accepts(op, elems, &mutant);
                        if !sim_ok {
                            sim_rejected += 1;
                        }
                        assert!(
                            sim_ok || !ver_ok,
                            "false negative: simulator rejects a {m:?} mutant of \
                             {op}/{algo} p={p} seed={seed} but the verifier accepts it"
                        );
                        // Every mutation except the fold-op swap is
                        // visible to pairing alone and must be caught
                        // outright (the swap can be benign when the
                        // copy target is still zero).
                        if !matches!(m, Mutation::SwapRecvOp) {
                            assert!(
                                !ver_ok,
                                "pairing-visible {m:?} mutant of {op}/{algo} p={p} \
                                 seed={seed} slipped past the verifier"
                            );
                        }
                    }
                }
            }
        }
    }
    let _ = std::panic::take_hook();
    assert!(tried > 500, "mutation grid collapsed: only {tried} mutants");
    assert!(
        sim_rejected > tried / 2,
        "mutator is too gentle: simulator rejected only {sim_rejected}/{tried}"
    );
}
