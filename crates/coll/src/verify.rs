//! # Static collective-schedule verifier
//!
//! Proves, for a set of per-rank lockstep schedules and **without
//! running the simulation engine**, the four properties the thousand-
//! rank topologies (ROADMAP item 1) need before "simulate it to find
//! out" becomes untenable:
//!
//! 1. **Deadlock-freedom** (`V1`) — every send has exactly one matching
//!    recv in the same round with the same element count, and vice
//!    versa. Because the schedule IR executes rounds in a fixed total
//!    order and all matching is *within* a round, the communication
//!    dependence graph is layered by round index: an edge can only
//!    point from round *t* to round *t* (send→recv) or *t* to *t+1*
//!    (program order), so checked pairing + the total round order is a
//!    proof that the graph is acyclic and every rank terminates after
//!    `rounds` steps. The critical path is therefore exactly the round
//!    count — no graph search required.
//! 2. **Conservation** (`V2`) — each rank's contribution is folded
//!    exactly once into every result. The verifier executes the
//!    schedules *abstractly* over the field Z mod (2^61 − 1) with
//!    deterministic pseudo-random probe values and compares every
//!    rank's output against a modular mirror of [`plan::oracle`]. A
//!    dropped, duplicated or misrouted contribution perturbs a sum by a
//!    nonzero field element, so a collision (a wrong schedule passing)
//!    requires the probe values to hit a root of the error polynomial —
//!    a Schwartz–Zippel-style certificate, exact over integers and free
//!    of f64 rounding concerns.
//! 3. **Tag uniqueness across failover re-plans** (`V3`) — the
//!    `CollDriver` namespaces streams/channels/self-timers as
//!    `epoch * (rounds + 1) + round` and truncates to a `u16` channel
//!    id. The verifier enumerates the tag space and reports the number
//!    of failover epochs a schedule can absorb before the channel id
//!    saturates; fewer than one spare epoch is a violation.
//! 4. **CLB-budget admissibility** (`V4`) — the combined-path offload
//!    plan is re-derived per device (prototype XC4085XLA and the
//!    projected Virtex) and the protocol-only plan must always fit.
//!    Combined-path over-budget cells are *recorded* (that is the
//!    structured pre-flight rejection the cluster layer reproduces at
//!    run time), not flagged: only a protocol-only rejection is a
//!    verifier violation, because no technology can then run the cell.
//!
//! Malformed per-rank IR (out-of-bounds ranges, self-sends, bad peer
//! indices) is reported as `V5` before any other analysis.
//!
//! ## Memory-bounded depth
//!
//! [`verify_cell`] streams one rank's schedule at a time: build, check
//! structurally, compress into a flat [`Compact`] image, drop the
//! builder output. When the projected footprint of holding every
//! rank's compact image plus the modular state exceeds the budget
//! (`ACC_VERIFY_MEM_MB`, default 512 MiB), the cell downgrades to
//! **structural** depth: pairing is still checked per round via
//! order-independent multiset fingerprints (two independent 64-bit
//! mixes per leg set), but conservation is skipped. The downgrade is
//! never silent — it is recorded in the [`CellProof`] and surfaced by
//! `acc-verify`.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use acc_fpga::{FpgaDevice, InicMode};

use crate::plan::{self, ranges_elems, Schedule};
use crate::{offload, Algorithm, CollectiveOp};

/// The Mersenne prime 2^61 − 1 the conservation pass computes over.
pub const FIELD_P: u64 = (1 << 61) - 1;

/// Default memory budget for a single cell's full-depth verification.
pub const DEFAULT_MEM_BUDGET: usize = 512 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Diagnostics
// ---------------------------------------------------------------------------

/// One verifier finding, rendered rustc-style like acc-lint's
/// diagnostics (`error[Vn]: ...` + `  --> location`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable code: `V1` pairing/deadlock, `V2` conservation, `V3`
    /// tag namespace, `V4` CLB admissibility, `V5` malformed IR.
    pub code: &'static str,
    /// Where: a cell/round/rank locator, not a file path.
    pub at: String,
    /// What went wrong and what it breaks.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "error[{}]: {}\n  --> {}",
            self.code, self.message, self.at
        )
    }
}

fn violation(code: &'static str, at: String, message: String) -> Violation {
    Violation { code, at, message }
}

/// Proof summary for one structural pass over a schedule set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructureProof {
    /// Lockstep rounds all ranks agree on.
    pub rounds: usize,
    /// Total send + recv legs across all ranks and rounds.
    pub total_legs: u64,
    /// Length of the longest dependence chain. Equal to `rounds` by
    /// the layering theorem in the module docs.
    pub critical_path_rounds: usize,
}

/// How deep a cell's verification went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Depth {
    /// Structural + conservation (modular execution vs oracle).
    Full,
    /// Structural fingerprints only: the cell's projected footprint
    /// exceeded the memory budget, so conservation was skipped.
    Structural,
}

impl Depth {
    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Depth::Full => "full",
            Depth::Structural => "structural",
        }
    }
}

/// One device/mode admissibility probe of the offload plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OffloadCheck {
    /// Device label (`xc4085xla`, `virtex_next_gen`).
    pub device: &'static str,
    /// INIC mode label (`combined`, `protocol`).
    pub mode: &'static str,
    /// Whether the probed schedule folds data on arrival.
    pub needs_reduce: bool,
    /// Whether the bitstream fits the device's CLB pool.
    pub admissible: bool,
    /// CLBs the bitstream needs.
    pub required: u32,
    /// CLBs the device has.
    pub available: u32,
}

/// Everything [`verify_cell`] proved about one algorithm × op × p cell.
#[derive(Debug, Clone)]
pub struct CellProof {
    pub op: CollectiveOp,
    pub algo: Algorithm,
    pub p: usize,
    pub elems: usize,
    /// Lockstep round count (= the critical path, see module docs).
    pub rounds: usize,
    /// Total send + recv legs across all ranks.
    pub total_legs: u64,
    /// Depth actually achieved under the memory budget.
    pub depth: Depth,
    /// Whether the modular-execution conservation check ran and passed.
    pub conservation_checked: bool,
    /// Failover epochs the `u16` channel-id namespace can absorb.
    pub max_failover_epochs: u64,
    /// Per device/mode CLB admissibility results.
    pub offload: Vec<OffloadCheck>,
}

// ---------------------------------------------------------------------------
// Modular arithmetic + probe values
// ---------------------------------------------------------------------------

fn add_mod(a: u64, b: u64) -> u64 {
    let s = a + b; // both < 2^61, no overflow in u64
    if s >= FIELD_P {
        s - FIELD_P
    } else {
        s
    }
}

/// splitmix64 finalizer: the bit mixer behind the probe values and the
/// structural fingerprints.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Deterministic probe value for element `i` of rank `rank`'s input.
fn probe(rank: usize, i: usize) -> u64 {
    mix64((rank as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ (i as u64)) % FIELD_P
}

fn probe_inputs(p: usize, elems: usize) -> Vec<Vec<u64>> {
    (0..p)
        .map(|r| (0..elems).map(|i| probe(r, i)).collect())
        .collect()
}

/// Modular mirror of [`plan::oracle`]: first-principles outputs over
/// Z mod (2^61 − 1), sharing no code with the schedule builders.
fn mod_oracle(op: CollectiveOp, p: usize, inputs: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let elems = inputs.first().map_or(0, Vec::len);
    let sum = |inputs: &[Vec<u64>]| -> Vec<u64> {
        let mut acc = vec![0u64; elems];
        for v in inputs {
            for (dst, &x) in acc.iter_mut().zip(v) {
                *dst = add_mod(*dst, x);
            }
        }
        acc
    };
    match op {
        CollectiveOp::AllReduce => vec![sum(inputs); p],
        CollectiveOp::ReduceScatter => {
            let s = sum(inputs);
            let bounds = plan::seg_bounds(elems, p);
            (0..p)
                .map(|r| s[bounds[r]..bounds[r + 1]].to_vec())
                .collect()
        }
        CollectiveOp::AllGather => {
            let all: Vec<u64> = inputs.iter().flatten().copied().collect();
            vec![all; p]
        }
        CollectiveOp::Broadcast => vec![inputs[0].clone(); p],
        CollectiveOp::Barrier => vec![Vec::new(); p],
        CollectiveOp::AllToAll => {
            let bounds = plan::seg_bounds(elems, p);
            (0..p)
                .map(|r| {
                    (0..p)
                        .flat_map(|src| inputs[src][bounds[r]..bounds[r + 1]].iter().copied())
                        .collect()
                })
                .collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Compact schedule image
// ---------------------------------------------------------------------------

const NO_INPUT: u32 = u32::MAX;

/// A rank's schedule flattened into struct-of-vectors form: ~45 bytes
/// per round-leg instead of the builder IR's nested `Vec`s, so a whole
/// p=1024 ring cell fits comfortably in the memory budget.
struct Compact {
    state_len: u32,
    input_at: u32,
    output: Range<u32>,
    /// `rounds + 1` offsets into `copies` / `sends` / `recvs`.
    round_copy_off: Vec<u32>,
    round_send_off: Vec<u32>,
    round_recv_off: Vec<u32>,
    /// `(src_lo, src_hi, dst)` per copy.
    copies: Vec<(u32, u32, u32)>,
    send_to: Vec<u32>,
    /// `sends + 1` offsets into `send_rngs`.
    send_rng_off: Vec<u32>,
    send_rngs: Vec<(u32, u32)>,
    recv_from: Vec<u32>,
    /// 0 = Sum, 1 = Copy, 2 = Discard.
    recv_op: Vec<u8>,
    /// `recvs + 1` offsets into `recv_rngs`.
    recv_rng_off: Vec<u32>,
    recv_rngs: Vec<(u32, u32)>,
}

impl Compact {
    fn from_schedule(s: &Schedule) -> Compact {
        let mut c = Compact {
            state_len: s.state_len as u32,
            input_at: s.input_at.map_or(NO_INPUT, |a| a as u32),
            output: s.output.start as u32..s.output.end as u32,
            round_copy_off: Vec::with_capacity(s.rounds.len() + 1),
            round_send_off: Vec::with_capacity(s.rounds.len() + 1),
            round_recv_off: Vec::with_capacity(s.rounds.len() + 1),
            copies: Vec::new(),
            send_to: Vec::new(),
            send_rng_off: vec![0],
            send_rngs: Vec::new(),
            recv_from: Vec::new(),
            recv_op: Vec::new(),
            recv_rng_off: vec![0],
            recv_rngs: Vec::new(),
        };
        for round in &s.rounds {
            c.round_copy_off.push(c.copies.len() as u32);
            c.round_send_off.push(c.send_to.len() as u32);
            c.round_recv_off.push(c.recv_from.len() as u32);
            for cp in &round.copies {
                c.copies
                    .push((cp.src.start as u32, cp.src.end as u32, cp.dst as u32));
            }
            for send in &round.sends {
                c.send_to.push(send.to as u32);
                for r in &send.ranges {
                    c.send_rngs.push((r.start as u32, r.end as u32));
                }
                c.send_rng_off.push(c.send_rngs.len() as u32);
            }
            for recv in &round.recvs {
                c.recv_from.push(recv.from as u32);
                c.recv_op.push(match recv.op {
                    plan::RecvOp::Sum => 0,
                    plan::RecvOp::Copy => 1,
                    plan::RecvOp::Discard => 2,
                });
                for r in &recv.ranges {
                    c.recv_rngs.push((r.start as u32, r.end as u32));
                }
                c.recv_rng_off.push(c.recv_rngs.len() as u32);
            }
        }
        c.round_copy_off.push(c.copies.len() as u32);
        c.round_send_off.push(c.send_to.len() as u32);
        c.round_recv_off.push(c.recv_from.len() as u32);
        c
    }

    fn rounds(&self) -> usize {
        self.round_send_off.len() - 1
    }

    /// Heap footprint, for the budget projection.
    fn bytes(&self) -> usize {
        4 * (self.round_copy_off.len() + self.round_send_off.len() + self.round_recv_off.len())
            + 12 * self.copies.len()
            + 4 * (self.send_to.len() + self.send_rng_off.len())
            + 8 * self.send_rngs.len()
            + 4 * (self.recv_from.len() + self.recv_rng_off.len())
            + self.recv_op.len()
            + 8 * self.recv_rngs.len()
    }
}

/// Execute compact schedules in lockstep over Z mod (2^61 − 1).
///
/// Mirrors `plan::run_lockstep` exactly — snapshot copies, gather in
/// range order, fold per recv op — but returns pairing failures as
/// [`Violation`]s instead of panicking, so a broken schedule yields a
/// diagnostic, not an abort.
fn mod_lockstep(
    compacts: &[Compact],
    inputs: &[Vec<u64>],
) -> Result<Vec<Vec<u64>>, Vec<Violation>> {
    let rounds = compacts.first().map_or(0, Compact::rounds);
    let mut states: Vec<Vec<u64>> = compacts
        .iter()
        .zip(inputs)
        .map(|(c, input)| {
            let mut st = vec![0u64; c.state_len as usize];
            if c.input_at != NO_INPUT {
                let at = c.input_at as usize;
                st[at..at + input.len()].copy_from_slice(input);
            }
            st
        })
        .collect();
    let mut violations = Vec::new();
    for t in 0..rounds {
        // Local copies, snapshot semantics.
        for (c, state) in compacts.iter().zip(states.iter_mut()) {
            let (lo, hi) = (
                c.round_copy_off[t] as usize,
                c.round_copy_off[t + 1] as usize,
            );
            if lo == hi {
                continue;
            }
            let snapshot = state.clone();
            for &(src_lo, src_hi, dst) in &c.copies[lo..hi] {
                let n = (src_hi - src_lo) as usize;
                state[dst as usize..dst as usize + n]
                    .copy_from_slice(&snapshot[src_lo as usize..src_hi as usize]);
            }
        }
        // Gather every send into the round mailbox.
        let mut mailbox: BTreeMap<(u32, u32), Vec<u64>> = BTreeMap::new();
        for (from, c) in compacts.iter().enumerate() {
            for s in c.round_send_off[t] as usize..c.round_send_off[t + 1] as usize {
                let to = c.send_to[s];
                let mut payload = Vec::new();
                for &(lo, hi) in
                    &c.send_rngs[c.send_rng_off[s] as usize..c.send_rng_off[s + 1] as usize]
                {
                    payload.extend_from_slice(&states[from][lo as usize..hi as usize]);
                }
                if mailbox.insert((from as u32, to), payload).is_some() {
                    violations.push(violation(
                        "V1",
                        format!("round {t}, rank {from}"),
                        format!("duplicate send {from}->{to} in one round"),
                    ));
                }
            }
        }
        // Deliver every expected recv.
        for (to, c) in compacts.iter().enumerate() {
            for r in c.round_recv_off[t] as usize..c.round_recv_off[t + 1] as usize {
                let from = c.recv_from[r];
                let Some(payload) = mailbox.remove(&(from, to as u32)) else {
                    violations.push(violation(
                        "V1",
                        format!("round {t}, rank {to}"),
                        format!(
                            "rank {to} blocks on a message from rank {from} that is \
                             never sent this round (deadlock)"
                        ),
                    ));
                    continue;
                };
                let rngs = &c.recv_rngs[c.recv_rng_off[r] as usize..c.recv_rng_off[r + 1] as usize];
                let want: usize = rngs.iter().map(|&(lo, hi)| (hi - lo) as usize).sum();
                if payload.len() != want {
                    violations.push(violation(
                        "V1",
                        format!("round {t}, rank {to}"),
                        format!(
                            "message {from}->{to} carries {} element(s) but the recv \
                             maps {want} (mis-sized leg)",
                            payload.len()
                        ),
                    ));
                    continue;
                }
                let state = &mut states[to];
                let mut at = 0usize;
                for &(lo, hi) in rngs {
                    let n = (hi - lo) as usize;
                    let chunk = &payload[at..at + n];
                    match c.recv_op[r] {
                        0 => {
                            for (dst, &add) in state[lo as usize..hi as usize].iter_mut().zip(chunk)
                            {
                                *dst = add_mod(*dst, add);
                            }
                        }
                        1 => state[lo as usize..hi as usize].copy_from_slice(chunk),
                        _ => {}
                    }
                    at += n;
                }
            }
        }
        for ((from, to), _) in mailbox {
            violations.push(violation(
                "V1",
                format!("round {t}, rank {from}"),
                format!("message {from}->{to} is sent but rank {to} never receives it"),
            ));
        }
        if !violations.is_empty() {
            return Err(violations);
        }
    }
    Ok(states
        .iter()
        .zip(compacts)
        .map(|(st, c)| st[c.output.start as usize..c.output.end as usize].to_vec())
        .collect())
}

// ---------------------------------------------------------------------------
// Structural checks over the builder IR
// ---------------------------------------------------------------------------

/// Per-rank IR legality (`V5`): every range inside the state, every
/// peer index inside the cluster, no self-messaging.
fn rank_legality(rank: usize, s: &Schedule, p: usize, out: &mut Vec<Violation>) {
    let n = s.state_len;
    let mut bad = |at: String, msg: String| out.push(violation("V5", at, msg));
    if s.output.start > s.output.end || s.output.end > n {
        bad(
            format!("rank {rank}"),
            format!("output range {:?} escapes the {n}-element state", s.output),
        );
    }
    if let Some(at) = s.input_at {
        if at > n {
            bad(
                format!("rank {rank}"),
                format!("input lands at {at}, past the {n}-element state"),
            );
        }
    }
    for (t, round) in s.rounds.iter().enumerate() {
        for c in &round.copies {
            if c.src.start > c.src.end || c.src.end > n || c.dst + c.src.len() > n {
                bad(
                    format!("round {t}, rank {rank}"),
                    format!(
                        "copy {:?} -> {} escapes the {n}-element state",
                        c.src, c.dst
                    ),
                );
            }
        }
        for send in &round.sends {
            if send.to >= p || send.to == rank {
                bad(
                    format!("round {t}, rank {rank}"),
                    format!("send targets rank {} (p={p}, self={rank})", send.to),
                );
            }
            for r in &send.ranges {
                if r.start > r.end || r.end > n {
                    bad(
                        format!("round {t}, rank {rank}"),
                        format!("send range {r:?} escapes the {n}-element state"),
                    );
                }
            }
        }
        for recv in &round.recvs {
            if recv.from >= p || recv.from == rank {
                bad(
                    format!("round {t}, rank {rank}"),
                    format!("recv names source rank {} (p={p}, self={rank})", recv.from),
                );
            }
            for r in &recv.ranges {
                if r.start > r.end || r.end > n {
                    bad(
                        format!("round {t}, rank {rank}"),
                        format!("recv range {r:?} escapes the {n}-element state"),
                    );
                }
            }
        }
    }
}

/// Statically prove leg pairing and round-DAG acyclicity for a full
/// schedule set (exact, diagnostic-precise form — used by the debug
/// plan-time hook and the mutation tests).
///
/// # Errors
/// Every pairing defect (`V1`) and IR illegality (`V5`) found, with
/// round/rank locations.
pub fn verify_schedules(schedules: &[Schedule]) -> Result<StructureProof, Vec<Violation>> {
    let p = schedules.len();
    let mut violations = Vec::new();
    let rounds = schedules.first().map_or(0, |s| s.rounds.len());
    for (rank, s) in schedules.iter().enumerate() {
        if s.rounds.len() != rounds {
            violations.push(violation(
                "V5",
                format!("rank {rank}"),
                format!(
                    "rank {rank} has {} round(s) but rank 0 has {rounds}: lockstep \
                     schedules must agree on the round count",
                    s.rounds.len()
                ),
            ));
        }
        rank_legality(rank, s, p, &mut violations);
    }
    if !violations.is_empty() {
        return Err(violations);
    }
    let mut total_legs = 0u64;
    for t in 0..rounds {
        let mut sends: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        let mut recvs: BTreeMap<(usize, usize), usize> = BTreeMap::new();
        for (rank, s) in schedules.iter().enumerate() {
            let round = &s.rounds[t];
            total_legs += (round.sends.len() + round.recvs.len()) as u64;
            for send in &round.sends {
                if sends
                    .insert((rank, send.to), ranges_elems(&send.ranges))
                    .is_some()
                {
                    violations.push(violation(
                        "V1",
                        format!("round {t}, rank {rank}"),
                        format!("duplicate send {rank}->{} in one round", send.to),
                    ));
                }
            }
            for recv in &round.recvs {
                if recvs
                    .insert((recv.from, rank), ranges_elems(&recv.ranges))
                    .is_some()
                {
                    violations.push(violation(
                        "V1",
                        format!("round {t}, rank {rank}"),
                        format!("duplicate recv {}->{rank} in one round", recv.from),
                    ));
                }
            }
        }
        let keys: BTreeSet<(usize, usize)> = sends.keys().chain(recvs.keys()).copied().collect();
        for (from, to) in keys {
            match (sends.get(&(from, to)), recvs.get(&(from, to))) {
                (Some(s), Some(r)) if s != r => violations.push(violation(
                    "V1",
                    format!("round {t}, rank {to}"),
                    format!(
                        "message {from}->{to} carries {s} element(s) but the recv maps {r} \
                         (mis-sized leg)"
                    ),
                )),
                (Some(_), None) => violations.push(violation(
                    "V1",
                    format!("round {t}, rank {from}"),
                    format!("message {from}->{to} is sent but rank {to} never receives it"),
                )),
                (None, Some(_)) => violations.push(violation(
                    "V1",
                    format!("round {t}, rank {to}"),
                    format!(
                        "rank {to} blocks on a message from rank {from} that is never \
                         sent this round (deadlock)"
                    ),
                )),
                _ => {}
            }
        }
    }
    if violations.is_empty() {
        Ok(StructureProof {
            rounds,
            total_legs,
            critical_path_rounds: rounds,
        })
    } else {
        Err(violations)
    }
}

/// Prove reduce-contribution conservation for a schedule set by
/// modular abstract execution against the modular oracle (see module
/// docs). `elems` is the per-rank input length the schedules were
/// built for.
///
/// # Errors
/// Pairing failures surfaced during execution (`V1`), malformed IR
/// (`V5`), and per-rank output mismatches against the oracle (`V2`).
pub fn verify_conservation(
    op: CollectiveOp,
    elems: usize,
    schedules: &[Schedule],
) -> Result<(), Vec<Violation>> {
    let p = schedules.len();
    let mut violations = Vec::new();
    for (rank, s) in schedules.iter().enumerate() {
        rank_legality(rank, s, p, &mut violations);
        if let Some(at) = s.input_at {
            if at + elems > s.state_len {
                violations.push(violation(
                    "V5",
                    format!("rank {rank}"),
                    format!(
                        "input of {elems} element(s) at {at} escapes the {}-element state",
                        s.state_len
                    ),
                ));
            }
        }
    }
    if !violations.is_empty() {
        return Err(violations);
    }
    let compacts: Vec<Compact> = schedules.iter().map(Compact::from_schedule).collect();
    let inputs = probe_inputs(p, elems);
    let outputs = mod_lockstep(&compacts, &inputs)?;
    let expect = mod_oracle(op, p, &inputs);
    for (rank, (got, want)) in outputs.iter().zip(&expect).enumerate() {
        if got.len() != want.len() {
            violations.push(violation(
                "V2",
                format!("rank {rank}"),
                format!(
                    "rank {rank} produces {} element(s), the {op} contract says {}",
                    got.len(),
                    want.len()
                ),
            ));
            continue;
        }
        if let Some(i) = got.iter().zip(want).position(|(a, b)| a != b) {
            violations.push(violation(
                "V2",
                format!("rank {rank}, element {i}"),
                format!(
                    "rank {rank} element {i} diverges from the {op} oracle under modular \
                     probes: some contribution is dropped, duplicated or misrouted"
                ),
            ));
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

// ---------------------------------------------------------------------------
// Tag namespace + offload admissibility
// ---------------------------------------------------------------------------

/// The driver's channel-id namespace: `epoch * (rounds + 1) + round`
/// truncated to `u16`. Returns the number of failover epochs the
/// namespace absorbs, or a `V3` violation when even one re-plan would
/// collide or overflow.
fn check_tags(rounds: usize, at: &str, violations: &mut Vec<Violation>) -> u64 {
    let span = rounds as u64 + 1;
    // Largest epoch whose highest round tag still fits below u16::MAX
    // (the driver asserts `tag < u16::MAX`).
    let max_epoch = (u64::from(u16::MAX) - 1)
        .checked_sub(rounds as u64)
        .map_or(0, |room| room / span);
    if max_epoch < 1 {
        violations.push(violation(
            "V3",
            at.to_string(),
            format!(
                "{rounds} round(s) leave no headroom in the u16 channel-id namespace for \
                 even one failover epoch: a card failure would alias pre-failure streams"
            ),
        ));
        return max_epoch;
    }
    // Belt and braces: enumerate the first few epochs and prove the tag
    // sets are pairwise disjoint and each fits the channel id.
    let enumerate = max_epoch.min(4);
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    for epoch in 0..=enumerate {
        for round in 0..rounds as u64 {
            let tag = epoch * span + round;
            if tag >= u64::from(u16::MAX) || !seen.insert(tag) {
                violations.push(violation(
                    "V3",
                    at.to_string(),
                    format!(
                        "epoch {epoch} round {round} tag {tag} collides or overflows the \
                         u16 channel id"
                    ),
                ));
            }
        }
    }
    max_epoch
}

/// Probe one schedule's offload plan against every device/mode the
/// cluster layer can configure. Protocol-only must always fit (`V4`);
/// combined-path rejections are recorded as inadmissible — that is the
/// structured pre-flight error the run-time path reproduces.
fn check_offload(
    s: &Schedule,
    p: usize,
    at: &str,
    checks: &mut Vec<OffloadCheck>,
    violations: &mut Vec<Violation>,
) {
    let combos: [(&'static str, FpgaDevice, &'static str, InicMode); 3] = [
        (
            "xc4085xla",
            FpgaDevice::xc4085xla(),
            "combined",
            InicMode::Combined,
        ),
        (
            "virtex_next_gen",
            FpgaDevice::virtex_next_gen(),
            "combined",
            InicMode::Combined,
        ),
        (
            "virtex_next_gen",
            FpgaDevice::virtex_next_gen(),
            "protocol",
            InicMode::ProtocolProcessor,
        ),
    ];
    check_offload_against(s, p, at, &combos, checks, violations);
}

/// The device-parameterized core of [`check_offload`], split out so
/// tests can starve a device and exercise the `V4` path (the real
/// devices always fit the 430-CLB protocol-only bitstream).
fn check_offload_against(
    s: &Schedule,
    p: usize,
    at: &str,
    combos: &[(&'static str, FpgaDevice, &'static str, InicMode)],
    checks: &mut Vec<OffloadCheck>,
    violations: &mut Vec<Violation>,
) {
    let needs_reduce = offload::needs_reduce(s);
    for &(device_label, device, mode_label, mode) in combos {
        let check = match offload::plan(s, p, mode, &device) {
            Ok(plan) => OffloadCheck {
                device: device_label,
                mode: mode_label,
                needs_reduce,
                admissible: true,
                required: plan.bitstream.clbs(),
                available: device.clb_capacity,
            },
            Err(offload::OffloadError::InsufficientLogic {
                required,
                available,
            }) => {
                if mode == InicMode::ProtocolProcessor {
                    violations.push(violation(
                        "V4",
                        at.to_string(),
                        format!(
                            "the protocol-only datapath needs {required} CLBs but \
                             {device_label} has {available}: no technology can run this cell"
                        ),
                    ));
                }
                OffloadCheck {
                    device: device_label,
                    mode: mode_label,
                    needs_reduce,
                    admissible: false,
                    required,
                    available,
                }
            }
        };
        checks.push(check);
    }
}

// ---------------------------------------------------------------------------
// Cell verification (streaming, memory-bounded)
// ---------------------------------------------------------------------------

/// Memory budget from `ACC_VERIFY_MEM_MB`, or the default.
pub fn mem_budget() -> usize {
    std::env::var("ACC_VERIFY_MEM_MB")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map_or(DEFAULT_MEM_BUDGET, |mb| mb * 1024 * 1024)
}

/// Order-independent multiset fingerprint of one round's legs: a
/// wrapping sum and a XOR of two independent mixes per leg, so any
/// send/recv multiset mismatch flips at least one accumulator with
/// overwhelming probability.
#[derive(Clone, Copy, Default, PartialEq, Eq)]
struct LegPrint {
    sum: u64,
    xor: u64,
    count: u64,
}

impl LegPrint {
    fn absorb(&mut self, from: usize, to: usize, elems: usize) {
        let key = mix64(
            (from as u64)
                .wrapping_mul(0xA24B_AED4_963E_E407)
                .wrapping_add((to as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25))
                .wrapping_add(elems as u64),
        );
        self.sum = self.sum.wrapping_add(key);
        self.xor ^= mix64(key ^ 0xD6E8_FEB8_6659_FD93);
        self.count += 1;
    }
}

/// Statically verify one algorithm × op × p cell, streaming one rank's
/// schedule at a time (see module docs for the depth policy).
///
/// # Errors
/// All violations found across the structural, conservation, tag and
/// CLB analyses.
///
/// # Panics
/// Panics if the cell is unsupported — callers filter with
/// [`plan::supports`] first, exactly like the policy layer.
pub fn verify_cell(
    op: CollectiveOp,
    algo: Algorithm,
    p: usize,
    elems: usize,
    budget: usize,
) -> Result<CellProof, Vec<Violation>> {
    assert!(
        plan::supports(op, algo, p, elems),
        "unsupported collective cell: {op} via {algo} at p={p}, elems={elems}"
    );
    let cell = format!("{op}/{algo} p={p} elems={elems}");
    let mut violations = Vec::new();

    // Project the full-depth footprint from rank 0's image: compact
    // schedules plus the modular working states. Ranks of one cell are
    // homogeneous to within a constant factor (trees are log-depth and
    // tiny), so one rank scales the estimate reliably.
    let rank0 = plan::build(op, algo, 0, p, elems);
    let compact0 = Compact::from_schedule(&rank0);
    let rounds = rank0.rounds.len();
    let projected = p * (compact0.bytes() + rank0.state_len * 8 + 256);
    let depth = if projected <= budget {
        Depth::Full
    } else {
        Depth::Structural
    };

    let mut prints: Vec<(LegPrint, LegPrint)> = vec![Default::default(); rounds];
    let mut total_legs = 0u64;
    let mut compacts: Vec<Compact> = Vec::new();
    let mut offload_checks = Vec::new();
    let mut seen_reduce_flags: BTreeSet<bool> = BTreeSet::new();
    for rank in 0..p {
        let s = if rank == 0 {
            rank0.clone()
        } else {
            plan::build(op, algo, rank, p, elems)
        };
        if s.rounds.len() != rounds {
            violations.push(violation(
                "V5",
                format!("{cell}, rank {rank}"),
                format!(
                    "rank {rank} has {} round(s) but rank 0 has {rounds}",
                    s.rounds.len()
                ),
            ));
            continue;
        }
        rank_legality(rank, &s, p, &mut violations);
        for (t, round) in s.rounds.iter().enumerate() {
            for send in &round.sends {
                prints[t]
                    .0
                    .absorb(rank, send.to, ranges_elems(&send.ranges));
            }
            for recv in &round.recvs {
                prints[t]
                    .1
                    .absorb(recv.from, rank, ranges_elems(&recv.ranges));
            }
            total_legs += (round.sends.len() + round.recvs.len()) as u64;
        }
        // Offload admissibility once per distinct reduce flag: the plan
        // depends only on (p, mode, device, needs_reduce).
        if seen_reduce_flags.insert(offload::needs_reduce(&s)) {
            check_offload(&s, p, &cell, &mut offload_checks, &mut violations);
        }
        if depth == Depth::Full {
            compacts.push(Compact::from_schedule(&s));
        }
    }

    // Structural pairing: every round's send multiset must equal its
    // recv multiset (counts and both fingerprints).
    for (t, (s, r)) in prints.iter().enumerate() {
        if s.count != r.count || s.sum != r.sum || s.xor != r.xor {
            violations.push(violation(
                "V1",
                format!("{cell}, round {t}"),
                format!(
                    "send/recv leg multisets differ ({} send(s) vs {} recv(s)): \
                     unmatched legs deadlock the round",
                    s.count, r.count
                ),
            ));
        }
    }

    let max_failover_epochs = check_tags(rounds, &cell, &mut violations);

    let mut conservation_checked = false;
    if depth == Depth::Full && violations.is_empty() {
        let inputs = probe_inputs(p, elems);
        match mod_lockstep(&compacts, &inputs) {
            Err(mut vs) => {
                for v in &mut vs {
                    v.at = format!("{cell}, {}", v.at);
                }
                violations.extend(vs);
            }
            Ok(outputs) => {
                let expect = mod_oracle(op, p, &inputs);
                for (rank, (got, want)) in outputs.iter().zip(&expect).enumerate() {
                    if got != want {
                        violations.push(violation(
                            "V2",
                            format!("{cell}, rank {rank}"),
                            format!(
                                "rank {rank} output diverges from the {op} oracle under \
                                 modular probes: some contribution is dropped, duplicated \
                                 or misrouted"
                            ),
                        ));
                    }
                }
                conservation_checked = violations.is_empty();
            }
        }
    }

    if violations.is_empty() {
        Ok(CellProof {
            op,
            algo,
            p,
            elems,
            rounds,
            total_legs,
            depth,
            conservation_checked,
            max_failover_epochs,
            offload: offload_checks,
        })
    } else {
        Err(violations)
    }
}

// ---------------------------------------------------------------------------
// The verification grid
// ---------------------------------------------------------------------------

/// Per-op probe vector length: small enough to keep modular execution
/// cheap, shaped to exercise each algorithm's constraints (block
/// divisibility for all-to-all and recursive halving, empty ring
/// segments when `elems < p`).
pub fn default_elems(op: CollectiveOp, p: usize) -> usize {
    match op {
        CollectiveOp::AllReduce | CollectiveOp::Broadcast => 32,
        CollectiveOp::ReduceScatter | CollectiveOp::AllToAll => p,
        CollectiveOp::AllGather | CollectiveOp::Barrier => 1,
    }
}

/// The algorithm × op × p cells `acc-verify --schedules` proves: every
/// implemented pair at every supported size in the sweep.
pub fn grid_cells(max_p: usize, smoke: bool) -> Vec<(CollectiveOp, Algorithm, usize, usize)> {
    let smoke_ps = [2usize, 3, 4, 5, 7, 8, 16, 32, 64];
    let full_ps = [128usize, 256, 512, 1024, 2048, 4096];
    let mut ps: Vec<usize> = smoke_ps.iter().copied().filter(|&p| p <= max_p).collect();
    if !smoke {
        ps.extend(full_ps.iter().copied().filter(|&p| p <= max_p));
    }
    let mut cells = Vec::new();
    for &p in &ps {
        for op in CollectiveOp::ALL {
            let elems = default_elems(op, p);
            for algo in op.algorithms() {
                if plan::supports(op, algo, p, elems) {
                    cells.push((op, algo, p, elems));
                }
            }
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_all;

    #[test]
    fn clean_cells_prove_structure_and_conservation() {
        for p in [2usize, 4, 7, 8] {
            for op in CollectiveOp::ALL {
                let elems = default_elems(op, p);
                for algo in op.algorithms() {
                    if !plan::supports(op, algo, p, elems) {
                        continue;
                    }
                    let schedules = build_all(op, algo, p, elems);
                    let proof = verify_schedules(&schedules)
                        .unwrap_or_else(|vs| panic!("{op}/{algo} p={p}: {vs:?}"));
                    assert_eq!(proof.critical_path_rounds, proof.rounds);
                    verify_conservation(op, elems, &schedules)
                        .unwrap_or_else(|vs| panic!("{op}/{algo} p={p}: {vs:?}"));
                }
            }
        }
    }

    #[test]
    fn dropped_recv_is_a_deadlock() {
        let mut s = build_all(CollectiveOp::AllReduce, Algorithm::Ring, 4, 8);
        let victim = s[1]
            .rounds
            .iter()
            .position(|r| !r.recvs.is_empty())
            .expect("ring schedules receive");
        s[1].rounds[victim].recvs.clear();
        let vs = verify_schedules(&s).expect_err("a dropped recv must flag");
        assert!(
            vs.iter().any(|v| v.code == "V1"),
            "expected a pairing violation: {vs:?}"
        );
    }

    #[test]
    fn duplicated_send_is_flagged() {
        let mut s = build_all(CollectiveOp::AllGather, Algorithm::Ring, 4, 2);
        let t = s[0]
            .rounds
            .iter()
            .position(|r| !r.sends.is_empty())
            .expect("ring schedules send");
        let dup = s[0].rounds[t].sends[0].clone();
        s[0].rounds[t].sends.push(dup);
        let vs = verify_schedules(&s).expect_err("a duplicate send must flag");
        assert!(vs.iter().any(|v| v.code == "V1"), "{vs:?}");
    }

    #[test]
    fn misrouted_sum_breaks_conservation() {
        let mut s = build_all(CollectiveOp::AllReduce, Algorithm::Ring, 4, 8);
        // Retarget one recv's ranges one element to the left: pairing
        // still matches (same element count), but a contribution lands
        // on the wrong elements — only conservation can see it.
        let (t, r) = s[2]
            .rounds
            .iter()
            .enumerate()
            .find_map(|(t, round)| {
                round
                    .recvs
                    .iter()
                    .position(|rv| {
                        rv.op == plan::RecvOp::Sum && rv.ranges.len() == 1 && rv.ranges[0].start > 0
                    })
                    .map(|i| (t, i))
            })
            .expect("a shiftable sum recv exists");
        let rng = &mut s[2].rounds[t].recvs[r].ranges[0];
        *rng = rng.start - 1..rng.end - 1;
        assert!(
            verify_schedules(&s).is_ok(),
            "the shift must be invisible to pairing"
        );
        let vs = verify_conservation(CollectiveOp::AllReduce, 8, &s)
            .expect_err("the shift must break conservation");
        assert!(vs.iter().any(|v| v.code == "V2"), "{vs:?}");
    }

    #[test]
    fn cell_proof_reports_offload_and_tags() {
        let proof = verify_cell(CollectiveOp::AllReduce, Algorithm::Ring, 8, 8, mem_budget())
            .expect("clean cell");
        assert_eq!(proof.depth, Depth::Full);
        assert!(proof.conservation_checked);
        assert!(proof.max_failover_epochs >= 1);
        // Protocol-only always fits; the prototype fits a p=8 combined
        // path comfortably.
        assert!(proof.offload.iter().all(|c| c.admissible), "{proof:?}");
    }

    #[test]
    fn oversized_combined_path_is_recorded_not_flagged() {
        let p = 128;
        let proof = verify_cell(
            CollectiveOp::AllReduce,
            Algorithm::Ring,
            p,
            default_elems(CollectiveOp::AllReduce, p),
            mem_budget(),
        )
        .expect("the prototype rejection is structured, not a violation");
        let xc = proof
            .offload
            .iter()
            .find(|c| c.device == "xc4085xla" && c.mode == "combined")
            .expect("prototype combined probe present");
        assert!(!xc.admissible, "128-way router cannot fit 3136 CLBs");
        assert!(
            proof
                .offload
                .iter()
                .all(|c| c.mode != "protocol" || c.admissible),
            "protocol-only must always fit: {proof:?}"
        );
    }

    #[test]
    fn structural_depth_engages_under_a_tiny_budget() {
        let vs = verify_cell(CollectiveOp::AllGather, Algorithm::Ring, 16, 1, 1024);
        let proof = vs.expect("structural depth still passes a clean cell");
        assert_eq!(proof.depth, Depth::Structural);
        assert!(!proof.conservation_checked);
    }

    #[test]
    fn starved_device_raises_v4_for_protocol_only() {
        // The real devices always fit the 430-CLB protocol bitstream,
        // so the no-technology-can-run-this violation needs a
        // synthetic device with the CLB pool starved out.
        let s = build_all(CollectiveOp::AllReduce, Algorithm::Ring, 4, 8);
        let mut starved = FpgaDevice::xc4085xla();
        starved.clb_capacity = 64;
        let combos = [
            ("starved", starved, "combined", InicMode::Combined),
            ("starved", starved, "protocol", InicMode::ProtocolProcessor),
        ];
        let mut checks = Vec::new();
        let mut violations = Vec::new();
        check_offload_against(&s[0], 4, "test cell", &combos, &mut checks, &mut violations);
        assert!(checks.iter().all(|c| !c.admissible), "{checks:?}");
        assert!(
            violations
                .iter()
                .any(|v| v.code == "V4" && v.message.contains("no technology")),
            "{violations:?}"
        );
    }

    #[test]
    fn probe_values_are_field_elements() {
        for rank in 0..16 {
            for i in 0..64 {
                assert!(probe(rank, i) < FIELD_P);
            }
        }
    }
}
