//! Mixed-technology re-planning for degraded collectives.
//!
//! When a rank's INIC dies mid-schedule under a rank-local recovery
//! policy, the cluster does not abandon the surviving cards: the dead
//! rank falls back to its commodity NIC while
//! every healthy rank keeps its datapath and reroutes only the legs
//! that touch the casualty. This module is the pure planning half of
//! that story — it rewrites the *remaining* rounds of a lockstep
//! [`Schedule`] into per-round [`RoundLegs`], a partition of each
//! round's sends and receives into a **card leg** (healthy peers, INIC
//! streams) and a **TCP leg** (degraded peers, fallback NICs):
//!
//! * A combined-mode `ReduceSum` fold stays on the card only while its
//!   inbound stream comes from a healthy peer; a fold fed by a dead
//!   rank falls back to host arithmetic (the driver applies the TCP
//!   payload with [`RecvOp::Sum`] and charges the calibrated host
//!   reduction), exactly the protocol-only degradation the paper's
//!   mode spectrum describes.
//! * [`degraded_offload`] re-validates the shrunken datapath against
//!   the device's CLB budget: once no remaining round folds on the
//!   card, the `ReduceSum` stage is no longer needed and the degraded
//!   bitstream is strictly smaller than the one already configured, so
//!   a plan that fit clean always fits degraded — asserted here with a
//!   structured [`OffloadError`] rather than assumed.
//!
//! The split is deterministic and purely data-driven: with an empty
//! dead set every leg lands on the card and the legs reproduce the
//! original round exactly, which is what keeps the clean execution
//! path byte-identical.

use std::collections::BTreeSet;

use acc_fpga::{FpgaDevice, InicMode};

use crate::offload::{self, OffloadError, OffloadPlan};
use crate::plan::{RecvSpec, Round, SendSpec};
use crate::{RecvOp, Schedule};

/// One round of a degraded schedule, partitioned by transport.
#[derive(Clone, Debug)]
pub struct RoundLegs {
    /// Sends to healthy peers — ride the INIC scatter as before.
    pub card_sends: Vec<SendSpec>,
    /// Sends to degraded peers — ride the fallback `TcpHostNic`.
    pub tcp_sends: Vec<SendSpec>,
    /// Receives from healthy peers — the card gather.
    pub card_recvs: Vec<RecvSpec>,
    /// Receives from degraded peers — fallback TCP deliveries, folded
    /// on the host when the spec says [`RecvOp::Sum`].
    pub tcp_recvs: Vec<RecvSpec>,
    /// Whether the card leg is the fused `ReduceF64` gather (combined
    /// mode, exactly one `Sum` receive, and its source still healthy).
    pub card_fold: bool,
}

impl RoundLegs {
    /// Whether any leg still touches the card.
    pub fn uses_card(&self) -> bool {
        !self.card_sends.is_empty() || !self.card_recvs.is_empty()
    }

    /// Whether any leg rides the fallback TCP path.
    pub fn uses_tcp(&self) -> bool {
        !self.tcp_sends.is_empty() || !self.tcp_recvs.is_empty()
    }
}

/// Union the dead-card set with ranks a fabric partition (or a dead
/// edge switch) has cut off: a rank stranded behind a failed switch is
/// planned for exactly like a rank whose card died — its legs reroute
/// to the dual-homed fallback path, and it rejoins from the last round
/// checkpoint once the partition heals. Feeds [`split_round`],
/// [`replan`] and [`degraded_offload`] unchanged.
pub fn with_partitioned(
    dead: &BTreeSet<usize>,
    partitioned: impl IntoIterator<Item = usize>,
) -> BTreeSet<usize> {
    let mut all = dead.clone();
    all.extend(partitioned);
    all
}

/// Partition one round's transfers between the card and the fallback
/// path, given the set of degraded ranks. `combined` says whether the
/// configured bitstream carries a `ReduceSum` stage at all (protocol-
/// only offloads never card-fold, dead peers or not).
pub fn split_round(round: &Round, dead: &BTreeSet<usize>, combined: bool) -> RoundLegs {
    let (card_sends, tcp_sends): (Vec<SendSpec>, Vec<SendSpec>) = round
        .sends
        .iter()
        .cloned()
        .partition(|s| !dead.contains(&s.to));
    let (card_recvs, tcp_recvs): (Vec<RecvSpec>, Vec<RecvSpec>) = round
        .recvs
        .iter()
        .cloned()
        .partition(|r| !dead.contains(&r.from));
    // The fused fold survives only in the exact shape the card datapath
    // implements: one Sum stream plus the looped-back own contribution.
    // Everything else (a rerouted Sum, a raw gather) folds on the host.
    let card_fold = combined
        && card_recvs.len() == 1
        && tcp_recvs.is_empty()
        && card_recvs[0].op == RecvOp::Sum;
    RoundLegs {
        card_sends,
        tcp_sends,
        card_recvs,
        tcp_recvs,
        card_fold,
    }
}

/// Rebuild the remaining rounds of `schedule` (from `resume_round` on)
/// as mixed-technology legs over the degraded cluster.
pub fn replan(
    schedule: &Schedule,
    dead: &BTreeSet<usize>,
    resume_round: usize,
    combined: bool,
) -> Vec<RoundLegs> {
    schedule.rounds[resume_round.min(schedule.rounds.len())..]
        .iter()
        .map(|round| split_round(round, dead, combined))
        .collect()
}

/// Re-validate one rank's offload against the CLB budget after
/// degradation: the remaining rounds may no longer fold on the card
/// (every `Sum` stream rerouted to the host side), in which case the
/// `ReduceSum` stage drops out of the required bitstream.
///
/// # Errors
/// [`OffloadError::InsufficientLogic`] when even the shrunken operator
/// pipeline exceeds the device — impossible when the clean plan fit
/// (the degraded bitstream is never larger), but checked structurally
/// rather than assumed.
pub fn degraded_offload(
    schedule: &Schedule,
    p: usize,
    dead: &BTreeSet<usize>,
    resume_round: usize,
    mode: InicMode,
    device: &FpgaDevice,
) -> Result<OffloadPlan, OffloadError> {
    let combined = !matches!(mode, InicMode::ProtocolProcessor);
    let legs = replan(schedule, dead, resume_round, combined);
    if legs.iter().any(|l| l.card_fold) {
        // Some round still folds on the card: the full plan stands.
        return offload::plan(schedule, p, mode, device);
    }
    // No remaining fold: price the schedule as if it never summed on
    // the card (protocol + router only, or bare protocol operators).
    let mut host_folded = schedule.clone();
    for round in &mut host_folded.rounds {
        for recv in &mut round.recvs {
            if recv.op == RecvOp::Sum {
                recv.op = RecvOp::Copy;
            }
        }
    }
    offload::plan(&host_folded, p, mode, device)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, Algorithm, CollectiveOp};

    fn dead(ranks: &[usize]) -> BTreeSet<usize> {
        ranks.iter().copied().collect()
    }

    #[test]
    fn empty_dead_set_reproduces_the_round_exactly() {
        let s = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, 4, 64);
        for round in &s.rounds {
            let legs = split_round(round, &BTreeSet::new(), true);
            assert_eq!(legs.card_sends, round.sends);
            assert_eq!(legs.card_recvs, round.recvs);
            assert!(legs.tcp_sends.is_empty() && legs.tcp_recvs.is_empty());
            let sum = round.recvs.len() == 1 && round.recvs[0].op == RecvOp::Sum;
            assert_eq!(legs.card_fold, sum);
        }
    }

    #[test]
    fn legs_touching_the_dead_rank_move_to_tcp() {
        // Rank 0 of a 4-ring sends to 1 and receives from 3; killing 3
        // reroutes exactly the receive, killing 1 exactly the send.
        let s = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, 4, 64);
        let round = s
            .rounds
            .iter()
            .find(|r| !r.sends.is_empty() && !r.recvs.is_empty())
            .expect("a ring round moves data both ways");
        let legs = split_round(round, &dead(&[3]), true);
        assert_eq!(legs.card_sends, round.sends);
        assert!(legs.card_recvs.is_empty());
        assert_eq!(legs.tcp_recvs, round.recvs);
        assert!(!legs.card_fold, "a rerouted Sum folds on the host");
        let legs = split_round(round, &dead(&[1]), true);
        assert!(legs.card_sends.is_empty());
        assert_eq!(legs.tcp_sends, round.sends);
        assert_eq!(legs.card_recvs, round.recvs);
        assert!(legs.card_fold, "the fold's source is still healthy");
    }

    #[test]
    fn protocol_only_mode_never_card_folds() {
        let s = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, 4, 64);
        for legs in replan(&s, &BTreeSet::new(), 0, false) {
            assert!(!legs.card_fold);
        }
    }

    #[test]
    fn replan_covers_exactly_the_remaining_rounds() {
        let s = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, 4, 64);
        let all = replan(&s, &dead(&[2]), 0, true);
        assert_eq!(all.len(), s.rounds.len());
        let tail = replan(&s, &dead(&[2]), 2, true);
        assert_eq!(tail.len(), s.rounds.len() - 2);
        // Past-the-end resume (everyone was already done) is empty, not
        // a panic.
        assert!(replan(&s, &dead(&[2]), s.rounds.len() + 7, true).is_empty());
    }

    #[test]
    fn degraded_offload_drops_the_reduce_stage_when_no_fold_survives() {
        let device = FpgaDevice::virtex_next_gen();
        // Rank 0's recursive-doubling allreduce at p=2: its only peer
        // is rank 1, so killing rank 1 reroutes every Sum to the host.
        let s = build(
            CollectiveOp::AllReduce,
            Algorithm::RecursiveDoubling,
            0,
            2,
            64,
        );
        let clean = offload::plan(&s, 2, InicMode::Combined, &device).expect("fits");
        assert!(clean.needs_reduce);
        let degraded = degraded_offload(&s, 2, &dead(&[1]), 0, InicMode::Combined, &device)
            .expect("the shrunken datapath must also fit");
        assert!(!degraded.needs_reduce);
        assert!(
            degraded.bitstream.clbs() < clean.bitstream.clbs(),
            "dropping ReduceSum must shrink the CLB bill"
        );
        // A fold fed by a healthy peer keeps the stage: at p=4, killing
        // rank 2 leaves rank 0's ring predecessor (rank 3) alive.
        let s4 = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, 4, 64);
        let kept =
            degraded_offload(&s4, 4, &dead(&[2]), 0, InicMode::Combined, &device).expect("fits");
        assert!(kept.needs_reduce);
    }
}
