//! `acc-verify` — static collective-schedule verifier CLI.
//!
//! Proves deadlock-freedom, reduce conservation, failover tag headroom
//! and CLB admissibility for every algorithm × op × p cell in the
//! sweep, without running the simulation engine. See
//! `acc_coll::verify` for the proof obligations.
//!
//! ```text
//! acc-verify --schedules [--max-p N] [--smoke] [--json] [--quiet]
//! ```
//!
//! * `--schedules`  verify the schedule grid (the only mode today)
//! * `--max-p N`    largest cluster size to prove (default 1024)
//! * `--smoke`      small-p sweep only (p <= 64): the tier-1/CI gate
//! * `--json`       machine-readable report on stdout
//! * `--quiet`      suppress per-cell progress lines
//!
//! Diagnostics go to stderr in acc-lint's rustc style
//! (`error[Vn]: ...` / `  --> cell`); the report goes to stdout. Exit
//! status is `0` when every cell proves clean, `1` on violations, `2`
//! on usage errors.

use std::process::ExitCode;

use acc_coll::verify::{self, CellProof, Depth, Violation};

// acc-lint: allow(R2, reason = "acc-verify is a host-side prover: it times its own wall clock for the report and never touches simulated state")
mod wallclock {
    //! The one sanctioned wall-clock in this crate: the verifier
    //! reports how long *it* took, which is host time by definition.
    pub struct Stopwatch(std::time::Instant);

    impl Stopwatch {
        pub fn start() -> Stopwatch {
            Stopwatch(std::time::Instant::now())
        }

        pub fn ms(&self) -> f64 {
            self.0.elapsed().as_secs_f64() * 1e3
        }
    }
}

struct CellOutcome {
    proof: Option<CellProof>,
    violations: Vec<Violation>,
    label: String,
    ms: f64,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(outcomes: &[CellOutcome], max_p: usize, smoke: bool, total_ms: f64) -> String {
    let mut out = String::from("{\n  \"tool\": \"acc-verify\",\n");
    out.push_str(&format!("  \"max_p\": {max_p},\n  \"smoke\": {smoke},\n"));
    out.push_str(&format!("  \"elapsed_ms\": {total_ms:.1},\n"));
    out.push_str("  \"cells\": [\n");
    for (i, o) in outcomes.iter().enumerate() {
        let sep = if i + 1 == outcomes.len() { "" } else { "," };
        match &o.proof {
            Some(p) => {
                let offload: Vec<String> = p
                    .offload
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"device\": \"{}\", \"mode\": \"{}\", \"needs_reduce\": {}, \
                             \"admissible\": {}, \"required_clbs\": {}, \"available_clbs\": {}}}",
                            c.device, c.mode, c.needs_reduce, c.admissible, c.required, c.available
                        )
                    })
                    .collect();
                out.push_str(&format!(
                    "    {{\"op\": \"{}\", \"algo\": \"{}\", \"p\": {}, \"elems\": {}, \
                     \"rounds\": {}, \"total_legs\": {}, \"depth\": \"{}\", \
                     \"conservation_checked\": {}, \"max_failover_epochs\": {}, \
                     \"elapsed_ms\": {:.1}, \"status\": \"ok\", \"offload\": [{}]}}{sep}\n",
                    p.op,
                    p.algo,
                    p.p,
                    p.elems,
                    p.rounds,
                    p.total_legs,
                    p.depth.label(),
                    p.conservation_checked,
                    p.max_failover_epochs,
                    o.ms,
                    offload.join(", ")
                ));
            }
            None => out.push_str(&format!(
                "    {{\"cell\": \"{}\", \"elapsed_ms\": {:.1}, \"status\": \"violations\"}}{sep}\n",
                json_escape(&o.label),
                o.ms
            )),
        }
    }
    out.push_str("  ],\n  \"violations\": [\n");
    let all: Vec<&Violation> = outcomes.iter().flat_map(|o| &o.violations).collect();
    for (i, v) in all.iter().enumerate() {
        let sep = if i + 1 == all.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"code\": \"{}\", \"at\": \"{}\", \"message\": \"{}\"}}{sep}\n",
            v.code,
            json_escape(&v.at),
            json_escape(&v.message)
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn usage() -> ExitCode {
    eprintln!("usage: acc-verify --schedules [--max-p N] [--smoke] [--json] [--quiet]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut schedules = false;
    let mut max_p = 1024usize;
    let mut smoke = false;
    let mut json = false;
    let mut quiet = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--schedules" => schedules = true,
            "--smoke" => smoke = true,
            "--json" => json = true,
            "--quiet" => quiet = true,
            "--max-p" => {
                let Some(v) = argv.next().and_then(|v| v.parse::<usize>().ok()) else {
                    eprintln!("error: --max-p needs a positive integer");
                    return usage();
                };
                if v < 2 {
                    eprintln!("error: --max-p must be at least 2");
                    return usage();
                }
                max_p = v;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                return usage();
            }
        }
    }
    if !schedules {
        return usage();
    }

    let budget = verify::mem_budget();
    let cells = verify::grid_cells(max_p, smoke);
    let total = wallclock::Stopwatch::start();
    let mut outcomes: Vec<CellOutcome> = Vec::with_capacity(cells.len());
    let mut n_violations = 0usize;
    for (op, algo, p, elems) in cells {
        let label = format!("{op}/{algo} p={p} elems={elems}");
        let clock = wallclock::Stopwatch::start();
        let (proof, violations) = match verify::verify_cell(op, algo, p, elems, budget) {
            Ok(proof) => (Some(proof), Vec::new()),
            Err(vs) => (None, vs),
        };
        let ms = clock.ms();
        n_violations += violations.len();
        for v in &violations {
            eprintln!("{v}");
        }
        if !quiet {
            match &proof {
                Some(pr) => eprintln!(
                    "ok   {label}: rounds={} legs={} depth={} epochs={} ({ms:.1} ms)",
                    pr.rounds,
                    pr.total_legs,
                    pr.depth.label(),
                    pr.max_failover_epochs
                ),
                None => eprintln!("FAIL {label} ({ms:.1} ms)"),
            }
            if proof
                .as_ref()
                .is_some_and(|pr| pr.depth == Depth::Structural)
            {
                eprintln!(
                    "note: {label} exceeded the memory budget; conservation skipped \
                     (structural depth) — raise ACC_VERIFY_MEM_MB to force full depth"
                );
            }
        }
        outcomes.push(CellOutcome {
            proof,
            violations,
            label,
            ms,
        });
    }
    let total_ms = total.ms();

    if json {
        print!("{}", render_json(&outcomes, max_p, smoke, total_ms));
    } else {
        let full = outcomes
            .iter()
            .filter(|o| o.proof.as_ref().is_some_and(|p| p.depth == Depth::Full))
            .count();
        println!(
            "acc-verify: {} cell(s) proven ({} full-depth, {} structural), \
             {} violation(s), max_p={max_p}, {:.2} s",
            outcomes.len(),
            full,
            outcomes.len() - full,
            n_violations,
            total_ms / 1e3
        );
    }
    if n_violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
