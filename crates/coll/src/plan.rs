//! Per-rank communication schedules for the collective algorithms.
//!
//! A collective is compiled, per rank, into a [`Schedule`]: a vector of
//! lockstep [`Round`]s over a flat `f64` working state. Each round
//! does, in order:
//!
//! 1. **copies** — local permutations, reading a snapshot of the state
//!    taken at round entry (so in-place block rotations are safe);
//! 2. **sends** — gather the listed ranges of the post-copy state and
//!    ship them to a peer;
//! 3. **recvs** — once every listed peer message of this round has
//!    arrived, fold it into the state ([`RecvOp::Sum`]), overwrite
//!    ([`RecvOp::Copy`]) or drop it ([`RecvOp::Discard`], barriers).
//!
//! The builders here are pure functions of `(op, algo, rank, p,
//! elems)`; the same schedule drives the host-TCP path, the
//! protocol-only INIC path and the fully offloaded card path, as well
//! as the analytic cost model (via [`profile`]) and the deadline
//! hierarchy. Two invariants every builder maintains, and the lockstep
//! interpreter [`simulate`] checks: all ranks produce the same round
//! count, and sends/recvs pair up exactly within a round (zero-length
//! transfers are omitted symmetrically on both sides, because a
//! zero-byte message has no wire representation). A round never
//! contains two sends to the same peer — each (peer, round) pair is
//! one wire stream.
// A schedule round's send/recv lists are `Vec<Range<usize>>` segment
// lists; a one-segment list is the common case, not a typo'd
// `(a..b).collect()`, so the lint below is a false positive here.
#![allow(clippy::single_range_in_vec_init)]

use std::collections::BTreeMap;
use std::ops::Range;

use crate::{Algorithm, CollectiveOp};

/// Phase label for ring/chain steps (also the hang-attribution string:
/// a stalled ring exchange reports "collective ring step on rank N").
pub const PHASE_RING: &str = "collective ring step";
/// Phase label for recursive-doubling exchanges.
pub const PHASE_DOUBLING: &str = "collective doubling step";
/// Phase label for recursive-halving exchanges.
pub const PHASE_HALVING: &str = "collective halving step";
/// Phase label for binomial-tree hops.
pub const PHASE_TREE: &str = "collective tree step";
/// Phase label for dissemination-barrier token rounds.
pub const PHASE_DISSEMINATION: &str = "collective dissemination step";
/// Phase label for pairwise all-to-all rounds.
pub const PHASE_PAIRWISE: &str = "collective pairwise step";
/// Phase label for Bruck rotation/exchange rounds.
pub const PHASE_BRUCK: &str = "collective bruck step";
/// Phase label for halo-exchange rounds of the composed halo workload.
pub const PHASE_HALO: &str = "collective halo step";

/// What to do with a received message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecvOp {
    /// Element-wise add into the listed ranges.
    Sum,
    /// Overwrite the listed ranges.
    Copy,
    /// Drop the payload (barrier tokens carry no data worth keeping).
    Discard,
}

/// One outbound message: the listed `state` ranges, gathered in order,
/// to peer `to`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SendSpec {
    /// Destination rank.
    pub to: usize,
    /// Element ranges of the working state, gathered in listed order.
    pub ranges: Vec<Range<usize>>,
}

/// One expected inbound message and how to apply it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RecvSpec {
    /// Source rank.
    pub from: usize,
    /// Element ranges the payload maps onto, in listed order.
    pub ranges: Vec<Range<usize>>,
    /// How the payload is folded into the state.
    pub op: RecvOp,
}

/// A local block move: `state[dst..dst+src.len()] = snapshot[src]`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CopySpec {
    /// Source range in the round-entry snapshot.
    pub src: Range<usize>,
    /// Destination start index in the live state.
    pub dst: usize,
}

/// One lockstep round of a schedule.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Round {
    /// Deadline/hang-attribution phase label.
    pub phase: &'static str,
    /// Local permutations, applied first against a snapshot.
    pub copies: Vec<CopySpec>,
    /// Outbound messages (at most one per peer).
    pub sends: Vec<SendSpec>,
    /// Inbound messages the round blocks on.
    pub recvs: Vec<RecvSpec>,
    /// Modelled local-compute charge (elements swept), for composed
    /// workloads like the halo solver; pure collectives leave it 0.
    pub compute_elems: usize,
}

impl Round {
    fn new(phase: &'static str) -> Round {
        Round {
            phase,
            copies: Vec::new(),
            sends: Vec::new(),
            recvs: Vec::new(),
            compute_elems: 0,
        }
    }

    /// Add a send, dropping empty ranges; a send with no payload is
    /// omitted entirely (the receiving side omits the matching recv).
    pub fn send(&mut self, to: usize, ranges: Vec<Range<usize>>) {
        let ranges: Vec<Range<usize>> = ranges.into_iter().filter(|r| !r.is_empty()).collect();
        if ranges.is_empty() {
            return;
        }
        assert!(
            self.sends.iter().all(|s| s.to != to),
            "schedule bug: two sends to rank {to} in one round"
        );
        self.sends.push(SendSpec { to, ranges });
    }

    /// Add a recv, dropping empty ranges; symmetric with [`Round::send`].
    pub fn recv(&mut self, from: usize, ranges: Vec<Range<usize>>, op: RecvOp) {
        let ranges: Vec<Range<usize>> = ranges.into_iter().filter(|r| !r.is_empty()).collect();
        if ranges.is_empty() {
            return;
        }
        self.recvs.push(RecvSpec { from, ranges, op });
    }

    /// True when the round moves no data and charges no compute — the
    /// executing driver advances straight through it.
    pub fn is_empty(&self) -> bool {
        self.copies.is_empty()
            && self.sends.is_empty()
            && self.recvs.is_empty()
            && self.compute_elems == 0
    }
}

/// Total element count across a range list.
pub fn ranges_elems(ranges: &[Range<usize>]) -> usize {
    ranges.iter().map(std::iter::ExactSizeIterator::len).sum()
}

/// A complete per-rank schedule for one collective invocation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schedule {
    /// The lockstep rounds, executed in order.
    pub rounds: Vec<Round>,
    /// Length of the flat working state, in elements.
    pub state_len: usize,
    /// Where the rank's input vector lands in the state (`None`: the
    /// input is ignored — barrier tokens, non-root broadcast).
    pub input_at: Option<usize>,
    /// The slice of the final state that is this rank's result.
    pub output: Range<usize>,
}

impl Schedule {
    /// Materialize the initial working state from the rank's input.
    pub fn init_state(&self, input: &[f64]) -> Vec<f64> {
        let mut state = vec![0.0f64; self.state_len];
        if let Some(at) = self.input_at {
            state[at..at + input.len()].copy_from_slice(input);
        }
        state
    }

    /// Apply one round's local copies (snapshot semantics).
    pub fn apply_copies(round: &Round, state: &mut [f64]) {
        if round.copies.is_empty() {
            return;
        }
        let snapshot = state.to_vec();
        for c in &round.copies {
            state[c.dst..c.dst + c.src.len()].copy_from_slice(&snapshot[c.src.clone()]);
        }
    }

    /// Gather a send's payload from the (post-copy) state.
    pub fn gather(ranges: &[Range<usize>], state: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(ranges_elems(ranges));
        for r in ranges {
            out.extend_from_slice(&state[r.clone()]);
        }
        out
    }

    /// Fold a received payload into the state per the recv's op.
    pub fn apply_recv(recv: &RecvSpec, payload: &[f64], state: &mut [f64]) {
        assert_eq!(
            payload.len(),
            ranges_elems(&recv.ranges),
            "recv from rank {} got a mis-sized payload",
            recv.from
        );
        let mut at = 0;
        for r in &recv.ranges {
            let chunk = &payload[at..at + r.len()];
            match recv.op {
                RecvOp::Sum => {
                    for (dst, add) in state[r.clone()].iter_mut().zip(chunk) {
                        *dst += add;
                    }
                }
                RecvOp::Copy => state[r.clone()].copy_from_slice(chunk),
                RecvOp::Discard => {}
            }
            at += r.len();
        }
    }
}

/// Segment bounds used by the segmented (ring) algorithms and by
/// reduce-scatter's output contract: `p + 1` monotone offsets with
/// segment `i` spanning `bounds[i]..bounds[i+1]`. Uneven vector
/// lengths give some ranks one extra element; short vectors give some
/// ranks an empty segment.
pub fn seg_bounds(elems: usize, p: usize) -> Vec<usize> {
    (0..=p).map(|i| i * elems / p).collect()
}

/// Can `(op, algo)` run at this cluster size and vector length?
///
/// Power-of-two restrictions follow the textbook algorithms;
/// divisibility restrictions come from block-structured exchanges
/// (all-to-all blocks, recursive-halving splits). The policy layer
/// only ever selects supported cells, and [`build`] asserts this.
pub fn supports(op: CollectiveOp, algo: Algorithm, p: usize, elems: usize) -> bool {
    if p == 0 || !op.algorithms().contains(&algo) {
        return false;
    }
    let pow2 = p.is_power_of_two();
    match (op, algo) {
        (CollectiveOp::AllReduce, Algorithm::Ring) => true,
        (CollectiveOp::AllReduce, Algorithm::RecursiveDoubling) => pow2,
        (CollectiveOp::ReduceScatter, Algorithm::Ring) => true,
        (CollectiveOp::ReduceScatter, Algorithm::RecursiveHalving) => {
            pow2 && elems.is_multiple_of(p)
        }
        (CollectiveOp::AllGather, Algorithm::Ring) => true,
        (CollectiveOp::AllGather, Algorithm::RecursiveDoubling) => pow2,
        (CollectiveOp::Broadcast, Algorithm::Ring | Algorithm::BinomialTree) => true,
        (CollectiveOp::Barrier, Algorithm::Dissemination) => true,
        (CollectiveOp::Barrier, Algorithm::RecursiveDoubling) => pow2,
        (CollectiveOp::AllToAll, Algorithm::Pairwise) => true,
        (CollectiveOp::AllToAll, Algorithm::Bruck) => pow2 && elems.is_multiple_of(p),
        _ => false,
    }
}

/// Build rank `rank`'s schedule for one collective invocation.
///
/// `elems` is the per-rank **input** length (so allgather's output is
/// `p * elems`, and all-to-all interprets the input as `p` blocks of
/// `elems / p`). Barrier ignores the input entirely.
pub fn build(op: CollectiveOp, algo: Algorithm, rank: usize, p: usize, elems: usize) -> Schedule {
    assert!(
        supports(op, algo, p, elems),
        "unsupported collective cell: {op} via {algo} at p={p}, elems={elems}"
    );
    assert!(rank < p, "rank {rank} out of range for p={p}");
    match (op, algo) {
        (CollectiveOp::AllReduce, Algorithm::Ring) => allreduce_ring(rank, p, elems),
        (CollectiveOp::AllReduce, Algorithm::RecursiveDoubling) => allreduce_rd(rank, p, elems),
        (CollectiveOp::ReduceScatter, Algorithm::Ring) => reduce_scatter_ring(rank, p, elems),
        (CollectiveOp::ReduceScatter, Algorithm::RecursiveHalving) => {
            reduce_scatter_halving(rank, p, elems)
        }
        (CollectiveOp::AllGather, Algorithm::Ring) => allgather_ring(rank, p, elems),
        (CollectiveOp::AllGather, Algorithm::RecursiveDoubling) => allgather_rd(rank, p, elems),
        (CollectiveOp::Broadcast, Algorithm::Ring) => broadcast_chain(rank, p, elems),
        (CollectiveOp::Broadcast, Algorithm::BinomialTree) => broadcast_binomial(rank, p, elems),
        (CollectiveOp::Barrier, Algorithm::Dissemination) => barrier_dissemination(rank, p),
        (CollectiveOp::Barrier, Algorithm::RecursiveDoubling) => barrier_rd(rank, p),
        (CollectiveOp::AllToAll, Algorithm::Pairwise) => alltoall_pairwise(rank, p, elems),
        (CollectiveOp::AllToAll, Algorithm::Bruck) => alltoall_bruck(rank, p, elems),
        (op, algo) => unreachable!("supports() admitted unimplemented cell {op}/{algo}"),
    }
}

fn modp(x: isize, p: usize) -> usize {
    let p = p as isize;
    usize::try_from(x.rem_euclid(p)).expect("rem_euclid of a positive modulus is non-negative")
}

fn ceil_log2(p: usize) -> u32 {
    p.next_power_of_two().trailing_zeros()
}

/// Ring reduce-scatter rounds, appended to `rounds`. With offset
/// `delta`, rank `r` ends holding the fully reduced segment
/// `(r + 1 + delta) mod p`: at step `t` it sends segment
/// `(r − t + delta) mod p` downstream and folds segment
/// `(r − 1 − t + delta) mod p` arriving from upstream.
fn ring_reduce_scatter_rounds(rank: usize, p: usize, elems: usize, delta: usize) -> Vec<Round> {
    let bounds = seg_bounds(elems, p);
    let seg = |i: usize| bounds[i]..bounds[i + 1];
    let r = rank as isize;
    let d = delta as isize;
    let mut rounds = Vec::with_capacity(p - 1);
    for t in 0..p as isize - 1 {
        let mut round = Round::new(PHASE_RING);
        round.send(modp(r + 1, p), vec![seg(modp(r - t + d, p))]);
        round.recv(
            modp(r - 1, p),
            vec![seg(modp(r - 1 - t + d, p))],
            RecvOp::Sum,
        );
        rounds.push(round);
    }
    rounds
}

/// Ring allgather rounds over `p` segments, starting from each rank
/// holding segment `(r + 1 + delta) mod p` (the ring reduce-scatter
/// postcondition with the same `delta`; plain allgather uses
/// `delta = p − 1`, i.e. each rank starts with segment `r`).
fn ring_allgather_rounds(rank: usize, p: usize, bounds: &[usize], delta: usize) -> Vec<Round> {
    let seg = |i: usize| bounds[i]..bounds[i + 1];
    let r = rank as isize;
    let d = delta as isize;
    let mut rounds = Vec::with_capacity(p - 1);
    for t in 0..p as isize - 1 {
        let mut round = Round::new(PHASE_RING);
        round.send(modp(r + 1, p), vec![seg(modp(r + 1 + d - t, p))]);
        round.recv(modp(r - 1, p), vec![seg(modp(r + d - t, p))], RecvOp::Copy);
        rounds.push(round);
    }
    rounds
}

fn allreduce_ring(rank: usize, p: usize, elems: usize) -> Schedule {
    let mut rounds = ring_reduce_scatter_rounds(rank, p, elems, 0);
    rounds.extend(ring_allgather_rounds(rank, p, &seg_bounds(elems, p), 0));
    Schedule {
        rounds,
        state_len: elems,
        input_at: Some(0),
        output: 0..elems,
    }
}

fn allreduce_rd(rank: usize, p: usize, elems: usize) -> Schedule {
    let mut rounds = Vec::new();
    for k in 0..p.trailing_zeros() {
        let partner = rank ^ (1 << k);
        let mut round = Round::new(PHASE_DOUBLING);
        round.send(partner, vec![0..elems]);
        round.recv(partner, vec![0..elems], RecvOp::Sum);
        rounds.push(round);
    }
    Schedule {
        rounds,
        state_len: elems,
        input_at: Some(0),
        output: 0..elems,
    }
}

fn reduce_scatter_ring(rank: usize, p: usize, elems: usize) -> Schedule {
    // delta = p − 1 parks the fully reduced segment r on rank r.
    let rounds = ring_reduce_scatter_rounds(rank, p, elems, p - 1);
    let bounds = seg_bounds(elems, p);
    Schedule {
        rounds,
        state_len: elems,
        input_at: Some(0),
        output: bounds[rank]..bounds[rank + 1],
    }
}

fn reduce_scatter_halving(rank: usize, p: usize, elems: usize) -> Schedule {
    let levels = p.trailing_zeros();
    let (mut lo, mut hi) = (0usize, elems);
    let mut rounds = Vec::with_capacity(levels as usize);
    for j in 0..levels {
        let bit = levels - 1 - j;
        let partner = rank ^ (1 << bit);
        let mid = lo + (hi - lo) / 2;
        // Keep the half selected by our own bit; send the partner's
        // half; fold the partner's contribution to our kept half.
        let (keep, give) = if rank & (1 << bit) == 0 {
            ((lo, mid), (mid, hi))
        } else {
            ((mid, hi), (lo, mid))
        };
        let mut round = Round::new(PHASE_HALVING);
        round.send(partner, vec![give.0..give.1]);
        round.recv(partner, vec![keep.0..keep.1], RecvOp::Sum);
        rounds.push(round);
        (lo, hi) = keep;
    }
    debug_assert_eq!(lo, rank * elems / p, "MSB-first halving lands on segment r");
    Schedule {
        rounds,
        state_len: elems,
        input_at: Some(0),
        output: lo..hi,
    }
}

fn allgather_ring(rank: usize, p: usize, elems: usize) -> Schedule {
    // Block i of the output lives at i*elems; each rank seeds its own
    // block, and the uniform blocks double as ring segments.
    let bounds: Vec<usize> = (0..=p).map(|i| i * elems).collect();
    let rounds = ring_allgather_rounds(rank, p, &bounds, p - 1);
    Schedule {
        rounds,
        state_len: p * elems,
        input_at: Some(rank * elems),
        output: 0..p * elems,
    }
}

fn allgather_rd(rank: usize, p: usize, elems: usize) -> Schedule {
    let mut rounds = Vec::new();
    for k in 0..p.trailing_zeros() {
        let span = 1usize << k;
        let partner = rank ^ span;
        let own_lo = (rank >> k) << k;
        let partner_lo = (partner >> k) << k;
        let mut round = Round::new(PHASE_DOUBLING);
        round.send(partner, vec![own_lo * elems..(own_lo + span) * elems]);
        round.recv(
            partner,
            vec![partner_lo * elems..(partner_lo + span) * elems],
            RecvOp::Copy,
        );
        rounds.push(round);
    }
    Schedule {
        rounds,
        state_len: p * elems,
        input_at: Some(rank * elems),
        output: 0..p * elems,
    }
}

fn broadcast_chain(rank: usize, p: usize, elems: usize) -> Schedule {
    // Store-and-forward down the line: hop t moves the vector from
    // rank t to rank t+1. Ranks off the active hop idle that round.
    let mut rounds = Vec::with_capacity(p.saturating_sub(1));
    for t in 0..p.saturating_sub(1) {
        let mut round = Round::new(PHASE_RING);
        if rank == t {
            round.send(rank + 1, vec![0..elems]);
        }
        if rank == t + 1 {
            round.recv(rank - 1, vec![0..elems], RecvOp::Copy);
        }
        rounds.push(round);
    }
    Schedule {
        rounds,
        state_len: elems,
        input_at: (rank == 0).then_some(0),
        output: 0..elems,
    }
}

fn broadcast_binomial(rank: usize, p: usize, elems: usize) -> Schedule {
    let mut rounds = Vec::new();
    for k in 0..ceil_log2(p) {
        let span = 1usize << k;
        let mut round = Round::new(PHASE_TREE);
        if rank < span && rank + span < p {
            round.send(rank + span, vec![0..elems]);
        }
        if (span..2 * span).contains(&rank) {
            round.recv(rank - span, vec![0..elems], RecvOp::Copy);
        }
        rounds.push(round);
    }
    Schedule {
        rounds,
        state_len: elems,
        input_at: (rank == 0).then_some(0),
        output: 0..elems,
    }
}

fn barrier_dissemination(rank: usize, p: usize) -> Schedule {
    let r = rank as isize;
    let mut rounds = Vec::new();
    for k in 0..ceil_log2(p) {
        let d = 1isize << k;
        let mut round = Round::new(PHASE_DISSEMINATION);
        round.send(modp(r + d, p), vec![0..1]);
        round.recv(modp(r - d, p), vec![0..1], RecvOp::Discard);
        rounds.push(round);
    }
    Schedule {
        rounds,
        state_len: 1,
        input_at: None,
        output: 0..0,
    }
}

fn barrier_rd(rank: usize, p: usize) -> Schedule {
    let mut rounds = Vec::new();
    for k in 0..p.trailing_zeros() {
        let partner = rank ^ (1 << k);
        let mut round = Round::new(PHASE_DOUBLING);
        round.send(partner, vec![0..1]);
        round.recv(partner, vec![0..1], RecvOp::Discard);
        rounds.push(round);
    }
    Schedule {
        rounds,
        state_len: 1,
        input_at: None,
        output: 0..0,
    }
}

fn alltoall_pairwise(rank: usize, p: usize, elems: usize) -> Schedule {
    // State layout: [input blocks A | output blocks O]. Input block i
    // (destined to rank i) spans seg_bounds, so uneven lengths work;
    // every source contributes its block `rank` to this rank, so the
    // output is p copies of this rank's own block width.
    let bounds = seg_bounds(elems, p);
    let a_block = |i: usize| bounds[i]..bounds[i + 1];
    let br = bounds[rank + 1] - bounds[rank];
    let o_at = |i: usize| elems + i * br;
    let r = rank as isize;
    let mut rounds = Vec::with_capacity(p);
    // Round 0: the self-addressed block moves locally.
    let mut own = Round::new(PHASE_PAIRWISE);
    if br > 0 {
        own.copies.push(CopySpec {
            src: a_block(rank),
            dst: o_at(rank),
        });
    }
    rounds.push(own);
    for s in 1..p as isize {
        let to = modp(r + s, p);
        let from = modp(r - s, p);
        let mut round = Round::new(PHASE_PAIRWISE);
        round.send(to, vec![a_block(to)]);
        round.recv(from, vec![o_at(from)..o_at(from) + br], RecvOp::Copy);
        rounds.push(round);
    }
    Schedule {
        rounds,
        state_len: elems + p * br,
        input_at: Some(0),
        output: elems..elems + p * br,
    }
}

fn alltoall_bruck(rank: usize, p: usize, elems: usize) -> Schedule {
    // State layout: [working blocks W | output blocks O], b = elems/p.
    // Phase 1 rotates the input so W[i] is the block destined to rank
    // (r+i) mod p; phase 2 ships, at distance 2^k, every slot with bit
    // k set; the closing rotation lands block-from-src at O[src].
    let b = elems / p;
    let w_block = |i: usize| i * b..(i + 1) * b;
    let r = rank as isize;
    let mut rounds = Vec::new();

    let mut rotate = Round::new(PHASE_BRUCK);
    if b > 0 {
        for i in 0..p {
            let src = modp(r + i as isize, p);
            if src != i {
                rotate.copies.push(CopySpec {
                    src: w_block(src),
                    dst: i * b,
                });
            }
        }
    }
    rounds.push(rotate);

    for k in 0..p.trailing_zeros() {
        let d = 1isize << k;
        let slots: Vec<Range<usize>> = (0..p).filter(|i| i >> k & 1 == 1).map(w_block).collect();
        let mut round = Round::new(PHASE_BRUCK);
        round.send(modp(r + d, p), slots.clone());
        round.recv(modp(r - d, p), slots, RecvOp::Copy);
        rounds.push(round);
    }

    // Postcondition of the exchange rounds: W[i] holds the block from
    // rank (r − i) mod p; unrotate into the output region.
    let mut unrotate = Round::new(PHASE_BRUCK);
    if b > 0 {
        for src in 0..p {
            unrotate.copies.push(CopySpec {
                src: w_block(modp(r - src as isize, p)),
                dst: elems + src * b,
            });
        }
    }
    rounds.push(unrotate);

    Schedule {
        rounds,
        state_len: 2 * elems,
        input_at: Some(0),
        output: elems..2 * elems,
    }
}

/// Ghost-cell width of the composed halo workload for a given interior
/// size: a quarter of the domain, clamped to [1, 32] elements.
pub fn halo_width(elems: usize) -> usize {
    (elems / 4).clamp(1, 32)
}

/// The composed halo-exchange workload: `iters` sweeps of a 1-D
/// stencil domain of `elems` interior cells. Each iteration exchanges
/// ghost cells with both ring neighbors (two [`PHASE_HALO`] rounds,
/// each one send + one recv, so p = 2 never double-streams a peer),
/// charges a local sweep of the interior, and closes with a
/// recursive-doubling allreduce of the residual cell — the
/// allreduce-heavy convergence check that makes this workload lean on
/// the engine. Requires a power-of-two `p` for the residual rounds.
///
/// State layout: `[left ghost | interior | right ghost]` with ghost
/// width [`halo_width`]; the residual lives in the first interior
/// cell. The data flow is simple by construction — interior cells
/// never change except the residual, so the final state is
/// independently predictable (see `expected_halo_state`).
pub fn halo(rank: usize, p: usize, elems: usize, iters: usize) -> Schedule {
    assert!(
        p.is_power_of_two(),
        "halo residual allreduce needs a power-of-two p"
    );
    // ≥ 2 interior cells keep the residual (cell 0 of the interior) out
    // of the eastbound edge, which the predictability argument needs.
    assert!(elems >= 2, "halo needs at least two interior cells");
    let h = halo_width(elems);
    let r = rank as isize;
    let left = modp(r - 1, p);
    let right = modp(r + 1, p);
    let left_ghost = 0..h;
    let interior_left = h..2 * h;
    let interior_right = elems..elems + h;
    let right_ghost = elems + h..elems + 2 * h;
    let residual = h..h + 1;

    let mut rounds = Vec::new();
    for _ in 0..iters {
        // Eastbound: my right edge becomes my right neighbor's left ghost.
        let mut east = Round::new(PHASE_HALO);
        east.compute_elems = elems; // the local stencil sweep
        if p > 1 {
            east.send(right, vec![interior_right.clone()]);
            east.recv(left, vec![left_ghost.clone()], RecvOp::Copy);
        }
        rounds.push(east);
        // Westbound: my left edge becomes my left neighbor's right ghost.
        let mut west = Round::new(PHASE_HALO);
        if p > 1 {
            west.send(left, vec![interior_left.clone()]);
            west.recv(right, vec![right_ghost.clone()], RecvOp::Copy);
        }
        rounds.push(west);
        // Residual allreduce (convergence check), recursive doubling.
        for k in 0..p.trailing_zeros() {
            let partner = rank ^ (1 << k);
            let mut round = Round::new(PHASE_DOUBLING);
            round.send(partner, vec![residual.clone()]);
            round.recv(partner, vec![residual.clone()], RecvOp::Sum);
            rounds.push(round);
        }
    }
    Schedule {
        rounds,
        state_len: elems + 2 * h,
        input_at: Some(h),
        output: 0..elems + 2 * h,
    }
}

/// Per-round cost facts for the analytic model: the max over ranks, so
/// the model tracks the critical path.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RoundCost {
    /// The round's phase label.
    pub phase: &'static str,
    /// Max bytes any one rank sends this round.
    pub send_bytes: u64,
    /// Max elements any one rank folds with [`RecvOp::Sum`] this round
    /// (host arithmetic on the non-offloaded paths).
    pub sum_elems: u64,
    /// Max modelled local-compute elements this round.
    pub compute_elems: u64,
}

/// Reduce a set of per-rank schedules to per-round cost facts.
///
/// Panics if the schedules disagree on round count or phase labels —
/// the builders are lockstep by construction.
pub fn profile(schedules: &[Schedule]) -> Vec<RoundCost> {
    let first = schedules.first().expect("profile of an empty schedule set");
    let mut out = Vec::with_capacity(first.rounds.len());
    for (t, lead) in first.rounds.iter().enumerate() {
        let phase = lead.phase;
        let mut cost = RoundCost {
            phase,
            send_bytes: 0,
            sum_elems: 0,
            compute_elems: 0,
        };
        for s in schedules {
            let round = &s.rounds[t];
            assert_eq!(
                round.phase, phase,
                "schedules disagree on phase at round {t}"
            );
            let sent: usize = round.sends.iter().map(|s| ranges_elems(&s.ranges)).sum();
            let summed: usize = round
                .recvs
                .iter()
                .filter(|r| r.op == RecvOp::Sum)
                .map(|r| ranges_elems(&r.ranges))
                .sum();
            cost.send_bytes = cost.send_bytes.max(sent as u64 * 8);
            cost.sum_elems = cost.sum_elems.max(summed as u64);
            cost.compute_elems = cost.compute_elems.max(round.compute_elems as u64);
        }
        out.push(cost);
    }
    out
}

/// Build all `p` schedules for one collective cell (convenience for
/// [`profile`], the lockstep interpreter and the drivers' peers).
pub fn build_all(op: CollectiveOp, algo: Algorithm, p: usize, elems: usize) -> Vec<Schedule> {
    (0..p).map(|r| build(op, algo, r, p, elems)).collect()
}

/// Execute a set of per-rank schedules in lockstep, with no network,
/// no clock and no card: the reference interpreter the unit tests pit
/// against [`oracle`], and the structural check that sends and recvs
/// pair up exactly.
pub fn run_lockstep(schedules: &[Schedule], inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let p = schedules.len();
    assert_eq!(inputs.len(), p, "one input vector per rank");
    let rounds = schedules[0].rounds.len();
    assert!(
        schedules.iter().all(|s| s.rounds.len() == rounds),
        "lockstep schedules must agree on round count"
    );
    let mut states: Vec<Vec<f64>> = schedules
        .iter()
        .zip(inputs)
        .map(|(s, input)| s.init_state(input))
        .collect();
    for t in 0..rounds {
        for (s, state) in schedules.iter().zip(states.iter_mut()) {
            Schedule::apply_copies(&s.rounds[t], state);
        }
        let mut mailbox: BTreeMap<(usize, usize), Vec<f64>> = BTreeMap::new();
        for (from, s) in schedules.iter().enumerate() {
            for send in &s.rounds[t].sends {
                let payload = Schedule::gather(&send.ranges, &states[from]);
                let clash = mailbox.insert((from, send.to), payload);
                assert!(
                    clash.is_none(),
                    "round {t}: duplicate send {from}->{}",
                    send.to
                );
            }
        }
        for (to, s) in schedules.iter().enumerate() {
            for recv in &s.rounds[t].recvs {
                let payload = mailbox.remove(&(recv.from, to)).unwrap_or_else(|| {
                    panic!(
                        "round {t}: rank {to} expects a message from {} that was never sent",
                        recv.from
                    )
                });
                Schedule::apply_recv(recv, &payload, &mut states[to]);
            }
        }
        assert!(
            mailbox.is_empty(),
            "round {t}: {} sent message(s) have no matching recv",
            mailbox.len()
        );
    }
    schedules
        .iter()
        .zip(states)
        .map(|(s, state)| state[s.output.clone()].to_vec())
        .collect()
}

/// Build and lockstep-execute one collective cell.
pub fn simulate(
    op: CollectiveOp,
    algo: Algorithm,
    p: usize,
    elems: usize,
    inputs: &[Vec<f64>],
) -> Vec<Vec<f64>> {
    run_lockstep(&build_all(op, algo, p, elems), inputs)
}

/// First-principles expected outputs of a collective, one vector per
/// rank — independent of any algorithm or schedule machinery, so the
/// lockstep interpreter and the cluster drivers verify against
/// something they share no code with.
pub fn oracle(op: CollectiveOp, p: usize, inputs: &[Vec<f64>]) -> Vec<Vec<f64>> {
    assert_eq!(inputs.len(), p, "one input vector per rank");
    let elems = inputs.first().map_or(0, Vec::len);
    match op {
        CollectiveOp::AllReduce => {
            let sum = elementwise_sum(inputs, elems);
            vec![sum; p]
        }
        CollectiveOp::ReduceScatter => {
            let sum = elementwise_sum(inputs, elems);
            let bounds = seg_bounds(elems, p);
            (0..p)
                .map(|r| sum[bounds[r]..bounds[r + 1]].to_vec())
                .collect()
        }
        CollectiveOp::AllGather => {
            let all: Vec<f64> = inputs.iter().flatten().copied().collect();
            vec![all; p]
        }
        CollectiveOp::Broadcast => vec![inputs[0].clone(); p],
        CollectiveOp::Barrier => vec![Vec::new(); p],
        CollectiveOp::AllToAll => {
            let bounds = seg_bounds(elems, p);
            (0..p)
                .map(|r| {
                    (0..p)
                        .flat_map(|src| inputs[src][bounds[r]..bounds[r + 1]].iter().copied())
                        .collect()
                })
                .collect()
        }
    }
}

fn elementwise_sum(inputs: &[Vec<f64>], elems: usize) -> Vec<f64> {
    let mut sum = vec![0.0f64; elems];
    for v in inputs {
        for (dst, x) in sum.iter_mut().zip(v) {
            *dst += x;
        }
    }
    sum
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic, integer-valued inputs (exact in f64, so == holds).
    fn inputs(p: usize, elems: usize) -> Vec<Vec<f64>> {
        (0..p)
            .map(|r| {
                (0..elems)
                    .map(|i| ((r + 1) * (i % 97 + 3)) as f64)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn every_supported_cell_matches_the_oracle() {
        for p in [1usize, 2, 3, 4, 5, 7, 8, 16] {
            for op in CollectiveOp::ALL {
                // A block-divisible length, a divisible prime-ish one,
                // and 13: indivisible by every p > 1 in the sweep.
                for elems in [p * 6, 91 - 91 % p.max(1), 13] {
                    for algo in op.algorithms() {
                        if !supports(op, algo, p, elems) {
                            continue;
                        }
                        let ins = inputs(p, elems);
                        assert_eq!(
                            simulate(op, algo, p, elems, &ins),
                            oracle(op, p, &ins),
                            "{op}/{algo} p={p} elems={elems}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn uneven_ring_segments_still_reduce_correctly() {
        // elems < p: most ring segments are empty, messages drop out
        // symmetrically, and the answer still matches.
        for (p, elems) in [(8usize, 3usize), (5, 2), (16, 1)] {
            let ins = inputs(p, elems);
            assert_eq!(
                simulate(CollectiveOp::AllReduce, Algorithm::Ring, p, elems, &ins),
                oracle(CollectiveOp::AllReduce, p, &ins),
                "p={p} elems={elems}"
            );
        }
    }

    #[test]
    fn round_counts_match_the_textbook_formulas() {
        let count = |op, algo, p| build(op, algo, 0, p, 16 * 12).rounds.len();
        assert_eq!(count(CollectiveOp::AllReduce, Algorithm::Ring, 8), 14); // 2(p−1)
        assert_eq!(
            count(CollectiveOp::AllReduce, Algorithm::RecursiveDoubling, 8),
            3
        );
        assert_eq!(count(CollectiveOp::ReduceScatter, Algorithm::Ring, 8), 7);
        assert_eq!(
            count(CollectiveOp::ReduceScatter, Algorithm::RecursiveHalving, 16),
            4
        );
        assert_eq!(count(CollectiveOp::AllGather, Algorithm::Ring, 16), 15);
        assert_eq!(
            count(CollectiveOp::AllGather, Algorithm::RecursiveDoubling, 16),
            4
        );
        assert_eq!(
            count(CollectiveOp::Broadcast, Algorithm::BinomialTree, 5),
            3
        ); // ⌈log₂ 5⌉
        assert_eq!(count(CollectiveOp::Broadcast, Algorithm::Ring, 5), 4);
        assert_eq!(count(CollectiveOp::Barrier, Algorithm::Dissemination, 7), 3);
        assert_eq!(
            count(CollectiveOp::Barrier, Algorithm::RecursiveDoubling, 8),
            3
        );
        assert_eq!(count(CollectiveOp::AllToAll, Algorithm::Pairwise, 4), 4); // copy + p−1
        assert_eq!(count(CollectiveOp::AllToAll, Algorithm::Bruck, 4), 4); // rotate + log + unrotate
    }

    #[test]
    fn every_op_offers_two_algorithms_across_the_sweep() {
        for op in CollectiveOp::ALL {
            for p in [1usize, 2, 4, 8, 16] {
                for algo in op.algorithms() {
                    assert!(
                        supports(op, algo, p, p * 4),
                        "{op}/{algo} must support the power-of-two sweep at p={p}"
                    );
                }
            }
        }
    }

    #[test]
    fn p_equals_one_is_the_identity() {
        for op in CollectiveOp::ALL {
            for algo in op.algorithms() {
                let ins = inputs(1, 12);
                let out = simulate(op, algo, 1, 12, &ins);
                assert_eq!(out, oracle(op, 1, &ins), "{op}/{algo}");
            }
        }
    }

    #[test]
    fn seg_bounds_are_monotone_and_cover() {
        for (elems, p) in [(0usize, 4usize), (3, 8), (100, 7), (64, 64)] {
            let b = seg_bounds(elems, p);
            assert_eq!(b.len(), p + 1);
            assert_eq!(b[0], 0);
            assert_eq!(b[p], elems);
            assert!(b.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn halo_state_is_independently_predictable() {
        for p in [1usize, 2, 4, 8] {
            let (elems, iters) = (40usize, 3usize);
            let schedules: Vec<Schedule> = (0..p).map(|r| halo(r, p, elems, iters)).collect();
            let ins = inputs(p, elems);
            let outs = run_lockstep(&schedules, &ins);
            for (r, out) in outs.iter().enumerate() {
                let expect = expected_halo_state(&ins, r, p, elems, iters);
                assert_eq!(*out, expect, "halo state diverged on rank {r} (p={p})");
            }
        }
    }

    /// Ground truth for the halo workload, from the data-flow argument
    /// in [`halo`]'s docs: ghosts mirror the neighbors' (static) edge
    /// cells, the residual cell sums across ranks once and then gets
    /// multiplied by p each further iteration, everything else is
    /// untouched.
    fn expected_halo_state(
        ins: &[Vec<f64>],
        rank: usize,
        p: usize,
        elems: usize,
        iters: usize,
    ) -> Vec<f64> {
        let h = halo_width(elems);
        let mut state = vec![0.0f64; elems + 2 * h];
        state[h..h + elems].copy_from_slice(&ins[rank]);
        let residual_sum: f64 = ins.iter().map(|v| v[0]).sum();
        state[h] = residual_sum * (p as f64).powi(iters as i32 - 1);
        if p > 1 {
            let left = (rank + p - 1) % p;
            let right = (rank + 1) % p;
            // Left ghost = left neighbor's right edge; the edge the
            // neighbor sends includes ITS summed residual only if the
            // residual cell sits inside the sent edge — it does not
            // (the residual is interior-left, sent westbound after
            // the residual rounds of the previous iteration).
            state[..h].copy_from_slice(&ins[left][elems - h..]);
            let mut west_edge: Vec<f64> = ins[right][..h].to_vec();
            // The westbound edge of iteration i carries the right
            // neighbor's residual as updated by iteration i's east
            // round ordering: east, west, then residual rounds — so
            // the final west send (iteration `iters`) has seen
            // `iters − 1` completed residual allreduces.
            west_edge[0] = if iters > 1 {
                residual_sum * (p as f64).powi(iters as i32 - 2)
            } else {
                ins[right][0]
            };
            state[elems + h..].copy_from_slice(&west_edge);
        }
        state
    }

    #[test]
    fn profile_reports_critical_path_bytes() {
        let costs = profile(&build_all(CollectiveOp::AllReduce, Algorithm::Ring, 4, 100));
        assert_eq!(costs.len(), 6);
        assert!(costs.iter().all(|c| c.phase == PHASE_RING));
        // Uneven bounds: the widest segment is 25 elements.
        assert!(costs.iter().all(|c| c.send_bytes == 25 * 8));
        // Sum rounds only in the first half.
        assert!(costs[..3].iter().all(|c| c.sum_elems == 25));
        assert!(costs[3..].iter().all(|c| c.sum_elems == 0));
    }

    #[test]
    fn builds_panic_on_unsupported_cells() {
        let r = std::panic::catch_unwind(|| {
            build(
                CollectiveOp::AllReduce,
                Algorithm::RecursiveDoubling,
                0,
                3,
                8,
            )
        });
        assert!(
            r.is_err(),
            "non-power-of-two recursive doubling must refuse"
        );
    }
}
