//! The explicit algorithm-selection policy.
//!
//! MPI implementations bury algorithm switch-over points in config
//! tables; here the policy is a pure, documented function over the
//! three axes the tentpole names — message size, processor count and
//! execution path (which is what `Technology` reduces to once the
//! driver has chosen host-TCP, protocol-only INIC or combined INIC).
//! Every choice it returns is [`crate::plan::supports`]-valid, so the
//! builders never refuse a policy pick.

use crate::{plan, Algorithm, CollectiveOp};

/// How a collective will actually execute — the `Technology`-derived
/// axis of the policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathClass {
    /// Host sockets: kernel TCP, interrupt-driven, host arithmetic.
    HostTcp,
    /// INIC with the combined bitstream: the card runs the protocol
    /// and folds `Sum` rounds in its datapath.
    InicCombined,
    /// INIC as a pure protocol processor: wire offload, host
    /// arithmetic.
    InicProtocol,
}

impl PathClass {
    /// The latency/bandwidth switch-over in message bytes. The INIC
    /// paths switch earlier: their per-round setup cost is small, so
    /// bandwidth-optimal segmented schedules pay off sooner.
    pub fn small_cutoff(self) -> u64 {
        match self {
            PathClass::HostTcp => 8 * 1024,
            PathClass::InicCombined | PathClass::InicProtocol => 2 * 1024,
        }
    }
}

/// Pick the algorithm for one collective invocation.
///
/// The shape of every rule is the classic latency-vs-bandwidth trade:
/// log-round algorithms win while per-round latency dominates (small
/// vectors), segmented ring/pairwise schedules win once wire bytes
/// dominate (their per-round messages are 1/p-sized and pipeline
/// through the transport's credit window). Power-of-two and
/// divisibility restrictions fall back to the unrestricted algorithm.
pub fn select(op: CollectiveOp, p: usize, elems: usize, path: PathClass) -> Algorithm {
    let small = (elems as u64) * 8 <= path.small_cutoff();
    let pow2 = p.is_power_of_two();
    let algo = match op {
        CollectiveOp::AllReduce => {
            if pow2 && small {
                Algorithm::RecursiveDoubling
            } else {
                Algorithm::Ring
            }
        }
        CollectiveOp::ReduceScatter => {
            if pow2 && elems.is_multiple_of(p) && small {
                Algorithm::RecursiveHalving
            } else {
                Algorithm::Ring
            }
        }
        CollectiveOp::AllGather => {
            if pow2 && small {
                Algorithm::RecursiveDoubling
            } else {
                Algorithm::Ring
            }
        }
        // A two-node "tree" is just the direct send; the chain only
        // breaks even there, so the tree takes everything past p = 2.
        CollectiveOp::Broadcast => {
            if p <= 2 {
                Algorithm::Ring
            } else {
                Algorithm::BinomialTree
            }
        }
        // Small power-of-two clusters use the paired exchange (one
        // gather per round on the card); dissemination covers any p
        // and staggers its one-directional tokens across the switch.
        CollectiveOp::Barrier => {
            if pow2 && p <= 8 {
                Algorithm::RecursiveDoubling
            } else {
                Algorithm::Dissemination
            }
        }
        CollectiveOp::AllToAll => {
            if pow2 && elems.is_multiple_of(p) && small {
                Algorithm::Bruck
            } else {
                Algorithm::Pairwise
            }
        }
    };
    debug_assert!(
        plan::supports(op, algo, p, elems),
        "policy picked an unsupported cell: {op}/{algo} p={p} elems={elems}"
    );
    algo
}

#[cfg(test)]
mod tests {
    use super::*;

    const PATHS: [PathClass; 3] = [
        PathClass::HostTcp,
        PathClass::InicCombined,
        PathClass::InicProtocol,
    ];

    #[test]
    fn policy_only_picks_supported_cells() {
        for op in CollectiveOp::ALL {
            for p in [1usize, 2, 3, 4, 5, 6, 7, 8, 12, 16] {
                for elems in [p, 64, 100, 4096, 1 << 17] {
                    for path in PATHS {
                        let algo = select(op, p, elems, path);
                        assert!(
                            plan::supports(op, algo, p, elems),
                            "{op}/{algo} p={p} elems={elems} {path:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_op_sees_both_algorithms_selected_somewhere() {
        for op in CollectiveOp::ALL {
            let mut picked = Vec::new();
            for p in [2usize, 3, 4, 8, 16] {
                for elems in [16usize, 1 << 16] {
                    let elems = elems - elems % p; // keep divisible cells reachable
                    if elems == 0 {
                        continue;
                    }
                    for path in PATHS {
                        let a = select(op, p, elems, path);
                        if !picked.contains(&a) {
                            picked.push(a);
                        }
                    }
                }
            }
            assert!(
                picked.len() >= 2,
                "{op}: policy must be able to reach ≥2 algorithms, got {picked:?}"
            );
        }
    }

    #[test]
    fn size_flips_the_bandwidth_algorithms() {
        // Small vectors take the log-round algorithm, large ones the
        // segmented ring — on every path, with path-specific cutoffs.
        for path in PATHS {
            let small = select(CollectiveOp::AllReduce, 8, 16, path);
            let large = select(CollectiveOp::AllReduce, 8, 1 << 20, path);
            assert_eq!(small, Algorithm::RecursiveDoubling, "{path:?}");
            assert_eq!(large, Algorithm::Ring, "{path:?}");
        }
        // 4 KiB sits between the cutoffs: small for TCP, large for INIC.
        let elems = 512; // 4 KiB
        assert_eq!(
            select(CollectiveOp::AllReduce, 8, elems, PathClass::HostTcp),
            Algorithm::RecursiveDoubling
        );
        assert_eq!(
            select(CollectiveOp::AllReduce, 8, elems, PathClass::InicCombined),
            Algorithm::Ring
        );
    }

    #[test]
    fn processor_count_flips_broadcast_and_barrier() {
        assert_eq!(
            select(CollectiveOp::Broadcast, 2, 64, PathClass::HostTcp),
            Algorithm::Ring
        );
        assert_eq!(
            select(CollectiveOp::Broadcast, 8, 64, PathClass::HostTcp),
            Algorithm::BinomialTree
        );
        assert_eq!(
            select(CollectiveOp::Barrier, 4, 1, PathClass::HostTcp),
            Algorithm::RecursiveDoubling
        );
        assert_eq!(
            select(CollectiveOp::Barrier, 16, 1, PathClass::HostTcp),
            Algorithm::Dissemination
        );
        assert_eq!(
            select(CollectiveOp::Barrier, 6, 1, PathClass::HostTcp),
            Algorithm::Dissemination,
            "non-power-of-two must fall back"
        );
    }
}
