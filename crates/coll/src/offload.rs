//! CLB-budgeted offload planning: what must be configured onto the
//! card to run a schedule, and whether the device can afford it.
//!
//! sPIN's lesson, applied to the paper's INIC: offload capacity is a
//! *budget*, not a free lunch. Every offloaded collective is expressed
//! as a concrete [`Bitstream`] — protocol operators, a
//! per-destination [`OperatorKind::StreamRouter`] sized to the cluster,
//! and a `ReduceSum` stage only if the schedule actually folds data on
//! the card — and charged against the device's CLB pool through the
//! same [`Bitstream::check`] the FFT and sort bitstreams pass. A
//! schedule that does not fit is rejected here, before any simulated
//! configuration traffic, with a structured [`OffloadError`].

use acc_fpga::{Bitstream, ConfigError, FpgaDevice, InicMode};

use crate::plan::{RecvOp, Schedule};

/// A validated card configuration for one collective invocation.
#[derive(Clone, Debug)]
pub struct OffloadPlan {
    /// The bitstream to configure (already CLB-checked against the
    /// target device).
    pub bitstream: Bitstream,
    /// Router fan-out the plan was sized for (0 on the protocol-only
    /// path, which needs no per-destination steering logic).
    pub router_ways: usize,
    /// Whether the schedule folds `Sum` rounds on the card.
    pub needs_reduce: bool,
}

/// Why a schedule cannot be offloaded.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OffloadError {
    /// The bitstream's operators need more CLBs than the device has —
    /// the over-capacity rejection the cost model exists to enforce.
    InsufficientLogic {
        /// CLBs the schedule's operator pipeline requires.
        required: u32,
        /// CLBs the target device provides.
        available: u32,
    },
}

impl std::fmt::Display for OffloadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OffloadError::InsufficientLogic {
                required,
                available,
            } => write!(
                f,
                "collective schedule needs {required} CLBs but the device has {available}"
            ),
        }
    }
}

impl std::error::Error for OffloadError {}

/// Does any round of the schedule fold data on arrival?
pub fn needs_reduce(schedule: &Schedule) -> bool {
    schedule
        .rounds
        .iter()
        .any(|r| r.recvs.iter().any(|recv| recv.op == RecvOp::Sum))
}

/// Plan the card configuration for running `schedule` on a `p`-node
/// cluster in the given INIC mode, charging it against `device`.
///
/// # Errors
/// [`OffloadError::InsufficientLogic`] when the operator pipeline
/// exceeds the device's CLB pool.
pub fn plan(
    schedule: &Schedule,
    p: usize,
    mode: InicMode,
    device: &FpgaDevice,
) -> Result<OffloadPlan, OffloadError> {
    let (bitstream, router_ways, reduce) = match mode {
        // Protocol processing only: the host performs every data
        // manipulation, the card just strips the protocol tax.
        InicMode::ProtocolProcessor => (Bitstream::protocol_only(), 0, false),
        InicMode::ComputeAccelerator | InicMode::Combined => {
            let reduce = needs_reduce(schedule);
            (Bitstream::collective(p, reduce), p, reduce)
        }
    };
    match bitstream.check(device) {
        Ok(()) => Ok(OffloadPlan {
            bitstream,
            router_ways,
            needs_reduce: reduce,
        }),
        Err(ConfigError::InsufficientLogic {
            required,
            available,
        }) => Err(OffloadError::InsufficientLogic {
            required,
            available,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build, Algorithm, CollectiveOp};

    #[test]
    fn reduce_stage_tracks_the_schedule() {
        let sum = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, 4, 64);
        let copy = build(CollectiveOp::AllGather, Algorithm::Ring, 0, 4, 64);
        assert!(needs_reduce(&sum));
        assert!(!needs_reduce(&copy));
        let device = FpgaDevice::virtex_next_gen();
        let with = plan(&sum, 4, InicMode::Combined, &device).expect("fits");
        let without = plan(&copy, 4, InicMode::Combined, &device).expect("fits");
        assert!(with.needs_reduce && !without.needs_reduce);
        assert!(
            with.bitstream.clbs() > without.bitstream.clbs(),
            "the ReduceSum stage must cost CLBs"
        );
    }

    #[test]
    fn prototype_device_fits_the_full_sweep() {
        let device = FpgaDevice::xc4085xla();
        for p in [1usize, 2, 4, 8, 16] {
            let s = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, p, 64 * p);
            let plan = plan(&s, p, InicMode::Combined, &device)
                .unwrap_or_else(|e| panic!("p={p} should fit the prototype card: {e}"));
            assert_eq!(plan.router_ways, p);
        }
    }

    #[test]
    fn over_capacity_schedules_are_rejected_structurally() {
        // A 128-way router alone outgrows the XC4085XLA's 3136 CLBs.
        let p = 128;
        let s = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, p, p);
        let err = plan(&s, p, InicMode::Combined, &FpgaDevice::xc4085xla())
            .expect_err("a 128-way collective cannot fit the prototype card");
        let OffloadError::InsufficientLogic {
            required,
            available,
        } = err;
        assert!(required > available, "{err}");
        // The same schedule fits the next-generation device.
        plan(&s, p, InicMode::Combined, &FpgaDevice::virtex_next_gen())
            .expect("the Virtex-class device absorbs the 128-way router");
    }

    #[test]
    fn protocol_only_mode_never_needs_the_router() {
        let s = build(CollectiveOp::AllReduce, Algorithm::Ring, 0, 16, 64);
        let plan = plan(
            &s,
            16,
            InicMode::ProtocolProcessor,
            &FpgaDevice::xc4085xla(),
        )
        .expect("protocol-only always fits");
        assert_eq!(plan.router_ways, 0);
        assert!(!plan.needs_reduce);
    }
}
