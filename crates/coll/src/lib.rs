//! # acc-coll — the collective engine
//!
//! The paper's INIC fuses exactly two applications into the card (FFT
//! transpose, bucket sort). This crate generalizes that into a
//! first-class collectives library in the ACCL+ mold: six collective
//! operations, each with at least two pluggable algorithms, compiled
//! down to **per-rank communication schedules** that a driver can
//! execute over plain TCP, over the INIC's protocol-only datapath, or
//! fully offloaded onto the card's dataflow operators.
//!
//! The crate is deliberately free of any simulator driver code:
//!
//! * [`plan`] — schedule builders (ring, recursive doubling/halving,
//!   binomial tree, dissemination, pairwise, Bruck), plus a pure
//!   lockstep interpreter and a naive oracle so every algorithm is
//!   provable against first principles without a network in sight;
//! * [`policy`] — the explicit algorithm-selection policy over message
//!   size, processor count and execution path;
//! * [`offload`] — the CLB-budget plan for running a schedule on the
//!   card, where over-capacity schedules are rejected with a structured
//!   error instead of silently assuming free logic;
//! * [`recovery`] — the mixed-technology re-planning a degraded
//!   cluster uses: each remaining round split into card legs (healthy
//!   peers) and fallback-TCP legs (dead peers), with the combined-mode
//!   fold falling back to host arithmetic and the shrunken offload
//!   re-validated against the CLB budget.
//!
//! `crates/core` consumes these schedules in its `CollDriver` and the
//! §4 analytic models consume [`plan::profile`] for per-round cost
//! formulas, so the sim, the model and the deadline hierarchy all read
//! from one algorithm description.

#![forbid(unsafe_code)]

pub mod offload;
pub mod plan;
pub mod policy;
pub mod recovery;
pub mod verify;

pub use offload::{OffloadError, OffloadPlan};
pub use plan::{build, oracle, simulate, supports, RecvOp, Round, RoundCost, Schedule};
pub use policy::{select, PathClass};
pub use recovery::{degraded_offload, replan, split_round, RoundLegs};
pub use verify::{verify_cell, verify_conservation, verify_schedules, CellProof, Violation};

/// The six collective operations the engine exposes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum CollectiveOp {
    /// Every rank contributes a vector; every rank ends with the
    /// element-wise sum of all contributions.
    AllReduce,
    /// Element-wise sum, but each rank keeps only its own segment of
    /// the reduced vector (segment bounds from [`plan::seg_bounds`]).
    ReduceScatter,
    /// Every rank contributes a block; every rank ends with the
    /// concatenation of all blocks in rank order.
    AllGather,
    /// Rank 0's vector is replicated onto every rank.
    Broadcast,
    /// Pure synchronization: no payload survives, every rank leaves
    /// only after every rank has entered.
    Barrier,
    /// Personalized exchange: rank r sends its i-th block to rank i
    /// and ends with the blocks addressed to it, in source order.
    AllToAll,
}

impl CollectiveOp {
    /// All operations, in table/campaign order.
    pub const ALL: [CollectiveOp; 6] = [
        CollectiveOp::AllReduce,
        CollectiveOp::ReduceScatter,
        CollectiveOp::AllGather,
        CollectiveOp::Broadcast,
        CollectiveOp::Barrier,
        CollectiveOp::AllToAll,
    ];

    /// Stable, space-free label (campaign tables, repro artifacts).
    pub fn label(self) -> &'static str {
        match self {
            CollectiveOp::AllReduce => "allreduce",
            CollectiveOp::ReduceScatter => "reduce-scatter",
            CollectiveOp::AllGather => "allgather",
            CollectiveOp::Broadcast => "broadcast",
            CollectiveOp::Barrier => "barrier",
            CollectiveOp::AllToAll => "all-to-all",
        }
    }

    /// Inverse of [`CollectiveOp::label`].
    pub fn parse(s: &str) -> Option<CollectiveOp> {
        CollectiveOp::ALL.into_iter().find(|op| op.label() == s)
    }

    /// The two algorithms the engine implements for this operation, in
    /// policy-preference order for small messages last.
    pub fn algorithms(self) -> [Algorithm; 2] {
        match self {
            CollectiveOp::AllReduce => [Algorithm::Ring, Algorithm::RecursiveDoubling],
            CollectiveOp::ReduceScatter => [Algorithm::Ring, Algorithm::RecursiveHalving],
            CollectiveOp::AllGather => [Algorithm::Ring, Algorithm::RecursiveDoubling],
            CollectiveOp::Broadcast => [Algorithm::Ring, Algorithm::BinomialTree],
            CollectiveOp::Barrier => [Algorithm::Dissemination, Algorithm::RecursiveDoubling],
            CollectiveOp::AllToAll => [Algorithm::Pairwise, Algorithm::Bruck],
        }
    }
}

impl std::fmt::Display for CollectiveOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The pluggable schedule shapes. Not every algorithm applies to every
/// operation — [`CollectiveOp::algorithms`] lists the implemented
/// pairs and [`plan::supports`] adds the (p, elems) constraints.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Algorithm {
    /// Neighbor ring: p−1 pipelined steps of 1/p-sized segments (or a
    /// store-and-forward chain, for broadcast).
    Ring,
    /// Distance-doubling pairwise exchange; log₂ p rounds, requires a
    /// power-of-two rank count.
    RecursiveDoubling,
    /// Distance-halving vector split (reduce-scatter); log₂ p rounds,
    /// power-of-two ranks and a p-divisible vector.
    RecursiveHalving,
    /// Root-at-0 binomial tree; ⌈log₂ p⌉ rounds, any rank count.
    BinomialTree,
    /// The dissemination barrier: ⌈log₂ p⌉ staggered one-directional
    /// token rounds, any rank count.
    Dissemination,
    /// Pairwise personalized exchange: p−1 rounds of single blocks,
    /// any rank count.
    Pairwise,
    /// Bruck's log-round personalized exchange over rotated blocks;
    /// power-of-two ranks.
    Bruck,
}

impl Algorithm {
    /// Stable, space-free label (campaign tables, repro artifacts).
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Ring => "ring",
            Algorithm::RecursiveDoubling => "recursive-doubling",
            Algorithm::RecursiveHalving => "recursive-halving",
            Algorithm::BinomialTree => "binomial-tree",
            Algorithm::Dissemination => "dissemination",
            Algorithm::Pairwise => "pairwise",
            Algorithm::Bruck => "bruck",
        }
    }

    /// Inverse of [`Algorithm::label`].
    pub fn parse(s: &str) -> Option<Algorithm> {
        [
            Algorithm::Ring,
            Algorithm::RecursiveDoubling,
            Algorithm::RecursiveHalving,
            Algorithm::BinomialTree,
            Algorithm::Dissemination,
            Algorithm::Pairwise,
            Algorithm::Bruck,
        ]
        .into_iter()
        .find(|a| a.label() == s)
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Little-endian encoding of an f64 vector for the wire.
pub fn f64s_to_bytes(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

/// Inverse of [`f64s_to_bytes`]. Panics on a torn buffer — the
/// protocol layer below already guarantees whole-message delivery.
pub fn bytes_to_f64s(b: &[u8]) -> Vec<f64> {
    assert!(
        b.len().is_multiple_of(8),
        "f64 wire buffer length {} is not a multiple of 8",
        b.len()
    );
    b.chunks_exact(8)
        .map(|c| {
            let mut a = [0u8; 8];
            a.copy_from_slice(c);
            f64::from_le_bytes(a)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip() {
        for op in CollectiveOp::ALL {
            assert_eq!(CollectiveOp::parse(op.label()), Some(op));
            assert!(!op.label().contains(' '), "artifact codec needs one token");
            for algo in op.algorithms() {
                assert_eq!(Algorithm::parse(algo.label()), Some(algo));
                assert!(!algo.label().contains(' '));
            }
        }
        assert_eq!(CollectiveOp::parse("warp-speed"), None);
        assert_eq!(Algorithm::parse("warp-speed"), None);
    }

    #[test]
    fn f64_wire_codec_roundtrips() {
        let v = vec![0.0, -1.5, 1e300, f64::MIN_POSITIVE];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }
}
