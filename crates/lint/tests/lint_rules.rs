//! Fixture tests for the `acc-lint` rules: each rule has one violating
//! and one clean fixture, the allowlist round-trips its reasons, and the
//! workspace itself must pass with zero violations (self-check).

use std::path::{Path, PathBuf};

use acc_lint::{analyze_source, analyze_workspace, FileReport, Rule};

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()))
}

/// Analyze a fixture as if it lived at `logical` inside the workspace.
fn check(name: &str, logical: &str) -> FileReport {
    analyze_source(logical, &fixture(name))
}

fn rules_of(report: &FileReport) -> Vec<Rule> {
    report.violations.iter().map(|v| v.rule).collect()
}

#[test]
fn r1_violating_fixture_is_flagged_with_line() {
    let report = check("r1_violate.rs", "crates/net/src/table.rs");
    let rules = rules_of(&report);
    assert!(
        rules.iter().all(|&r| r == Rule::R1),
        "only R1 expected, got {rules:?}"
    );
    assert_eq!(rules.len(), 3, "use, field and constructor: {report:?}");
    assert_eq!(report.violations[0].line, 2, "the `use` line");
    assert_eq!(report.violations[0].path, "crates/net/src/table.rs");
}

#[test]
fn r1_clean_fixture_passes() {
    let report = check("r1_clean.rs", "crates/net/src/table.rs");
    assert!(report.violations.is_empty(), "{report:?}");
}

#[test]
fn r1_covers_the_collective_engine_crate() {
    // acc-coll compiles schedules whose round order *is* the wire
    // protocol — an unordered map there reorders sends between runs.
    let report = check("r1_violate.rs", "crates/coll/src/engine.rs");
    let rules = rules_of(&report);
    assert!(
        !rules.is_empty() && rules.iter().all(|&r| r == Rule::R1),
        "coll is deterministic, HashMap must flag: {report:?}"
    );
}

#[test]
fn r1_covers_the_collective_recovery_module() {
    // The recovery re-planner partitions round legs by dead-set
    // membership; an unordered set there would reorder the rerouted
    // TCP side streams between runs and break byte-identical resumes.
    let report = check("r1_violate.rs", "crates/coll/src/recovery.rs");
    let rules = rules_of(&report);
    assert!(
        !rules.is_empty() && rules.iter().all(|&r| r == Rule::R1),
        "recovery is deterministic, HashMap must flag: {report:?}"
    );
}

#[test]
fn r1_does_not_apply_outside_deterministic_crates() {
    let report = check("r1_violate.rs", "crates/bench/src/table.rs");
    assert!(
        report.violations.is_empty(),
        "bench is exempt from R1: {report:?}"
    );
}

#[test]
fn r2_violating_fixture_is_flagged_with_line() {
    let report = check("r2_violate.rs", "crates/core/src/clock.rs");
    let rules = rules_of(&report);
    assert!(
        !rules.is_empty() && rules.iter().all(|&r| r == Rule::R2),
        "{report:?}"
    );
    assert_eq!(report.violations[0].line, 2, "the `use std::time` line");
}

#[test]
fn r2_clean_fixture_passes_and_bench_is_exempt() {
    let clean = check("r2_clean.rs", "crates/core/src/clock.rs");
    assert!(clean.violations.is_empty(), "{clean:?}");
    let bench = check("r2_violate.rs", "crates/bench/src/harness.rs");
    assert!(
        bench.violations.is_empty(),
        "bench wall-clock code is exempt from R2: {bench:?}"
    );
}

#[test]
fn r3_violating_fixture_is_flagged_with_line() {
    let report = check("r3_violate.rs", "crates/proto/src/codec.rs");
    let rules = rules_of(&report);
    assert_eq!(rules, vec![Rule::R3], "{report:?}");
    assert_eq!(report.violations[0].line, 3, "the `as u16` line");
}

#[test]
fn r3_clean_fixture_passes_and_rule_is_proto_scoped() {
    let clean = check("r3_clean.rs", "crates/proto/src/codec.rs");
    assert!(clean.violations.is_empty(), "{clean:?}");
    // The identical narrowing cast outside the wire-codec crate is not
    // an R3 matter (clippy's crate-level lints cover it there).
    let elsewhere = check("r3_violate.rs", "crates/host/src/codec.rs");
    assert!(elsewhere.violations.is_empty(), "{elsewhere:?}");
}

#[test]
fn r4_violating_fixture_is_flagged_with_line() {
    let report = check("r4_violate.rs", "crates/fpga/src/slice.rs");
    let rules = rules_of(&report);
    assert_eq!(rules, vec![Rule::R4], "{report:?}");
    assert_eq!(report.violations[0].line, 3, "the `.unwrap()` line");
}

#[test]
fn r4_clean_fixture_passes() {
    let report = check("r4_clean.rs", "crates/fpga/src/slice.rs");
    assert!(report.violations.is_empty(), "{report:?}");
}

#[test]
fn r5_violating_fixture_is_flagged_with_line() {
    let report = check("r5_violate.rs", "crates/sim/src/dispatch.rs");
    let rules = rules_of(&report);
    assert_eq!(rules, vec![Rule::R5], "{report:?}");
    assert_eq!(report.violations[0].line, 5, "the `panic!` line");
}

#[test]
fn r5_clean_fixture_passes_and_panic_is_sim_scoped() {
    let clean = check("r5_clean.rs", "crates/sim/src/dispatch.rs");
    assert!(clean.violations.is_empty(), "{clean:?}");
    // Component crates may panic (fail-loud event handlers, the PR 1
    // trace-dump convention); only the sim hot path is restricted.
    let component = check("r5_violate.rs", "crates/net/src/dispatch.rs");
    assert!(component.violations.is_empty(), "{component:?}");
}

#[test]
fn r6_violating_fixture_is_flagged_with_line() {
    let report = check("r6_violate.rs", "crates/core/src/probe.rs");
    let rules = rules_of(&report);
    assert!(
        !rules.is_empty() && rules.iter().all(|&r| r == Rule::R6),
        "{report:?}"
    );
    assert_eq!(rules.len(), 3, "run, run_until and run_guarded: {report:?}");
    assert_eq!(report.violations[0].line, 5, "the `sim.run()` line");
}

#[test]
fn r6_clean_fixture_passes_with_one_justified_allow() {
    let report = check("r6_clean.rs", "crates/core/src/probe.rs");
    assert!(report.violations.is_empty(), "{report:?}");
    assert_eq!(report.allows.len(), 1, "{report:?}");
    assert_eq!(report.allows[0].rule, Rule::R6);
}

#[test]
fn r6_does_not_apply_inside_the_engine_crate() {
    // The engine implements the run family; its own internals (and the
    // guarded entry calling the plain one) are not raw callers.
    let report = check("r6_violate.rs", "crates/sim/src/engine_probe.rs");
    assert!(report.violations.is_empty(), "{report:?}");
}

#[test]
fn allowlist_round_trip_suppresses_and_collects_reasons() {
    let report = check("allow_roundtrip.rs", "crates/net/src/scratch.rs");
    assert!(
        report.violations.is_empty(),
        "annotated violations must be suppressed: {report:?}"
    );
    assert_eq!(report.allows.len(), 2, "{report:?}");
    assert_eq!(
        report.allows[0].reason,
        "drop-order scratch set; never iterated"
    );
    assert_eq!(report.allows[0].rule, Rule::R1);
    assert_eq!(
        report.allows[1].reason,
        "len() only; iteration order never observed"
    );
}

#[test]
fn allow_without_reason_is_a_diagnostic_and_suppresses_nothing() {
    let report = check("allow_missing_reason.rs", "crates/net/src/scratch.rs");
    let rules = rules_of(&report);
    assert!(
        rules.contains(&Rule::A0),
        "missing reason must be flagged: {report:?}"
    );
    assert!(
        rules.contains(&Rule::R1),
        "a reasonless allow must not suppress: {report:?}"
    );
    assert!(report.allows.is_empty(), "{report:?}");
}

#[test]
fn cfg_test_modules_are_exempt() {
    let report = check("test_mod_exempt.rs", "crates/net/src/double.rs");
    assert!(
        report.violations.is_empty(),
        "test modules are exempt from every rule: {report:?}"
    );
}

#[test]
fn integration_test_paths_are_exempt() {
    let report = check("r4_violate.rs", "crates/fpga/tests/behaviour.rs");
    assert!(report.violations.is_empty(), "{report:?}");
}

#[test]
fn r7_deep_copies_flag_in_hot_modules_only() {
    let report = check("r7_violate.rs", "crates/net/src/switch.rs");
    let rules = rules_of(&report);
    assert!(
        rules.iter().all(|&r| r == Rule::R7),
        "only R7 expected: {report:?}"
    );
    assert_eq!(rules.len(), 3, "clone, to_vec and Vec::from: {report:?}");
    // The identical code outside the zero-copy forwarding plane is not
    // an R7 matter.
    let cold = check("r7_violate.rs", "crates/net/src/table.rs");
    assert!(cold.violations.is_empty(), "{cold:?}");
}

#[test]
fn r7_payload_view_clone_is_clean() {
    let report = check("r7_clean.rs", "crates/net/src/switch.rs");
    assert!(
        report.violations.is_empty(),
        "PayloadView clone is a refcount bump: {report:?}"
    );
}

#[test]
fn r7_justified_materialization_is_suppressed() {
    let report = check("r7_allow.rs", "crates/net/src/switch.rs");
    assert!(report.violations.is_empty(), "{report:?}");
    assert_eq!(report.allows.len(), 1, "{report:?}");
    assert_eq!(report.allows[0].rule, Rule::R7);
}

#[test]
fn r8_asymmetric_codec_flags_both_directions() {
    let report = check("r8_violate.rs", "crates/proto/src/codec.rs");
    let rules = rules_of(&report);
    assert!(
        rules.iter().all(|&r| r == Rule::R8),
        "only R8 expected: {report:?}"
    );
    assert_eq!(
        rules.len(),
        2,
        "unread encode bytes and unwritten decode bytes: {report:?}"
    );
}

#[test]
fn r8_symmetric_codec_passes_and_rule_is_proto_scoped() {
    let clean = check("r8_clean.rs", "crates/proto/src/codec.rs");
    assert!(clean.violations.is_empty(), "{clean:?}");
    let elsewhere = check("r8_violate.rs", "crates/host/src/codec.rs");
    assert!(
        elsewhere.violations.is_empty(),
        "R8 is proto-only: {elsewhere:?}"
    );
}

#[test]
fn r8_padding_probe_with_allow_is_suppressed() {
    let report = check("r8_allow.rs", "crates/proto/src/codec.rs");
    assert!(report.violations.is_empty(), "{report:?}");
    assert_eq!(report.allows.len(), 1, "{report:?}");
    assert_eq!(report.allows[0].rule, Rule::R8);
}

#[test]
fn r9_unbounded_queue_flags_at_the_field_decl() {
    let report = check("r9_violate.rs", "crates/net/src/relay.rs");
    let rules = rules_of(&report);
    assert_eq!(rules, vec![Rule::R9], "{report:?}");
    assert_eq!(report.violations[0].line, 5, "the `inbox` field line");
    // Non-component crates are exempt: their collections are plans and
    // tables, not simulated component state.
    let elsewhere = check("r9_violate.rs", "crates/coll/src/relay.rs");
    assert!(elsewhere.violations.is_empty(), "{elsewhere:?}");
}

#[test]
fn r9_bounded_queue_is_clean() {
    let report = check("r9_clean.rs", "crates/net/src/relay.rs");
    assert!(
        report.violations.is_empty(),
        "the len()-vs-cap comparison is the bound evidence: {report:?}"
    );
}

#[test]
fn r9_justified_queue_is_suppressed() {
    let report = check("r9_allow.rs", "crates/net/src/relay.rs");
    assert!(report.violations.is_empty(), "{report:?}");
    assert_eq!(report.allows.len(), 1, "{report:?}");
    assert_eq!(report.allows[0].rule, Rule::R9);
}

#[test]
fn module_scope_allow_covers_the_block_in_single_file_mode() {
    // Satellite fix: `--check-file` (analyze_source) must honor allows
    // bound to a `mod` header exactly as workspace mode does.
    let report = check("allow_module_scope.rs", "crates/net/src/scratch.rs");
    let rules = rules_of(&report);
    assert_eq!(
        rules,
        vec![Rule::R1],
        "only the violation outside the mod survives: {report:?}"
    );
    // One audit-trail entry per suppressed site, all carrying the one
    // annotation's reason: use, return type, constructor.
    assert_eq!(report.allows.len(), 3, "{report:?}");
    assert!(
        report
            .allows
            .iter()
            .all(|a| a.rule == Rule::R1 && a.reason.contains("scratch cache module")),
        "{report:?}"
    );
}

#[test]
fn file_scope_allow_covers_the_whole_file_in_single_file_mode() {
    let report = check("allow_file_scope.rs", "crates/core/src/clock.rs");
    assert!(report.violations.is_empty(), "{report:?}");
    // The import line plus both `Instant` mentions, every suppression
    // traced back to the single file-scope annotation.
    assert_eq!(report.allows.len(), 3, "{report:?}");
    assert!(
        report.allows.iter().all(|a| a.rule == Rule::R2),
        "{report:?}"
    );
}

#[test]
fn json_report_is_stable_and_carries_locations() {
    let report = check("r9_violate.rs", "crates/net/src/relay.rs");
    let json = acc_lint::render_json(1, &report.violations, &report.allows);
    assert!(json.contains("\"tool\": \"acc-lint\""), "{json}");
    assert!(json.contains("\"files_scanned\": 1"), "{json}");
    assert!(json.contains("\"rule\": \"R9\""), "{json}");
    assert!(
        json.contains("\"path\": \"crates/net/src/relay.rs\""),
        "{json}"
    );
    assert!(json.contains("\"line\": 5"), "{json}");
}

/// The workspace itself must be clean: zero violations, and every
/// surviving allow annotation carries its justification.
#[test]
fn workspace_self_check_passes() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <root>/crates/lint")
        .to_path_buf();
    let report = analyze_workspace(&root).expect("workspace scan failed");
    assert!(
        report.files_scanned > 50,
        "expected to scan the whole workspace, saw {} files",
        report.files_scanned
    );
    let rendered: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.violations.is_empty(),
        "workspace must be acc-lint clean:\n{}",
        rendered.join("\n")
    );
    for allow in &report.allows {
        assert!(
            !allow.reason.is_empty(),
            "allow at {}:{} lost its reason",
            allow.path,
            allow.line
        );
    }
}
