//! # acc-lint — static determinism and wire-safety invariants
//!
//! The repo's core promise — byte-identical campaign reports at any
//! `--jobs` count and per-seed reproducible soak runs — rests on a small
//! set of source-level invariants. The runtime Auditor (acc-core) checks
//! the dynamic half; this crate checks the static half at review time,
//! dependency-free and token-level, so it runs everywhere CI does.
//!
//! ## Rules
//!
//! * **R1** — no `HashMap`/`HashSet` in deterministic crates (`sim`,
//!   `core`, `net`, `proto`, `fpga`, `host`, `algos` and the umbrella
//!   crate). `RandomState` seeds hash iteration order per-process, so a
//!   single map iteration feeding an event schedule or a report silently
//!   breaks reproducibility. Use `BTreeMap`/`BTreeSet`, or annotate with
//!   a justification (see below) when iteration provably never feeds
//!   output ordering.
//! * **R2** — no `std::time::Instant`/`SystemTime`, `RandomState` or
//!   thread-identity values outside `crates/bench` (wall-clock timing is
//!   the bench harness's job; everything else runs on [`SimTime`]).
//! * **R3** — no `as` narrowing casts in the wire-codec crate
//!   (`proto`): `try_from`/`From`/checked conversions only. PR 3's
//!   `InicPacket::encode` truncation bug is exactly the class this rule
//!   kills.
//! * **R4** — no bare `unwrap()` in non-test library code: `expect` with
//!   a component-identifying message (the PR 3 convention), so a panic
//!   names its component in the trace dump.
//! * **R5** — no direct `panic!`/`todo!`/`unimplemented!` in the sim
//!   hot path (`crates/sim`), and no `todo!`/`unimplemented!` anywhere
//!   in deterministic crates. Deliberate fail-loud invariant breaches
//!   must carry an allowlist justification.
//! * **R6** — no raw engine run-family calls (`.run()`, `.run_until()`,
//!   `.run_guarded()`) outside `crates/sim` itself and test code. Every
//!   production run must go through the deadline-aware wrapper
//!   (`Wiring::run_to_completion` in acc-core), which arms the
//!   watchdog derived from the [`DeadlineHierarchy`] so a wedged run
//!   aborts with a structured hang report instead of spinning forever.
//!   The wrapper itself, and micro-simulations that provably terminate
//!   (bounded ablation probes), carry allow annotations.
//! * **R7** — no deep payload copies (`.to_vec()`, `Vec::from`,
//!   `.clone()` on a `Vec<u8>`-typed buffer) inside the acc-net/acc-sim
//!   hot-path modules. PR 8's zero-copy forwarding holds because a
//!   frame's payload is a refcounted `PayloadView`; cloning the *view*
//!   is a refcount bump and stays legal, materializing the bytes is the
//!   regression this rule kills. The view's own explicit copy API
//!   carries justified allows.
//! * **R8** — wire-codec encode/decode field symmetry in acc-proto:
//!   every header byte an encode-family fn (`encode`/`try_encode`)
//!   writes must be read back by the paired `decode` in the same
//!   `impl`, and vice versa, with numeric (or named-const) offsets
//!   cross-checked byte-for-byte; a `self.field` written by encode must
//!   be mentioned by decode. Asymmetric padding contracts carry
//!   justified allows.
//! * **R9** — every growable queue in the simulated component crates
//!   (a `VecDeque` field, or a `Vec` field named like a queue) must
//!   show an enforced bound in its file (a `len()` comparison or
//!   `truncate` on the field) or carry a justified allow naming the
//!   invariant that bounds it.
//!
//! R7–R9 ride on the item/symbol pass (see [`symbols`]): module, impl
//! and fn spans, struct fields with textual types, and integer consts,
//! aggregated into per-crate symbol tables by the workspace walk.
//!
//! ## Allowlist
//!
//! A violation is suppressed — and its justification collected into the
//! report — by an annotation on the same line or on its own comment line
//! directly above (attribute lines in between are skipped):
//!
//! ```text
//! // acc-lint: allow(R1, reason = "drop-order scratch set; never iterated")
//! ```
//!
//! The `reason` is mandatory: an allow without one is itself a
//! diagnostic (`A0`). An annotation binds to the next code line; two
//! wider scopes exist: above a `mod name {` item it governs the whole
//! module body, and above an inner attribute (`#![...]`, i.e. at file
//! top) it governs the whole file. Both scopes apply identically in
//! workspace mode and `--check-file` mode.
//!
//! [`SimTime`]: https://docs.rs/acc-sim

#![forbid(unsafe_code)]

mod symbols;

use std::collections::BTreeSet;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use symbols::FileSymbols;

/// Crates whose event schedules and outputs must be bit-reproducible.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "sim", "core", "net", "proto", "fpga", "host", "algos", "coll", "acc",
];

/// Integer target types an `as` cast may narrow into (R3). Casts to
/// `u64`/`i64`/`u128`/floats widen from every type the codecs use and
/// are left to clippy's precision lints.
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// One enforced rule. `A0` is the meta-rule for malformed allowlist
/// annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    R1,
    R2,
    R3,
    R4,
    R5,
    R6,
    R7,
    R8,
    R9,
    A0,
}

impl Rule {
    /// Stable short code used in diagnostics and annotations.
    pub fn code(self) -> &'static str {
        match self {
            Rule::R1 => "R1",
            Rule::R2 => "R2",
            Rule::R3 => "R3",
            Rule::R4 => "R4",
            Rule::R5 => "R5",
            Rule::R6 => "R6",
            Rule::R7 => "R7",
            Rule::R8 => "R8",
            Rule::R9 => "R9",
            Rule::A0 => "A0",
        }
    }

    /// Parse an annotation's rule code.
    pub fn from_code(code: &str) -> Option<Rule> {
        match code {
            "R1" => Some(Rule::R1),
            "R2" => Some(Rule::R2),
            "R3" => Some(Rule::R3),
            "R4" => Some(Rule::R4),
            "R5" => Some(Rule::R5),
            "R6" => Some(Rule::R6),
            "R7" => Some(Rule::R7),
            "R8" => Some(Rule::R8),
            "R9" => Some(Rule::R9),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// A rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub path: String,
    pub line: usize,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "error[{}]: {}\n  --> {}:{}",
            self.rule, self.message, self.path, self.line
        )
    }
}

/// A suppressed violation and the justification its annotation carried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allowance {
    pub path: String,
    pub line: usize,
    pub rule: Rule,
    pub reason: String,
}

/// Result of analyzing one file.
#[derive(Debug, Default, Clone)]
pub struct FileReport {
    pub violations: Vec<Diagnostic>,
    pub allows: Vec<Allowance>,
}

/// Result of analyzing a whole workspace.
#[derive(Debug, Default, Clone)]
pub struct Report {
    pub violations: Vec<Diagnostic>,
    pub allows: Vec<Allowance>,
    pub files_scanned: usize,
}

// ---------------------------------------------------------------------------
// Lexing: split source into per-line code and comment channels
// ---------------------------------------------------------------------------

/// One physical source line after lexing: `code` has string/char literal
/// contents blanked (delimiters kept) and comments removed; `comment`
/// holds the comment text, where allowlist annotations live.
#[derive(Debug, Default, Clone)]
pub(crate) struct ScanLine {
    pub(crate) code: String,
    pub(crate) comment: String,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lex {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u8),
    Char,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex `src` into per-line code/comment channels. Handles nested block
/// comments, (byte/raw) string literals spanning lines, char literals
/// and lifetimes.
pub(crate) fn scan_lines(src: &str) -> Vec<ScanLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut out: Vec<ScanLine> = Vec::new();
    let mut cur = ScanLine::default();
    let mut st = Lex::Code;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push(std::mem::take(&mut cur));
            if st == Lex::LineComment {
                st = Lex::Code;
            }
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied().unwrap_or('\0');
        match st {
            Lex::Code => {
                let prev_ident = cur.code.chars().next_back().is_some_and(is_ident);
                if c == '/' && next == '/' {
                    st = Lex::LineComment;
                    i += 2;
                } else if c == '/' && next == '*' {
                    st = Lex::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = Lex::Str;
                    i += 1;
                } else if !prev_ident && c == 'b' && next == '"' {
                    cur.code.push_str("b\"");
                    st = Lex::Str;
                    i += 2;
                } else if !prev_ident && c == 'b' && next == '\'' {
                    cur.code.push_str("b'");
                    st = Lex::Char;
                    i += 2;
                } else if !prev_ident
                    && ((c == 'r' && (next == '"' || next == '#')) || (c == 'b' && next == 'r'))
                {
                    // Raw (byte) string: r"..", r#".."#, br#".."#, ...
                    let mut j = i + if c == 'b' { 2 } else { 1 };
                    let mut hashes = 0u8;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        cur.code.push_str("r\"");
                        st = Lex::RawStr(hashes);
                        i = j + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else if c == '\'' {
                    // Lifetime ('a) vs char literal ('a', '\n').
                    let after = chars.get(i + 2).copied().unwrap_or('\0');
                    if next == '\\' || (after == '\'' && next != '\'') {
                        cur.code.push('\'');
                        st = Lex::Char;
                        i += 1;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            Lex::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            Lex::BlockComment(depth) => {
                if c == '/' && next == '*' {
                    st = Lex::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == '/' {
                    st = if depth == 1 {
                        Lex::Code
                    } else {
                        Lex::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            Lex::Str => {
                if c == '\\' {
                    cur.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = Lex::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Lex::RawStr(hashes) => {
                if c == '"'
                    && chars[i + 1..]
                        .iter()
                        .take(hashes as usize)
                        .all(|&h| h == '#')
                {
                    cur.code.push('"');
                    st = Lex::Code;
                    i += 1 + hashes as usize;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
            Lex::Char => {
                if c == '\\' {
                    cur.code.push(' ');
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    st = Lex::Code;
                    i += 1;
                } else {
                    cur.code.push(' ');
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------------
// Token helpers
// ---------------------------------------------------------------------------

/// Byte offsets of every whole-word occurrence of `word` in `code`.
pub(crate) fn word_occurrences(code: &str, word: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let bytes = code.as_bytes();
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(bytes[at - 1] as char);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end] as char);
        if before_ok && after_ok {
            found.push(at);
        }
        start = at + word.len().max(1);
    }
    found
}

fn has_word(code: &str, word: &str) -> bool {
    !word_occurrences(code, word).is_empty()
}

/// `true` if `code` invokes the macro `name!` (whole-word match on the
/// name followed by `!`).
fn has_macro(code: &str, name: &str) -> bool {
    word_occurrences(code, name)
        .iter()
        .any(|&at| code[at + name.len()..].starts_with('!'))
}

/// `true` if `code` contains a bare `.unwrap()` call (as opposed to
/// `unwrap_or`/`unwrap_or_else`/`unwrap_or_default`).
fn has_bare_unwrap(code: &str) -> bool {
    word_occurrences(code, "unwrap").iter().any(|&at| {
        let preceded = code[..at].trim_end().ends_with('.');
        let rest = code[at + "unwrap".len()..].trim_start();
        preceded && rest.starts_with('(') && rest[1..].trim_start().starts_with(')')
    })
}

/// Engine run-family methods a caller may not invoke raw (R6): the
/// unguarded entries and the guarded one, because even `run_guarded`
/// is only as good as the watchdog handed to it — the deadline-aware
/// wrapper is the single place that derives the right one.
const RUN_FAMILY: &[&str] = &["run", "run_until", "run_guarded"];

/// The run-family method name `code` invokes (`.run(`, `.run_until(`,
/// `.run_guarded(` — whole-word, dot-preceded, call-parenthesised), if
/// any. `ex.run_all(...)` and free functions like `run_sort(...)` do
/// not match.
fn run_family_call(code: &str) -> Option<&'static str> {
    for &name in RUN_FAMILY {
        let hit = word_occurrences(code, name).iter().any(|&at| {
            let preceded = code[..at].trim_end().ends_with('.');
            let rest = code[at + name.len()..].trim_start();
            preceded && rest.starts_with('(')
        });
        if hit {
            return Some(name);
        }
    }
    None
}

/// The target-type identifier of the first narrowing `as` cast on the
/// line, if any.
fn narrowing_cast_target(code: &str) -> Option<&'static str> {
    for at in word_occurrences(code, "as") {
        let rest = code[at + 2..].trim_start();
        let target: String = rest.chars().take_while(|&c| is_ident(c)).collect();
        if let Some(t) = NARROW_TARGETS.iter().find(|&&t| t == target) {
            return Some(t);
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Test-code masking
// ---------------------------------------------------------------------------

/// Mark every line that belongs to a `#[cfg(test)]` item (module, fn or
/// impl): rules do not apply to test code. The mask covers the attribute
/// line through the close of the item's brace block.
fn test_mask(lines: &[ScanLine]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0usize;
    while i < lines.len() {
        if !lines[i].code.contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Brace-count from the first `{` at or after the attribute.
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut k = i;
        while k < lines.len() {
            for c in lines[k].code.chars() {
                match c {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            mask[k] = true;
            if opened && depth <= 0 {
                break;
            }
            k += 1;
        }
        i = k + 1;
    }
    mask
}

// ---------------------------------------------------------------------------
// Allowlist annotations
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
struct RawAllow {
    /// 0-based line index of the annotation itself.
    at: usize,
    rule: Option<Rule>,
    reason: Option<String>,
    /// Malformation, if any (unknown rule code, missing reason, ...).
    problem: Option<String>,
}

/// Parse an allowlist annotation out of a comment channel.
fn parse_allow(comment: &str, at: usize) -> Option<RawAllow> {
    let marker = comment.find("acc-lint:")?;
    let rest = comment[marker + "acc-lint:".len()..].trim_start();
    let Some(body) = rest.strip_prefix("allow(") else {
        return Some(RawAllow {
            at,
            rule: None,
            reason: None,
            problem: Some("expected `allow(<rule>, reason = \"...\")`".to_string()),
        });
    };
    let code: String = body.chars().take_while(|&c| is_ident(c)).collect();
    let rule = Rule::from_code(&code);
    if rule.is_none() {
        return Some(RawAllow {
            at,
            rule: None,
            reason: None,
            problem: Some(format!("unknown rule `{code}` in allow annotation")),
        });
    }
    let reason = body.find("reason").and_then(|r| {
        let after = body[r + "reason".len()..].trim_start();
        let after = after.strip_prefix('=')?.trim_start();
        let after = after.strip_prefix('"')?;
        let end = after.find('"')?;
        Some(after[..end].to_string())
    });
    if reason.as_deref().is_none_or(str::is_empty) {
        return Some(RawAllow {
            at,
            rule,
            reason: None,
            problem: Some(format!(
                "allow({code}) annotation is missing a `reason = \"...\"` justification"
            )),
        });
    }
    Some(RawAllow {
        at,
        rule,
        reason,
        problem: None,
    })
}

/// One bound allow annotation: it suppresses `rule` violations on every
/// line in `start..=end` (0-based).
#[derive(Debug, Clone)]
struct BoundAllow {
    start: usize,
    end: usize,
    rule: Rule,
    reason: String,
}

/// Is this the header line of a `mod name { ... }` item (optionally
/// `pub`-prefixed)?
fn is_mod_header(code: &str) -> bool {
    let t = code.trim();
    let mut tokens = t.split_whitespace();
    let first = match tokens.next() {
        Some(tok) => tok,
        None => return false,
    };
    let item = if first == "pub" || first.starts_with("pub(") {
        tokens.next().unwrap_or("")
    } else {
        first
    };
    item == "mod" && t.contains('{')
}

/// Resolve each well-formed annotation to the line span it governs.
///
/// The annotation's own line if it has code, otherwise the next code
/// line (outer-attribute lines skipped). Two widening cases: a target
/// line that opens a `mod` block covers the whole module body, and a
/// target that is an inner attribute (`#![...]` — the annotation sits
/// at file top) covers the whole file.
fn bind_allows(lines: &[ScanLine], raw: &[RawAllow]) -> Vec<BoundAllow> {
    let mut bound = Vec::new();
    for a in raw {
        let (Some(rule), Some(reason), None) = (a.rule, a.reason.clone(), a.problem.as_ref())
        else {
            continue;
        };
        let own_code = lines[a.at].code.trim();
        let target = if !own_code.is_empty() {
            Some(a.at)
        } else {
            lines
                .iter()
                .enumerate()
                .skip(a.at + 1)
                .find(|(_, l)| {
                    let t = l.code.trim();
                    !t.is_empty() && !t.starts_with("#[")
                })
                .map(|(idx, _)| idx)
        };
        let Some(t) = target else { continue };
        let (start, end) = if lines[t].code.trim().starts_with("#![") {
            // File-scope: the annotation governs everything below it.
            (a.at, lines.len().saturating_sub(1))
        } else if is_mod_header(&lines[t].code) {
            let end = symbols::block_end(lines, t).unwrap_or(t);
            (t, end)
        } else {
            (t, t)
        };
        bound.push(BoundAllow {
            start,
            end,
            rule,
            reason,
        });
    }
    bound
}

// ---------------------------------------------------------------------------
// Per-file analysis
// ---------------------------------------------------------------------------

/// The crate a workspace-relative path belongs to (`crates/net/...` →
/// `net`; the root `src/` is the umbrella crate `acc`).
pub fn crate_of(path: &str) -> Option<&str> {
    let norm = path.strip_prefix("./").unwrap_or(path);
    if let Some(rest) = norm.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if norm.starts_with("src/") {
        return Some("acc");
    }
    None
}

fn is_deterministic(krate: &str) -> bool {
    DETERMINISTIC_CRATES.contains(&krate)
}

/// `true` for paths whose code the rules skip entirely: integration
/// tests, benches, examples and the lint fixtures themselves.
fn is_test_path(path: &str) -> bool {
    path.split('/').any(|part| {
        part == "tests" || part == "benches" || part == "examples" || part == "fixtures"
    })
}

/// Per-crate symbol table the workspace walk aggregates for the
/// symbol-aware rules. In single-file mode ([`analyze_source`]) it is
/// built from that file alone.
#[derive(Debug, Default, Clone)]
pub struct CrateSymbols {
    /// Struct-field names typed `Vec<u8>` anywhere in the crate — the
    /// payload buffers R7 refuses to see `.clone()`d in hot modules.
    payload_fields: BTreeSet<String>,
}

impl CrateSymbols {
    fn absorb(&mut self, syms: &FileSymbols) {
        for f in &syms.fields {
            if f.ty == "Vec<u8>" {
                self.payload_fields.insert(f.name.clone());
            }
        }
    }
}

/// The hot-path modules R7 governs: the zero-copy forwarding plane
/// (PR 8). `frame.rs` is included deliberately — the `PayloadView`
/// definition itself must justify each of its materializing escape
/// hatches with an allow.
const R7_HOT_MODULES: &[&str] = &[
    "crates/net/src/switch.rs",
    "crates/net/src/port.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/impair.rs",
    "crates/net/src/fabric.rs",
    "crates/net/src/routing.rs",
    "crates/sim/src/engine.rs",
    "crates/sim/src/event.rs",
];

/// Crates whose structs model simulated components with queues (R9).
const R9_COMPONENT_CRATES: &[&str] = &["sim", "net", "proto", "fpga", "host"];

/// Analyze one file's source using only that file's own symbols.
/// `logical_path` is workspace-relative and determines rule scoping
/// (which crate, test or not). The workspace walk uses
/// [`analyze_source_with`] so R7 sees crate-wide payload fields.
pub fn analyze_source(logical_path: &str, source: &str) -> FileReport {
    analyze_source_with(logical_path, source, None)
}

/// [`analyze_source`] with an externally aggregated per-crate symbol
/// table (pass `None` to derive one from this file alone).
pub fn analyze_source_with(
    logical_path: &str,
    source: &str,
    crate_syms: Option<&CrateSymbols>,
) -> FileReport {
    let mut report = FileReport::default();
    if is_test_path(logical_path) {
        return report;
    }
    let Some(krate) = crate_of(logical_path).map(str::to_string) else {
        return report;
    };
    let lines = scan_lines(source);
    let mask = test_mask(&lines);
    let syms = symbols::collect(&lines);
    let local_table = crate_syms.is_none().then(|| {
        let mut t = CrateSymbols::default();
        t.absorb(&syms);
        t
    });
    let payload = crate_syms.unwrap_or_else(|| {
        local_table
            .as_ref()
            .expect("local symbol table built when no crate table given")
    });

    let raw_allows: Vec<RawAllow> = lines
        .iter()
        .enumerate()
        .filter_map(|(idx, l)| parse_allow(&l.comment, idx))
        .collect();
    for a in &raw_allows {
        if let Some(problem) = &a.problem {
            report.violations.push(Diagnostic {
                path: logical_path.to_string(),
                line: a.at + 1,
                rule: Rule::A0,
                message: problem.clone(),
            });
        }
    }
    let bound = bind_allows(&lines, &raw_allows);

    let push = |report: &mut FileReport, idx: usize, rule: Rule, message: String| {
        if let Some(b) = bound
            .iter()
            .find(|b| b.rule == rule && b.start <= idx && idx <= b.end)
        {
            report.allows.push(Allowance {
                path: logical_path.to_string(),
                line: idx + 1,
                rule,
                reason: b.reason.clone(),
            });
        } else {
            report.violations.push(Diagnostic {
                path: logical_path.to_string(),
                line: idx + 1,
                rule,
                message,
            });
        }
    };

    let det = is_deterministic(&krate);
    let hot_module = R7_HOT_MODULES.contains(&logical_path);
    for (idx, line) in lines.iter().enumerate() {
        if mask[idx] {
            continue;
        }
        let code = &line.code;

        if det {
            for ty in ["HashMap", "HashSet"] {
                if has_word(code, ty) {
                    push(
                        &mut report,
                        idx,
                        Rule::R1,
                        format!(
                            "`{ty}` in deterministic crate `{krate}`: iteration order is \
                             seeded per-process; use BTree{}, or annotate why ordering \
                             never feeds output",
                            &ty[4..]
                        ),
                    );
                }
            }
        }

        if krate != "bench" {
            for ty in ["Instant", "SystemTime", "RandomState", "ThreadId"] {
                if has_word(code, ty) {
                    push(
                        &mut report,
                        idx,
                        Rule::R2,
                        format!(
                            "`{ty}` outside `crates/bench`: wall-clock and hash-seed \
                             values are nondeterministic; simulated code runs on SimTime"
                        ),
                    );
                }
            }
            if code.contains("thread::current") {
                push(
                    &mut report,
                    idx,
                    Rule::R2,
                    "`thread::current` outside `crates/bench`: thread identity varies \
                     across runs and job counts"
                        .to_string(),
                );
            }
        }

        if krate == "proto" {
            if let Some(target) = narrowing_cast_target(code) {
                push(
                    &mut report,
                    idx,
                    Rule::R3,
                    format!(
                        "`as {target}` narrowing cast in wire codec: silent truncation \
                         corrupts the wire (PR 3 encode bug); use `try_from`/`From`"
                    ),
                );
            }
        }

        if has_bare_unwrap(code) {
            push(
                &mut report,
                idx,
                Rule::R4,
                "bare `unwrap()` in library code: use `expect` with a \
                 component-identifying message"
                    .to_string(),
            );
        }

        if krate != "sim" {
            if let Some(name) = run_family_call(code) {
                push(
                    &mut report,
                    idx,
                    Rule::R6,
                    format!(
                        "raw `.{name}()` outside the deadline-aware wrapper: a wedged \
                         run would spin forever; go through run_to_completion (or \
                         justify why this simulation provably terminates)"
                    ),
                );
            }
        }

        let sim_hot_path = krate == "sim";
        for mac in ["panic", "todo", "unimplemented"] {
            if has_macro(code, mac) {
                let applies = if mac == "panic" {
                    sim_hot_path
                } else {
                    det || sim_hot_path
                };
                if applies {
                    push(
                        &mut report,
                        idx,
                        Rule::R5,
                        format!(
                            "`{mac}!` reachable from the sim hot path: deliberate \
                             fail-loud invariants need an allow annotation with a reason"
                        ),
                    );
                }
            }
        }

        if hot_module {
            if let Some(msg) = r7_deep_copy(code, payload) {
                push(&mut report, idx, Rule::R7, msg);
            }
        }
    }

    if krate == "proto" {
        for (idx, msg) in r8_codec_symmetry(&lines, &syms, &mask) {
            push(&mut report, idx, Rule::R8, msg);
        }
    }
    if R9_COMPONENT_CRATES.contains(&krate.as_str()) {
        for (idx, msg) in r9_unbounded_queues(&lines, &syms, &mask) {
            push(&mut report, idx, Rule::R9, msg);
        }
    }
    report
}

// ---------------------------------------------------------------------------
// R7 — deep payload copies in hot-path modules
// ---------------------------------------------------------------------------

/// The deep-copy pattern `code` contains, if any: `.to_vec()`,
/// `Vec::from(...)`, or `.clone()` whose receiver's trailing identifier
/// is a crate-known `Vec<u8>` payload field.
fn r7_deep_copy(code: &str, payload: &CrateSymbols) -> Option<String> {
    for at in word_occurrences(code, "to_vec") {
        let preceded = code[..at].trim_end().ends_with('.');
        let rest = code[at + "to_vec".len()..].trim_start();
        if preceded && rest.starts_with('(') {
            return Some(
                "`.to_vec()` materializes a payload copy on the zero-copy hot path; \
                 forward the PayloadView (refcount bump) instead"
                    .to_string(),
            );
        }
    }
    for at in word_occurrences(code, "Vec") {
        if code[at + "Vec".len()..].starts_with("::from(") {
            return Some(
                "`Vec::from` deep-copies payload bytes on the zero-copy hot path; \
                 forward the PayloadView (refcount bump) instead"
                    .to_string(),
            );
        }
    }
    for at in word_occurrences(code, "clone") {
        let before = code[..at].trim_end();
        if !before.ends_with('.') {
            continue;
        }
        let rest = code[at + "clone".len()..].trim_start();
        if !rest.starts_with('(') || !rest[1..].trim_start().starts_with(')') {
            continue;
        }
        let recv = before[..before.len() - 1].trim_end();
        let tail: String = recv
            .chars()
            .rev()
            .take_while(|&c| is_ident(c))
            .collect::<String>()
            .chars()
            .rev()
            .collect();
        if !tail.is_empty() && payload.payload_fields.contains(&tail) {
            return Some(format!(
                "`.clone()` on payload buffer `{tail}` (a `Vec<u8>` field) deep-copies \
                 bytes on the zero-copy hot path; only PayloadView refcount bumps are free"
            ));
        }
    }
    None
}

// ---------------------------------------------------------------------------
// R8 — wire-codec encode/decode field symmetry
// ---------------------------------------------------------------------------

/// One resolved indexed access `base[lo..hi]` (or `base[i]`, as
/// `i..i+1`) on a line.
struct IndexedAccess {
    base: String,
    lo: u64,
    hi: u64,
    /// Followed by `.copy_from_slice(` or a plain `=` assignment.
    is_write: bool,
    /// `self.field` named on the same line, if any.
    field: Option<String>,
}

/// Resolve an offset expression: an integer literal or a named const.
fn resolve_offset(expr: &str, syms: &FileSymbols) -> Option<u64> {
    let t = expr.trim();
    if t.is_empty() {
        return None;
    }
    if t.chars().all(|c| c.is_ascii_digit() || c == '_') {
        return t.replace('_', "").parse().ok();
    }
    if t.chars().all(is_ident) {
        return syms.const_value(t);
    }
    None
}

/// All numerically resolvable indexed accesses on one code line.
fn indexed_accesses(code: &str, syms: &FileSymbols) -> Vec<IndexedAccess> {
    let bytes = code.as_bytes();
    let field = code.find("self.").and_then(|at| {
        let name: String = code[at + "self.".len()..]
            .chars()
            .take_while(|&c| is_ident(c))
            .collect();
        (!name.is_empty()).then_some(name)
    });
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i] != b'[' {
            i += 1;
            continue;
        }
        // The base identifier must end immediately before the bracket,
        // and must not be a macro (`vec![`) or attribute (`#[`).
        let base_end = i;
        let base_start = code[..base_end]
            .char_indices()
            .rev()
            .take_while(|&(_, c)| is_ident(c))
            .last()
            .map(|(p, _)| p);
        let Some(bs) = base_start else {
            i += 1;
            continue;
        };
        if code[..bs].ends_with('!') || code[..bs].ends_with('#') {
            i += 1;
            continue;
        }
        // Find the matching close bracket.
        let mut depth = 0usize;
        let mut close = None;
        for (j, &b) in bytes.iter().enumerate().skip(i) {
            match b {
                b'[' => depth += 1,
                b']' => {
                    depth -= 1;
                    if depth == 0 {
                        close = Some(j);
                        break;
                    }
                }
                _ => {}
            }
        }
        let Some(cl) = close else { break };
        let inner = &code[i + 1..cl];
        let resolved = if let Some((lo_s, hi_s)) = inner.split_once("..") {
            match (resolve_offset(lo_s, syms), resolve_offset(hi_s, syms)) {
                (Some(lo), Some(hi)) if lo < hi => Some((lo, hi)),
                _ => None, // open-ended or symbolic: the data region
            }
        } else {
            resolve_offset(inner, syms).map(|at| (at, at + 1))
        };
        if let Some((lo, hi)) = resolved {
            let after = code[cl + 1..].trim_start();
            let is_write = after.starts_with(".copy_from_slice(")
                || (after.starts_with('=') && !after.starts_with("=="));
            out.push(IndexedAccess {
                base: code[bs..base_end].to_string(),
                lo,
                hi,
                is_write,
                field: field.clone(),
            });
        }
        i = cl + 1;
    }
    out
}

/// The first identifier inside the fn header's parameter list (the
/// buffer name `decode` reads from).
fn first_param_name(header: &str) -> Option<String> {
    let open = header.find('(')?;
    let rest = header[open + 1..].trim_start();
    let rest = rest.strip_prefix("&self").unwrap_or(rest).trim_start();
    let rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    (!name.is_empty()).then_some(name)
}

/// Check encode/decode header-byte symmetry for every impl block (and
/// the file's free functions) that defines both sides. Returns
/// `(line_idx, message)` findings.
fn r8_codec_symmetry(
    lines: &[ScanLine],
    syms: &FileSymbols,
    mask: &[bool],
) -> Vec<(usize, String)> {
    let mut findings = Vec::new();
    // Group fn spans by enclosing impl; fns outside any impl form one
    // file-level group.
    let group_of = |start: usize| -> usize {
        syms.impls
            .iter()
            .position(|im| im.start <= start && start <= im.end)
            .map_or(usize::MAX, |i| i)
    };
    let mut group_keys: Vec<usize> = syms.fns.iter().map(|f| group_of(f.start)).collect();
    group_keys.sort_unstable();
    group_keys.dedup();
    for key in group_keys {
        let members: Vec<&symbols::ItemSpan> = syms
            .fns
            .iter()
            .filter(|f| group_of(f.start) == key)
            .collect();
        let encoders: Vec<&&symbols::ItemSpan> = members
            .iter()
            .filter(|f| f.name == "encode" || f.name == "try_encode")
            .collect();
        let decoder = members.iter().find(|f| f.name == "decode");
        let Some(decoder) = decoder else { continue };
        if encoders.is_empty() {
            continue;
        }
        let decode_param = first_param_name(&lines[decoder.start].code);

        // Writes across the encode-family bodies.
        let mut write_line_of: Vec<(u64, usize)> = Vec::new(); // (byte, line)
        let mut write_cover: BTreeSet<u64> = BTreeSet::new();
        let mut named_writes: Vec<(String, usize)> = Vec::new();
        for enc in &encoders {
            for idx in enc.start..=enc.end.min(lines.len() - 1) {
                if mask[idx] {
                    continue;
                }
                for acc in indexed_accesses(&lines[idx].code, syms) {
                    if !acc.is_write {
                        continue;
                    }
                    for b in acc.lo..acc.hi {
                        if write_cover.insert(b) {
                            write_line_of.push((b, idx));
                        }
                    }
                    if let Some(f) = acc.field {
                        named_writes.push((f, idx));
                    }
                }
            }
        }
        // Reads across the decode body, restricted to the input buffer.
        let mut read_line_of: Vec<(u64, usize)> = Vec::new();
        let mut read_cover: BTreeSet<u64> = BTreeSet::new();
        for idx in decoder.start..=decoder.end.min(lines.len() - 1) {
            if mask[idx] {
                continue;
            }
            for acc in indexed_accesses(&lines[idx].code, syms) {
                if acc.is_write {
                    continue;
                }
                if decode_param.as_deref().is_some_and(|p| p != acc.base) {
                    continue;
                }
                for b in acc.lo..acc.hi {
                    if read_cover.insert(b) {
                        read_line_of.push((b, idx));
                    }
                }
            }
        }
        if write_cover.is_empty() || read_cover.is_empty() {
            continue; // not an offset-addressed codec pair
        }

        // Report each maximal run of asymmetric bytes once, anchored at
        // the line that touched the run's first byte.
        let runs = |covered: &BTreeSet<u64>, other: &BTreeSet<u64>| -> Vec<(u64, u64)> {
            let mut out: Vec<(u64, u64)> = Vec::new();
            for &b in covered.difference(other) {
                match out.last_mut() {
                    Some((_, hi)) if *hi == b => *hi = b + 1,
                    _ => out.push((b, b + 1)),
                }
            }
            out
        };
        for (lo, hi) in runs(&write_cover, &read_cover) {
            let line = write_line_of
                .iter()
                .find(|(b, _)| *b == lo)
                .map_or(encoders[0].start, |(_, l)| *l);
            findings.push((
                line,
                format!(
                    "encode writes header bytes {lo}..{hi} that decode never reads \
                     (codec field symmetry)"
                ),
            ));
        }
        for (lo, hi) in runs(&read_cover, &write_cover) {
            let line = read_line_of
                .iter()
                .find(|(b, _)| *b == lo)
                .map_or(decoder.start, |(_, l)| *l);
            findings.push((
                line,
                format!(
                    "decode reads header bytes {lo}..{hi} that encode never writes \
                     (codec field symmetry)"
                ),
            ));
        }
        // Every `self.field` the encoder serializes must be mentioned
        // by the decoder.
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for (f, idx) in named_writes {
            if !seen.insert(f.clone()) {
                continue;
            }
            let mentioned = (decoder.start..=decoder.end.min(lines.len() - 1))
                .any(|d| has_word(&lines[d].code, &f));
            if !mentioned {
                findings.push((
                    idx,
                    format!(
                        "field `{f}` is serialized by encode but never referenced by \
                         decode (codec field symmetry)"
                    ),
                ));
            }
        }
    }
    findings.sort_by_key(|(idx, _)| *idx);
    findings
}

// ---------------------------------------------------------------------------
// R9 — growable queues must be bounded
// ---------------------------------------------------------------------------

/// Queue-shaped fields with no bound evidence in their file. Returns
/// `(line_idx, message)` findings anchored at the field declaration.
fn r9_unbounded_queues(
    lines: &[ScanLine],
    syms: &FileSymbols,
    mask: &[bool],
) -> Vec<(usize, String)> {
    let mut findings = Vec::new();
    for f in &syms.fields {
        if mask[f.line] {
            continue;
        }
        let is_queue = f.ty.contains("VecDeque<")
            || (f.ty.starts_with("Vec<") && (f.name == "queue" || f.name.ends_with("_queue")));
        if !is_queue {
            continue;
        }
        let len_probe = format!("{}.len()", f.name);
        let truncate_probe = format!("{}.truncate(", f.name);
        let bounded = lines.iter().enumerate().any(|(idx, l)| {
            if mask[idx] {
                return false;
            }
            let code = &l.code;
            if let Some(at) = code.find(&len_probe) {
                let boundary = at == 0 || !is_ident(code.as_bytes()[at - 1] as char);
                let rest = &code[at + len_probe.len()..];
                let compared = ["<", ">", "=="].iter().any(|op| rest.contains(op))
                    || ["<", ">", "=="].iter().any(|op| code[..at].contains(op));
                if boundary && compared {
                    return true;
                }
            }
            code.contains(&truncate_probe)
        });
        if !bounded {
            findings.push((
                f.line,
                format!(
                    "growable queue `{}.{}` ({}) has no enforced bound in this file: \
                     compare `{}` against a capacity (or `truncate`) where it grows, or \
                     justify the bounding invariant with an allow",
                    f.owner, f.name, f.ty, len_probe
                ),
            ));
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Workspace walk
// ---------------------------------------------------------------------------

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "fixtures" || name == "target" {
                continue;
            }
            walk_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every workspace `.rs` file the rules govern: `crates/*/src/**` plus
/// the umbrella crate's `src/**`, in sorted order. Integration tests,
/// benches, examples and fixtures are excluded (see [`analyze_source`]).
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .collect();
        members.sort();
        for member in members {
            walk_rs(&member.join("src"), &mut files)?;
        }
    }
    walk_rs(&root.join("src"), &mut files)?;
    Ok(files)
}

/// Analyze the whole workspace rooted at `root`.
///
/// Two passes: the first aggregates each crate's symbol table (R7's
/// payload-field inventory spans files), the second runs the rules.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let mut sources: Vec<(String, String)> = Vec::new();
    for path in workspace_files(root)? {
        let source = fs::read_to_string(&path)?;
        let logical = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((logical, source));
    }

    let mut tables: std::collections::BTreeMap<String, CrateSymbols> =
        std::collections::BTreeMap::new();
    for (logical, source) in &sources {
        if is_test_path(logical) {
            continue;
        }
        let Some(krate) = crate_of(logical) else {
            continue;
        };
        let syms = symbols::collect(&scan_lines(source));
        tables.entry(krate.to_string()).or_default().absorb(&syms);
    }

    let mut report = Report::default();
    for (logical, source) in &sources {
        let table = crate_of(logical).and_then(|k| tables.get(k));
        let file = analyze_source_with(logical, source, table);
        report.violations.extend(file.violations);
        report.allows.extend(file.allows);
        report.files_scanned += 1;
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    report
        .allows
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

// ---------------------------------------------------------------------------
// JSON rendering (dependency-free, for CI artifacts and annotations)
// ---------------------------------------------------------------------------

/// Escape a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an analysis result as a stable JSON document (the CI
/// artifact format shared by `acc-lint --json` and `acc-verify
/// --json`'s lint section).
pub fn render_json(
    files_scanned: usize,
    violations: &[Diagnostic],
    allows: &[Allowance],
) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"tool\": \"acc-lint\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str("  \"violations\": [");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&v.path),
            v.line,
            v.rule,
            json_escape(&v.message)
        ));
    }
    out.push_str(if violations.is_empty() {
        "],\n"
    } else {
        "\n  ],\n"
    });
    out.push_str("  \"allows\": [");
    for (i, a) in allows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"path\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&a.path),
            a.line,
            a.rule,
            json_escape(&a.reason)
        ));
    }
    out.push_str(if allows.is_empty() {
        "]\n}\n"
    } else {
        "\n  ]\n}\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_blanks_strings_and_comments() {
        let src = "let x = \"HashMap inside a string\"; // HashMap in comment\n";
        let lines = scan_lines(src);
        assert_eq!(lines.len(), 1);
        assert!(!has_word(&lines[0].code, "HashMap"));
        assert!(lines[0].comment.contains("HashMap"));
    }

    #[test]
    fn lexer_handles_lifetimes_and_chars() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }\n";
        let lines = scan_lines(src);
        assert!(lines[0].code.contains("fn f<'a>"));
        assert!(!lines[0].code.contains('x') || lines[0].code.contains("x:"));
    }

    #[test]
    fn raw_strings_do_not_leak_tokens() {
        let src = "let s = r#\"panic! unwrap() HashMap\"#;\n";
        let lines = scan_lines(src);
        assert!(!has_macro(&lines[0].code, "panic"));
        assert!(!has_bare_unwrap(&lines[0].code));
        assert!(!has_word(&lines[0].code, "HashMap"));
    }

    #[test]
    fn unwrap_or_variants_are_not_bare() {
        assert!(has_bare_unwrap("x.unwrap();"));
        assert!(has_bare_unwrap("x.unwrap ( ) ;"));
        assert!(!has_bare_unwrap("x.unwrap_or(3);"));
        assert!(!has_bare_unwrap("x.unwrap_or_else(|| 3);"));
        assert!(!has_bare_unwrap("x.unwrap_or_default();"));
    }

    #[test]
    fn narrowing_detection() {
        assert_eq!(narrowing_cast_target("let x = y as u16;"), Some("u16"));
        assert_eq!(narrowing_cast_target("let x = y as u64;"), None);
        assert_eq!(narrowing_cast_target("let x = y as f64;"), None);
        assert_eq!(narrowing_cast_target("use a::b as c;"), None);
    }

    #[test]
    fn run_family_detection() {
        assert_eq!(run_family_call("sim.run();"), Some("run"));
        assert_eq!(
            run_family_call("self.sim.run_until(deadline);"),
            Some("run_until")
        );
        assert_eq!(
            run_family_call("let r = sim.run_guarded(&wd);"),
            Some("run_guarded")
        );
        assert_eq!(
            run_family_call("ex.run_all(requests)"),
            None,
            "not engine family"
        );
        assert_eq!(
            run_family_call("run_sort(spec, keys)"),
            None,
            "free function"
        );
        assert_eq!(
            run_family_call("let run = 3; run(x)"),
            None,
            "not a method call"
        );
    }

    #[test]
    fn crate_scoping() {
        assert_eq!(crate_of("crates/net/src/switch.rs"), Some("net"));
        assert_eq!(crate_of("src/lib.rs"), Some("acc"));
        assert_eq!(crate_of("README.md"), None);
    }
}
