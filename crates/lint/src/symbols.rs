//! The item/symbol pass: a lightweight structural layer on top of the
//! token lexer. It recovers just enough shape from the per-line code
//! channel for the symbol-aware rules (R7–R9):
//!
//! * **fn spans** — name plus the line range of the body, so R8 can
//!   attribute indexed buffer accesses to `try_encode` vs `decode`;
//! * **impl spans** — so encode/decode pairs are matched within one
//!   `impl` block, not across unrelated types in the same file;
//! * **mod spans** — so a justified allow above `mod foo {` governs the
//!   whole module body;
//! * **struct fields** — name and (textual) type, feeding R7's
//!   payload-buffer table and R9's growable-queue inventory;
//! * **integer consts** — so codec offsets written as named constants
//!   (`INIC_HEADER`, `IP_TCP_HEADER`) still resolve to bytes.
//!
//! This is deliberately not a parser: it brace-counts the lexed code
//! channel (strings and comments already blanked), which is exact for
//! the subset of shapes the rules consume and degrades to "symbol not
//! collected" on anything exotic — a missed symbol can only ever make
//! the rules *less* strict, never produce a false positive.

use crate::ScanLine;

/// A named item body: `start..=end` are 0-based line indices covering
/// the header line through the line holding the closing brace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ItemSpan {
    pub name: String,
    pub start: usize,
    pub end: usize,
}

/// One struct field: `owner.name: ty` declared at 0-based `line`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct FieldDef {
    pub owner: String,
    pub name: String,
    /// The field's type, textually, whitespace-normalized (e.g.
    /// `Vec<u8>`, `VecDeque<Frame>`).
    pub ty: String,
    pub line: usize,
}

/// An integer constant the file defines (`const NAME: <int> = 40;`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ConstDef {
    pub name: String,
    pub value: u64,
}

/// Everything the symbol pass collects from one file.
#[derive(Debug, Default, Clone)]
pub(crate) struct FileSymbols {
    pub fns: Vec<ItemSpan>,
    pub impls: Vec<ItemSpan>,
    pub mods: Vec<ItemSpan>,
    pub fields: Vec<FieldDef>,
    pub consts: Vec<ConstDef>,
}

impl FileSymbols {
    /// The integer value of a named const, if the file defines one.
    pub fn const_value(&self, name: &str) -> Option<u64> {
        self.consts.iter().find(|c| c.name == name).map(|c| c.value)
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// The identifier starting at byte `at` of `code`.
fn ident_at(code: &str, at: usize) -> String {
    code[at..].chars().take_while(|&c| is_ident(c)).collect()
}

/// Does `code` contain keyword `kw` as a whole word, and if so where
/// does the text after it begin?
fn after_keyword(code: &str, kw: &str) -> Option<usize> {
    for at in crate::word_occurrences(code, kw) {
        return Some(at + kw.len());
    }
    None
}

/// Find the line index holding the brace that closes the block whose
/// `{` first opens at or after line `start`. Returns `None` when a `;`
/// ends the item before any `{` (a declaration, e.g. `mod x;` or a
/// trait method signature).
pub(crate) fn block_end(lines: &[ScanLine], start: usize) -> Option<usize> {
    let mut depth: i64 = 0;
    let mut opened = false;
    for (k, line) in lines.iter().enumerate().skip(start) {
        for c in line.code.chars() {
            match c {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => depth -= 1,
                ';' if !opened => return None,
                _ => {}
            }
        }
        if opened && depth <= 0 {
            return Some(k);
        }
    }
    None
}

/// Parse one struct-body line as a field declaration, yielding
/// `(name, type)`. Accepts `pub`/`pub(...)` prefixes; rejects lines
/// that are not `ident: Type,`-shaped.
fn parse_field(code: &str) -> Option<(String, String)> {
    let mut t = code.trim();
    if let Some(rest) = t.strip_prefix("pub") {
        let rest = rest.trim_start();
        t = if let Some(r) = rest.strip_prefix('(') {
            r.split_once(')')?.1.trim_start()
        } else {
            rest
        };
    }
    let name: String = t.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() || name.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        return None;
    }
    let rest = t[name.len()..].trim_start();
    let rest = rest.strip_prefix(':')?;
    if rest.starts_with(':') {
        return None; // `::` path, not a field
    }
    let ty = rest.trim().trim_end_matches(',').trim();
    if ty.is_empty() {
        return None;
    }
    // Whitespace-normalize so `Vec < u8 >` and `Vec<u8>` compare equal.
    let ty: String = ty.split_whitespace().collect::<Vec<_>>().join(" ");
    let ty = ty.replace(" <", "<").replace("< ", "<").replace(" >", ">");
    Some((name, ty))
}

/// Parse `const NAME: <int-type> = <literal>;` (optionally `pub`).
fn parse_const(code: &str) -> Option<ConstDef> {
    let at = after_keyword(code, "const")?;
    let rest = code[at..].trim_start();
    let name = ident_at(rest, 0);
    if name.is_empty() {
        return None;
    }
    let rest = rest[name.len()..].trim_start().strip_prefix(':')?;
    let (_, value) = rest.split_once('=')?;
    let value = value.trim().trim_end_matches(';').trim();
    if value.starts_with("0x") || value.starts_with("0b") || value.starts_with("0o") {
        return None; // only decimal literals resolve to offsets
    }
    let digits: String = value
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .collect();
    let digits = digits.replace('_', "");
    if digits.is_empty() {
        return None;
    }
    // Reject suffixed non-integer or expression tails other than a
    // plain type suffix (`40usize` parses; `4 * K` does not).
    let tail = &value[digits.len() + value.matches('_').count()..];
    if !tail.is_empty() && !tail.chars().all(is_ident) {
        return None;
    }
    digits
        .parse::<u64>()
        .ok()
        .map(|v| ConstDef { name, value: v })
}

/// Run the symbol pass over a lexed file.
pub(crate) fn collect(lines: &[ScanLine]) -> FileSymbols {
    let mut out = FileSymbols::default();
    for (idx, line) in lines.iter().enumerate() {
        let code = line.code.trim();
        if code.is_empty() {
            continue;
        }
        if let Some(c) = parse_const(code) {
            out.consts.push(c);
        }
        if let Some(at) = after_keyword(code, "fn") {
            let name = ident_at(code[at..].trim_start(), 0);
            if !name.is_empty() {
                if let Some(end) = block_end(lines, idx) {
                    out.fns.push(ItemSpan {
                        name,
                        start: idx,
                        end,
                    });
                }
            }
        }
        // `impl Type {` / `impl Trait for Type {` — name the Type.
        if code.starts_with("impl") && after_keyword(code, "impl").is_some() {
            let rest = code["impl".len()..].trim_start();
            let rest = rest.strip_prefix('<').map_or(rest, |r| {
                // Skip the generics group to the matching `>`.
                let mut depth = 1;
                let mut cut = r.len();
                for (i, c) in r.char_indices() {
                    match c {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                cut = i + 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                r[cut..].trim_start()
            });
            let head = rest.split(" for ").last().unwrap_or(rest);
            let name = ident_at(head.trim_start(), 0);
            if !name.is_empty() {
                if let Some(end) = block_end(lines, idx) {
                    out.impls.push(ItemSpan {
                        name,
                        start: idx,
                        end,
                    });
                }
            }
        }
        if let Some(at) = after_keyword(code, "mod") {
            let name = ident_at(code[at..].trim_start(), 0);
            if !name.is_empty() && code.contains('{') {
                if let Some(end) = block_end(lines, idx) {
                    out.mods.push(ItemSpan {
                        name,
                        start: idx,
                        end,
                    });
                }
            }
        }
        if let Some(at) = after_keyword(code, "struct") {
            let name = ident_at(code[at..].trim_start(), 0);
            if name.is_empty() || !code.contains('{') {
                continue; // tuple/unit struct: no named fields
            }
            if let Some(end) = block_end(lines, idx) {
                for (fidx, fline) in lines.iter().enumerate().take(end).skip(idx + 1) {
                    if let Some((fname, ty)) = parse_field(&fline.code) {
                        out.fields.push(FieldDef {
                            owner: name.clone(),
                            name: fname,
                            ty,
                            line: fidx,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan_lines;

    const SRC: &str = r#"
pub const HEADER: usize = 16;
const WAYS: u32 = 4_096;
const NOT_INT: &str = "x";

pub struct Packet {
    pub src: u16,
    data: Vec<u8>,
    queue: VecDeque<Frame>,
}

impl Packet {
    pub fn try_encode(&self, out: &mut [u8]) -> bool {
        out[0..2].copy_from_slice(&self.src.to_le_bytes());
        true
    }

    pub fn decode(bytes: &[u8]) -> Packet {
        unreachable_stub()
    }
}

mod shadow {
    pub fn helper() {}
}
"#;

    #[test]
    fn collects_consts_fields_fns_impls_mods() {
        let syms = collect(&scan_lines(SRC));
        assert_eq!(syms.const_value("HEADER"), Some(16));
        assert_eq!(syms.const_value("WAYS"), Some(4096));
        assert_eq!(syms.const_value("NOT_INT"), None);
        let fields: Vec<(&str, &str)> = syms
            .fields
            .iter()
            .map(|f| (f.name.as_str(), f.ty.as_str()))
            .collect();
        assert_eq!(
            fields,
            vec![
                ("src", "u16"),
                ("data", "Vec<u8>"),
                ("queue", "VecDeque<Frame>")
            ]
        );
        let fns: Vec<&str> = syms.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(fns, vec!["try_encode", "decode", "helper"]);
        assert_eq!(syms.impls.len(), 1);
        assert_eq!(syms.impls[0].name, "Packet");
        assert_eq!(syms.mods.len(), 1);
        assert_eq!(syms.mods[0].name, "shadow");
        // fn spans nest inside the impl span.
        let imp = &syms.impls[0];
        let enc = &syms.fns[0];
        assert!(imp.start < enc.start && enc.end < imp.end);
    }

    #[test]
    fn declarations_without_bodies_are_skipped() {
        let syms = collect(&scan_lines("mod external;\ntrait T { fn sig(&self); }\n"));
        assert!(syms.mods.is_empty());
        // The trait block itself is not an impl; `sig` has no body on
        // its line run before the `;` — the trait's `{` makes the
        // brace-counter see a block, so `sig` resolves to the trait's
        // closing line. That is safe: R8 only reads accesses inside the
        // span, and a signature line holds none.
        assert!(syms.impls.is_empty());
    }
}
