//! `acc-lint` — run the workspace static-analysis pass.
//!
//! ```text
//! acc-lint [--root <dir>] [--quiet] [--json]
//! acc-lint [--json] --check-file <logical-path> <file>
//! ```
//!
//! Walks every workspace `.rs` file under `<dir>` (default: the current
//! directory, falling back to the workspace that built this binary),
//! prints rustc-style diagnostics for each violation of rules R1–R6,
//! lists the collected allowlist justifications, and exits nonzero if
//! any violation remains.
//!
//! `--check-file` analyzes a single file as if it lived at
//! `<logical-path>` inside the workspace (rule scoping is path-based) —
//! used by the fixture tests and handy for pre-commit hooks. Module-
//! and file-scope allow annotations suppress in this mode exactly as in
//! workspace mode.
//!
//! `--json` writes the machine-readable report to stdout (diagnostics
//! stay on stderr in the rustc-style two-line format CI's problem
//! matcher annotates from).

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root(cli_root: Option<PathBuf>) -> PathBuf {
    if let Some(root) = cli_root {
        return root;
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    if cwd.join("crates").is_dir() {
        return cwd;
    }
    // Fall back to the workspace this binary was built from, so
    // `cargo run -p acc-lint` works from any subdirectory.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(cwd)
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut json = false;
    let mut check_file: Option<(String, String)> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check-file" => {
                let (Some(logical), Some(file)) = (args.next(), args.next()) else {
                    eprintln!("acc-lint: --check-file requires <logical-path> <file>");
                    return ExitCode::from(2);
                };
                check_file = Some((logical, file));
            }
            "--root" => {
                root = args.next().map(PathBuf::from);
                if root.is_none() {
                    eprintln!("acc-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            }
            "--quiet" | "-q" => quiet = true,
            "--json" => json = true,
            "--help" | "-h" => {
                println!(
                    "usage: acc-lint [--root <dir>] [--quiet] [--json]\n       \
                     acc-lint [--json] --check-file <logical-path> <file>"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("acc-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    if let Some((logical, file)) = check_file {
        let source = match std::fs::read_to_string(&file) {
            Ok(s) => s,
            Err(err) => {
                eprintln!("acc-lint: failed to read {file}: {err}");
                return ExitCode::from(2);
            }
        };
        let report = acc_lint::analyze_source(&logical, &source);
        for v in &report.violations {
            eprintln!("{v}");
        }
        if json {
            print!(
                "{}",
                acc_lint::render_json(1, &report.violations, &report.allows)
            );
        } else {
            println!(
                "acc-lint: 1 file scanned as {logical}, {} violation(s), {} allow(s)",
                report.violations.len(),
                report.allows.len()
            );
        }
        return if report.violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let root = workspace_root(root);
    let report = match acc_lint::analyze_workspace(&root) {
        Ok(r) => r,
        Err(err) => {
            eprintln!("acc-lint: failed to scan {}: {err}", root.display());
            return ExitCode::from(2);
        }
    };

    for v in &report.violations {
        eprintln!("{v}");
    }
    if json {
        print!(
            "{}",
            acc_lint::render_json(report.files_scanned, &report.violations, &report.allows)
        );
    } else {
        if !quiet && !report.allows.is_empty() {
            println!("allowlist ({} annotation(s)):", report.allows.len());
            for a in &report.allows {
                println!("  {}:{} [{}] — {}", a.path, a.line, a.rule, a.reason);
            }
        }
        println!(
            "acc-lint: {} file(s) scanned, {} violation(s), {} allow(s)",
            report.files_scanned,
            report.violations.len(),
            report.allows.len()
        );
    }
    if report.violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
