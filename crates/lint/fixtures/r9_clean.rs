//! R9 fixture: the queue is bounded — pushes beyond capacity are
//! rejected, and the `len()`-vs-capacity comparison is the evidence.
use std::collections::VecDeque;

pub struct Relay {
    inbox: VecDeque<u64>,
    cap: usize,
}

impl Relay {
    pub fn push(&mut self, x: u64) -> bool {
        if self.inbox.len() == self.cap {
            return false;
        }
        self.inbox.push_back(x);
        true
    }
}
