//! R6 fixture, clean: look-alikes that are not engine run-family calls,
//! plus a justified raw call. Checked as if at `crates/core/src/probe.rs`.

pub fn fan_out(ex: &Executor, requests: Vec<RunRequest>) -> Vec<RunOutcome> {
    // A different method entirely — `run_all` is the executor's fan-out.
    ex.run_all(requests)
}

pub fn baseline(spec: ClusterSpec, keys: u64) -> SortRunReport {
    // Free function, not an engine method.
    run_sort(spec, keys)
}

pub fn bounded_probe(sim: &mut Simulation) {
    // acc-lint: allow(R6, reason = "fixture: bounded micro-sim with a proven event horizon")
    sim.run();
}
