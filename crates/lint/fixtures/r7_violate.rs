//! R7 fixture: deep payload copies on the zero-copy hot path.
pub struct Slot {
    payload: Vec<u8>,
}

impl Slot {
    pub fn forward(&self) -> Vec<u8> {
        self.payload.clone()
    }

    pub fn snapshot(bytes: &[u8]) -> Vec<u8> {
        bytes.to_vec()
    }

    pub fn copy_in(bytes: &[u8]) -> Vec<u8> {
        Vec::from(bytes)
    }
}
