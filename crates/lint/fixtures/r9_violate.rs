//! R9 fixture: a growable component queue with no enforced bound.
use std::collections::VecDeque;

pub struct Relay {
    inbox: VecDeque<u64>,
}

impl Relay {
    pub fn push(&mut self, x: u64) {
        self.inbox.push_back(x);
    }
}
