//! R4 fixture (clean): expect with a component-identifying message.
pub fn head(bytes: &[u8]) -> [u8; 4] {
    bytes[0..4]
        .try_into()
        .expect("codec header slice is 4 bytes")
}
