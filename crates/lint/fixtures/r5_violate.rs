//! R5 fixture: direct panic in the sim hot path.
pub fn dispatch(slot: Option<u32>) -> u32 {
    match slot {
        Some(id) => id,
        None => panic!("unregistered component"),
    }
}
