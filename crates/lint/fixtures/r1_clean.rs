//! R1 fixture (clean): ordered collections only.
use std::collections::BTreeMap;

pub struct MacTable {
    table: BTreeMap<u64, usize>,
}

impl MacTable {
    pub fn new() -> MacTable {
        MacTable {
            table: BTreeMap::new(),
        }
    }
}
