//! R8 fixture: asymmetric wire codec. `try_encode` writes `seq` into
//! bytes 2..6 that `decode` never reads, and `decode` probes byte 6
//! that `try_encode` never writes.
pub struct Hdr {
    pub chan: u16,
    pub seq: u32,
}

impl Hdr {
    pub fn try_encode(&self, out: &mut [u8]) -> bool {
        out[0..2].copy_from_slice(&self.chan.to_le_bytes());
        out[2..6].copy_from_slice(&self.seq.to_le_bytes());
        true
    }

    pub fn decode(payload: &[u8]) -> Option<Hdr> {
        let chan = u16::from_le_bytes(payload[0..2].try_into().ok()?);
        let flags = payload[6];
        if flags != 0 {
            return None;
        }
        Some(Hdr { chan, seq: 0 })
    }
}
