//! R3 fixture: silent narrowing cast in a wire codec.
pub fn encode_rank(rank: u32) -> [u8; 2] {
    (rank as u16).to_le_bytes()
}
