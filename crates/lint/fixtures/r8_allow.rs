//! R8 fixture: a reserved-padding probe justified with an allow — the
//! decoder reads byte 2 only to reject nonzero padding; the encoder
//! zero-fills it implicitly via a fresh buffer.
pub struct Hdr {
    pub chan: u16,
}

impl Hdr {
    pub fn try_encode(&self, out: &mut [u8]) -> bool {
        out[0..2].copy_from_slice(&self.chan.to_le_bytes());
        true
    }

    pub fn decode(payload: &[u8]) -> Option<Hdr> {
        let chan = u16::from_le_bytes(payload[0..2].try_into().ok()?);
        // acc-lint: allow(R8, reason = "reserved padding probe; the encoder zero-fills the fresh buffer")
        if payload[2] != 0 {
            return None;
        }
        Some(Hdr { chan })
    }
}
