//! R9 fixture: an unbounded-looking queue whose bounding invariant
//! lives elsewhere, justified with an allow on the field.
use std::collections::VecDeque;

pub struct Relay {
    // acc-lint: allow(R9, reason = "drained every round by the scheduler; occupancy bounded by fan-in")
    inbox: VecDeque<u64>,
}

impl Relay {
    pub fn push(&mut self, x: u64) {
        self.inbox.push_back(x);
    }
}
