//! R7 fixture: zero-copy forwarding (clean). Cloning a `PayloadView`
//! is a refcount bump, not a byte copy, so it does not flag.
pub struct Slot {
    payload: PayloadView,
}

impl Slot {
    pub fn forward(&self) -> PayloadView {
        self.payload.clone()
    }
}
