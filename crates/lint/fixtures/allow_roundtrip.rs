//! Allowlist fixture: a justified violation is suppressed and its
//! reason collected.
// acc-lint: allow(R1, reason = "drop-order scratch set; never iterated")
use std::collections::HashSet;

pub fn distinct(xs: &[u64]) -> usize {
    // acc-lint: allow(R1, reason = "len() only; iteration order never observed")
    let seen: HashSet<u64> = xs.iter().copied().collect();
    seen.len()
}
