//! Allowlist fixture: an annotation without a reason is itself a
//! diagnostic (A0) and suppresses nothing.
// acc-lint: allow(R1)
use std::collections::HashSet;

pub fn distinct(xs: &[u64]) -> usize {
    let seen: HashSet<u64> = xs.iter().copied().collect();
    seen.len()
}
