//! Module-scope allow fixture: one annotation above `mod cache {`
//! covers every violation inside the block; the stray use outside the
//! module still flags.
// acc-lint: allow(R1, reason = "scratch cache module; iteration order never observed")
mod cache {
    use std::collections::HashMap;

    pub fn build() -> HashMap<u64, u64> {
        HashMap::new()
    }
}

pub fn stray() -> usize {
    std::collections::HashSet::<u64>::new().len()
}
