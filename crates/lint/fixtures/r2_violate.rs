//! R2 fixture: wall-clock time outside the bench crate.
use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}
