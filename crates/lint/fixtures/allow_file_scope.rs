// acc-lint: allow(R2, reason = "frozen wall-clock shim kept for the bench harness")
#![allow(unused_imports)]
//! File-scope allow fixture: the annotation binds to the inner
//! attribute, so it governs every line of the file.
use std::time::Instant;

pub fn now() -> Instant {
    Instant::now()
}
