//! R5 fixture (clean): the hot path surfaces errors instead of
//! panicking directly.
pub fn dispatch(slot: Option<u32>) -> Result<u32, &'static str> {
    slot.ok_or("unregistered component")
}
