//! R8 fixture: symmetric wire codec — every byte written by
//! `try_encode` is read back by `decode` at the same offsets.
pub struct Hdr {
    pub chan: u16,
    pub seq: u32,
}

impl Hdr {
    pub fn try_encode(&self, out: &mut [u8]) -> bool {
        out[0..2].copy_from_slice(&self.chan.to_le_bytes());
        out[2..6].copy_from_slice(&self.seq.to_le_bytes());
        true
    }

    pub fn decode(payload: &[u8]) -> Option<Hdr> {
        let chan = u16::from_le_bytes(payload[0..2].try_into().ok()?);
        let seq = u32::from_le_bytes(payload[2..6].try_into().ok()?);
        Some(Hdr { chan, seq })
    }
}
