//! Masking fixture: test modules are exempt from every rule.
pub fn double(x: u64) -> u64 {
    x * 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn unwrap_and_hash_are_fine_in_tests() {
        let mut m = HashMap::new();
        m.insert(1u64, double(1));
        assert_eq!(*m.get(&1).unwrap(), 2);
    }
}
