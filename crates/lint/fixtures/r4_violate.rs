//! R4 fixture: bare unwrap in library code.
pub fn head(bytes: &[u8]) -> [u8; 4] {
    bytes[0..4].try_into().unwrap()
}
