//! R3 fixture (clean): checked conversion in a wire codec.
pub fn encode_rank(rank: u32) -> Option<[u8; 2]> {
    u16::try_from(rank).ok().map(u16::to_le_bytes)
}
