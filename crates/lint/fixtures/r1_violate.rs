//! R1 fixture: unordered collections in a deterministic crate.
use std::collections::HashMap;

pub struct MacTable {
    table: HashMap<u64, usize>,
}

impl MacTable {
    pub fn new() -> MacTable {
        MacTable {
            table: HashMap::new(),
        }
    }
}
