//! R2 fixture (clean): simulated time only.
pub fn stamp(now_ps: u64, step_ps: u64) -> u64 {
    now_ps + step_ps
}
