//! R6 fixture: raw engine run-family calls outside the deadline-aware
//! wrapper. Checked as if at `crates/core/src/probe.rs`.

pub fn drive(sim: &mut Simulation) {
    sim.run();
}

pub fn drive_until(sim: &mut Simulation, deadline: SimTime) {
    sim.run_until(deadline);
}

pub fn drive_guarded(sim: &mut Simulation, wd: &Watchdog) {
    let _ = sim.run_guarded(wd);
}
