//! R7 fixture: a justified materialization point.
pub struct Slot {
    payload: Vec<u8>,
}

impl Slot {
    pub fn export(&self) -> Vec<u8> {
        // acc-lint: allow(R7, reason = "diagnostic copy-out; never called per frame")
        self.payload.clone()
    }
}
