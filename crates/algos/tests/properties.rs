//! Randomized invariant tests over the computational kernels: the
//! invariants every INIC/host implementation pair relies on.
//!
//! Each test sweeps a seeded splitmix64 stream over many generated
//! cases, so failures are reproducible from the fixed seeds (no
//! external property-testing dependency).

use acc_algos::complex::approx_eq;
use acc_algos::fft::{fft, fft_2d, ifft, naive_dft, Matrix};
use acc_algos::sort::{
    bucket_index, bucket_sort, bucket_then_count_sort, bytes_to_keys, count_sort, counting_pass,
    is_sorted, keys_to_bytes, quicksort, two_phase_bucket_sort,
};
use acc_algos::transpose::{
    apply_permutation_bytes, block_transpose_index_map, bytes_to_slab, distributed_transpose,
    join_row_blocks, slab_to_bytes, split_row_blocks,
};
use acc_algos::Complex64;

/// Minimal splitmix64 stream for generating test cases.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform in `[0, n)` (modulo bias is irrelevant for test-case generation).
    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }

    fn complex_vec(&mut self, max_log: u32) -> Vec<Complex64> {
        let log_n = self.below(max_log as u64 + 1) as u32;
        (0..1usize << log_n)
            .map(|_| Complex64::new(self.f64_in(-1e3, 1e3), self.f64_in(-1e3, 1e3)))
            .collect()
    }

    fn keys(&mut self, max_len: u64) -> Vec<u32> {
        let n = self.below(max_len) as usize;
        (0..n).map(|_| self.next_u32()).collect()
    }
}

#[test]
fn fft_matches_naive_dft() {
    let mut g = Gen::new(0xA1);
    for _ in 0..64 {
        let input = g.complex_vec(6);
        let fast = fft(&input);
        let slow = naive_dft(&input);
        let scale = input.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in fast.iter().zip(&slow) {
            assert!(approx_eq(*a, *b, 1e-7 * scale * input.len() as f64));
        }
    }
}

#[test]
fn ifft_inverts_fft() {
    let mut g = Gen::new(0xA2);
    for _ in 0..64 {
        let input = g.complex_vec(8);
        let round = ifft(&fft(&input));
        let scale = input.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in round.iter().zip(&input) {
            assert!(approx_eq(*a, *b, 1e-9 * scale * input.len() as f64));
        }
    }
}

#[test]
fn fft_is_linear() {
    let mut g = Gen::new(0xA3);
    for _ in 0..64 {
        let a = g.complex_vec(5);
        let k = g.f64_in(-10.0, 10.0);
        // FFT(k·a) = k·FFT(a)
        let scaled: Vec<Complex64> = a.iter().map(|z| z.scale(k)).collect();
        let lhs = fft(&scaled);
        let rhs: Vec<Complex64> = fft(&a).iter().map(|z| z.scale(k)).collect();
        let scale = a.iter().map(|z| z.abs()).fold(1.0, f64::max) * (k.abs() + 1.0);
        for (x, y) in lhs.iter().zip(&rhs) {
            assert!(approx_eq(*x, *y, 1e-8 * scale * a.len() as f64));
        }
    }
}

#[test]
fn parseval_energy_preserved() {
    let mut g = Gen::new(0xA4);
    for _ in 0..64 {
        let input = g.complex_vec(8);
        let out = fft(&input);
        let e_time: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = out.iter().map(|z| z.norm_sqr()).sum::<f64>() / input.len() as f64;
        assert!((e_time - e_freq).abs() <= 1e-6 * e_time.max(1.0));
    }
}

#[test]
fn distributed_transpose_equals_serial() {
    let mut g = Gen::new(0xA5);
    for _ in 0..48 {
        let p = 1usize << g.below(4);
        let mult = 1 + g.below(3) as usize;
        let rows = p * mult;
        let mut v = Vec::with_capacity(rows * rows);
        let mut x = g.next_u64() | 1;
        for _ in 0..rows * rows {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            v.push(Complex64::new((x >> 33) as f64, (x & 0xFFFF) as f64));
        }
        let m = Matrix::from_data(rows, rows, v);
        let slabs = split_row_blocks(&m, p);
        let t = distributed_transpose(&slabs);
        assert_eq!(join_row_blocks(&t), m.transposed());
    }
}

#[test]
fn transpose_index_map_is_involution() {
    for m in 1usize..=32 {
        let map = block_transpose_index_map(m);
        // Applying the map twice is the identity.
        let data: Vec<u8> = (0..m * m * 16).map(|i| (i % 251) as u8).collect();
        let once = apply_permutation_bytes(&data, &map, 16);
        let twice = apply_permutation_bytes(&once, &map, 16);
        assert_eq!(twice, data);
    }
}

#[test]
fn slab_byte_roundtrip() {
    let mut g = Gen::new(0xA6);
    for _ in 0..64 {
        let rows = 1 + g.below(8) as usize;
        let cols = 1 + g.below(8) as usize;
        let mut x = g.next_u64() | 1;
        let data: Vec<Complex64> = (0..rows * cols)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                Complex64::new(f64::from(x as u32), f64::from((x >> 32) as u32))
            })
            .collect();
        let m = Matrix::from_data(rows, cols, data);
        assert_eq!(bytes_to_slab(&slab_to_bytes(&m), rows, cols), m);
    }
}

#[test]
fn count_sort_equals_std() {
    let mut g = Gen::new(0xA7);
    for _ in 0..32 {
        let keys = g.keys(4000);
        let got = count_sort(&keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

#[test]
fn quicksort_equals_std() {
    let mut g = Gen::new(0xA8);
    for _ in 0..32 {
        let keys = g.keys(4000);
        let mut got = keys.clone();
        quicksort(&mut got);
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

#[test]
fn bucket_then_count_equals_std() {
    let mut g = Gen::new(0xA9);
    for _ in 0..32 {
        let keys = g.keys(4000);
        let log_k = 1 + g.below(8) as u32;
        let got = bucket_then_count_sort(&keys, 1 << log_k);
        let mut expect = keys;
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

#[test]
fn two_phase_equals_one_phase() {
    let mut g = Gen::new(0xAA);
    for _ in 0..32 {
        let keys = g.keys(4000);
        let (two, ops) = two_phase_bucket_sort(&keys, 16, 8);
        let one = bucket_then_count_sort(&keys, 128);
        assert_eq!(two, one);
        assert_eq!(ops, keys.len() as u64);
    }
}

#[test]
fn bucket_sort_partitions_exactly() {
    let mut g = Gen::new(0xAB);
    for _ in 0..32 {
        let keys = g.keys(2000);
        let k = 1usize << (1 + g.below(6) as u32);
        let buckets = bucket_sort(&keys, k);
        // Union of buckets is the input multiset.
        let total: usize = buckets.iter().map(Vec::len).sum();
        assert_eq!(total, keys.len());
        // Each key in its right bucket, in stable order.
        let mut replay = vec![0usize; k];
        for &key in &keys {
            let b = bucket_index(key, k);
            assert_eq!(buckets[b][replay[b]], key);
            replay[b] += 1;
        }
        // Bucket boundaries respect key order: concatenation of sorted
        // buckets is globally sorted.
        let mut cat = Vec::new();
        for b in &buckets {
            let mut s = b.clone();
            s.sort_unstable();
            cat.extend(s);
        }
        assert!(is_sorted(&cat));
    }
}

#[test]
fn counting_pass_is_stable_and_permutes() {
    let mut g = Gen::new(0xAC);
    for _ in 0..32 {
        let keys = g.keys(2000);
        let shift = g.below(25) as u32;
        let out = counting_pass(&keys, shift, 8);
        // Multiset preserved.
        let mut a = keys.clone();
        let mut b = out.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Digit-sorted.
        let digit = |k: u32| (k >> shift) & 0xFF;
        assert!(out.windows(2).all(|w| digit(w[0]) <= digit(w[1])));
    }
}

#[test]
fn key_bytes_roundtrip() {
    let mut g = Gen::new(0xAD);
    for _ in 0..32 {
        let keys = g.keys(2000);
        assert_eq!(bytes_to_keys(&keys_to_bytes(&keys)), keys);
    }
}

#[test]
fn fft_2d_energy_preserved() {
    let mut g = Gen::new(0xAE);
    for _ in 0..48 {
        let n = 1usize << (1 + g.below(4) as u32);
        let mut x = g.next_u64() | 1;
        let data: Vec<Complex64> = (0..n * n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                Complex64::new(((x >> 40) as f64) / 1e3, ((x >> 20) as f64 % 997.0) / 1e3)
            })
            .collect();
        let m = Matrix::from_data(n, n, data);
        let out = fft_2d(&m);
        let e_in: f64 = m.data().iter().map(|z| z.norm_sqr()).sum();
        let e_out: f64 = out.data().iter().map(|z| z.norm_sqr()).sum::<f64>() / (n * n) as f64;
        assert!((e_in - e_out).abs() <= 1e-6 * e_in.max(1.0));
    }
}
