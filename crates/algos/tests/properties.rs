//! Property-based tests over the computational kernels: the invariants
//! every INIC/host implementation pair relies on.

use proptest::prelude::*;

use acc_algos::complex::approx_eq;
use acc_algos::fft::{fft, fft_2d, ifft, naive_dft, Matrix};
use acc_algos::sort::{
    bucket_index, bucket_sort, bucket_then_count_sort, bytes_to_keys, count_sort,
    counting_pass, is_sorted, keys_to_bytes, quicksort, two_phase_bucket_sort,
};
use acc_algos::transpose::{
    apply_permutation_bytes, block_transpose_index_map, bytes_to_slab, distributed_transpose,
    join_row_blocks, slab_to_bytes, split_row_blocks,
};
use acc_algos::Complex64;

fn complex_vec(max_log: u32) -> impl Strategy<Value = Vec<Complex64>> {
    (0..=max_log)
        .prop_flat_map(|log_n| {
            prop::collection::vec(
                (-1.0e3..1.0e3f64, -1.0e3..1.0e3f64).prop_map(|(re, im)| Complex64::new(re, im)),
                1usize << log_n,
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fft_matches_naive_dft(input in complex_vec(6)) {
        let fast = fft(&input);
        let slow = naive_dft(&input);
        let scale = input.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!(approx_eq(*a, *b, 1e-7 * scale * input.len() as f64));
        }
    }

    #[test]
    fn ifft_inverts_fft(input in complex_vec(8)) {
        let round = ifft(&fft(&input));
        let scale = input.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in round.iter().zip(&input) {
            prop_assert!(approx_eq(*a, *b, 1e-9 * scale * input.len() as f64));
        }
    }

    #[test]
    fn fft_is_linear(a in complex_vec(5), k in -10.0..10.0f64) {
        // FFT(k·a) = k·FFT(a)
        let scaled: Vec<Complex64> = a.iter().map(|z| z.scale(k)).collect();
        let lhs = fft(&scaled);
        let rhs: Vec<Complex64> = fft(&a).iter().map(|z| z.scale(k)).collect();
        let scale = a.iter().map(|z| z.abs()).fold(1.0, f64::max) * (k.abs() + 1.0);
        for (x, y) in lhs.iter().zip(&rhs) {
            prop_assert!(approx_eq(*x, *y, 1e-8 * scale * a.len() as f64));
        }
    }

    #[test]
    fn parseval_energy_preserved(input in complex_vec(8)) {
        let out = fft(&input);
        let e_time: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = out.iter().map(|z| z.norm_sqr()).sum::<f64>() / input.len() as f64;
        prop_assert!((e_time - e_freq).abs() <= 1e-6 * e_time.max(1.0));
    }

    #[test]
    fn distributed_transpose_equals_serial(
        log_p in 0usize..=3,
        mult in 1usize..=3,
        seed in any::<u32>(),
    ) {
        let p = 1 << log_p;
        let rows = p * mult;
        let mut v = Vec::with_capacity(rows * rows);
        let mut x = seed as u64 | 1;
        for _ in 0..rows * rows {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            v.push(Complex64::new((x >> 33) as f64, (x & 0xFFFF) as f64));
        }
        let m = Matrix::from_data(rows, rows, v);
        let slabs = split_row_blocks(&m, p);
        let t = distributed_transpose(&slabs);
        prop_assert_eq!(join_row_blocks(&t), m.transposed());
    }

    #[test]
    fn transpose_index_map_is_involution(m in 1usize..=32) {
        let map = block_transpose_index_map(m);
        // Applying the map twice is the identity.
        let data: Vec<u8> = (0..m * m * 16).map(|i| (i % 251) as u8).collect();
        let once = apply_permutation_bytes(&data, &map, 16);
        let twice = apply_permutation_bytes(&once, &map, 16);
        prop_assert_eq!(twice, data);
    }

    #[test]
    fn slab_byte_roundtrip(rows in 1usize..=8, cols in 1usize..=8, seed in any::<u32>()) {
        let mut x = seed as u64 | 1;
        let data: Vec<Complex64> = (0..rows * cols)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
                Complex64::new(f64::from(x as u32), f64::from((x >> 32) as u32))
            })
            .collect();
        let m = Matrix::from_data(rows, cols, data);
        prop_assert_eq!(bytes_to_slab(&slab_to_bytes(&m), rows, cols), m);
    }

    #[test]
    fn count_sort_equals_std(keys in prop::collection::vec(any::<u32>(), 0..4000)) {
        let got = count_sort(&keys);
        let mut expect = keys.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn quicksort_equals_std(keys in prop::collection::vec(any::<u32>(), 0..4000)) {
        let mut got = keys.clone();
        quicksort(&mut got);
        let mut expect = keys;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn bucket_then_count_equals_std(
        keys in prop::collection::vec(any::<u32>(), 0..4000),
        log_k in 1u32..=8,
    ) {
        let got = bucket_then_count_sort(&keys, 1 << log_k);
        let mut expect = keys;
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn two_phase_equals_one_phase(keys in prop::collection::vec(any::<u32>(), 0..4000)) {
        let (two, ops) = two_phase_bucket_sort(&keys, 16, 8);
        let one = bucket_then_count_sort(&keys, 128);
        prop_assert_eq!(two, one);
        prop_assert_eq!(ops, keys.len() as u64);
    }

    #[test]
    fn bucket_sort_partitions_exactly(
        keys in prop::collection::vec(any::<u32>(), 0..2000),
        log_k in 1u32..=6,
    ) {
        let k = 1usize << log_k;
        let buckets = bucket_sort(&keys, k);
        // Union of buckets is the input multiset.
        let total: usize = buckets.iter().map(Vec::len).sum();
        prop_assert_eq!(total, keys.len());
        // Each key in its right bucket, in stable order.
        let mut replay = vec![0usize; k];
        for &key in &keys {
            let b = bucket_index(key, k);
            prop_assert_eq!(buckets[b][replay[b]], key);
            replay[b] += 1;
        }
        // Bucket boundaries respect key order: concatenation of sorted
        // buckets is globally sorted.
        let mut cat = Vec::new();
        for b in &buckets {
            let mut s = b.clone();
            s.sort_unstable();
            cat.extend(s);
        }
        prop_assert!(is_sorted(&cat));
    }

    #[test]
    fn counting_pass_is_stable_and_permutes(
        keys in prop::collection::vec(any::<u32>(), 0..2000),
        shift in 0u32..=24,
    ) {
        let out = counting_pass(&keys, shift, 8);
        // Multiset preserved.
        let mut a = keys.clone();
        let mut b = out.clone();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        // Digit-sorted.
        let digit = |k: u32| (k >> shift) & 0xFF;
        prop_assert!(out.windows(2).all(|w| digit(w[0]) <= digit(w[1])));
    }

    #[test]
    fn key_bytes_roundtrip(keys in prop::collection::vec(any::<u32>(), 0..2000)) {
        prop_assert_eq!(bytes_to_keys(&keys_to_bytes(&keys)), keys);
    }

    #[test]
    fn fft_2d_energy_preserved(n_log in 1u32..=4, seed in any::<u32>()) {
        let n = 1usize << n_log;
        let mut x = seed as u64 | 1;
        let data: Vec<Complex64> = (0..n * n)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(3);
                Complex64::new(((x >> 40) as f64) / 1e3, ((x >> 20) as f64 % 997.0) / 1e3)
            })
            .collect();
        let m = Matrix::from_data(n, n, data);
        let out = fft_2d(&m);
        let e_in: f64 = m.data().iter().map(|z| z.norm_sqr()).sum();
        let e_out: f64 = out.data().iter().map(|z| z.norm_sqr()).sum::<f64>()
            / (n * n) as f64;
        prop_assert!((e_in - e_out).abs() <= 1e-6 * e_in.max(1.0));
    }
}
