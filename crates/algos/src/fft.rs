//! Fast Fourier Transforms: 1D radix-2 iterative, inverse, 2D, and a naive
//! DFT oracle.
//!
//! This is the reproduction's stand-in for FFTW. The paper never relies on
//! FFTW internals — only on (a) the existence of a fast 1D row transform
//! whose per-row cost `T_1D-FFT(rows)` is measured, and (b) FFTW's parallel
//! template for the 2D transform (Section 3.1.1):
//!
//! 1. 1D-FFT every local row,
//! 2. transpose (data redistribution),
//! 3. 1D-FFT every local row,
//! 4. transpose back.
//!
//! `acc-core::drivers::fft` rebuilds the template; this module supplies the
//! row transform and a serial 2D reference used to validate every parallel
//! implementation bit-for-bit (up to float tolerance).

use crate::complex::Complex64;

/// Checks `n` is a power of two and at least one.
fn assert_pow2(n: usize) {
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
}

/// In-place bit-reversal permutation.
fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

/// Direction of the transform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Forward transform (negative exponent, engineering convention —
    /// matches the paper's `ω^{-i j}` kernels in Eq. 1).
    Forward,
    /// Inverse transform (positive exponent); [`ifft`] also applies the
    /// `1/n` normalisation.
    Inverse,
}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// No normalisation is applied; use [`ifft`] for a round-trip inverse.
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fft_in_place(data: &mut [Complex64], dir: Direction) {
    let n = data.len();
    assert_pow2(n);
    if n == 1 {
        return;
    }
    bit_reverse_permute(data);
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut len = 2;
    while len <= n {
        let ang = sign * std::f64::consts::TAU / len as f64;
        let wlen = Complex64::cis(ang);
        for chunk in data.chunks_mut(len) {
            let mut w = Complex64::ONE;
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w *= wlen;
            }
        }
        len <<= 1;
    }
}

/// Forward FFT returning a new vector.
pub fn fft(input: &[Complex64]) -> Vec<Complex64> {
    let mut out = input.to_vec();
    fft_in_place(&mut out, Direction::Forward);
    out
}

/// Inverse FFT (with `1/n` normalisation) returning a new vector.
pub fn ifft(input: &[Complex64]) -> Vec<Complex64> {
    let mut out = input.to_vec();
    fft_in_place(&mut out, Direction::Inverse);
    let k = 1.0 / out.len() as f64;
    for z in &mut out {
        *z = z.scale(k);
    }
    out
}

/// Naive `O(n²)` DFT — the property-test oracle.
pub fn naive_dft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        for (j, &x) in input.iter().enumerate() {
            let ang = -std::f64::consts::TAU * (k * j) as f64 / n as f64;
            *o += x * Complex64::cis(ang);
        }
    }
    out
}

/// A dense row-major square-capable complex matrix.
#[derive(Clone, PartialEq, Debug)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_data(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> Complex64 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: Complex64) {
        self.data[r * self.cols + c] = v;
    }

    /// Borrow a row slice.
    pub fn row(&self, r: usize) -> &[Complex64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow a row slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [Complex64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The backing row-major slice.
    pub fn data(&self) -> &[Complex64] {
        &self.data
    }

    /// Consume into the backing vector.
    pub fn into_data(self) -> Vec<Complex64> {
        self.data
    }

    /// Out-of-place transpose.
    pub fn transposed(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Maximum element-wise distance to another matrix (test helper).
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.rows, other.rows);
        assert_eq!(self.cols, other.cols);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

/// Serial 2D FFT using the same row-FFT/transpose decomposition as the
/// parallel code (Eq. 2 of the paper): FFT rows, transpose, FFT rows,
/// transpose.
///
/// # Panics
/// Panics unless the matrix is square with power-of-two dimensions
/// (matching the paper's 256×256 and 512×512 workloads).
pub fn fft_2d(m: &Matrix) -> Matrix {
    assert_eq!(m.rows(), m.cols(), "2D FFT expects a square matrix");
    assert_pow2(m.rows());
    let mut work = m.clone();
    for r in 0..work.rows() {
        fft_in_place(work.row_mut(r), Direction::Forward);
    }
    let mut work = work.transposed();
    for r in 0..work.rows() {
        fft_in_place(work.row_mut(r), Direction::Forward);
    }
    work.transposed()
}

/// Direct evaluation of the paper's Eq. 1 — the `O(n⁴)` 2D DFT oracle.
/// Only usable for tiny matrices; the tests use 8×8 and 16×16.
pub fn naive_dft_2d(m: &Matrix) -> Matrix {
    let n1 = m.rows();
    let n2 = m.cols();
    let mut out = Matrix::zeros(n1, n2);
    for i1 in 0..n1 {
        for i2 in 0..n2 {
            let mut acc = Complex64::ZERO;
            for j1 in 0..n1 {
                for j2 in 0..n2 {
                    let ang = -std::f64::consts::TAU
                        * ((i1 * j1) as f64 / n1 as f64 + (i2 * j2) as f64 / n2 as f64);
                    acc += m.get(j1, j2) * Complex64::cis(ang);
                }
            }
            out.set(i1, i2, acc);
        }
    }
    out
}

/// Estimated floating-point operation count of one radix-2 length-`n` FFT
/// (`5 n log2 n`, the standard accounting FFTW reports). Used by the host
/// cost model to convert calibrated FLOP rates into simulated compute time.
pub fn fft_flops(n: usize) -> u64 {
    assert_pow2(n);
    5 * n as u64 * n.trailing_zeros() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::approx_eq;

    fn assert_vec_close(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
            assert!(
                approx_eq(x, y, tol),
                "index {i}: {x:?} vs {y:?} (tol {tol})"
            );
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let input: Vec<Complex64> = (0..n)
                .map(|i| Complex64::new((i as f64).sin(), (i as f64 * 0.7).cos()))
                .collect();
            assert_vec_close(&fft(&input), &naive_dft(&input), 1e-8 * n as f64);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut input = vec![Complex64::ZERO; 16];
        input[0] = Complex64::ONE;
        let out = fft(&input);
        for z in out {
            assert!(approx_eq(z, Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let input = vec![Complex64::ONE; 16];
        let out = fft(&input);
        assert!(approx_eq(out[0], Complex64::new(16.0, 0.0), 1e-12));
        for z in &out[1..] {
            assert!(approx_eq(*z, Complex64::ZERO, 1e-12));
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        let input: Vec<Complex64> = (0..64)
            .map(|i| Complex64::new(i as f64, -(i as f64) * 0.5))
            .collect();
        let round = ifft(&fft(&input));
        assert_vec_close(&round, &input, 1e-9);
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let input: Vec<Complex64> = (0..256)
            .map(|i| Complex64::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
            .collect();
        let out = fft(&input);
        let e_time: f64 = input.iter().map(|z| z.norm_sqr()).sum();
        let e_freq: f64 = out.iter().map(|z| z.norm_sqr()).sum::<f64>() / input.len() as f64;
        assert!((e_time - e_freq).abs() < 1e-6 * e_time);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        fft(&[Complex64::ZERO; 12]);
    }

    #[test]
    fn fft_2d_matches_naive_2d() {
        let n = 8;
        let m = Matrix::from_data(
            n,
            n,
            (0..n * n)
                .map(|i| Complex64::new((i as f64 * 0.3).sin(), (i as f64 * 0.11).cos()))
                .collect(),
        );
        let fast = fft_2d(&m);
        let slow = naive_dft_2d(&m);
        assert!(fast.max_abs_diff(&slow) < 1e-8);
    }

    #[test]
    fn fft_2d_separable_impulse() {
        let n = 16;
        let mut m = Matrix::zeros(n, n);
        m.set(0, 0, Complex64::ONE);
        let out = fft_2d(&m);
        for r in 0..n {
            for c in 0..n {
                assert!(approx_eq(out.get(r, c), Complex64::ONE, 1e-10));
            }
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let m = Matrix::from_data(
            4,
            4,
            (0..16).map(|i| Complex64::new(i as f64, 0.0)).collect(),
        );
        assert_eq!(m.transposed().transposed(), m);
    }

    #[test]
    fn matrix_accessors() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, Complex64::I);
        assert_eq!(m.get(1, 2), Complex64::I);
        assert_eq!(m.row(1)[2], Complex64::I);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.data().len(), 6);
    }

    #[test]
    fn flop_count_formula() {
        assert_eq!(fft_flops(1), 0);
        assert_eq!(fft_flops(2), 10);
        assert_eq!(fft_flops(256), 5 * 256 * 8);
    }
}
