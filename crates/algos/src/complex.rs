//! A minimal double-precision complex number.
//!
//! Only what the FFT needs — add, sub, mul, scale, conjugate, magnitude —
//! implemented in-crate because no numerics crates are on the approved
//! dependency list. Layout is `repr(C)` so a matrix of complex elements is
//! exactly the 16-bytes-per-element stream the paper's Eq. 5 counts
//! (`rows² × 16 / P` bytes per partition).

use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` real and imaginary parts.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// Multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// `e^{iθ}` — a point on the unit circle; the FFT's twiddle factors.
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude `re² + im²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Serialize to the 16-byte little-endian wire form used when complex
    /// matrices stream through the INIC datapath.
    pub fn to_le_bytes(self) -> [u8; 16] {
        let mut out = [0u8; 16];
        out[..8].copy_from_slice(&self.re.to_le_bytes());
        out[8..].copy_from_slice(&self.im.to_le_bytes());
        out
    }

    /// Inverse of [`to_le_bytes`](Self::to_le_bytes).
    pub fn from_le_bytes(b: [u8; 16]) -> Self {
        Complex64 {
            re: f64::from_le_bytes(b[..8].try_into().expect("complex re slice is 8 bytes")),
            im: f64::from_le_bytes(b[8..].try_into().expect("complex im slice is 8 bytes")),
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Self) -> Self {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Self) -> Self {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Self) -> Self {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Self {
        Complex64::new(-self.re, -self.im)
    }
}

/// Approximate equality helper for float-based tests.
pub fn approx_eq(a: Complex64, b: Complex64, tol: f64) -> bool {
    (a - b).abs() <= tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_axioms_hold_numerically() {
        let a = Complex64::new(1.5, -2.0);
        let b = Complex64::new(-0.5, 3.25);
        assert_eq!(a + b, b + a);
        assert_eq!(a * b, b * a);
        assert_eq!(a + Complex64::ZERO, a);
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(a - a, Complex64::ZERO);
        assert_eq!(a + (-a), Complex64::ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn cis_lies_on_unit_circle() {
        for k in 0..16 {
            let theta = std::f64::consts::TAU * k as f64 / 16.0;
            let z = Complex64::cis(theta);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn conj_negates_imaginary() {
        let z = Complex64::new(2.0, 5.0);
        assert_eq!(z.conj(), Complex64::new(2.0, -5.0));
        // z * conj(z) = |z|²
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < 1e-12);
        assert!(p.im.abs() < 1e-12);
    }

    #[test]
    fn byte_roundtrip_is_exact() {
        let z = Complex64::new(std::f64::consts::PI, -std::f64::consts::E);
        assert_eq!(Complex64::from_le_bytes(z.to_le_bytes()), z);
    }

    #[test]
    fn sixteen_bytes_per_element() {
        // Paper Eq. 5: "16 is the number of bytes to store a complex
        // double precision element".
        assert_eq!(std::mem::size_of::<Complex64>(), 16);
    }

    #[test]
    fn scale_and_assign_ops() {
        let mut z = Complex64::new(1.0, 2.0);
        z += Complex64::new(1.0, 1.0);
        assert_eq!(z, Complex64::new(2.0, 3.0));
        z -= Complex64::new(2.0, 2.0);
        assert_eq!(z, Complex64::new(0.0, 1.0));
        z *= Complex64::I;
        assert_eq!(z, Complex64::new(-1.0, 0.0));
        assert_eq!(z.scale(3.0), Complex64::new(-3.0, 0.0));
    }
}
