//! # acc-algos — computational kernels for the ACC reproduction
//!
//! The actual mathematics and data movement the paper's two applications
//! perform, implemented as pure functions so the same code runs:
//!
//! * on the simulated **host CPU** path (traditional NIC implementations),
//! * inside the simulated **FPGA datapath** (INIC implementations, see
//!   `acc-fpga`), and
//! * in the **test oracles** that check both against each other.
//!
//! Contents:
//!
//! * [`complex`] — a self-contained `Complex64` type (no external num
//!   crates are in the approved dependency list).
//! * [`fft`] — iterative radix-2 decimation-in-time FFT, inverse FFT,
//!   2D FFT, and a naive `O(n²)` DFT used as a property-test oracle. This
//!   stands in for FFTW: the paper uses only FFTW's parallel *template*
//!   (1D row FFTs + distributed transposes), which `acc-core` rebuilds.
//! * [`transpose`] — the three-phase distributed matrix transpose the
//!   paper's Section 3.1.2 describes: local block transpose, all-to-all
//!   block exchange, final interleave permutation.
//! * [`sort`] — Agarwal-style count sort, power-of-two bucket sort, the
//!   prototype's two-phase bucket sort, and quicksort/std baselines.
//! * [`workload`] — seeded workload generators (uniform keys, matrices).

#![forbid(unsafe_code)]

pub mod complex;
pub mod fft;
pub mod sort;
pub mod transpose;
pub mod workload;

pub use complex::Complex64;
