//! Seeded workload generators.
//!
//! The paper's integer-sort input is "synthetically generated and
//! uniformly distributed" (Section 3.2) — a stated, well-established
//! precedent it keeps for comparability. We reproduce exactly that:
//! uniform `u32` keys from a recorded seed. Matrix workloads for the FFT
//! use smooth deterministic signals so spectra are predictable in tests.
//!
//! Generation uses an in-crate xoshiro256++ (seeded via splitmix64), so
//! recorded seeds regenerate bit-identical workloads forever — no
//! external RNG crate whose stream could shift across versions.

use crate::complex::Complex64;
use crate::fft::Matrix;

/// xoshiro256++ seeded via splitmix64 — the same construction as
/// `acc_sim::SimRng`, duplicated here because `acc-algos` sits below the
/// simulation kernel in the crate graph.
struct KeyRng {
    s: [u64; 4],
}

impl KeyRng {
    fn seed_from(seed: u64) -> KeyRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        KeyRng {
            s: [next(), next(), next(), next()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform float in `[0, 1)` from 53 random mantissa bits.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// `n` uniformly distributed 32-bit keys from `seed`.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = KeyRng::seed_from(seed);
    (0..n).map(|_| rng.next_u32()).collect()
}

/// Keys pre-partitioned across `p` processors: processor `i` gets
/// `n_per_proc` keys drawn uniformly over the full 32-bit range — the
/// initial distributed state of the parallel sort (Section 3.2.1).
pub fn distributed_uniform_keys(n_per_proc: usize, p: usize, seed: u64) -> Vec<Vec<u32>> {
    (0..p)
        .map(|rank| uniform_keys(n_per_proc, seed.wrapping_add(rank as u64 * 0x9E37_79B9)))
        .collect()
}

/// A Gaussian-distributed key set (Box–Muller over the key range). The NAS
/// benchmarks use Gaussian keys; the paper notes its uniform choice is
/// unrealistic — this generator powers the skew-sensitivity ablation.
pub fn gaussian_keys(n: usize, seed: u64) -> Vec<u32> {
    let mut rng = KeyRng::seed_from(seed);
    let mean = (u32::MAX / 2) as f64;
    let sigma = mean / 4.0;
    (0..n)
        .map(|_| {
            let u1: f64 = rng.next_f64().max(f64::MIN_POSITIVE);
            let u2: f64 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            (mean + sigma * z).clamp(0.0, u32::MAX as f64) as u32
        })
        .collect()
}

/// A deterministic smooth test image: a sum of a few 2D plane waves plus a
/// gradient, so the 2D spectrum has known hot bins.
pub fn wave_matrix(n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..n {
            let x = r as f64 / n as f64;
            let y = c as f64 / n as f64;
            let v = (std::f64::consts::TAU * 3.0 * x).sin()
                + 0.5 * (std::f64::consts::TAU * 5.0 * y).cos()
                + 0.25 * (std::f64::consts::TAU * (2.0 * x + 7.0 * y)).sin()
                + 0.1 * x * y;
            m.set(r, c, Complex64::new(v, 0.0));
        }
    }
    m
}

/// A random complex matrix from `seed` (uniform in the unit square).
pub fn random_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = KeyRng::seed_from(seed);
    let data = (0..n * n)
        .map(|_| Complex64::new(rng.next_f64(), rng.next_f64()))
        .collect();
    Matrix::from_data(n, n, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_keys_are_reproducible() {
        assert_eq!(uniform_keys(100, 5), uniform_keys(100, 5));
        assert_ne!(uniform_keys(100, 5), uniform_keys(100, 6));
    }

    #[test]
    fn distributed_keys_differ_per_rank() {
        let d = distributed_uniform_keys(50, 4, 9);
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|v| v.len() == 50));
        assert_ne!(d[0], d[1]);
    }

    #[test]
    fn uniform_keys_cover_the_range() {
        let keys = uniform_keys(50_000, 17);
        let mid = u32::MAX / 2;
        let high = keys.iter().filter(|&&k| k > mid).count();
        let frac = high as f64 / keys.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "high fraction {frac}");
    }

    #[test]
    fn gaussian_keys_cluster_near_mean() {
        let keys = gaussian_keys(50_000, 77);
        let mid = (u32::MAX / 2) as f64;
        let mean: f64 = keys.iter().map(|&k| k as f64).sum::<f64>() / keys.len() as f64;
        assert!(
            (mean - mid).abs() < mid * 0.02,
            "mean {mean} too far from {mid}"
        );
        // Middle half of the range holds far more than the uniform 50%.
        let in_middle = keys
            .iter()
            .filter(|&&k| (k as f64) > mid * 0.5 && (k as f64) < mid * 1.5)
            .count();
        assert!(in_middle as f64 / keys.len() as f64 > 0.8);
    }

    #[test]
    fn wave_matrix_is_deterministic_and_real() {
        let a = wave_matrix(16);
        let b = wave_matrix(16);
        assert_eq!(a.max_abs_diff(&b), 0.0);
        assert!(a.data().iter().all(|z| z.im == 0.0));
    }

    #[test]
    fn random_matrix_reproducible() {
        assert_eq!(random_matrix(8, 1).max_abs_diff(&random_matrix(8, 1)), 0.0);
        assert!(random_matrix(8, 1).max_abs_diff(&random_matrix(8, 2)) > 0.0);
    }
}
