//! Integer sorting kernels: count sort, bucket sort, the prototype's
//! two-phase bucket sort, and a quicksort baseline.
//!
//! The paper (Section 3.2) builds its parallel sort from two pieces:
//!
//! * **Bucket sort** — a single stable distribution pass on the top bits
//!   of each key. On the sending node it splits keys by destination
//!   processor; on the receiving node it splits them into buckets small
//!   enough to fit the processor cache ("on a problem size of 2²¹ keys or
//!   more, a minimum of 128 buckets are needed").
//! * **Count sort** (Agarwal's super-scalar sort) — counting passes over
//!   the remaining key bits sort each bucket. "With 32-bit integers and
//!   more than 128 buckets there is no need for the final bubble sort":
//!   our count sort is exact, so no cleanup pass exists at all.
//!
//! The prototype INIC cannot fit the full receive-side bucket sort in its
//! Xilinx 4085XLA (Section 6), so it splits bucketing into **two phases**:
//! 16 buckets on the card, then `N` sub-buckets on the host —
//! [`two_phase_bucket_sort`] reproduces that path.

/// Number of buckets must be a power of two so bucketing is a shift.
fn bucket_shift(k: usize) -> u32 {
    assert!(
        k.is_power_of_two() && k >= 2,
        "bucket count must be a power of two ≥ 2, got {k}"
    );
    32 - k.trailing_zeros()
}

/// The bucket a key falls into when distributing into `k` buckets by the
/// top bits (uniform keys ⇒ balanced buckets, the paper's stated
/// assumption).
#[inline]
pub fn bucket_index(key: u32, k: usize) -> usize {
    (key >> bucket_shift(k)) as usize
}

/// Stable single-pass bucket distribution of `keys` into `k` buckets by
/// top bits. This is *the* operation the INIC absorbs into the datapath.
pub fn bucket_sort(keys: &[u32], k: usize) -> Vec<Vec<u32>> {
    let shift = bucket_shift(k);
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); k];
    // Pre-size using the uniform expectation to avoid re-allocation churn.
    let expect = keys.len() / k + 16;
    for b in &mut buckets {
        b.reserve(expect);
    }
    for &key in keys {
        buckets[(key >> shift) as usize].push(key);
    }
    buckets
}

/// One stable counting pass on `bits` bits starting at `shift`.
/// Returns a newly ordered vector (LSD radix building block).
pub fn counting_pass(keys: &[u32], shift: u32, bits: u32) -> Vec<u32> {
    assert!((1..=16).contains(&bits), "counting pass digit width 1..=16");
    assert!(shift + bits <= 32);
    let radix = 1usize << bits;
    let mask = (radix - 1) as u32;
    let mut counts = vec![0usize; radix];
    for &k in keys {
        counts[((k >> shift) & mask) as usize] += 1;
    }
    // Exclusive prefix sum → starting offsets.
    let mut sum = 0usize;
    for c in &mut counts {
        let here = *c;
        *c = sum;
        sum += here;
    }
    let mut out = vec![0u32; keys.len()];
    for &k in keys {
        let d = ((k >> shift) & mask) as usize;
        out[counts[d]] = k;
        counts[d] += 1;
    }
    out
}

/// Agarwal-style count sort of 32-bit keys: two stable 16-bit counting
/// passes (LSD). Each pass's count table is 2¹⁶ entries — it lives in L2
/// cache, which is why the paper bucket-sorts first so the *data* fits
/// cache too.
pub fn count_sort(keys: &[u32]) -> Vec<u32> {
    if keys.len() <= 1 {
        return keys.to_vec();
    }
    let pass1 = counting_pass(keys, 0, 16);
    counting_pass(&pass1, 16, 16)
}

/// The full receive-side pipeline of the parallel implementation
/// (Fig. 3a): bucket sort into `k` cache-sized buckets, count-sort each
/// bucket, concatenate. Produces fully sorted output.
pub fn bucket_then_count_sort(keys: &[u32], k: usize) -> Vec<u32> {
    let buckets = bucket_sort(keys, k);
    let mut out = Vec::with_capacity(keys.len());
    for b in buckets {
        out.extend(count_sort(&b));
    }
    out
}

/// The prototype INIC pipeline (Fig. 7): the card buckets into
/// `first` (16 for the 4085XLA) buckets, the host buckets each of those
/// into `second` sub-buckets, then count-sorts. Output is fully sorted.
///
/// Returns `(sorted, host_bucket_ops)` where `host_bucket_ops` counts the
/// keys the *host* had to re-bucket — the second-phase work the ideal INIC
/// eliminates; the cost models consume it.
pub fn two_phase_bucket_sort(keys: &[u32], first: usize, second: usize) -> (Vec<u32>, u64) {
    let phase1 = bucket_sort(keys, first);
    let mut host_ops = 0u64;
    let mut out = Vec::with_capacity(keys.len());
    let total = first
        .checked_mul(second)
        .expect("bucket-count product overflow");
    assert!(total <= 1 << 30, "combined bucket count unreasonably large");
    for (i, b) in phase1.into_iter().enumerate() {
        host_ops += b.len() as u64;
        // Sub-bucket on the next log2(second) bits below the first-phase
        // bits: equivalent to bucketing the whole stream into
        // `first*second` buckets, restricted to this first-phase bucket.
        let sub = sub_bucket(&b, first, second, i);
        for s in sub {
            out.extend(count_sort(&s));
        }
    }
    (out, host_ops)
}

/// Distribute keys (all belonging to first-phase bucket `which`) into
/// `second` sub-buckets using the bit range just below the first-phase
/// bits.
fn sub_bucket(keys: &[u32], first: usize, second: usize, which: usize) -> Vec<Vec<u32>> {
    assert!(second.is_power_of_two() && second >= 2);
    let first_bits = first.trailing_zeros();
    let second_bits = second.trailing_zeros();
    assert!(first_bits + second_bits <= 32);
    let shift = 32 - first_bits - second_bits;
    let mask = (second - 1) as u32;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); second];
    for &k in keys {
        debug_assert_eq!(bucket_index(k, first), which, "key in wrong phase-1 bucket");
        buckets[((k >> shift) & mask) as usize].push(k);
    }
    buckets
}

/// Quicksort baseline — the comparator the paper measured count sort to be
/// "as much as 2.5× faster than". Median-of-three pivot, insertion sort
/// below 24 elements, recursion on the smaller side to bound stack depth.
pub fn quicksort(keys: &mut [u32]) {
    const INSERTION_CUTOFF: usize = 24;
    let mut stack: Vec<(usize, usize)> = vec![(0, keys.len())];
    while let Some((lo, hi)) = stack.pop() {
        let len = hi - lo;
        if len <= INSERTION_CUTOFF {
            insertion_sort(&mut keys[lo..hi]);
            continue;
        }
        let mid = lo + len / 2;
        // Median-of-three into position `lo`.
        if keys[mid] < keys[lo] {
            keys.swap(mid, lo);
        }
        if keys[hi - 1] < keys[lo] {
            keys.swap(hi - 1, lo);
        }
        if keys[hi - 1] < keys[mid] {
            keys.swap(hi - 1, mid);
        }
        let pivot = keys[mid];
        // Hoare partition.
        let (mut i, mut j) = (lo, hi - 1);
        loop {
            while keys[i] < pivot {
                i += 1;
            }
            while keys[j] > pivot {
                j -= 1;
            }
            if i >= j {
                break;
            }
            keys.swap(i, j);
            i += 1;
            j -= 1;
        }
        let split = j + 1;
        // Push larger side first so the smaller is processed next (bounds
        // the explicit stack to O(log n)).
        if split - lo > hi - split {
            stack.push((lo, split));
            stack.push((split, hi));
        } else {
            stack.push((split, hi));
            stack.push((lo, split));
        }
    }
}

fn insertion_sort(keys: &mut [u32]) {
    for i in 1..keys.len() {
        let v = keys[i];
        let mut j = i;
        while j > 0 && keys[j - 1] > v {
            keys[j] = keys[j - 1];
            j -= 1;
        }
        keys[j] = v;
    }
}

/// True if `keys` is non-decreasing.
pub fn is_sorted(keys: &[u32]) -> bool {
    keys.windows(2).all(|w| w[0] <= w[1])
}

/// Destination processor for a key in the parallel sort: bucket `i` from
/// each processor is sent to processor `i` (Section 3.2.1), with buckets
/// defined by the top `log2 P` bits of the key.
#[inline]
pub fn destination_rank(key: u32, p: usize) -> usize {
    bucket_index(key, p)
}

/// Choose `p − 1` splitters from a sample of the key population so that
/// range partitioning balances load under *any* distribution — the
/// "sampling in a pre-sort phase" the paper recommends for non-uniform
/// keys (Section 3.2).
///
/// The sample is sorted and the splitters taken at its `i/p` quantiles.
pub fn splitters_from_sample(sample: &[u32], p: usize) -> Vec<u32> {
    assert!(p >= 1, "need at least one partition");
    assert!(
        sample.len() >= p,
        "sample ({}) smaller than partition count ({p})",
        sample.len()
    );
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    (1..p).map(|i| sorted[i * sorted.len() / p]).collect()
}

/// Destination rank under range partitioning: the number of splitters
/// strictly less than or equal to the key (keys equal to a splitter go
/// right, keeping ranges contiguous).
#[inline]
pub fn destination_by_splitters(key: u32, splitters: &[u32]) -> usize {
    splitters.partition_point(|&s| s <= key)
}

/// Serialize keys to the 4-byte little-endian wire stream of the INIC
/// datapath (Eq. 12: "4 is the number of bytes to store an integer").
pub fn keys_to_bytes(keys: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(keys.len() * 4);
    for k in keys {
        out.extend_from_slice(&k.to_le_bytes());
    }
    out
}

/// Inverse of [`keys_to_bytes`].
pub fn bytes_to_keys(bytes: &[u8]) -> Vec<u32> {
    assert_eq!(
        bytes.len() % 4,
        0,
        "key stream must be a multiple of 4 bytes"
    );
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("sort key chunk is 4 bytes")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::uniform_keys;

    #[test]
    fn bucket_index_uses_top_bits() {
        assert_eq!(bucket_index(0, 4), 0);
        assert_eq!(bucket_index(u32::MAX, 4), 3);
        assert_eq!(bucket_index(1 << 30, 4), 1);
        assert_eq!(bucket_index(3 << 30, 4), 3);
        assert_eq!(bucket_index(0x8000_0000, 2), 1);
    }

    #[test]
    fn bucket_sort_is_stable_partition() {
        let keys = uniform_keys(10_000, 7);
        let buckets = bucket_sort(&keys, 16);
        assert_eq!(buckets.iter().map(Vec::len).sum::<usize>(), keys.len());
        for (i, b) in buckets.iter().enumerate() {
            for &k in b {
                assert_eq!(bucket_index(k, 16), i);
            }
        }
        // Stability: relative order within a bucket matches input order.
        let mut replay: Vec<usize> = vec![0; 16];
        for &k in &keys {
            let b = bucket_index(k, 16);
            assert_eq!(buckets[b][replay[b]], k);
            replay[b] += 1;
        }
    }

    #[test]
    fn count_sort_sorts() {
        let keys = uniform_keys(50_000, 3);
        let sorted = count_sort(&keys);
        assert!(is_sorted(&sorted));
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn count_sort_handles_degenerate_inputs() {
        assert_eq!(count_sort(&[]), Vec::<u32>::new());
        assert_eq!(count_sort(&[5]), vec![5]);
        assert_eq!(count_sort(&[2, 2, 2]), vec![2, 2, 2]);
        assert_eq!(count_sort(&[u32::MAX, 0]), vec![0, u32::MAX]);
    }

    #[test]
    fn bucket_then_count_sort_equals_std() {
        for k in [2usize, 16, 128, 256] {
            let keys = uniform_keys(20_000, 11);
            let sorted = bucket_then_count_sort(&keys, k);
            let mut expect = keys.clone();
            expect.sort_unstable();
            assert_eq!(sorted, expect, "k={k}");
        }
    }

    #[test]
    fn two_phase_equals_single_phase() {
        let keys = uniform_keys(30_000, 13);
        let (two, host_ops) = two_phase_bucket_sort(&keys, 16, 8);
        let one = bucket_then_count_sort(&keys, 128);
        assert_eq!(two, one);
        // Host re-buckets every key exactly once in phase 2.
        assert_eq!(host_ops, keys.len() as u64);
    }

    #[test]
    fn quicksort_matches_std() {
        let mut keys = uniform_keys(50_000, 17);
        let mut expect = keys.clone();
        quicksort(&mut keys);
        expect.sort_unstable();
        assert_eq!(keys, expect);
    }

    #[test]
    fn quicksort_adversarial_patterns() {
        // Already sorted, reverse sorted, all equal, organ pipe.
        let n = 10_000u32;
        let mut a: Vec<u32> = (0..n).collect();
        quicksort(&mut a);
        assert!(is_sorted(&a));
        let mut b: Vec<u32> = (0..n).rev().collect();
        quicksort(&mut b);
        assert!(is_sorted(&b));
        let mut c = vec![42u32; n as usize];
        quicksort(&mut c);
        assert!(is_sorted(&c));
        let mut d: Vec<u32> = (0..n / 2).chain((0..n / 2).rev()).collect();
        quicksort(&mut d);
        assert!(is_sorted(&d));
    }

    #[test]
    fn counting_pass_is_stable() {
        // Keys equal on the inspected digit keep input order.
        let keys = vec![0x0102, 0x0201, 0x0101, 0x0202];
        let out = counting_pass(&keys, 0, 8);
        assert_eq!(out, vec![0x0201, 0x0101, 0x0102, 0x0202]);
    }

    #[test]
    fn destination_rank_partitions_keyspace() {
        for p in [2usize, 4, 8, 16] {
            let keys = uniform_keys(10_000, 23);
            for &k in &keys {
                let r = destination_rank(k, p);
                assert!(r < p);
            }
            // Ranks are monotone in key value.
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            let ranks: Vec<usize> = sorted.iter().map(|&k| destination_rank(k, p)).collect();
            assert!(ranks.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn key_byte_roundtrip() {
        let keys = uniform_keys(1000, 29);
        let bytes = keys_to_bytes(&keys);
        assert_eq!(bytes.len(), 4000);
        assert_eq!(bytes_to_keys(&bytes), keys);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bucket_sort_rejects_non_pow2() {
        bucket_sort(&[1, 2, 3], 12);
    }

    #[test]
    fn splitters_balance_skewed_keys() {
        use crate::workload::gaussian_keys;
        let p = 8;
        let keys = gaussian_keys(40_000, 55);
        // Top-bits partitioning concentrates Gaussian keys in the
        // middle ranks…
        let mut top_counts = vec![0usize; p];
        for &k in &keys {
            top_counts[destination_rank(k, p)] += 1;
        }
        let top_max = *top_counts.iter().max().unwrap();
        // …while sampled splitters spread them evenly.
        let sample: Vec<u32> = keys.iter().step_by(50).copied().collect();
        let splitters = splitters_from_sample(&sample, p);
        assert_eq!(splitters.len(), p - 1);
        assert!(splitters.windows(2).all(|w| w[0] <= w[1]));
        let mut split_counts = vec![0usize; p];
        for &k in &keys {
            split_counts[destination_by_splitters(k, &splitters)] += 1;
        }
        let split_max = *split_counts.iter().max().unwrap();
        let mean = keys.len() / p;
        assert!(
            top_max as f64 > 2.0 * mean as f64,
            "gaussian keys should overload middle ranks: {top_counts:?}"
        );
        assert!(
            (split_max as f64) < 1.2 * mean as f64,
            "splitters should balance: {split_counts:?}"
        );
    }

    #[test]
    fn splitter_destinations_are_monotone() {
        let splitters = vec![100, 200, 300];
        assert_eq!(destination_by_splitters(0, &splitters), 0);
        assert_eq!(destination_by_splitters(99, &splitters), 0);
        assert_eq!(destination_by_splitters(100, &splitters), 1);
        assert_eq!(destination_by_splitters(250, &splitters), 2);
        assert_eq!(destination_by_splitters(300, &splitters), 3);
        assert_eq!(destination_by_splitters(u32::MAX, &splitters), 3);
    }

    #[test]
    #[should_panic(expected = "sample")]
    fn splitters_reject_tiny_samples() {
        splitters_from_sample(&[1, 2], 8);
    }

    #[test]
    fn uniform_keys_fill_buckets_evenly() {
        // Sanity for the workload generator + paper's balance assumption.
        let keys = uniform_keys(1 << 16, 31);
        let buckets = bucket_sort(&keys, 16);
        let expect = keys.len() / 16;
        for b in &buckets {
            let dev = (b.len() as i64 - expect as i64).abs();
            assert!(
                dev < expect as i64 / 4,
                "bucket size {} vs {}",
                b.len(),
                expect
            );
        }
    }
}
