//! The distributed matrix transpose of Section 3.1.2.
//!
//! With a row-block distribution, each of `P` processors owns `M = rows/P`
//! consecutive rows of a square `rows × rows` matrix. The transpose
//! decomposes into the paper's three components:
//!
//! 1. **local transpose** — the local `M × rows` slab is viewed as `P`
//!    blocks of `M × M`; each block is transposed in place,
//! 2. **all-to-all** — block `q` of processor `p` is sent to processor `q`
//!    (block `p` stays home),
//! 3. **final permutation** — the receiver interleaves each arriving
//!    `M × M` block into column-block position `p` of its output slab.
//!
//! All functions here are pure so the identical data manipulation can run
//! on the host CPU path, inside the simulated FPGA datapath (as an index
//! map over the element stream), and in test oracles.

use crate::complex::Complex64;
use crate::fft::Matrix;

/// Split a square matrix into `p` row-block slabs of `rows/p × cols`.
///
/// # Panics
/// Panics unless `p` divides the row count.
pub fn split_row_blocks(m: &Matrix, p: usize) -> Vec<Matrix> {
    assert!(
        p > 0 && m.rows().is_multiple_of(p),
        "P must divide the row count"
    );
    let block_rows = m.rows() / p;
    (0..p)
        .map(|b| {
            let mut data = Vec::with_capacity(block_rows * m.cols());
            for r in 0..block_rows {
                data.extend_from_slice(m.row(b * block_rows + r));
            }
            Matrix::from_data(block_rows, m.cols(), data)
        })
        .collect()
}

/// Reassemble row-block slabs into the full matrix (inverse of
/// [`split_row_blocks`]).
pub fn join_row_blocks(slabs: &[Matrix]) -> Matrix {
    assert!(!slabs.is_empty());
    let cols = slabs[0].cols();
    let total_rows: usize = slabs.iter().map(Matrix::rows).sum();
    let mut data = Vec::with_capacity(total_rows * cols);
    for s in slabs {
        assert_eq!(s.cols(), cols, "slab column mismatch");
        data.extend_from_slice(s.data());
    }
    Matrix::from_data(total_rows, cols, data)
}

/// Extract block `q` (columns `q*M .. (q+1)*M`) of an `M × rows` slab and
/// return it **already transposed** — phase 1 of the decomposition, as the
/// sending side performs it.
pub fn extract_transposed_block(slab: &Matrix, q: usize) -> Matrix {
    let m = slab.rows();
    assert!(
        (q + 1) * m <= slab.cols(),
        "block index {q} out of range for {} cols",
        slab.cols()
    );
    let mut out = Matrix::zeros(m, m);
    for r in 0..m {
        for c in 0..m {
            // Transposed: output (c, r) takes input (r, q*M + c).
            out.set(c, r, slab.get(r, q * m + c));
        }
    }
    out
}

/// Write a received (already transposed) `M × M` block from `src_rank`
/// into column-block `src_rank` of the output slab — phase 3, the final
/// permutation / interleave on the receiving side.
pub fn interleave_block(dest: &mut Matrix, src_rank: usize, block: &Matrix) {
    let m = block.rows();
    assert_eq!(block.cols(), m, "blocks are square");
    assert_eq!(dest.rows(), m, "slab height must equal block size");
    assert!((src_rank + 1) * m <= dest.cols(), "src_rank out of range");
    for r in 0..m {
        for c in 0..m {
            dest.set(r, src_rank * m + c, block.get(r, c));
        }
    }
}

/// Full distributed transpose over in-memory slabs: the oracle for every
/// NIC/INIC implementation. Input: `P` slabs of `M × rows`; output: the
/// `P` slabs of the transposed matrix.
pub fn distributed_transpose(slabs: &[Matrix]) -> Vec<Matrix> {
    let p = slabs.len();
    assert!(p > 0);
    let rows = slabs[0].cols();
    let m = slabs[0].rows();
    assert_eq!(m * p, rows, "slab shape inconsistent with P");
    let mut out: Vec<Matrix> = (0..p).map(|_| Matrix::zeros(m, rows)).collect();
    for (src, slab) in slabs.iter().enumerate() {
        for (dst, out_slab) in out.iter_mut().enumerate() {
            let block = extract_transposed_block(slab, dst);
            interleave_block(out_slab, src, &block);
        }
    }
    out
}

/// Pairwise exchange schedule: at step `s` (1..P) rank `r` exchanges with
/// `(r + s) mod P` on the send side and `(r - s) mod P` on the receive
/// side. Every rank sends and receives exactly one block per step, which
/// is the "each processor is always sending and receiving" pipelining
/// assumption under Eq. 8.
pub fn ring_schedule(p: usize, rank: usize) -> Vec<ExchangeStep> {
    assert!(rank < p);
    (1..p)
        .map(|s| ExchangeStep {
            step: s,
            send_to: (rank + s) % p,
            recv_from: (rank + p - s) % p,
        })
        .collect()
}

/// XOR (hypercube) schedule for power-of-two `P`: at step `s` rank `r`
/// exchanges both directions with `r ^ s`. Symmetric — the peer sends back
/// in the same step, matching full-duplex links.
pub fn xor_schedule(p: usize, rank: usize) -> Vec<ExchangeStep> {
    assert!(p.is_power_of_two(), "XOR schedule needs power-of-two P");
    assert!(rank < p);
    (1..p)
        .map(|s| ExchangeStep {
            step: s,
            send_to: rank ^ s,
            recv_from: rank ^ s,
        })
        .collect()
}

/// One step of an all-to-all exchange schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ExchangeStep {
    /// Step number, 1-based.
    pub step: usize,
    /// Peer this rank sends its block to in this step.
    pub send_to: usize,
    /// Peer this rank receives a block from in this step.
    pub recv_from: usize,
}

/// Output-index → input-index permutation for transposing an `m × m`
/// block stored row-major. `map[out] = in` means output element `out`
/// is read from input element `in`. The FPGA `LocalTranspose` operator
/// applies exactly this map to the element stream.
pub fn block_transpose_index_map(m: usize) -> Vec<usize> {
    let mut map = vec![0usize; m * m];
    for r in 0..m {
        for c in 0..m {
            map[c * m + r] = r * m + c;
        }
    }
    map
}

/// Apply an output←input element permutation to a byte stream of
/// `elem_size`-byte elements.
///
/// # Panics
/// Panics if sizes are inconsistent or the map is not a permutation of the
/// element index range (checked in debug builds only, for speed).
pub fn apply_permutation_bytes(data: &[u8], map: &[usize], elem_size: usize) -> Vec<u8> {
    assert_eq!(
        data.len(),
        map.len() * elem_size,
        "byte length does not match permutation size"
    );
    debug_assert!({
        let mut seen = vec![false; map.len()];
        map.iter().all(|&i| {
            let fresh = !seen[i];
            seen[i] = true;
            fresh
        })
    });
    let mut out = vec![0u8; data.len()];
    for (o, &i) in map.iter().enumerate() {
        out[o * elem_size..(o + 1) * elem_size]
            .copy_from_slice(&data[i * elem_size..(i + 1) * elem_size]);
    }
    out
}

/// Serialize a slab to the 16-byte-per-element stream that crosses the
/// INIC datapath.
pub fn slab_to_bytes(slab: &Matrix) -> Vec<u8> {
    let mut out = Vec::with_capacity(slab.data().len() * 16);
    for z in slab.data() {
        out.extend_from_slice(&z.to_le_bytes());
    }
    out
}

/// Inverse of [`slab_to_bytes`].
pub fn bytes_to_slab(bytes: &[u8], rows: usize, cols: usize) -> Matrix {
    assert_eq!(bytes.len(), rows * cols * 16, "byte length mismatch");
    let data: Vec<Complex64> = bytes
        .chunks_exact(16)
        .map(|c| Complex64::from_le_bytes(c.try_into().expect("slab element chunk is 16 bytes")))
        .collect();
    Matrix::from_data(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numbered(rows: usize, cols: usize) -> Matrix {
        Matrix::from_data(
            rows,
            cols,
            (0..rows * cols)
                .map(|i| Complex64::new(i as f64, -(i as f64)))
                .collect(),
        )
    }

    #[test]
    fn split_join_roundtrip() {
        let m = numbered(8, 8);
        for p in [1, 2, 4, 8] {
            let slabs = split_row_blocks(&m, p);
            assert_eq!(slabs.len(), p);
            assert_eq!(join_row_blocks(&slabs), m);
        }
    }

    #[test]
    fn distributed_transpose_matches_serial() {
        for (rows, p) in [(8, 2), (8, 4), (16, 4), (16, 8), (4, 4), (8, 1)] {
            let m = numbered(rows, rows);
            let slabs = split_row_blocks(&m, p);
            let t = distributed_transpose(&slabs);
            assert_eq!(join_row_blocks(&t), m.transposed(), "rows={rows} p={p}");
        }
    }

    #[test]
    fn double_distributed_transpose_is_identity() {
        let m = numbered(16, 16);
        let slabs = split_row_blocks(&m, 4);
        let twice = distributed_transpose(&distributed_transpose(&slabs));
        assert_eq!(join_row_blocks(&twice), m);
    }

    #[test]
    fn extract_block_transposes() {
        let m = numbered(4, 4);
        let slabs = split_row_blocks(&m, 2);
        // Slab 0 block 1 covers rows 0..2, cols 2..4 → values 2,3,6,7.
        let b = extract_transposed_block(&slabs[0], 1);
        assert_eq!(b.get(0, 0).re, 2.0);
        assert_eq!(b.get(1, 0).re, 3.0);
        assert_eq!(b.get(0, 1).re, 6.0);
        assert_eq!(b.get(1, 1).re, 7.0);
    }

    #[test]
    fn ring_schedule_covers_all_peers() {
        for p in [2usize, 3, 5, 8] {
            for rank in 0..p {
                let sched = ring_schedule(p, rank);
                let mut sends: Vec<usize> = sched.iter().map(|e| e.send_to).collect();
                let mut recvs: Vec<usize> = sched.iter().map(|e| e.recv_from).collect();
                sends.sort_unstable();
                recvs.sort_unstable();
                let expect: Vec<usize> = (0..p).filter(|&x| x != rank).collect();
                assert_eq!(sends, expect);
                assert_eq!(recvs, expect);
            }
        }
    }

    #[test]
    fn ring_schedule_is_conflict_free() {
        // In each step, the set of (sender → receiver) pairs is a perfect
        // matching: every node receives from exactly one sender.
        let p = 6;
        for s in 1..p {
            let mut recv_count = vec![0usize; p];
            for rank in 0..p {
                let step = &ring_schedule(p, rank)[s - 1];
                recv_count[step.send_to] += 1;
            }
            assert!(
                recv_count.iter().all(|&c| c == 1),
                "step {s} not a matching"
            );
        }
    }

    #[test]
    fn xor_schedule_is_symmetric() {
        let p = 8;
        for rank in 0..p {
            for e in xor_schedule(p, rank) {
                assert_eq!(e.send_to, e.recv_from);
                // Peer's schedule at the same step points back.
                let peer_sched = xor_schedule(p, e.send_to);
                assert_eq!(peer_sched[e.step - 1].send_to, rank);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn xor_schedule_rejects_odd_p() {
        xor_schedule(6, 0);
    }

    #[test]
    fn index_map_transposes_byte_stream() {
        let m = 4;
        let slab = numbered(m, m);
        let bytes = slab_to_bytes(&slab);
        let map = block_transpose_index_map(m);
        let t_bytes = apply_permutation_bytes(&bytes, &map, 16);
        let t = bytes_to_slab(&t_bytes, m, m);
        assert_eq!(t, slab.transposed());
    }

    #[test]
    fn byte_roundtrip() {
        let slab = numbered(3, 5);
        let b = slab_to_bytes(&slab);
        assert_eq!(b.len(), 3 * 5 * 16);
        assert_eq!(bytes_to_slab(&b, 3, 5), slab);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn split_rejects_indivisible_p() {
        split_row_blocks(&numbered(8, 8), 3);
    }
}
