//! Streaming dataflow operators and their resource costs.
//!
//! A bitstream is a set of operators wired into the datapath (Figs. 2(b),
//! 3(b), 7 of the paper all draw exactly these blocks: FIFOs, packetize/
//! de-packetize, a local transpose or bucket sort, and a permutation
//! memory). Each operator costs CLBs — the scarce resource that forced
//! the prototype's two-phase bucket sort — and sustains a streaming rate.

use acc_sim::Bandwidth;

/// The operator vocabulary of the paper's datapath diagrams.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum OperatorKind {
    /// Rate-decoupling FIFO between stages.
    Fifo,
    /// Cut an outgoing stream into wire packets and add headers.
    Packetize,
    /// Strip headers and reassemble an incoming stream.
    Depacketize,
    /// Transpose M×M blocks of 16-byte elements on the fly (FFT send
    /// side, Fig. 2(b) top).
    LocalTranspose {
        /// Block edge length.
        m: usize,
    },
    /// Interleave received blocks into the output slab via the
    /// permutation memory (FFT receive side, Fig. 2(b) bottom).
    InterleaveBlocks {
        /// Block edge length.
        m: usize,
    },
    /// Distribute 32-bit keys into `k` buckets by top bits (integer
    /// sort, Fig. 3(b)); `k` drives the CLB cost — the full receive-side
    /// sort needs ≥128 buckets, which the 4085XLA cannot hold.
    BucketSort {
        /// Bucket count (power of two).
        k: usize,
    },
    /// Element-wise sum of incoming f64 streams into an accumulator in
    /// INIC memory — the collective-operations extension the paper's
    /// summary points at ("the potential to accelerate functions
    /// ranging from collective operations to MPI derived data types").
    ReduceSum,
    /// Steer the per-destination wire streams of a collective schedule:
    /// a `ways`-entry destination table, per-way stream state and the
    /// header mux that interleaves outgoing unicast segments. `ways`
    /// drives the CLB cost, so wide fan-outs are charged against the
    /// device like wide bucket sorters are.
    StreamRouter {
        /// Peer fan-out the router is synthesized for.
        ways: usize,
    },
    /// Identity (protocol-processor mode).
    Passthrough,
}

/// An operator instance with its resource and performance envelope.
#[derive(Clone, Copy, Debug)]
pub struct OperatorSpec {
    /// What it does.
    pub kind: OperatorKind,
    /// Configurable-logic-block cost on the device.
    pub clbs: u32,
    /// Sustained streaming rate through the operator.
    pub rate: Bandwidth,
}

impl OperatorKind {
    /// Default synthesis result for this operator on the 4085XLA-class
    /// parts the prototype uses. CLB counts follow the structure of each
    /// block: the bucket sorter needs a comparator tree, a bucket-state
    /// table and `k` packet builders, so it scales with `k`; transpose
    /// and interleave are address-generator dominated.
    pub fn spec(self) -> OperatorSpec {
        let (clbs, rate_mib) = match self {
            OperatorKind::Fifo => (60, 400),
            OperatorKind::Packetize => (120, 400),
            OperatorKind::Depacketize => (120, 400),
            OperatorKind::LocalTranspose { m } => (250 + (m as u32) / 8, 300),
            OperatorKind::InterleaveBlocks { m } => (250 + (m as u32) / 8, 300),
            OperatorKind::BucketSort { k } => {
                assert!(
                    k.is_power_of_two() && k >= 2,
                    "bucket operator needs power-of-two k"
                );
                (180 + 24 * k as u32, 350)
            }
            // A double-precision accumulator pipeline: wide adder plus
            // accumulator addressing.
            OperatorKind::ReduceSum => (420, 250),
            // Destination table + per-way stream registers + header mux:
            // linear in the fan-out, like the bucket sorter's builders.
            OperatorKind::StreamRouter { ways } => {
                assert!(ways >= 1, "stream router needs at least one way");
                (100 + 28 * ways as u32, 400)
            }
            OperatorKind::Passthrough => (10, 1000),
        };
        OperatorSpec {
            kind: self,
            clbs,
            rate: Bandwidth::from_mib_per_sec(rate_mib),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_sort_cost_scales_with_k() {
        let k16 = OperatorKind::BucketSort { k: 16 }.spec().clbs;
        let k128 = OperatorKind::BucketSort { k: 128 }.spec().clbs;
        assert!(k16 < k128);
        // 16 buckets fit a 4085XLA (3136 CLBs) with room for the
        // protocol blocks; 128 buckets alone exceed it.
        assert!(k16 < 1000);
        assert!(k128 > 3136);
    }

    #[test]
    fn transpose_cost_grows_slowly_with_block_size() {
        let m32 = OperatorKind::LocalTranspose { m: 32 }.spec().clbs;
        let m256 = OperatorKind::LocalTranspose { m: 256 }.spec().clbs;
        assert!(m256 > m32);
        assert!(m256 < 400, "transpose must stay cheap: {m256}");
    }

    #[test]
    fn stream_router_cost_scales_with_fanout() {
        let p16 = OperatorKind::StreamRouter { ways: 16 }.spec().clbs;
        let p128 = OperatorKind::StreamRouter { ways: 128 }.spec().clbs;
        assert!(p16 < p128);
        // A cluster-sized router leaves room for the protocol blocks on
        // the prototype part; a 128-way fan-out alone exceeds it.
        assert!(p16 < 1000);
        assert!(p128 > 3136);
    }

    #[test]
    fn rates_exceed_the_card_buses() {
        // Operators must not be the bottleneck on either card generation
        // (the paper's bottlenecks are the buses, not the logic).
        for kind in [
            OperatorKind::Fifo,
            OperatorKind::Packetize,
            OperatorKind::Depacketize,
            OperatorKind::LocalTranspose { m: 64 },
            OperatorKind::InterleaveBlocks { m: 64 },
            OperatorKind::BucketSort { k: 16 },
            OperatorKind::StreamRouter { ways: 16 },
        ] {
            let rate = kind.spec().rate;
            assert!(
                rate.bytes_per_sec() >= Bandwidth::from_mib_per_sec(150).bytes_per_sec(),
                "{kind:?} too slow"
            );
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn bucket_operator_rejects_bad_k() {
        OperatorKind::BucketSort { k: 12 }.spec();
    }
}
