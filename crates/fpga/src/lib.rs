//! # acc-fpga — the reconfigurable-computing substrate
//!
//! Models the hardware the paper adds to the cluster: FPGA devices with
//! finite logic resources, bitstreams composed of streaming dataflow
//! operators, and the two INIC card generations the paper evaluates:
//!
//! * the **ideal INIC** of Section 4 — separate, pipelined datapaths to
//!   host memory (80 MiB/s) and to the network (90 MiB/s), exactly the
//!   rates in Eqs. 6–9;
//! * the **ACEII prototype** of Sections 5–6 — "a single 132 MB/s bus
//!   used to access both the Gigabit Ethernet and host memory" and a
//!   Xilinx 4085XLA too small for the full receive-side bucket sort,
//!   forcing the two-phase sort of Fig. 7.
//!
//! Resource limits are *enforced*, not narrated: configuring a bitstream
//! whose CLB total exceeds the device fails, so the prototype physically
//! cannot load `BucketSort{128}` and the driver must fall back to the
//! 16-bucket + host-phase-2 pipeline, exactly as the authors did.
//!
//! The datapath is **functional** as well as timed: operators transform
//! the real bytes (via the `acc-algos` kernels) so end-to-end results are
//! checked against host-side oracles in the integration tests.

#![forbid(unsafe_code)]

pub mod card;
pub mod device;
pub mod ops;
pub mod timeline;

pub use card::{
    CardPorts, GatherKind, InicCard, InicConfigure, InicConfigured, InicExpect, InicGatherComplete,
    InicKill, InicReconfigure, InicRecover, InicScatter, InicScatterDone, ScatterKind,
    CREDIT_WINDOW,
};
pub use device::{Bitstream, ConfigError, FpgaDevice};
pub use ops::{OperatorKind, OperatorSpec};
pub use timeline::EngineTimeline;

/// The three operating modes of Section 2. The evaluated applications
/// both use [`InicMode::Combined`]; the enum exists so scenario code and
/// docs can name the mode they exercise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum InicMode {
    /// FPGAs used purely for application computing; a separate path to
    /// host memory carries ordinary network traffic.
    ComputeAccelerator,
    /// FPGAs run only the network protocol (no application operators).
    ProtocolProcessor,
    /// Application operators fused with the protocol engine in the
    /// datapath — "the most interesting of the three modes".
    Combined,
}
