//! The Intelligent NIC card component.
//!
//! One [`InicCard`] per node replaces the TCP stack of the commodity
//! path. The host driver (in `acc-core`) interacts with it through four
//! messages:
//!
//! * [`InicConfigure`] — load a bitstream (checked against the device's
//!   CLB capacity; the prototype *cannot* load the 128-bucket sorter).
//! * [`InicScatter`] — hand over a local partition; the card streams it
//!   host→FPGA, applies the send-side operator (block transpose or
//!   bucket distribution), packetizes and transmits each piece to its
//!   destination node. Transmission starts as soon as one packet's worth
//!   of a destination's data exists — the "no computational cost for
//!   starting a send" property of Section 3.2.2.
//! * [`InicExpect`] — announce the inbound streams of an all-to-all.
//! * incoming frames — de-packetized, transformed (interleave/bucket)
//!   and accumulated in INIC memory; bucket gathers DMA to the host in
//!   64 KiB pieces as thresholds fill (Eq. 15), interleave gathers DMA
//!   once all data is present (Eq. 9). One completion interrupt per
//!   gather — "virtual elimination of interrupts" (Section 4.1).
//!
//! Timing flows through [`EngineTimeline`]s. The **ideal** card has four
//! independent engines (host-in/out at 80 MiB/s, net-in/out at
//! 90 MiB/s — the Eq. 6–9 rates); the **prototype** funnels all four
//! directions through a single 132 MB/s timeline, reproducing the ACEII
//! bottleneck. Data transforms are *functional*: the bytes delivered to
//! the host are checked against host-side oracles in tests.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

use acc_algos::sort::{bucket_index, bytes_to_keys, keys_to_bytes};
use acc_algos::transpose::{
    bytes_to_slab, extract_transposed_block, interleave_block, slab_to_bytes,
};
use acc_net::port::EgressPort;
use acc_net::{EtherType, Frame, FrameArrival, MacAddr, PortTxDone};
use acc_proto::{packetize, InicPacket, StreamDemux, INIC_HEADER, INIC_PAYLOAD};
use acc_sim::{Bandwidth, Component, ComponentId, Ctx, DataSize, SimDuration, SimTime};

use crate::device::{Bitstream, ConfigError, FpgaDevice};
use crate::ops::OperatorKind;
use crate::timeline::EngineTimeline;

/// Minimum card→host DMA transfer "to ensure efficiency of the DMA
/// operation" (Eq. 15's 64 KiB).
pub const DMA_THRESHOLD: u64 = 65_536;

/// Per-destination flow-control window: a sender may have at most this
/// many un-credited payload bytes in flight toward one peer. With
/// P−1 ≤ 15 senders converging on one receiver, 24 KiB per sender keeps
/// the switch's 512 KiB output buffer from overflowing even under
/// pathological skew — the guarantee the paper gets from its balanced
/// schedule, generalised to unbalanced traffic.
pub const CREDIT_WINDOW: u64 = 24 * 1024;

/// The receiver returns a credit packet after consuming this many bytes
/// from one sender.
pub const CREDIT_QUANTUM: u64 = CREDIT_WINDOW / 4;

/// Base retransmission timeout when protocol recovery is enabled. The
/// timer only penalises a stream when no flow-control credit arrived
/// from its destination during the whole interval, so the base can be
/// generous: it is several times the drain time of a full credit
/// window.
pub const RETRANS_TIMEOUT: SimDuration = SimDuration::from_millis(2);

/// Give up on a destination after this many consecutive timeout
/// retransmissions without any sign of life (its card died); the
/// stream's window is abandoned so the rest of the schedule can drain.
pub const MAX_RETRIES: u32 = 12;

/// The card's datapath port model.
pub enum CardPorts {
    /// Ideal INIC: independent pipelined engines per direction.
    Dual {
        /// Host→card DMA engine (Eq. 6: 80 MiB/s).
        host_in: EngineTimeline,
        /// Card→host DMA engine (Eq. 9: 80 MiB/s).
        host_out: EngineTimeline,
        /// Network→card engine (Eq. 8: 90 MiB/s).
        net_in: EngineTimeline,
        /// Card→network engine (Eq. 7: 90 MiB/s).
        net_out: EngineTimeline,
    },
    /// ACEII prototype: one bus carries everything.
    Shared {
        /// The single 132 MB/s card bus.
        bus: EngineTimeline,
    },
}

impl CardPorts {
    /// The Section 4 ideal card.
    pub fn ideal() -> CardPorts {
        CardPorts::Dual {
            host_in: EngineTimeline::new(Bandwidth::from_mib_per_sec(80), SimDuration::ZERO),
            host_out: EngineTimeline::new(Bandwidth::from_mib_per_sec(80), SimDuration::ZERO),
            net_in: EngineTimeline::new(Bandwidth::from_mib_per_sec(90), SimDuration::ZERO),
            net_out: EngineTimeline::new(Bandwidth::from_mib_per_sec(90), SimDuration::ZERO),
        }
    }

    /// The ACEII prototype card.
    pub fn aceii() -> CardPorts {
        CardPorts::Shared {
            bus: EngineTimeline::new(Bandwidth::from_mb_per_sec(132), SimDuration::from_micros(1)),
        }
    }

    fn host_in(&mut self, now: SimTime, bytes: DataSize) -> SimTime {
        match self {
            CardPorts::Dual { host_in, .. } => host_in.reserve(now, bytes),
            CardPorts::Shared { bus } => bus.reserve(now, bytes),
        }
    }

    fn host_out(&mut self, now: SimTime, bytes: DataSize) -> SimTime {
        match self {
            CardPorts::Dual { host_out, .. } => host_out.reserve(now, bytes),
            CardPorts::Shared { bus } => bus.reserve(now, bytes),
        }
    }

    fn net_in(&mut self, now: SimTime, bytes: DataSize) -> SimTime {
        match self {
            CardPorts::Dual { net_in, .. } => net_in.reserve(now, bytes),
            CardPorts::Shared { bus } => bus.reserve(now, bytes),
        }
    }

    fn net_out(&mut self, now: SimTime, bytes: DataSize) -> SimTime {
        match self {
            CardPorts::Dual { net_out, .. } => net_out.reserve(now, bytes),
            CardPorts::Shared { bus } => bus.reserve(now, bytes),
        }
    }
}

/// The send-side transform of a scatter.
#[derive(Clone, Debug)]
pub enum ScatterKind {
    /// FFT transpose: the data is an `M × rows` slab; block `q`
    /// (transposed on the fly) goes to destination `q`.
    TransposeBlocks {
        /// Block edge (rows per processor).
        m: usize,
    },
    /// Integer sort: the data is a key stream; key `k` goes to
    /// destination `bucket_index(k, p)` — or, when `splitters` is set,
    /// to the rank whose sampled key range contains it. The splitter
    /// table is a small comparator cascade on the card (the pre-sort
    /// sampling extension for non-uniform keys).
    BucketKeys {
        /// Number of destinations (processors).
        p: usize,
        /// Optional `p − 1` range splitters (ascending).
        splitters: Option<Vec<u32>>,
    },
    /// Protocol-processor mode: the host already performed the data
    /// manipulation; the card only packetizes and transmits.
    /// `parts[q]` is the byte length destined for rank `q`; `data` is
    /// their concatenation in ring order (own rank's part first, then
    /// `rank+1`, `rank+2`, …).
    Raw {
        /// Rank-indexed part lengths.
        parts: Vec<usize>,
    },
    /// Collective extension: replicate the whole buffer to every
    /// destination (the send half of the naive AllReduce).
    Broadcast,
    /// Collective engine rounds: a sparse per-destination send list.
    /// `parts` names `(rank, byte length)` pairs — only the peers this
    /// schedule round actually talks to — and `data` is the
    /// concatenation of the parts in listed order. Unlike [`Raw`],
    /// silent peers get no fin packet: the engine's schedules omit
    /// zero-length transfers symmetrically on both sides, so a fin to a
    /// peer that expects nothing would poison its stream demux. A part
    /// addressed to our own rank loops back through card memory (the
    /// reduce accumulator's own contribution).
    ///
    /// [`Raw`]: ScatterKind::Raw
    Unicast {
        /// `(destination rank, byte length)`, each length > 0, ranks
        /// distinct; `data` is the parts' concatenation in this order.
        parts: Vec<(u32, usize)>,
    },
}

/// The receive-side transform and DMA policy of a gather.
#[derive(Clone, Copy, Debug)]
pub enum GatherKind {
    /// FFT transpose receive: interleave each source's `M × M` block
    /// into column-block position `src` of the output slab; DMA the slab
    /// to the host only once complete (Eq. 9).
    InterleaveBlocks {
        /// Block edge.
        m: usize,
        /// Output slab width (= m × P).
        rows: usize,
    },
    /// Sort receive: distribute incoming keys into `k` on-card buckets;
    /// DMA to the host in 64 KiB pieces as data accumulates (Eq. 15).
    BucketKeys {
        /// On-card bucket count (16 on the prototype, ≥128 ideal).
        k: usize,
    },
    /// Protocol-processor mode: no transform; streams trickle to the
    /// host as they arrive and are delivered per source (the
    /// `bucket_bounds` of [`InicGatherComplete`] carry the per-source
    /// end offsets, ordered by source rank).
    Raw,
    /// Collective extension: element-wise sum of every source's f64
    /// vector in card memory; only the reduced vector crosses to the
    /// host (the receive half of AllReduce).
    ReduceF64 {
        /// Vector length in elements.
        elems: usize,
    },
}

/// Driver → card: load a bitstream.
#[derive(Debug)]
pub struct InicConfigure {
    /// Operators to configure.
    pub bitstream: Bitstream,
}

/// Card → driver: configuration finished (or was rejected).
#[derive(Debug)]
pub struct InicConfigured {
    /// `Err` if the device lacks the logic resources.
    pub result: Result<(), ConfigError>,
}

/// Driver → card: stream a partition out to the cluster.
#[derive(Debug)]
pub struct InicScatter {
    /// Transfer id (shared by all nodes in one collective).
    pub stream: u32,
    /// Send-side transform.
    pub kind: ScatterKind,
    /// The partition's bytes (slab or key stream).
    pub data: Vec<u8>,
    /// Destination table: `dests[q]` is the MAC of rank `q`; the entry
    /// for this card's own rank routes through card memory without
    /// touching the wire.
    pub dests: Vec<MacAddr>,
}

/// Driver → card: announce the inbound side of a collective.
#[derive(Debug)]
pub struct InicExpect {
    /// Transfer id.
    pub stream: u32,
    /// Receive-side transform / DMA policy.
    pub kind: GatherKind,
    /// `(src_rank, total_bytes)` per inbound stream; `None` totals are
    /// learned from the fin packet (sort).
    pub sources: Vec<(u32, Option<usize>)>,
}

/// Card → driver: a scatter's last packet has left the card.
#[derive(Debug)]
pub struct InicScatterDone {
    /// Transfer id.
    pub stream: u32,
}

/// Card → driver: a gather is fully assembled in host memory.
#[derive(Debug)]
pub struct InicGatherComplete {
    /// Transfer id.
    pub stream: u32,
    /// The assembled bytes (output slab, or keys grouped by bucket).
    pub data: Vec<u8>,
    /// For bucket gathers: end offset (in bytes) of each bucket within
    /// `data`.
    pub bucket_bounds: Option<Vec<usize>>,
}

/// Fault injection → card: the card hardware dies, permanently. Every
/// subsequent event addressed to it — frames, DMA completions, driver
/// requests — is silently swallowed. Scheduled by the cluster builder
/// when a [`FaultPlan`] contains a card failure.
///
/// [`FaultPlan`]: https://docs.rs/acc-chaos
#[derive(Debug)]
pub struct InicKill;

/// Fault injection → card: the card goes dark for a reconfiguration
/// window of `hold`. It first broadcasts a BUSY notice so peers park
/// their retransmission timers, then defers every datapath event until
/// the window closes — in-flight streams are buffered, not lost. The
/// MAC keeps draining frames already handed to it.
#[derive(Debug)]
pub struct InicReconfigure {
    /// How long the datapath is unavailable.
    pub hold: SimDuration,
}

/// Driver → card: a peer's card died permanently (rank-local
/// degradation). Purge all sender/receiver state toward that peer so
/// nothing waits on it, and optionally abort one stream id — the
/// collective being restarted under a new epoch — across *all* peers.
#[derive(Debug)]
pub struct InicRecover {
    /// MAC of the dead peer.
    pub dead: MacAddr,
    /// Stream id of the aborted collective, if one was in flight.
    pub abort_stream: Option<u32>,
}

// --- internal events ---

/// Configuration delay elapsed.
struct ConfigDone {
    result: Result<(), ConfigError>,
}

/// A reconfiguration hold elapsed; the datapath lights back up.
struct ReconfigDone;

/// An event that arrived while the card was dark, re-posted to the end
/// of the hold window (double-boxed so the original payload survives
/// the re-queue intact).
struct DarkDeferred(Box<dyn Any>);

/// Retransmission timer for one `(destination, stream)` send window.
/// Stale generations (the window was re-armed or ACKed since) are
/// ignored on delivery.
struct RetransTimer {
    dest: MacAddr,
    stream: u32,
    gen: u64,
}

/// A send chunk finished host→card DMA + send transform.
struct ChunkStaged;

/// A frame's payload cleared net→card + receive transform.
struct RecvProcessed {
    pkt: InicPacket,
    /// Sender's MAC (for returning flow-control credits); `None` for
    /// local loopback chunks, which bypass flow control.
    src_mac: Option<MacAddr>,
}

/// Card→net engine finished; put the frame on the wire.
struct EmitFrame {
    frame: Frame,
}

/// All host-out DMA for a gather completed.
struct GatherDmaDone {
    stream: u32,
}

/// One queued send chunk.
struct SendChunk {
    dest: Option<MacAddr>,
    pkt: InicPacket,
    /// Whether this chunk's bytes cross host→card DMA. Broadcast
    /// replicas are cloned in card memory, so only the first copy pays
    /// the host bus.
    charge_host: bool,
    /// Last chunk of its scatter: emit [`InicScatterDone`] after it.
    ends_scatter: bool,
}

/// Sender-side state for one `(destination, stream)` pair under
/// protocol recovery: every un-ACKed data packet, kept until the
/// receiver confirms the whole stream.
struct TxStream {
    /// Un-ACKed packets by offset.
    pending: BTreeMap<u32, InicPacket>,
    /// Consecutive timeouts with no credit progress.
    retries: u32,
    /// Current timeout (doubles per stalled retransmission).
    timeout: SimDuration,
    /// Timer generation; a fired timer with a stale generation is dead.
    gen: u64,
    /// Whether a timer is in flight for this stream.
    armed: bool,
    /// Credit-arrival count from the destination at the last timer
    /// fire; unchanged across a whole interval ⇒ the stream is stalled.
    credit_mark: u64,
}

impl TxStream {
    fn new() -> TxStream {
        TxStream {
            pending: BTreeMap::new(),
            retries: 0,
            timeout: RETRANS_TIMEOUT,
            gen: 0,
            armed: false,
            credit_mark: 0,
        }
    }
}

/// Per-gather receive state.
struct Gather {
    kind: GatherKind,
    /// Streams still open.
    remaining: usize,
    /// Completed per-source payloads (src_rank → bytes).
    done: Vec<(u32, Vec<u8>)>,
    /// Bytes received but not yet DMA'd to the host (bucket gathers).
    undma: u64,
    /// Completion time of the last host-out DMA issued for this gather.
    dma_done_at: SimTime,
    /// Whether final assembly has been scheduled.
    finishing: bool,
}

/// The INIC card component (NIC + FPGA datapath).
pub struct InicCard {
    label: String,
    my_rank: u32,
    mac: MacAddr,
    app: ComponentId,
    uplink: EgressPort,
    device: FpgaDevice,
    bitstream: Option<Bitstream>,
    ports: CardPorts,
    /// Send-side transform pipeline.
    xform_send: EngineTimeline,
    /// Receive-side transform pipeline.
    xform_recv: EngineTimeline,
    /// Chunks awaiting host→card admission.
    // acc-lint: allow(R9, reason = "holds one scatter plan at a time: the driver submits the next scatter only after InicScatterDone for the previous, so length is bounded by the largest per-round chunk fan-out (<= p)")
    send_queue: VecDeque<SendChunk>,
    /// Whether a host-in admission is outstanding.
    host_in_busy: bool,
    demux: StreamDemux,
    gathers: BTreeMap<u32, Gather>,
    /// Packets that arrived before their gather was announced (a fast
    /// peer can be one phase ahead), with the sender MAC for recovery
    /// control traffic; replayed on [`InicExpect`].
    early_pkts: BTreeMap<u32, Vec<(InicPacket, Option<MacAddr>)>>,
    /// Whether the loss-recovery protocol (checksums already always on:
    /// ACK/NACK/timeout-retransmit) is enabled. Off on the fault-free
    /// path so the golden figures carry zero recovery overhead.
    reliability: bool,
    /// Hardware death switch — see [`InicKill`].
    dead: bool,
    /// End of the current reconfiguration hold, if the datapath is
    /// dark — see [`InicReconfigure`].
    dark_until: Option<SimTime>,
    /// Every node's primary MAC (ours included); the reconfigure BUSY
    /// notice broadcasts to all of them but ours.
    peers: Vec<MacAddr>,
    /// Peers known to be reconfiguring, and until when: their
    /// retransmission timers wait instead of counting retries.
    busy_until: BTreeMap<MacAddr, SimTime>,
    /// Peers whose cards died permanently; chunks destined to them are
    /// dropped at admission instead of filling a window forever.
    dead_peers: BTreeSet<MacAddr>,
    /// Aborted collective stream ids (rank-local recovery restarted
    /// them under a new epoch); late packets are dropped, late gather
    /// completions swallowed.
    canceled: BTreeSet<u32>,
    /// Sender-side recovery windows.
    tx_window: BTreeMap<(MacAddr, u32), TxStream>,
    /// Credit packets ever received per peer (stall detection).
    credits_from: BTreeMap<MacAddr, u64>,
    /// Last gap offset NACKed per `(src_rank, stream)`, to avoid
    /// NACK storms while the repair is in flight.
    last_nacked: BTreeMap<(u32, u32), u32>,
    /// Data packets retransmitted (timeout blasts + NACK repairs).
    retransmits: u64,
    /// Per-destination flow-control window (defaults to
    /// [`CREDIT_WINDOW`]; the credit-window ablation sweeps it).
    credit_window: u64,
    /// Un-credited payload bytes in flight per destination MAC.
    outstanding: BTreeMap<MacAddr, u64>,
    /// Bytes consumed from each source MAC not yet returned as credit.
    pending_credit: BTreeMap<MacAddr, u64>,
    /// Cost of the single completion interrupt per gather.
    completion_interrupt: SimDuration,
    /// Bytes of card memory currently committed (scatter staging +
    /// gather accumulation).
    mem_in_use: u64,
    interrupts_raised: u64,
}

impl InicCard {
    /// Build a card. `uplink` must be wired to the switch.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        my_rank: u32,
        mac: MacAddr,
        app: ComponentId,
        uplink: EgressPort,
        device: FpgaDevice,
        ports: CardPorts,
    ) -> InicCard {
        InicCard {
            label: label.into(),
            my_rank,
            mac,
            app,
            uplink,
            device,
            bitstream: None,
            ports,
            // Until configured, transforms run at a placeholder rate;
            // configure() resets these from the bitstream.
            xform_send: EngineTimeline::new(Bandwidth::from_mib_per_sec(300), SimDuration::ZERO),
            xform_recv: EngineTimeline::new(Bandwidth::from_mib_per_sec(300), SimDuration::ZERO),
            send_queue: VecDeque::new(),
            host_in_busy: false,
            demux: StreamDemux::new(),
            gathers: BTreeMap::new(),
            early_pkts: BTreeMap::new(),
            reliability: false,
            dead: false,
            dark_until: None,
            peers: Vec::new(),
            busy_until: BTreeMap::new(),
            dead_peers: BTreeSet::new(),
            canceled: BTreeSet::new(),
            tx_window: BTreeMap::new(),
            credits_from: BTreeMap::new(),
            last_nacked: BTreeMap::new(),
            retransmits: 0,
            credit_window: CREDIT_WINDOW,
            outstanding: BTreeMap::new(),
            pending_credit: BTreeMap::new(),
            completion_interrupt: SimDuration::from_micros(12),
            mem_in_use: 0,
            interrupts_raised: 0,
        }
    }

    /// Override the per-destination flow-control window (builder
    /// style); used by the credit-window ablation.
    #[must_use]
    pub fn with_credit_window(mut self, bytes: u64) -> InicCard {
        assert!(bytes >= 2048, "window must hold at least two packets");
        self.credit_window = bytes;
        self
    }

    /// Enable the loss-recovery protocol: receiver stream ACKs and gap
    /// NACKs, sender timeout retransmission with exponential backoff
    /// and bounded retries, and drop-instead-of-panic handling of
    /// undecodable frames and uplink overflow. The cluster builder
    /// turns this on exactly when a fault plan is attached.
    #[must_use]
    pub fn with_reliability(mut self, on: bool) -> InicCard {
        self.reliability = on;
        self
    }

    /// Give the card the cluster's primary MAC table (builder style) so
    /// a reconfigure can notify every peer. Own MAC included; the
    /// broadcast skips it.
    #[must_use]
    pub fn with_peers(mut self, peers: Vec<MacAddr>) -> InicCard {
        self.peers = peers;
        self
    }

    /// Completion interrupts raised so far (the paper's "single
    /// interrupt per transpose" claim is asserted against this).
    pub fn interrupts_raised(&self) -> u64 {
        self.interrupts_raised
    }

    /// Data packets this card retransmitted (timeout and NACK repair).
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// The configured bitstream, if any.
    pub fn bitstream(&self) -> Option<&Bitstream> {
        self.bitstream.as_ref()
    }

    // ---- configuration ----

    fn on_configure(&mut self, bitstream: Bitstream, ctx: &mut Ctx) {
        let result = bitstream.check(&self.device);
        if result.is_ok() {
            let rate = bitstream
                .min_rate()
                .unwrap_or(Bandwidth::from_mib_per_sec(300));
            self.xform_send = EngineTimeline::new(rate, SimDuration::ZERO);
            self.xform_recv = EngineTimeline::new(rate, SimDuration::ZERO);
            self.bitstream = Some(bitstream);
        }
        ctx.self_in(self.device.config_time, ConfigDone { result });
    }

    // ---- scatter (send) path ----

    fn on_scatter(&mut self, scatter: InicScatter, ctx: &mut Ctx) {
        {
            let bs = self
                .bitstream
                .as_ref()
                .expect("scatter before configuration");
            assert!(bs.has(OperatorKind::Packetize), "bitstream lacks Packetize");
            match &scatter.kind {
                ScatterKind::TransposeBlocks { m } => assert!(
                    bs.has(OperatorKind::LocalTranspose { m: *m }),
                    "bitstream lacks LocalTranspose{{{m}}}"
                ),
                ScatterKind::BucketKeys { p, splitters } => {
                    assert!(
                        bs.operators().iter().any(|o| matches!(
                            o.kind,
                            OperatorKind::BucketSort { k } if k >= *p
                        )),
                        "bitstream lacks a BucketSort wide enough for P={p}"
                    );
                    if let Some(sp) = splitters {
                        assert_eq!(sp.len() + 1, *p, "need P-1 splitters");
                        assert!(
                            sp.windows(2).all(|w| w[0] <= w[1]),
                            "splitters must be ascending"
                        );
                    }
                }
                ScatterKind::Raw { parts } => {
                    assert_eq!(
                        parts.len(),
                        scatter.dests.len(),
                        "raw parts must cover every destination"
                    );
                    assert_eq!(
                        parts.iter().sum::<usize>(),
                        scatter.data.len(),
                        "raw parts must cover the data exactly"
                    );
                }
                ScatterKind::Broadcast => {}
                ScatterKind::Unicast { parts } => {
                    assert!(!parts.is_empty(), "unicast scatter with no parts");
                    assert!(
                        parts
                            .iter()
                            .all(|&(q, len)| (q as usize) < scatter.dests.len() && len > 0),
                        "unicast parts must name in-range ranks with non-empty payloads"
                    );
                    let mut ranks: Vec<u32> = parts.iter().map(|&(q, _)| q).collect();
                    ranks.sort_unstable();
                    ranks.dedup();
                    assert_eq!(
                        ranks.len(),
                        parts.len(),
                        "unicast parts must name distinct ranks"
                    );
                    assert_eq!(
                        parts.iter().map(|&(_, len)| len).sum::<usize>(),
                        scatter.data.len(),
                        "unicast parts must cover the data exactly"
                    );
                }
            }
        }
        // Scatter data is streamed, never resident: only a FIFO's worth
        // of packets occupies card memory at any instant, so no
        // reservation is taken against the device's memory budget.
        let p = scatter.dests.len();
        let chunks: Vec<(Option<MacAddr>, InicPacket)> = match &scatter.kind {
            ScatterKind::TransposeBlocks { m } => self.plan_transpose_scatter(&scatter, *m, p),
            ScatterKind::BucketKeys { p: kp, splitters } => {
                assert_eq!(*kp, p, "bucket fan-out must match dests");
                let splitters = splitters.clone();
                self.plan_bucket_scatter(&scatter, p, splitters.as_deref())
            }
            ScatterKind::Raw { parts } => {
                let parts = parts.clone();
                self.plan_raw_scatter(&scatter, &parts, p)
            }
            ScatterKind::Broadcast => self.plan_broadcast_scatter(&scatter, p),
            ScatterKind::Unicast { parts } => {
                let parts = parts.clone();
                self.plan_unicast_scatter(&scatter, &parts)
            }
        };
        let broadcast = matches!(scatter.kind, ScatterKind::Broadcast);
        let n = chunks.len();
        let mut seen_offsets: BTreeSet<u32> = BTreeSet::new();
        for (i, (dest, pkt)) in chunks.into_iter().enumerate() {
            // Broadcast replicas of an already-fetched packet stay in
            // card memory; every other scatter pays host DMA per chunk.
            let charge_host = !broadcast || seen_offsets.insert(pkt.offset);
            self.send_queue.push_back(SendChunk {
                dest,
                pkt,
                charge_host,
                ends_scatter: i == n - 1,
            });
        }
        self.admit_next_chunk(ctx);
    }

    /// Cut an FFT slab into per-destination transposed blocks.
    fn plan_transpose_scatter(
        &self,
        scatter: &InicScatter,
        m: usize,
        p: usize,
    ) -> Vec<(Option<MacAddr>, InicPacket)> {
        let elem = 16;
        let total_elems = scatter.data.len() / elem;
        let rows = total_elems / m;
        assert_eq!(rows, m * p, "slab shape inconsistent with dests");
        let slab = bytes_to_slab(&scatter.data, m, rows);
        let mut out = Vec::new();
        // Destinations in ring-schedule order: start with our own block
        // (it never touches the wire), then (rank+1), (rank+2), …
        for step in 0..p {
            let q = (self.my_rank as usize + step) % p;
            let block = extract_transposed_block(&slab, q);
            let bytes = slab_to_bytes(&block);
            let dest = if q == self.my_rank as usize {
                None
            } else {
                Some(scatter.dests[q])
            };
            for pkt in packetize(self.my_rank, scatter.stream, &bytes) {
                out.push((dest, pkt));
            }
        }
        out
    }

    /// Route keys to their destination ranks, emitting each packet as
    /// soon as a destination's staging buffer fills (one-packet
    /// threshold).
    fn plan_bucket_scatter(
        &self,
        scatter: &InicScatter,
        p: usize,
        splitters: Option<&[u32]>,
    ) -> Vec<(Option<MacAddr>, InicPacket)> {
        let keys = bytes_to_keys(&scatter.data);
        let mut staging: Vec<Vec<u32>> = vec![Vec::new(); p];
        let mut offsets: Vec<u32> = vec![0; p];
        let keys_per_pkt = INIC_PAYLOAD / 4;
        let mut out = Vec::new();
        let emit = |q: usize,
                    staging: &mut Vec<Vec<u32>>,
                    offsets: &mut Vec<u32>,
                    fin: bool,
                    out: &mut Vec<(Option<MacAddr>, InicPacket)>| {
            let bytes = keys_to_bytes(&staging[q]);
            staging[q].clear();
            let pkt = InicPacket {
                src_rank: self.my_rank,
                stream: scatter.stream,
                offset: offsets[q],
                fin,
                credit: false,
                nack: false,
                ack: false,
                busy: false,
                data: bytes,
            };
            offsets[q] += pkt.data.len() as u32;
            let dest = if q == self.my_rank as usize {
                None
            } else {
                Some(scatter.dests[q])
            };
            out.push((dest, pkt));
        };
        for &key in &keys {
            // P=1 degenerates to a local pass-through.
            let q = match splitters {
                Some(sp) => acc_algos::sort::destination_by_splitters(key, sp),
                None if p == 1 => 0,
                None => bucket_index(key, p),
            };
            staging[q].push(key);
            if staging[q].len() == keys_per_pkt {
                emit(q, &mut staging, &mut offsets, false, &mut out);
            }
        }
        // Flush every destination with a fin packet (possibly empty) so
        // receivers learn the totals.
        for q in 0..p {
            emit(q, &mut staging, &mut offsets, true, &mut out);
        }
        out
    }

    /// Cut host-prepared per-destination parts into packets without any
    /// transform (protocol-processor mode).
    fn plan_raw_scatter(
        &self,
        scatter: &InicScatter,
        parts: &[usize],
        p: usize,
    ) -> Vec<(Option<MacAddr>, InicPacket)> {
        let mut out = Vec::new();
        let mut offset = 0usize;
        for step in 0..p {
            let q = (self.my_rank as usize + step) % p;
            let len = parts[q];
            let segment = &scatter.data[offset..offset + len];
            offset += len;
            let local = q == self.my_rank as usize;
            if local && len == 0 {
                // Nothing for ourselves: no loopback fin needed (remote
                // peers still get one so they learn a zero total).
                continue;
            }
            let dest = if local { None } else { Some(scatter.dests[q]) };
            for pkt in packetize(self.my_rank, scatter.stream, segment) {
                out.push((dest, pkt));
            }
        }
        assert_eq!(offset, scatter.data.len(), "raw parts did not consume data");
        out
    }

    /// Cut a sparse per-destination part list into packets in listed
    /// order (the collective engine's schedule rounds). Every part is
    /// non-empty (asserted in `on_scatter`), so the final chunk — and
    /// with it the `InicScatterDone` — always exists.
    fn plan_unicast_scatter(
        &self,
        scatter: &InicScatter,
        parts: &[(u32, usize)],
    ) -> Vec<(Option<MacAddr>, InicPacket)> {
        let mut out = Vec::new();
        let mut offset = 0usize;
        for &(q, len) in parts {
            let segment = &scatter.data[offset..offset + len];
            offset += len;
            let dest = if q == self.my_rank {
                None
            } else {
                Some(scatter.dests[q as usize])
            };
            for pkt in packetize(self.my_rank, scatter.stream, segment) {
                out.push((dest, pkt));
            }
        }
        assert_eq!(
            offset,
            scatter.data.len(),
            "unicast parts did not consume data"
        );
        out
    }

    /// Replicate the buffer to every destination (AllReduce send half).
    /// Packet-major order: each packet is fetched from host memory once
    /// and its card-memory replicas follow immediately.
    fn plan_broadcast_scatter(
        &self,
        scatter: &InicScatter,
        p: usize,
    ) -> Vec<(Option<MacAddr>, InicPacket)> {
        let pkts = packetize(self.my_rank, scatter.stream, &scatter.data);
        let mut out = Vec::with_capacity(pkts.len() * p);
        for pkt in pkts {
            for step in 0..p {
                let q = (self.my_rank as usize + step) % p;
                let dest = if q == self.my_rank as usize {
                    None
                } else {
                    Some(scatter.dests[q])
                };
                out.push((dest, pkt.clone()));
            }
        }
        out
    }

    fn admit_next_chunk(&mut self, ctx: &mut Ctx) {
        if self.host_in_busy {
            return;
        }
        // Find the first chunk whose destination window has room,
        // rotating blocked chunks to the back (out-of-order emission is
        // fine — receivers reassemble by offset). Local chunks bypass
        // flow control.
        let mut scanned = 0usize;
        let mut total = self.send_queue.len();
        while scanned < total {
            // Chunks aimed at a dead peer or belonging to an aborted
            // collective are dropped here instead of holding a window
            // that can never reopen.
            let doomed = {
                let chunk = self.send_queue.front().expect("scanned < len");
                self.canceled.contains(&chunk.pkt.stream)
                    || chunk.dest.is_some_and(|mac| self.dead_peers.contains(&mac))
            };
            if doomed {
                let chunk = self.send_queue.pop_front().expect("checked");
                ctx.stats()
                    .counter(&self.label, "chunks_dropped_dead")
                    .inc();
                if chunk.ends_scatter {
                    let stream = chunk.pkt.stream;
                    ctx.send_now(self.app, InicScatterDone { stream });
                }
                total -= 1;
                continue;
            }
            let admissible = {
                let chunk = self.send_queue.front().expect("scanned < len");
                match chunk.dest {
                    None => true,
                    Some(mac) => {
                        let inflight = self.outstanding.get(&mac).copied().unwrap_or(0);
                        inflight + chunk.pkt.data.len() as u64 <= self.credit_window
                    }
                }
            };
            if admissible {
                let chunk = self.send_queue.front().expect("checked");
                if let Some(mac) = chunk.dest {
                    let inflight = self.outstanding.entry(mac).or_insert(0);
                    *inflight += chunk.pkt.data.len() as u64;
                    if self.reliability {
                        let v = *inflight as f64;
                        ctx.stats().gauge(&self.label, "outstanding_bytes").set(v);
                    }
                }
                let bytes = DataSize::from_bytes((chunk.pkt.data.len() + INIC_HEADER) as u64);
                self.host_in_busy = true;
                if chunk.charge_host {
                    let t1 = self.ports.host_in(ctx.now(), bytes);
                    let t2 = self.xform_send.reserve(t1, bytes);
                    ctx.self_in(t2.since(ctx.now()), ChunkStaged);
                } else {
                    // Card-memory replica: no host DMA, no transform.
                    ctx.self_in(acc_sim::SimDuration::ZERO, ChunkStaged);
                }
                return;
            }
            let blocked = self.send_queue.pop_front().expect("checked");
            self.send_queue.push_back(blocked);
            scanned += 1;
        }
        // Every queued destination is window-blocked; a returning
        // credit will re-run admission.
    }

    fn on_chunk_staged(&mut self, ctx: &mut Ctx) {
        self.host_in_busy = false;
        let chunk = self
            .send_queue
            .pop_front()
            .expect("ChunkStaged with empty queue");
        // The destination died (or the collective was aborted) while
        // this chunk crossed host→card DMA: return its window charge
        // and drop it on the floor.
        if self.canceled.contains(&chunk.pkt.stream)
            || chunk.dest.is_some_and(|mac| self.dead_peers.contains(&mac))
        {
            if let Some(mac) = chunk.dest {
                let entry = self.outstanding.entry(mac).or_insert(0);
                *entry = entry.saturating_sub(chunk.pkt.data.len() as u64);
            }
            ctx.stats()
                .counter(&self.label, "chunks_dropped_dead")
                .inc();
            if chunk.ends_scatter {
                let stream = chunk.pkt.stream;
                ctx.send_now(self.app, InicScatterDone { stream });
            }
            self.admit_next_chunk(ctx);
            return;
        }
        // Start the next chunk's DMA immediately (pipelining).
        self.admit_next_chunk(ctx);
        let bytes = DataSize::from_bytes((chunk.pkt.data.len() + INIC_HEADER) as u64);
        match chunk.dest {
            Some(mac) => {
                let t3 = self.ports.net_out(ctx.now(), bytes);
                let frame = Frame::try_new(self.mac, mac, EtherType::Inic, chunk.pkt.encode())
                    .unwrap_or_else(|e| panic!("{}: tx packet exceeds MTU ({e})", self.label));
                ctx.self_in(t3.since(ctx.now()), EmitFrame { frame });
                if self.reliability {
                    // Keep a copy until the receiver ACKs the stream,
                    // and make sure a retransmission timer is running.
                    let key = (mac, chunk.pkt.stream);
                    let entry = self.tx_window.entry(key).or_insert_with(TxStream::new);
                    entry.pending.insert(chunk.pkt.offset, chunk.pkt.clone());
                    if !entry.armed {
                        entry.armed = true;
                        entry.gen += 1;
                        let timer = RetransTimer {
                            dest: mac,
                            stream: chunk.pkt.stream,
                            gen: entry.gen,
                        };
                        let timeout = entry.timeout;
                        ctx.self_in(timeout, timer);
                    }
                }
                if chunk.ends_scatter {
                    let stream = chunk.pkt.stream;
                    ctx.send_in(t3.since(ctx.now()), self.app, InicScatterDone { stream });
                }
            }
            None => {
                // Local loopback: pass straight to the receive transform.
                let t3 = self.xform_recv.reserve(ctx.now(), bytes);
                let pkt = chunk.pkt.clone();
                ctx.self_in(t3.since(ctx.now()), RecvProcessed { pkt, src_mac: None });
                if chunk.ends_scatter {
                    let stream = chunk.pkt.stream;
                    ctx.send_in(t3.since(ctx.now()), self.app, InicScatterDone { stream });
                }
            }
        }
    }

    // ---- gather (receive) path ----

    fn on_expect(&mut self, expect: InicExpect, ctx: &mut Ctx) {
        let bs = self
            .bitstream
            .as_ref()
            .expect("expect before configuration");
        match expect.kind {
            GatherKind::InterleaveBlocks { m, rows } => {
                assert!(
                    bs.has(OperatorKind::InterleaveBlocks { m }),
                    "bitstream lacks InterleaveBlocks{{{m}}}"
                );
                // The full output slab accumulates in card memory.
                self.reserve_memory((m * rows * 16) as u64);
            }
            GatherKind::BucketKeys { k } => {
                assert!(
                    bs.has(OperatorKind::BucketSort { k }),
                    "bitstream lacks BucketSort{{{k}}}"
                );
            }
            GatherKind::Raw => {
                // Pure protocol processing; any datapath can pass data
                // through.
            }
            GatherKind::ReduceF64 { elems } => {
                assert!(bs.has(OperatorKind::ReduceSum), "bitstream lacks ReduceSum");
                // The accumulator vector lives in card memory.
                self.reserve_memory(elems as u64 * 8);
            }
        }
        for &(src, total) in &expect.sources {
            match total {
                Some(t) => self.demux.expect(src, expect.stream, t),
                None => self.demux.expect_unknown(src, expect.stream),
            }
        }
        let prev = self.gathers.insert(
            expect.stream,
            Gather {
                kind: expect.kind,
                remaining: expect.sources.len(),
                done: Vec::new(),
                undma: 0,
                dma_done_at: ctx.now(),
                finishing: false,
            },
        );
        assert!(prev.is_none(), "gather {} announced twice", expect.stream);
        // Replay packets that beat the announcement (credits were
        // already granted when they first arrived).
        if let Some(early) = self.early_pkts.remove(&expect.stream) {
            for (pkt, src_mac) in early {
                self.replay_recv(pkt, src_mac, ctx);
            }
        }
    }

    fn on_frame(&mut self, frame: Frame, ctx: &mut Ctx) {
        debug_assert_eq!(frame.ethertype, EtherType::Inic);
        let bytes = DataSize::from_bytes(frame.payload.len() as u64);
        let t1 = self.ports.net_in(ctx.now(), bytes);
        let t2 = self.xform_recv.reserve(t1, bytes);
        let pkt = match InicPacket::decode(&frame.payload) {
            Ok(pkt) => pkt,
            // Corrupted on the wire: drop it; the sender's timeout (or
            // the receiver's gap NACK) recovers the payload. Without
            // reliability a bad frame is a simulator bug, not a fault.
            Err(_) if self.reliability => {
                ctx.stats().counter(&self.label, "rx_decode_drops").inc();
                return;
            }
            Err(err) => panic!("{}: undecodable INIC frame: {err:?}", self.label),
        };
        let src_mac = Some(frame.src);
        ctx.self_in(t2.since(ctx.now()), RecvProcessed { pkt, src_mac });
    }

    fn on_recv_processed(&mut self, pkt: InicPacket, src_mac: Option<MacAddr>, ctx: &mut Ctx) {
        // Reconfiguration notice: the peer is alive but dark for
        // `offset` microseconds; park its retransmission clocks.
        if pkt.busy {
            let mac = src_mac.expect("busy notices only arrive off the wire");
            let until = ctx.now() + SimDuration::from_micros(u64::from(pkt.offset));
            self.busy_until.insert(mac, until);
            return;
        }
        // Flow-control credit: the peer consumed `offset` bytes of our
        // in-flight data; reopen its window and retry admission.
        if pkt.credit {
            let mac = src_mac.expect("credits only arrive off the wire");
            *self.credits_from.entry(mac).or_insert(0) += 1;
            let entry = self.outstanding.entry(mac).or_insert(0);
            *entry = entry.saturating_sub(u64::from(pkt.offset));
            if self.reliability {
                ctx.stats()
                    .counter(&self.label, "credit_bytes_consumed")
                    .add(u64::from(pkt.offset));
            }
            self.admit_next_chunk(ctx);
            return;
        }
        // Recovery ACK: the peer consumed our whole stream; forget the
        // retransmission window.
        if pkt.ack {
            let mac = src_mac.expect("acks only arrive off the wire");
            self.tx_window.remove(&(mac, pkt.stream));
            return;
        }
        // Recovery NACK: the peer is missing one packet; resend it.
        if pkt.nack {
            let mac = src_mac.expect("nacks only arrive off the wire");
            self.resend_one(mac, pkt.stream, pkt.offset, ctx);
            return;
        }
        // A straggler from an aborted collective (rank-local recovery
        // restarted it under a new stream id): drop it without granting
        // credit, ACKing so any old-epoch sender still holding a window
        // goes quiet.
        if self.canceled.contains(&pkt.stream) {
            if self.reliability {
                if let Some(mac) = src_mac {
                    self.send_ack(mac, pkt.stream, ctx);
                }
            }
            return;
        }
        // Grant credit back to remote senders as their data is consumed.
        if let Some(mac) = src_mac {
            let pending = self.pending_credit.entry(mac).or_insert(0);
            *pending += pkt.data.len() as u64;
            if *pending >= self.credit_window / 4 || pkt.fin {
                let amount = *pending;
                *pending = 0;
                self.send_credit(mac, pkt.stream, amount, ctx);
            }
        }
        // A duplicate of a stream the demux already completed means our
        // stream ACK was lost: re-ACK so the sender stops resending.
        if self.reliability && self.demux.is_completed(pkt.src_rank, pkt.stream) {
            if let Some(mac) = src_mac {
                self.send_ack(mac, pkt.stream, ctx);
            }
            return;
        }
        if !self.gathers.contains_key(&pkt.stream) {
            // Gather not announced yet: buffer in card memory.
            self.early_pkts
                .entry(pkt.stream)
                .or_default()
                .push((pkt, src_mac));
            return;
        }
        self.accept_into_gather(pkt, src_mac, ctx);
    }

    /// Account a data packet against its gather: trickle DMA for
    /// bucket/raw gathers, stream reassembly, recovery control traffic,
    /// and completion.
    fn accept_into_gather(&mut self, pkt: InicPacket, src_mac: Option<MacAddr>, ctx: &mut Ctx) {
        let stream = pkt.stream;
        if self.reliability {
            ctx.stats()
                .counter(&self.label, "gather_bytes_in")
                .add(pkt.data.len() as u64);
        }
        let gather = self.gathers.get_mut(&stream).expect("gather announced");
        // Bucket gathers trickle data to the host in DMA_THRESHOLD
        // pieces as it accumulates (Eq. 15); interleave gathers hold
        // everything on the card until complete (Eq. 9).
        if matches!(gather.kind, GatherKind::BucketKeys { .. } | GatherKind::Raw) {
            gather.undma += pkt.data.len() as u64;
            let mut dma_pieces = 0u64;
            while gather.undma >= DMA_THRESHOLD {
                gather.undma -= DMA_THRESHOLD;
                dma_pieces += 1;
            }
            for _ in 0..dma_pieces {
                let end = self
                    .ports
                    .host_out(ctx.now(), DataSize::from_bytes(DMA_THRESHOLD));
                let g = self.gathers.get_mut(&stream).expect("still present");
                if end > g.dma_done_at {
                    g.dma_done_at = end;
                }
            }
        }
        if let Some((src, _s, data)) = self.demux.accept(&pkt) {
            if self.reliability {
                self.last_nacked.remove(&(src, stream));
                if let Some(mac) = src_mac {
                    self.send_ack(mac, stream, ctx);
                }
            }
            let gather = self.gathers.get_mut(&stream).expect("checked above");
            gather.done.push((src, data));
            gather.remaining -= 1;
            if gather.remaining == 0 && !gather.finishing {
                gather.finishing = true;
                self.finish_gather(stream, ctx);
            }
        } else if let (true, Some(mac)) = (self.reliability, src_mac) {
            // Incomplete after this packet. If there's a hole below it
            // (loss, or reordering overtook it) ask for the first
            // missing packet — but only once per distinct gap, and
            // always on fin, which proves nothing more is coming.
            if let Some(missing) = self.demux.missing(pkt.src_rank, stream) {
                let key = (pkt.src_rank, stream);
                let gap_is_below = missing < pkt.offset || pkt.fin;
                let already = self.last_nacked.get(&key) == Some(&missing) && !pkt.fin;
                if gap_is_below && !already {
                    self.last_nacked.insert(key, missing);
                    self.send_nack(mac, stream, missing, ctx);
                }
            }
        }
    }

    /// All streams complete: issue the remaining host DMA and schedule
    /// final assembly.
    fn finish_gather(&mut self, stream: u32, ctx: &mut Ctx) {
        let (kind, undma, total_bytes) = {
            let g = &self.gathers[&stream];
            let total: usize = g.done.iter().map(|(_, d)| d.len()).sum();
            (g.kind, g.undma, total as u64)
        };
        let tail = match kind {
            // Interleave: the whole slab crosses to the host now, in
            // efficient DMA-threshold pieces.
            GatherKind::InterleaveBlocks { .. } => total_bytes,
            // Bucket/raw: only the sub-threshold remainder is left.
            GatherKind::BucketKeys { .. } | GatherKind::Raw => undma,
            // Reduce: only the reduced vector crosses to the host.
            GatherKind::ReduceF64 { elems } => elems as u64 * 8,
        };
        let mut last = ctx.now();
        let mut left = tail;
        while left > 0 {
            let piece = left.min(DMA_THRESHOLD);
            last = self.ports.host_out(ctx.now(), DataSize::from_bytes(piece));
            left -= piece;
        }
        let g = self.gathers.get_mut(&stream).expect("present");
        if last > g.dma_done_at {
            g.dma_done_at = last;
        }
        let delay = g.dma_done_at.saturating_since(ctx.now()) + self.completion_interrupt;
        ctx.self_in(delay, GatherDmaDone { stream });
    }

    fn on_gather_dma_done(&mut self, stream: u32, ctx: &mut Ctx) {
        // The gather may have been canceled (aborted collective) while
        // the final DMA was in flight; nothing left to deliver.
        let Some(mut gather) = self.gathers.remove(&stream) else {
            return;
        };
        self.interrupts_raised += 1;
        ctx.stats()
            .counter(&self.label, "completion_interrupts")
            .inc();
        // Deterministic assembly order: by source rank.
        gather.done.sort_by_key(|&(src, _)| src);
        let mut padded_bytes = 0u64;
        let (data, bucket_bounds) = match gather.kind {
            GatherKind::InterleaveBlocks { m, rows } => {
                let mut out = acc_algos::fft::Matrix::zeros(m, rows);
                for (src, bytes) in &gather.done {
                    let block = bytes_to_slab(bytes, m, m);
                    interleave_block(&mut out, *src as usize, &block);
                }
                self.release_memory((m * rows * 16) as u64);
                // The assembly is fixed-size: regions of sources that
                // never arrived (dead peers whose blocks travel the
                // mixed-technology TCP path instead, for the host to
                // patch) leave zero-filled holes the datapath emits
                // without having received — account for them so the
                // conservation audit stays exact.
                let received: usize = gather.done.iter().map(|(_, b)| b.len()).sum();
                padded_bytes = (m * rows * 16).saturating_sub(received) as u64;
                (slab_to_bytes(&out), None)
            }
            GatherKind::BucketKeys { k } => {
                // Keys grouped into the card's k buckets, preserving
                // (src-rank, arrival) order within each bucket.
                let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); k];
                for (_src, bytes) in &gather.done {
                    for key in bytes_to_keys(bytes) {
                        buckets[bucket_index(key, k)].push(key);
                    }
                }
                let mut bounds = Vec::with_capacity(k);
                let mut flat = Vec::new();
                for b in &buckets {
                    flat.extend_from_slice(b);
                    bounds.push(flat.len() * 4);
                }
                (keys_to_bytes(&flat), Some(bounds))
            }
            GatherKind::Raw => {
                // Per-source concatenation (already sorted by rank),
                // with per-source end offsets in the bounds.
                let mut flat = Vec::new();
                let mut bounds = Vec::with_capacity(gather.done.len());
                for (_src, bytes) in &gather.done {
                    flat.extend_from_slice(bytes);
                    bounds.push(flat.len());
                }
                (flat, Some(bounds))
            }
            GatherKind::ReduceF64 { elems } => {
                let mut acc = vec![0.0f64; elems];
                for (src, bytes) in &gather.done {
                    assert_eq!(
                        bytes.len(),
                        elems * 8,
                        "source {src} vector length mismatch"
                    );
                    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
                        acc[i] += f64::from_le_bytes(chunk.try_into().expect("8 bytes"));
                    }
                }
                self.release_memory(elems as u64 * 8);
                let mut out = Vec::with_capacity(elems * 8);
                for v in acc {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                (out, None)
            }
        };
        if self.reliability {
            ctx.stats()
                .counter(&self.label, "gather_bytes_out")
                .add(data.len() as u64);
            if padded_bytes > 0 {
                ctx.stats()
                    .counter(&self.label, "gather_bytes_padded")
                    .add(padded_bytes);
            }
        }
        ctx.send_now(
            self.app,
            InicGatherComplete {
                stream,
                data,
                bucket_bounds,
            },
        );
    }

    /// Emit a zero-data credit packet to `mac` re-granting `amount`
    /// consumed bytes. Credits ride the normal net-out path (they cost
    /// a minimum-size frame of wire time).
    fn send_credit(&mut self, mac: MacAddr, stream: u32, amount: u64, ctx: &mut Ctx) {
        if self.reliability {
            ctx.stats()
                .counter(&self.label, "credit_bytes_granted")
                .add(amount);
        }
        let pkt = InicPacket::credit_grant(self.my_rank, stream, amount as u32);
        self.send_control(mac, pkt, ctx);
    }

    /// Receiver → sender: the whole stream arrived and was consumed.
    fn send_ack(&mut self, mac: MacAddr, stream: u32, ctx: &mut Ctx) {
        ctx.stats().counter(&self.label, "acks_sent").inc();
        let pkt = InicPacket::stream_ack(self.my_rank, stream);
        self.send_control(mac, pkt, ctx);
    }

    /// Receiver → sender: the stream has a hole at `missing`; resend it.
    fn send_nack(&mut self, mac: MacAddr, stream: u32, missing: u32, ctx: &mut Ctx) {
        ctx.stats().counter(&self.label, "nacks_sent").inc();
        let pkt = InicPacket::repair_nack(self.my_rank, stream, missing);
        self.send_control(mac, pkt, ctx);
    }

    /// Emit a zero-data control packet over the normal net-out path
    /// (it costs a minimum-size frame of wire time).
    fn send_control(&mut self, mac: MacAddr, pkt: InicPacket, ctx: &mut Ctx) {
        let bytes = DataSize::from_bytes(INIC_HEADER as u64);
        let t = self.ports.net_out(ctx.now(), bytes);
        let frame = Frame::try_new(self.mac, mac, EtherType::Inic, pkt.encode())
            .unwrap_or_else(|e| panic!("{}: control packet exceeds MTU ({e})", self.label));
        ctx.self_in(t.since(ctx.now()), EmitFrame { frame });
    }

    // ---- loss recovery (sender side) ----

    /// Resend one still-pending packet in response to a NACK.
    /// Retransmissions bypass host DMA and the send transform (the
    /// packet lives in card memory) but pay the net-out engine.
    fn resend_one(&mut self, mac: MacAddr, stream: u32, offset: u32, ctx: &mut Ctx) {
        let Some(pkt) = self
            .tx_window
            .get(&(mac, stream))
            .and_then(|e| e.pending.get(&offset))
            .cloned()
        else {
            // Already abandoned (or a stale NACK for an ACKed stream).
            return;
        };
        self.retransmits += 1;
        ctx.stats().counter(&self.label, "retransmits").inc();
        let bytes = DataSize::from_bytes((pkt.data.len() + INIC_HEADER) as u64);
        let t = self.ports.net_out(ctx.now(), bytes);
        let frame = Frame::try_new(self.mac, mac, EtherType::Inic, pkt.encode())
            .unwrap_or_else(|e| panic!("{}: resend packet exceeds MTU ({e})", self.label));
        ctx.self_in(t.since(ctx.now()), EmitFrame { frame });
    }

    /// Timeout for one `(dest, stream)` window. Credit arrivals from
    /// the destination during the interval mean the peer is alive and
    /// consuming — re-arm without penalty. A genuinely silent interval
    /// means the tail of the stream (or the peer's ACK) was lost: blast
    /// every un-ACKed packet back out with doubled timeout, and give
    /// the destination up for dead after [`MAX_RETRIES`] silent rounds
    /// so the rest of the schedule can still drain.
    fn on_retrans_timer(&mut self, dest: MacAddr, stream: u32, gen: u64, ctx: &mut Ctx) {
        let label = self.label.clone();
        let credits_seen = self.credits_from.get(&dest).copied().unwrap_or(0);
        let Some(entry) = self.tx_window.get_mut(&(dest, stream)) else {
            return; // ACKed since the timer was armed.
        };
        if entry.gen != gen {
            return; // Superseded by a newer arm.
        }
        if credits_seen != entry.credit_mark {
            entry.credit_mark = credits_seen;
            entry.retries = 0;
            entry.gen += 1;
            let timer = RetransTimer {
                dest,
                stream,
                gen: entry.gen,
            };
            let timeout = entry.timeout;
            ctx.self_in(timeout, timer);
            return;
        }
        // The peer announced a reconfiguration hold covering this
        // instant: it is alive but dark, so its silence is not evidence
        // of death. Wait out the window without burning a retry or
        // blasting packets it would only buffer.
        if let Some(&busy) = self.busy_until.get(&dest) {
            if ctx.now() < busy {
                entry.gen += 1;
                let timer = RetransTimer {
                    dest,
                    stream,
                    gen: entry.gen,
                };
                let wait = busy.since(ctx.now()) + entry.timeout;
                ctx.self_in(wait, timer);
                ctx.stats().counter(&label, "reconfig_waits").inc();
                return;
            }
        }
        entry.retries += 1;
        if entry.retries > MAX_RETRIES {
            self.tx_window.remove(&(dest, stream));
            // Unreachable peer: stop holding its flow-control window so
            // queued chunks drain (into the void) and the scatter —
            // whose completion the failed-over driver ignores — still
            // quiesces.
            self.outstanding.remove(&dest);
            ctx.stats().counter(&label, "retrans_abandoned").inc();
            self.admit_next_chunk(ctx);
            return;
        }
        entry.timeout = entry.timeout * 2;
        entry.gen += 1;
        let timer = RetransTimer {
            dest,
            stream,
            gen: entry.gen,
        };
        let timeout = entry.timeout;
        let pkts: Vec<InicPacket> = entry.pending.values().cloned().collect();
        ctx.self_in(timeout, timer);
        for pkt in pkts {
            self.retransmits += 1;
            ctx.stats().counter(&label, "retransmits").inc();
            let bytes = DataSize::from_bytes((pkt.data.len() + INIC_HEADER) as u64);
            let t = self.ports.net_out(ctx.now(), bytes);
            let frame = Frame::try_new(self.mac, dest, EtherType::Inic, pkt.encode())
                .unwrap_or_else(|e| panic!("{label}: retransmit exceeds MTU ({e})"));
            ctx.self_in(t.since(ctx.now()), EmitFrame { frame });
        }
    }

    // ---- transient-fault handling ----

    /// Whether the datapath is inside a reconfiguration hold.
    fn is_dark(&self, now: SimTime) -> bool {
        self.dark_until.is_some_and(|t| now < t)
    }

    /// Go dark for `hold`: tell every peer (so their retransmission
    /// machinery waits instead of abandoning us), then defer all
    /// datapath events until the window closes.
    fn on_reconfigure(&mut self, hold: SimDuration, ctx: &mut Ctx) {
        let until = ctx.now() + hold;
        if self.dark_until.is_none_or(|t| until > t) {
            self.dark_until = Some(until);
        }
        ctx.self_in(hold, ReconfigDone);
        ctx.stats().counter(&self.label, "reconfigures").inc();
        let hold_micros = (hold.as_nanos() / 1_000) as u32;
        let notice: Vec<MacAddr> = self
            .peers
            .iter()
            .copied()
            .filter(|&m| m != self.mac)
            .collect();
        for mac in notice {
            let pkt = InicPacket::reconfig_busy(self.my_rank, hold_micros);
            self.send_control(mac, pkt, ctx);
        }
    }

    /// A hold elapsed. A later (overlapping) reconfigure may have
    /// pushed `dark_until` out; only the final wake-up counts.
    fn on_reconfig_done(&mut self, ctx: &mut Ctx) {
        if self.dark_until.is_some_and(|t| ctx.now() >= t) {
            self.dark_until = None;
            ctx.stats()
                .counter(&self.label, "reconfig_windows_survived")
                .inc();
        }
    }

    /// A peer's card died permanently; rank-local recovery restarts the
    /// in-flight collective under a new epoch. Purge everything aimed
    /// at the dead peer and abort the old stream everywhere, so no
    /// window, timer or gather waits on state that can never complete.
    ///
    /// Clearing `outstanding` wholesale is sound because the drivers
    /// run one collective at a time: at recovery, every in-flight byte
    /// belongs to the aborted stream.
    fn on_recover(&mut self, dead: MacAddr, abort_stream: Option<u32>, ctx: &mut Ctx) {
        self.dead_peers.insert(dead);
        self.busy_until.remove(&dead);
        self.tx_window
            .retain(|&(mac, stream), _| mac != dead && abort_stream != Some(stream));
        if let Some(stream) = abort_stream {
            self.canceled.insert(stream);
            self.outstanding.clear();
            self.pending_credit.clear();
            self.early_pkts.remove(&stream);
            self.last_nacked.retain(|&(_, s), _| s != stream);
            if let Some(g) = self.gathers.remove(&stream) {
                match g.kind {
                    GatherKind::InterleaveBlocks { m, rows } => {
                        self.release_memory((m * rows * 16) as u64);
                    }
                    GatherKind::ReduceF64 { elems } => {
                        self.release_memory(elems as u64 * 8);
                    }
                    GatherKind::BucketKeys { .. } | GatherKind::Raw => {}
                }
            }
        } else {
            self.outstanding.remove(&dead);
            self.pending_credit.remove(&dead);
        }
        ctx.stats().counter(&self.label, "peer_recoveries").inc();
        self.admit_next_chunk(ctx);
    }

    /// Put an already-staged frame on the wire (allowed even while
    /// dark: the MAC drains what the datapath handed it before the
    /// reconfigure hit).
    fn on_emit_frame(&mut self, frame: Frame, ctx: &mut Ctx) {
        let ok = self.uplink.enqueue(frame, ctx);
        if !ok && self.reliability {
            // Retransmission bursts can exceed the NIC buffer;
            // the drop is itself recovered by the protocol.
            ctx.stats()
                .counter(&self.label, "uplink_overflow_drops")
                .inc();
        } else {
            assert!(
                ok,
                "{}: INIC uplink overflow — schedule oversubscribed the NIC buffer",
                self.label
            );
        }
    }

    /// Re-deliver an early-buffered data packet to its (now announced)
    /// gather, skipping the credit bookkeeping already done on arrival.
    fn replay_recv(&mut self, pkt: InicPacket, src_mac: Option<MacAddr>, ctx: &mut Ctx) {
        debug_assert!(!pkt.is_control());
        let stream = pkt.stream;
        assert!(
            self.gathers.contains_key(&stream),
            "replay into missing gather"
        );
        self.accept_into_gather(pkt, src_mac, ctx);
    }

    // ---- card memory accounting ----

    fn reserve_memory(&mut self, bytes: u64) {
        self.mem_in_use += bytes;
        assert!(
            self.mem_in_use <= self.device.memory.bytes(),
            "{}: card memory exhausted ({} > {}) — partition too large for {}",
            self.label,
            self.mem_in_use,
            self.device.memory.bytes(),
            self.device.part
        );
    }

    fn release_memory(&mut self, bytes: u64) {
        self.mem_in_use = self.mem_in_use.saturating_sub(bytes);
    }
}

impl Component for InicCard {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<InicKill>().is_some() {
            self.dead = true;
            ctx.stats().counter(&self.label, "card_killed").inc();
            return;
        }
        // A dead card swallows everything: frames rot on the wire,
        // timers fire into the void, the driver hears nothing. Recovery
        // happens above (peer retry abandonment, host fallback).
        if self.dead {
            return;
        }
        // Unwrap events that were parked during a reconfiguration hold
        // (they re-enter the full dispatch below — and are re-parked if
        // a second overlapping hold extended the window).
        let ev = match ev.downcast::<DarkDeferred>() {
            Ok(deferred) => deferred.0,
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<ReconfigDone>() {
            Ok(_) => return self.on_reconfig_done(ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicReconfigure>() {
            Ok(r) => return self.on_reconfigure(r.hold, ctx),
            Err(ev) => ev,
        };
        if self.is_dark(ctx.now()) {
            // The MAC keeps draining frames the datapath staged before
            // the hold began; everything else waits for the light.
            let ev = match ev.downcast::<EmitFrame>() {
                Ok(emit) => return self.on_emit_frame(emit.frame, ctx),
                Err(ev) => ev,
            };
            let ev = match ev.downcast::<PortTxDone>() {
                Ok(_) => return self.uplink.tx_done(ctx),
                Err(ev) => ev,
            };
            let wake = self.dark_until.expect("dark").saturating_since(ctx.now());
            ctx.stats().counter(&self.label, "dark_deferrals").inc();
            ctx.self_in(wake, DarkDeferred(ev));
            return;
        }
        let ev = match ev.downcast::<InicRecover>() {
            Ok(r) => return self.on_recover(r.dead, r.abort_stream, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicConfigure>() {
            Ok(cfg) => return self.on_configure(cfg.bitstream, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<ConfigDone>() {
            Ok(done) => {
                let app = self.app;
                ctx.send_now(
                    app,
                    InicConfigured {
                        result: done.result,
                    },
                );
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicScatter>() {
            Ok(s) => return self.on_scatter(*s, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<InicExpect>() {
            Ok(e) => return self.on_expect(*e, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<ChunkStaged>() {
            Ok(_) => return self.on_chunk_staged(ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<EmitFrame>() {
            Ok(emit) => return self.on_emit_frame(emit.frame, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<FrameArrival>() {
            Ok(arr) => return self.on_frame(arr.frame, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<RecvProcessed>() {
            Ok(r) => return self.on_recv_processed(r.pkt, r.src_mac, ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<PortTxDone>() {
            Ok(_) => return self.uplink.tx_done(ctx),
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<RetransTimer>() {
            Ok(t) => return self.on_retrans_timer(t.dest, t.stream, t.gen, ctx),
            Err(ev) => ev,
        };
        match ev.downcast::<GatherDmaDone>() {
            Ok(d) => self.on_gather_dma_done(d.stream, ctx),
            Err(_) => panic!("inic {}: unknown event", self.label),
        }
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wait_state(&self) -> Option<String> {
        if self.dead {
            // A dead card waits on nothing, but in a hang report it is
            // usually the answer: every peer stream into it is doomed.
            return Some("card dead — peers retrying into the void".to_string());
        }
        let unacked: usize = self.tx_window.values().map(|s| s.pending.len()).sum();
        let worst_retries = self
            .tx_window
            .values()
            .map(|s| s.retries)
            .max()
            .unwrap_or(0);
        let outstanding: u64 = self.outstanding.values().sum();
        let open_gathers = self.gathers.values().filter(|g| g.remaining > 0).count();
        if unacked == 0 && outstanding == 0 && open_gathers == 0 && self.send_queue.is_empty() {
            return None;
        }
        let mut parts = vec![format!(
            "{} tx stream(s) with {unacked} un-ACKed pkt(s), {outstanding} B un-credited, \
             {open_gathers} gather(s) open, {} chunk(s) queued",
            self.tx_window.len(),
            self.send_queue.len(),
        )];
        if worst_retries > 0 {
            parts.push(format!("worst stream at retry {worst_retries}"));
        }
        if let Some(until) = self.dark_until {
            parts.push(format!("datapath dark until {until}"));
        }
        Some(parts.join("; "))
    }
}
