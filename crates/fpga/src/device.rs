//! FPGA devices and bitstream configuration.

use acc_sim::{DataSize, SimDuration};

use crate::ops::{OperatorKind, OperatorSpec};

/// A reconfigurable device with finite logic and memory resources.
#[derive(Clone, Copy, Debug)]
pub struct FpgaDevice {
    /// Part name for reports.
    pub part: &'static str,
    /// Configurable logic blocks available.
    pub clb_capacity: u32,
    /// SRAM/DRAM attached to the FPGA (the "INIC memory" of the
    /// datapath figures).
    pub memory: DataSize,
    /// Full-device configuration (bitstream load) time.
    pub config_time: SimDuration,
}

impl FpgaDevice {
    /// The prototype's Xilinx XC4085XLA: 3,136 CLBs, "limited memory
    /// attached to the FPGAs" (we give the ACEII's banked SRAM ~4 MiB),
    /// and a slow serial configuration port.
    pub fn xc4085xla() -> FpgaDevice {
        FpgaDevice {
            part: "XC4085XLA",
            clb_capacity: 3136,
            memory: DataSize::from_mib(4),
            config_time: SimDuration::from_millis(200),
        }
    }

    /// The "next generation" device the Section 4 analysis assumes: a
    /// Virtex-class part dense enough for the full bucket sorter (up to
    /// 1024 receive buckets for the largest evaluated partitions) and
    /// with enough attached memory for whole partitions.
    pub fn virtex_next_gen() -> FpgaDevice {
        FpgaDevice {
            part: "Virtex-NG",
            clb_capacity: 32768,
            memory: DataSize::from_mib(64),
            config_time: SimDuration::from_millis(60),
        }
    }
}

/// A set of operators to be loaded together.
#[derive(Clone, Debug, Default)]
pub struct Bitstream {
    operators: Vec<OperatorSpec>,
}

/// Why a bitstream cannot be configured.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConfigError {
    /// Total CLB demand exceeds the device.
    InsufficientLogic {
        /// CLBs the bitstream needs.
        required: u32,
        /// CLBs the device has.
        available: u32,
    },
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::InsufficientLogic {
                required,
                available,
            } => write!(
                f,
                "bitstream needs {required} CLBs but device has {available}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl Bitstream {
    /// Empty bitstream.
    pub fn new() -> Bitstream {
        Bitstream::default()
    }

    /// Add an operator (builder style).
    #[must_use]
    pub fn with(mut self, kind: OperatorKind) -> Bitstream {
        self.operators.push(kind.spec());
        self
    }

    /// Total CLB demand.
    pub fn clbs(&self) -> u32 {
        self.operators.iter().map(|o| o.clbs).sum()
    }

    /// The operators in this bitstream.
    pub fn operators(&self) -> &[OperatorSpec] {
        &self.operators
    }

    /// Whether an operator of this kind is present.
    pub fn has(&self, kind: OperatorKind) -> bool {
        self.operators.iter().any(|o| o.kind == kind)
    }

    /// The slowest operator rate — the datapath's streaming bound.
    pub fn min_rate(&self) -> Option<acc_sim::Bandwidth> {
        self.operators
            .iter()
            .map(|o| o.rate)
            .reduce(acc_sim::Bandwidth::min)
    }

    /// Check this bitstream fits `device`.
    pub fn check(&self, device: &FpgaDevice) -> Result<(), ConfigError> {
        let required = self.clbs();
        if required > device.clb_capacity {
            Err(ConfigError::InsufficientLogic {
                required,
                available: device.clb_capacity,
            })
        } else {
            Ok(())
        }
    }

    /// The paper's FFT datapath (Fig. 2(b)): transpose + interleave +
    /// protocol blocks. Fits both device generations.
    pub fn fft_transpose(m: usize) -> Bitstream {
        Bitstream::new()
            .with(OperatorKind::Fifo)
            .with(OperatorKind::LocalTranspose { m })
            .with(OperatorKind::Packetize)
            .with(OperatorKind::Depacketize)
            .with(OperatorKind::InterleaveBlocks { m })
            .with(OperatorKind::Fifo)
    }

    /// The ideal integer-sort datapath (Fig. 3(b)): bucket sort on both
    /// sides with `k` receive buckets.
    pub fn int_sort(p_buckets: usize, k_recv_buckets: usize) -> Bitstream {
        Bitstream::new()
            .with(OperatorKind::Fifo)
            .with(OperatorKind::BucketSort { k: p_buckets })
            .with(OperatorKind::Packetize)
            .with(OperatorKind::Depacketize)
            .with(OperatorKind::BucketSort { k: k_recv_buckets })
            .with(OperatorKind::Fifo)
    }

    /// The AllReduce datapath (collective-operations extension): a
    /// floating-point reduction tree behind the protocol blocks.
    pub fn allreduce() -> Bitstream {
        Bitstream::new()
            .with(OperatorKind::Fifo)
            .with(OperatorKind::Packetize)
            .with(OperatorKind::Depacketize)
            .with(OperatorKind::ReduceSum)
            .with(OperatorKind::Fifo)
    }

    /// The general collective datapath (acc-coll): protocol blocks, a
    /// `p`-way stream router to steer per-destination schedule rounds,
    /// and — only when the schedule folds data on arrival — the
    /// `ReduceSum` accumulator. Sized per invocation so wide fan-outs
    /// and reduction logic are charged against the CLB pool honestly.
    pub fn collective(p_ways: usize, with_reduce: bool) -> Bitstream {
        let bs = Bitstream::new()
            .with(OperatorKind::Fifo)
            .with(OperatorKind::Packetize)
            .with(OperatorKind::StreamRouter {
                ways: p_ways.max(1),
            })
            .with(OperatorKind::Depacketize);
        let bs = if with_reduce {
            bs.with(OperatorKind::ReduceSum)
        } else {
            bs
        };
        bs.with(OperatorKind::Fifo)
    }

    /// The protocol-processor-only datapath.
    pub fn protocol_only() -> Bitstream {
        Bitstream::new()
            .with(OperatorKind::Fifo)
            .with(OperatorKind::Passthrough)
            .with(OperatorKind::Packetize)
            .with(OperatorKind::Depacketize)
            .with(OperatorKind::Fifo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_cannot_hold_full_bucket_sort() {
        // The Section 6 limitation, enforced: 128 receive buckets do not
        // fit the 4085XLA, 16 do.
        let device = FpgaDevice::xc4085xla();
        assert!(Bitstream::int_sort(16, 128).check(&device).is_err());
        assert!(Bitstream::int_sort(16, 16).check(&device).is_ok());
    }

    #[test]
    fn next_gen_holds_full_bucket_sort() {
        let device = FpgaDevice::virtex_next_gen();
        assert!(Bitstream::int_sort(16, 128).check(&device).is_ok());
        assert!(Bitstream::int_sort(16, 256).check(&device).is_ok());
    }

    #[test]
    fn fft_datapath_fits_both_generations() {
        for device in [FpgaDevice::xc4085xla(), FpgaDevice::virtex_next_gen()] {
            for m in [16, 32, 64, 128, 256] {
                assert!(
                    Bitstream::fft_transpose(m).check(&device).is_ok(),
                    "m={m} on {}",
                    device.part
                );
            }
        }
    }

    #[test]
    fn allreduce_fits_both_generations() {
        assert!(Bitstream::allreduce()
            .check(&FpgaDevice::xc4085xla())
            .is_ok());
        assert!(Bitstream::allreduce()
            .check(&FpgaDevice::virtex_next_gen())
            .is_ok());
    }

    #[test]
    fn collective_datapath_fits_the_sweep_but_not_wide_fanouts() {
        let proto = FpgaDevice::xc4085xla();
        for p in [1usize, 2, 4, 8, 16] {
            assert!(
                Bitstream::collective(p, true).check(&proto).is_ok(),
                "p={p} must fit the prototype"
            );
        }
        assert!(Bitstream::collective(128, false).check(&proto).is_err());
        assert!(Bitstream::collective(128, true)
            .check(&FpgaDevice::virtex_next_gen())
            .is_ok());
        // The reduce stage is only synthesized when asked for.
        assert!(Bitstream::collective(4, true).has(OperatorKind::ReduceSum));
        assert!(!Bitstream::collective(4, false).has(OperatorKind::ReduceSum));
    }

    #[test]
    fn config_error_reports_numbers() {
        let device = FpgaDevice::xc4085xla();
        let err = Bitstream::int_sort(16, 512).check(&device).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("3136"), "{msg}");
    }

    #[test]
    fn bitstream_introspection() {
        let bs = Bitstream::fft_transpose(64);
        assert!(bs.has(OperatorKind::LocalTranspose { m: 64 }));
        assert!(!bs.has(OperatorKind::BucketSort { k: 16 }));
        assert!(bs.clbs() > 0);
        let min = bs.min_rate().expect("non-empty");
        assert_eq!(min, acc_sim::Bandwidth::from_mib_per_sec(300));
    }
}
