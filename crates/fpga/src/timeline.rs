//! Serializing resource timelines.
//!
//! Every card resource that moves bytes — a DMA engine, a bus, a MAC
//! port, a transform pipeline — processes one transaction at a time. An
//! [`EngineTimeline`] tracks when the resource next frees up; reserving a
//! transaction returns its `(start, end)` interval. Prototype cards hand
//! *one* timeline to all four traffic directions (the shared-bus
//! bottleneck); ideal cards give each direction its own.

use acc_sim::{Bandwidth, DataSize, SimDuration, SimTime};

/// A FIFO-serializing resource with a fixed transfer rate and a fixed
/// per-transaction overhead.
#[derive(Clone, Debug)]
pub struct EngineTimeline {
    rate: Bandwidth,
    per_txn_overhead: SimDuration,
    free_at: SimTime,
    busy_time: SimDuration,
    bytes: u64,
}

impl EngineTimeline {
    /// New idle engine.
    pub fn new(rate: Bandwidth, per_txn_overhead: SimDuration) -> EngineTimeline {
        EngineTimeline {
            rate,
            per_txn_overhead,
            free_at: SimTime::ZERO,
            busy_time: SimDuration::ZERO,
            bytes: 0,
        }
    }

    /// Reserve a transaction of `bytes` starting no earlier than `now`.
    /// Returns the completion instant.
    pub fn reserve(&mut self, now: SimTime, bytes: DataSize) -> SimTime {
        let start = if self.free_at > now {
            self.free_at
        } else {
            now
        };
        let dur = self.per_txn_overhead + self.rate.transfer_time(bytes);
        self.free_at = start + dur;
        self.busy_time += dur;
        self.bytes += bytes.bytes();
        self.free_at
    }

    /// The instant the engine next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Cumulative busy time (utilisation reporting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Total bytes moved.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes
    }

    /// Nominal rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_reservations_serialize() {
        let mut e = EngineTimeline::new(Bandwidth::from_mib_per_sec(80), SimDuration::ZERO);
        let t0 = SimTime::ZERO;
        let end1 = e.reserve(t0, DataSize::from_mib(80));
        assert_eq!(end1, t0 + SimDuration::from_secs(1));
        // Second reservation at t0 queues behind the first.
        let end2 = e.reserve(t0, DataSize::from_mib(80));
        assert_eq!(end2, t0 + SimDuration::from_secs(2));
    }

    #[test]
    fn idle_gap_is_not_charged() {
        let mut e = EngineTimeline::new(Bandwidth::from_mib_per_sec(10), SimDuration::ZERO);
        e.reserve(SimTime::ZERO, DataSize::from_mib(10));
        // Next request arrives after a 5 s gap; starts immediately.
        let late = SimTime::ZERO + SimDuration::from_secs(5);
        let end = e.reserve(late, DataSize::from_mib(10));
        assert_eq!(end, late + SimDuration::from_secs(1));
        assert_eq!(e.busy_time(), SimDuration::from_secs(2));
    }

    #[test]
    fn per_txn_overhead_accumulates() {
        let mut e =
            EngineTimeline::new(Bandwidth::from_mib_per_sec(1), SimDuration::from_micros(10));
        for _ in 0..5 {
            e.reserve(SimTime::ZERO, DataSize::from_bytes(0));
        }
        assert_eq!(e.free_at(), SimTime::ZERO + SimDuration::from_micros(50));
    }

    #[test]
    fn counters_track_bytes() {
        let mut e = EngineTimeline::new(Bandwidth::from_mib_per_sec(1), SimDuration::ZERO);
        e.reserve(SimTime::ZERO, DataSize::from_kib(3));
        e.reserve(SimTime::ZERO, DataSize::from_kib(5));
        assert_eq!(e.bytes_moved(), 8 * 1024);
    }
}
