//! Randomized invariant tests for the card resource timelines:
//! serialization, work conservation, and monotonicity — the invariants
//! every INIC timing number rests on.

use acc_fpga::EngineTimeline;
use acc_sim::{Bandwidth, DataSize, SimDuration, SimRng, SimTime};

#[test]
fn reservations_never_overlap_and_conserve_work() {
    let mut g = SimRng::seed_from(0xC1);
    for _ in 0..128 {
        let count = 1 + g.gen_range(39) as usize;
        let sizes: Vec<u64> = (0..count).map(|_| 1 + g.gen_range((1 << 20) - 1)).collect();
        let rate_mib = 1 + g.gen_range(999);
        let overhead_us = g.gen_range(10);
        let mut e = EngineTimeline::new(
            Bandwidth::from_mib_per_sec(rate_mib),
            SimDuration::from_micros(overhead_us),
        );
        let mut prev_end = SimTime::ZERO;
        let mut total_bytes = 0u64;
        for &s in &sizes {
            let end = e.reserve(SimTime::ZERO, DataSize::from_bytes(s));
            // Strictly serialized: each transaction ends after the last.
            assert!(end > prev_end);
            prev_end = end;
            total_bytes += s;
        }
        assert_eq!(e.bytes_moved(), total_bytes);
        // Work conservation: busy time equals the final end when every
        // request was issued at t=0 (no idle gaps possible).
        assert_eq!(e.busy_time().as_ps(), prev_end.as_ps());
        assert_eq!(e.free_at(), prev_end);
    }
}

#[test]
fn later_arrivals_never_finish_earlier() {
    let mut g = SimRng::seed_from(0xC2);
    for _ in 0..128 {
        let a = 1 + g.gen_range((1 << 16) - 1);
        let b = 1 + g.gen_range((1 << 16) - 1);
        let gap_ns = g.gen_range(1_000_000);
        let mk = || EngineTimeline::new(Bandwidth::from_mib_per_sec(90), SimDuration::ZERO);
        // Same two transactions, second arriving later, can only end
        // later (or equal, once the gap exceeds the first's duration).
        let mut early = mk();
        early.reserve(SimTime::ZERO, DataSize::from_bytes(a));
        let end_early = early.reserve(SimTime::ZERO, DataSize::from_bytes(b));
        let mut late = mk();
        late.reserve(SimTime::ZERO, DataSize::from_bytes(a));
        let arrive = SimTime::ZERO + SimDuration::from_nanos(gap_ns);
        let end_late = late.reserve(arrive, DataSize::from_bytes(b));
        assert!(end_late >= end_early);
    }
}

#[test]
fn idle_engine_latency_is_exactly_the_transfer_time() {
    let mut g = SimRng::seed_from(0xC3);
    for _ in 0..128 {
        let bytes = 1 + g.gen_range((1 << 24) - 1);
        let rate_mib = 1 + g.gen_range(1999);
        let rate = Bandwidth::from_mib_per_sec(rate_mib);
        let mut e = EngineTimeline::new(rate, SimDuration::ZERO);
        let start = SimTime::ZERO + SimDuration::from_millis(5);
        let end = e.reserve(start, DataSize::from_bytes(bytes));
        assert_eq!(
            end.since(start),
            rate.transfer_time(DataSize::from_bytes(bytes))
        );
    }
}
