//! Property tests for the card resource timelines: serialization,
//! work conservation, and monotonicity — the invariants every INIC
//! timing number rests on.

use proptest::prelude::*;

use acc_fpga::EngineTimeline;
use acc_sim::{Bandwidth, DataSize, SimDuration, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn reservations_never_overlap_and_conserve_work(
        sizes in prop::collection::vec(1u64..1 << 20, 1..40),
        rate_mib in 1u64..1000,
        overhead_us in 0u64..10,
    ) {
        let mut e = EngineTimeline::new(
            Bandwidth::from_mib_per_sec(rate_mib),
            SimDuration::from_micros(overhead_us),
        );
        let mut prev_end = SimTime::ZERO;
        let mut total_bytes = 0u64;
        for &s in &sizes {
            let end = e.reserve(SimTime::ZERO, DataSize::from_bytes(s));
            // Strictly serialized: each transaction ends after the last.
            prop_assert!(end > prev_end);
            prev_end = end;
            total_bytes += s;
        }
        prop_assert_eq!(e.bytes_moved(), total_bytes);
        // Work conservation: busy time equals the final end when every
        // request was issued at t=0 (no idle gaps possible).
        prop_assert_eq!(e.busy_time().as_ps(), prev_end.as_ps());
        prop_assert_eq!(e.free_at(), prev_end);
    }

    #[test]
    fn later_arrivals_never_finish_earlier(
        a in 1u64..1 << 16,
        b in 1u64..1 << 16,
        gap_ns in 0u64..1_000_000,
    ) {
        let mk = || EngineTimeline::new(
            Bandwidth::from_mib_per_sec(90),
            SimDuration::ZERO,
        );
        // Same two transactions, second arriving later, can only end
        // later (or equal, once the gap exceeds the first's duration).
        let mut early = mk();
        early.reserve(SimTime::ZERO, DataSize::from_bytes(a));
        let end_early = early.reserve(SimTime::ZERO, DataSize::from_bytes(b));
        let mut late = mk();
        late.reserve(SimTime::ZERO, DataSize::from_bytes(a));
        let arrive = SimTime::ZERO + SimDuration::from_nanos(gap_ns);
        let end_late = late.reserve(arrive, DataSize::from_bytes(b));
        prop_assert!(end_late >= end_early);
    }

    #[test]
    fn idle_engine_latency_is_exactly_the_transfer_time(
        bytes in 1u64..1 << 24,
        rate_mib in 1u64..2000,
    ) {
        let rate = Bandwidth::from_mib_per_sec(rate_mib);
        let mut e = EngineTimeline::new(rate, SimDuration::ZERO);
        let start = SimTime::ZERO + SimDuration::from_millis(5);
        let end = e.reserve(start, DataSize::from_bytes(bytes));
        prop_assert_eq!(
            end.since(start),
            rate.transfer_time(DataSize::from_bytes(bytes))
        );
    }
}
