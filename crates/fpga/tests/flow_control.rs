//! Credit-based flow control under incast: every card blasts one hot
//! receiver at once. Without credits the switch's output buffer would
//! overflow and (since the INIC protocol has no retransmission) the
//! collective would deadlock; with credits it completes with zero
//! drops.

use std::any::Any;

use acc_fpga::{
    Bitstream, CardPorts, FpgaDevice, GatherKind, InicCard, InicConfigure, InicConfigured,
    InicExpect, InicGatherComplete, InicScatter, InicScatterDone, ScatterKind,
};
use acc_net::port::EgressPort;
use acc_net::{EthernetKind, LinkParams, MacAddr, Switch, SwitchParams};
use acc_sim::{Component, ComponentId, Ctx, SimTime, Simulation};

/// Driver that sends its whole buffer to rank 0 (raw), and on rank 0
/// expects one stream from every other rank.
struct IncastDriver {
    card: ComponentId,
    rank: u32,
    p: usize,
    macs: Vec<MacAddr>,
    payload: usize,
    received: Option<Vec<u8>>,
}

impl Component for IncastDriver {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            ctx.send_now(
                self.card,
                InicConfigure {
                    bitstream: Bitstream::protocol_only(),
                },
            );
            return;
        }
        let ev = match ev.downcast::<InicConfigured>() {
            Err(ev) => ev,
            Ok(cfg) => {
                cfg.result.expect("fits");
                if self.rank == 0 {
                    ctx.send_now(
                        self.card,
                        InicExpect {
                            stream: 1,
                            kind: GatherKind::Raw,
                            sources: (1..self.p as u32).map(|s| (s, None)).collect(),
                        },
                    );
                } else {
                    // All data to rank 0; empty parts elsewhere.
                    let mut parts = vec![0usize; self.p];
                    parts[0] = self.payload;
                    let mut data = vec![0u8; self.payload];
                    for (i, b) in data.iter_mut().enumerate() {
                        *b = (i as u8).wrapping_mul(self.rank as u8);
                    }
                    // Ring order starting at own rank: rank 0's part is
                    // somewhere inside; build accordingly (all other
                    // parts are zero-length, so the data is just the
                    // rank-0 part).
                    ctx.send_now(
                        self.card,
                        InicScatter {
                            stream: 1,
                            kind: ScatterKind::Raw { parts },
                            data,
                            dests: self.macs.clone(),
                        },
                    );
                }
                return;
            }
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Err(ev) => ev,
            Ok(done) => {
                assert_eq!(self.rank, 0, "only rank 0 gathers");
                self.received = Some(done.data);
                return;
            }
        };
        if ev.downcast_ref::<InicScatterDone>().is_some() {
            return;
        }
        panic!("incast driver: unexpected event");
    }
    fn name(&self) -> &str {
        "incast"
    }
}

#[test]
fn incast_completes_with_zero_drops_under_credit_flow_control() {
    // 8 senders × 256 KiB at one receiver: 2 MiB of simultaneous demand
    // against a 512 KiB switch output buffer. Credits must pace it.
    let p = 9usize;
    let payload = 256 * 1024;
    let mut sim = Simulation::new(3);
    let link = LinkParams::for_kind(EthernetKind::Gigabit);
    let macs: Vec<MacAddr> = (0..p).map(|i| MacAddr::for_node(i, 2)).collect();
    let drivers: Vec<ComponentId> = (0..p).map(|_| sim.reserve_id()).collect();
    let cards: Vec<ComponentId> = (0..p).map(|_| sim.reserve_id()).collect();
    let switch_id = sim.reserve_id();
    let mut switch = Switch::new("sw", SwitchParams::default());
    for i in 0..p {
        let sw_port = switch.attach(macs[i], cards[i], 0, link);
        let uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_id,
            sw_port,
            0,
        );
        sim.register(
            cards[i],
            InicCard::new(
                format!("inic{i}"),
                i as u32,
                macs[i],
                drivers[i],
                uplink,
                FpgaDevice::virtex_next_gen(),
                CardPorts::ideal(),
            ),
        );
        sim.register(
            drivers[i],
            IncastDriver {
                card: cards[i],
                rank: i as u32,
                p,
                macs: macs.clone(),
                payload,
                received: None,
            },
        );
        sim.schedule_at(SimTime::ZERO, drivers[i], ());
    }
    sim.register(switch_id, switch);
    sim.run();

    let received = sim
        .component::<IncastDriver>(drivers[0])
        .received
        .as_ref()
        .expect("incast gather must complete — credit flow control failed");
    assert_eq!(received.len(), (p - 1) * payload, "all bytes delivered");
    assert_eq!(
        sim.component::<Switch>(switch_id).total_drops(),
        0,
        "credits must keep the hot output queue within its buffer"
    );
}

#[test]
fn balanced_all_to_all_pays_no_measurable_credit_cost() {
    // Credits exist for the pathological case; the balanced case (the
    // paper's premise) must not stall: the all-to-all transpose test in
    // card_behaviour.rs covers functionality, here we check the switch
    // stayed loss-free and the cards never emitted into a full uplink.
    struct Balanced {
        card: ComponentId,
        rank: u32,
        p: usize,
        macs: Vec<MacAddr>,
        part: usize,
        done: bool,
    }
    impl Component for Balanced {
        fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
            if ev.downcast_ref::<()>().is_some() {
                ctx.send_now(
                    self.card,
                    InicConfigure {
                        bitstream: Bitstream::protocol_only(),
                    },
                );
                return;
            }
            let ev = match ev.downcast::<InicConfigured>() {
                Err(ev) => ev,
                Ok(_) => {
                    ctx.send_now(
                        self.card,
                        InicExpect {
                            stream: 1,
                            kind: GatherKind::Raw,
                            sources: (0..self.p as u32)
                                .filter(|&s| s != self.rank)
                                .map(|s| (s, Some(self.part)))
                                .collect(),
                        },
                    );
                    let parts: Vec<usize> = (0..self.p)
                        .map(|q| {
                            if q == self.rank as usize {
                                0
                            } else {
                                self.part
                            }
                        })
                        .collect();
                    let data = vec![self.rank as u8; self.part * (self.p - 1)];
                    ctx.send_now(
                        self.card,
                        InicScatter {
                            stream: 1,
                            kind: ScatterKind::Raw { parts },
                            data,
                            dests: self.macs.clone(),
                        },
                    );
                    return;
                }
            };
            let ev = match ev.downcast::<InicGatherComplete>() {
                Err(ev) => ev,
                Ok(g) => {
                    assert_eq!(g.data.len(), self.part * (self.p - 1));
                    self.done = true;
                    return;
                }
            };
            if ev.downcast_ref::<InicScatterDone>().is_some() {
                return;
            }
            panic!("balanced driver: unexpected event");
        }
        fn name(&self) -> &str {
            "balanced"
        }
    }

    let p = 8usize;
    let part = 64 * 1024;
    let mut sim = Simulation::new(9);
    let link = LinkParams::for_kind(EthernetKind::Gigabit);
    let macs: Vec<MacAddr> = (0..p).map(|i| MacAddr::for_node(i, 2)).collect();
    let drivers: Vec<ComponentId> = (0..p).map(|_| sim.reserve_id()).collect();
    let cards: Vec<ComponentId> = (0..p).map(|_| sim.reserve_id()).collect();
    let switch_id = sim.reserve_id();
    let mut switch = Switch::new("sw", SwitchParams::default());
    for i in 0..p {
        let sw_port = switch.attach(macs[i], cards[i], 0, link);
        let uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_id,
            sw_port,
            0,
        );
        sim.register(
            cards[i],
            InicCard::new(
                format!("inic{i}"),
                i as u32,
                macs[i],
                drivers[i],
                uplink,
                FpgaDevice::virtex_next_gen(),
                CardPorts::ideal(),
            ),
        );
        sim.register(
            drivers[i],
            Balanced {
                card: cards[i],
                rank: i as u32,
                p,
                macs: macs.clone(),
                part,
                done: false,
            },
        );
        sim.schedule_at(SimTime::ZERO, drivers[i], ());
    }
    sim.register(switch_id, switch);
    sim.run();
    for (i, &d) in drivers.iter().enumerate() {
        assert!(sim.component::<Balanced>(d).done, "rank {i} incomplete");
    }
    assert_eq!(sim.component::<Switch>(switch_id).total_drops(), 0);
}
