//! End-to-end INIC card tests: an all-to-all transpose and a bucket-sort
//! redistribution across a simulated switch, with functional results
//! checked against the host-side oracles and timing invariants checked
//! between the ideal and prototype card generations.

use std::any::Any;

use acc_algos::fft::Matrix;
use acc_algos::sort::{bucket_index, bytes_to_keys, destination_rank, keys_to_bytes};
use acc_algos::transpose::{
    bytes_to_slab, distributed_transpose, join_row_blocks, slab_to_bytes, split_row_blocks,
};
use acc_algos::workload::{random_matrix, uniform_keys};
use acc_fpga::{
    Bitstream, CardPorts, FpgaDevice, GatherKind, InicCard, InicConfigure, InicConfigured,
    InicExpect, InicGatherComplete, InicScatter, ScatterKind,
};
use acc_net::port::EgressPort;
use acc_net::{EthernetKind, LinkParams, MacAddr, Switch, SwitchParams};
use acc_sim::{Component, ComponentId, Ctx, SimTime, Simulation};

/// What the driver should run after configuration completes.
#[derive(Clone)]
enum Plan {
    Transpose { slab: Vec<u8>, m: usize },
    Sort { keys: Vec<u8> },
}

/// Minimal per-node driver: configure → expect + scatter → record result.
struct Driver {
    card: ComponentId,
    rank: u32,
    p: usize,
    macs: Vec<MacAddr>,
    plan: Plan,
    bitstream: Bitstream,
    result: Option<(SimTime, Vec<u8>, Option<Vec<usize>>)>,
}

impl Component for Driver {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            ctx.send_now(
                self.card,
                InicConfigure {
                    bitstream: self.bitstream.clone(),
                },
            );
            return;
        }
        let ev = match ev.downcast::<InicConfigured>() {
            Err(ev) => ev,
            Ok(cfg) => {
                cfg.result.expect("bitstream must fit device");
                match &self.plan {
                    Plan::Transpose { slab, m } => {
                        let total = m * m * 16;
                        ctx.send_now(
                            self.card,
                            InicExpect {
                                stream: 1,
                                kind: GatherKind::InterleaveBlocks {
                                    m: *m,
                                    rows: m * self.p,
                                },
                                sources: (0..self.p as u32).map(|s| (s, Some(total))).collect(),
                            },
                        );
                        ctx.send_now(
                            self.card,
                            InicScatter {
                                stream: 1,
                                kind: ScatterKind::TransposeBlocks { m: *m },
                                data: slab.clone(),
                                dests: self.macs.clone(),
                            },
                        );
                    }
                    Plan::Sort { keys } => {
                        ctx.send_now(
                            self.card,
                            InicExpect {
                                stream: 1,
                                kind: GatherKind::BucketKeys { k: 16 },
                                sources: (0..self.p as u32).map(|s| (s, None)).collect(),
                            },
                        );
                        ctx.send_now(
                            self.card,
                            InicScatter {
                                stream: 1,
                                kind: ScatterKind::BucketKeys {
                                    p: self.p,
                                    splitters: None,
                                },
                                data: keys.clone(),
                                dests: self.macs.clone(),
                            },
                        );
                    }
                }
                return;
            }
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Err(ev) => ev,
            Ok(done) => {
                assert!(
                    self.result.is_none(),
                    "rank {} double completion",
                    self.rank
                );
                self.result = Some((ctx.now(), done.data, done.bucket_bounds));
                return;
            }
        };
        if ev.downcast_ref::<acc_fpga::InicScatterDone>().is_some() {
            // Send side finished; nothing to track here.
            return;
        }
        panic!("driver: unexpected event");
    }
    fn name(&self) -> &str {
        "driver"
    }
}

fn build_cluster(
    p: usize,
    ports: impl Fn() -> CardPorts,
    device: FpgaDevice,
    bitstream: Bitstream,
    plan: impl Fn(usize) -> Plan,
) -> (Simulation, Vec<ComponentId>) {
    let mut sim = Simulation::new(11);
    let link = LinkParams::for_kind(EthernetKind::Gigabit);
    let macs: Vec<MacAddr> = (0..p).map(|i| MacAddr::for_node(i, 1)).collect();
    let driver_ids: Vec<ComponentId> = (0..p).map(|_| sim.reserve_id()).collect();
    let card_ids: Vec<ComponentId> = (0..p).map(|_| sim.reserve_id()).collect();
    let switch_id = sim.reserve_id();
    let mut switch = Switch::new("sw", SwitchParams::default());
    for i in 0..p {
        let sw_port = switch.attach(macs[i], card_ids[i], 0, link);
        let uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_id,
            sw_port,
            0,
        );
        sim.register(
            card_ids[i],
            InicCard::new(
                format!("inic{i}"),
                i as u32,
                macs[i],
                driver_ids[i],
                uplink,
                device,
                ports(),
            ),
        );
        sim.register(
            driver_ids[i],
            Driver {
                card: card_ids[i],
                rank: i as u32,
                p,
                macs: macs.clone(),
                plan: plan(i),
                bitstream: bitstream.clone(),
                result: None,
            },
        );
        sim.schedule_at(SimTime::ZERO, driver_ids[i], ());
    }
    sim.register(switch_id, switch);
    (sim, driver_ids)
}

fn run_transpose(
    p: usize,
    n: usize,
    ports: fn() -> CardPorts,
    device: FpgaDevice,
) -> (Vec<Matrix>, SimTime) {
    let m = n / p;
    let matrix = random_matrix(n, 42);
    let slabs = split_row_blocks(&matrix, p);
    let (mut sim, drivers) = build_cluster(p, ports, device, Bitstream::fft_transpose(m), |i| {
        Plan::Transpose {
            slab: slab_to_bytes(&slabs[i]),
            m,
        }
    });
    sim.run();
    let mut out = Vec::new();
    let mut finish = SimTime::ZERO;
    for &d in &drivers {
        let (t, bytes, bounds) = sim
            .component::<Driver>(d)
            .result
            .as_ref()
            .expect("gather completed");
        assert!(bounds.is_none());
        out.push(bytes_to_slab(bytes, m, n));
        if *t > finish {
            finish = *t;
        }
    }
    (out, finish)
}

#[test]
fn inic_transpose_produces_the_transposed_matrix() {
    for (p, n) in [(2usize, 32usize), (4, 32), (4, 64), (8, 64)] {
        let (slabs, _) = run_transpose(p, n, CardPorts::ideal, FpgaDevice::virtex_next_gen());
        let got = join_row_blocks(&slabs);
        let expect = join_row_blocks(&distributed_transpose(&split_row_blocks(
            &random_matrix(n, 42),
            p,
        )));
        assert_eq!(got, expect, "P={p} n={n}");
    }
}

#[test]
fn single_node_transpose_loops_back_locally() {
    let (slabs, _) = run_transpose(1, 16, CardPorts::ideal, FpgaDevice::virtex_next_gen());
    assert_eq!(
        slabs[0],
        random_matrix(16, 42).transposed(),
        "P=1 must equal the serial transpose"
    );
}

#[test]
fn prototype_transpose_is_correct_but_slower() {
    let p = 4;
    let n = 64;
    let (ideal_slabs, t_ideal) =
        run_transpose(p, n, CardPorts::ideal, FpgaDevice::virtex_next_gen());
    let (proto_slabs, t_proto) = run_transpose(p, n, CardPorts::aceii, FpgaDevice::xc4085xla());
    assert_eq!(join_row_blocks(&ideal_slabs), join_row_blocks(&proto_slabs));
    // Both pay the same configuration latency; the shared bus must make
    // the prototype's data phase strictly slower.
    let cfg_ideal = FpgaDevice::virtex_next_gen().config_time;
    let cfg_proto = FpgaDevice::xc4085xla().config_time;
    let data_ideal = t_ideal.since(SimTime::ZERO + cfg_ideal);
    let data_proto = t_proto.since(SimTime::ZERO + cfg_proto);
    assert!(
        data_proto > data_ideal,
        "prototype {data_proto} should be slower than ideal {data_ideal}"
    );
}

#[test]
fn inic_sort_scatter_routes_every_key_to_its_rank() {
    let p = 4;
    let n_per = 20_000;
    let inputs: Vec<Vec<u32>> = (0..p)
        .map(|i| uniform_keys(n_per, 100 + i as u64))
        .collect();
    let inputs_clone = inputs.clone();
    let (mut sim, drivers) = build_cluster(
        p,
        CardPorts::ideal,
        FpgaDevice::virtex_next_gen(),
        Bitstream::int_sort(16, 16),
        |i| Plan::Sort {
            keys: keys_to_bytes(&inputs_clone[i]),
        },
    );
    sim.run();
    let mut received_total = 0usize;
    for (rank, &d) in drivers.iter().enumerate() {
        let (_, bytes, bounds) = sim
            .component::<Driver>(d)
            .result
            .as_ref()
            .expect("gather completed");
        let keys = bytes_to_keys(bytes);
        received_total += keys.len();
        // Every key this rank received belongs to this rank.
        for &k in &keys {
            assert_eq!(destination_rank(k, p), rank, "stray key {k:#x}");
        }
        // Bucket bounds are consistent: keys within each card bucket
        // share the card-bucket index.
        let bounds = bounds.as_ref().expect("bucket gather has bounds");
        assert_eq!(bounds.len(), 16);
        let mut start = 0usize;
        for (b, &end) in bounds.iter().enumerate() {
            for &k in &keys[start / 4..end / 4] {
                assert_eq!(bucket_index(k, 16), b);
            }
            start = end;
        }
        // Multiset check: the keys this rank received are exactly the
        // keys every node's input destined for it.
        let mut got = keys.clone();
        got.sort_unstable();
        let mut expect: Vec<u32> = inputs
            .iter()
            .flatten()
            .copied()
            .filter(|&k| destination_rank(k, p) == rank)
            .collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "rank {rank} key multiset mismatch");
    }
    assert_eq!(received_total, p * n_per, "keys lost or duplicated");
}

#[test]
fn completion_raises_single_interrupt_per_gather() {
    let p = 4;
    let n = 32;
    let m = n / p;
    let matrix = random_matrix(n, 5);
    let slabs = split_row_blocks(&matrix, p);
    let (mut sim, _) = build_cluster(
        p,
        CardPorts::ideal,
        FpgaDevice::virtex_next_gen(),
        Bitstream::fft_transpose(m),
        |i| Plan::Transpose {
            slab: slab_to_bytes(&slabs[i]),
            m,
        },
    );
    sim.run();
    // Card ids were reserved after driver ids: p..2p.
    for i in 0..p {
        let card = sim.component::<InicCard>(acc_sim::ComponentId::from_raw(p + i));
        assert_eq!(
            card.interrupts_raised(),
            1,
            "card {i}: exactly one completion interrupt per transpose"
        );
    }
}

#[test]
fn oversized_bitstream_is_rejected_via_event() {
    // A 128-bucket sorter on the prototype device must come back Err.
    struct CfgApp {
        card: ComponentId,
        outcome: Option<Result<(), acc_fpga::ConfigError>>,
    }
    impl Component for CfgApp {
        fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
            if ev.downcast_ref::<()>().is_some() {
                ctx.send_now(
                    self.card,
                    InicConfigure {
                        bitstream: Bitstream::int_sort(16, 128),
                    },
                );
            } else if let Ok(cfg) = ev.downcast::<InicConfigured>() {
                self.outcome = Some(cfg.result);
            } else {
                panic!("unexpected event");
            }
        }
        fn name(&self) -> &str {
            "cfg-app"
        }
    }
    let mut sim = Simulation::new(0);
    let app_id = sim.reserve_id();
    let card_id = sim.reserve_id();
    let switch_id = sim.reserve_id();
    let link = LinkParams::for_kind(EthernetKind::Gigabit);
    let mut switch = Switch::new("sw", SwitchParams::default());
    let mac = MacAddr::for_node(0, 1);
    let sw_port = switch.attach(mac, card_id, 0, link);
    let uplink = EgressPort::new(
        link.rate,
        link.prop_delay,
        acc_net::presets::NIC_BUFFER,
        switch_id,
        sw_port,
        0,
    );
    sim.register(
        card_id,
        InicCard::new(
            "inic0",
            0,
            mac,
            app_id,
            uplink,
            FpgaDevice::xc4085xla(),
            CardPorts::aceii(),
        ),
    );
    sim.register(switch_id, switch);
    sim.register(
        app_id,
        CfgApp {
            card: card_id,
            outcome: None,
        },
    );
    sim.schedule_at(SimTime::ZERO, app_id, ());
    sim.run();
    let outcome = sim
        .component::<CfgApp>(app_id)
        .outcome
        .expect("configuration reply");
    assert!(
        outcome.is_err(),
        "4085XLA must reject the 128-bucket sorter"
    );
}
