//! Congestion-control behaviour tests: slow-start restart after idle
//! (the short-message pathology's enabler) and RTO-driven recovery
//! under sustained loss.

use std::any::Any;
use std::collections::HashMap;

use acc_host::{InterruptCosts, ModerationPolicy};
use acc_net::port::EgressPort;
use acc_net::{LinkParams, MacAddr, Switch, SwitchParams};
use acc_proto::{HostPathCosts, TcpDelivered, TcpHostNic, TcpParams, TcpSend};
use acc_sim::{Component, ComponentId, Ctx, DataSize, SimDuration, SimTime, Simulation};

/// App that sends a sequence of (delay-from-start, message) pairs and
/// records when each byte total is reached.
struct ScriptedApp {
    nic: ComponentId,
    script: Vec<(SimDuration, TcpSend)>,
    received: HashMap<(MacAddr, u16), Vec<u8>>,
    milestones: Vec<(usize, SimTime)>,
    total: usize,
}

/// Fire one scripted send.
struct Fire(usize);

impl Component for ScriptedApp {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            for (i, (delay, _)) in self.script.iter().enumerate() {
                ctx.self_in(*delay, Fire(i));
            }
            return;
        }
        if let Some(&Fire(i)) = ev.downcast_ref::<Fire>() {
            let (_, send) = &self.script[i];
            ctx.send_now(
                self.nic,
                TcpSend {
                    peer: send.peer,
                    chan: send.chan,
                    data: send.data.clone(),
                },
            );
            return;
        }
        if let Ok(d) = ev.downcast::<TcpDelivered>() {
            self.total += d.data.len();
            self.milestones.push((self.total, ctx.now()));
            self.received
                .entry((d.peer, d.chan))
                .or_default()
                .extend_from_slice(&d.data);
            return;
        }
        panic!("scripted app: unexpected event");
    }
    fn name(&self) -> &str {
        "scripted"
    }
}

#[allow(clippy::type_complexity)]
fn build_pair(
    script: Vec<(SimDuration, TcpSend)>,
    sw: SwitchParams,
    kinds: [acc_net::EthernetKind; 2],
) -> (Simulation, [ComponentId; 2], [ComponentId; 2]) {
    let mut sim = Simulation::new(21);
    let macs = [MacAddr::for_node(0, 0), MacAddr::for_node(1, 0)];
    let apps = [sim.reserve_id(), sim.reserve_id()];
    let nics = [sim.reserve_id(), sim.reserve_id()];
    let switch_id = sim.reserve_id();
    let mut switch = Switch::new("sw", sw);
    for i in 0..2 {
        let link = LinkParams::for_kind(kinds[i]);
        let sw_port = switch.attach(macs[i], nics[i], 0, link);
        let uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_id,
            sw_port,
            0,
        );
        sim.register(
            nics[i],
            TcpHostNic::new(
                format!("tcp{i}"),
                macs[i],
                apps[i],
                uplink,
                TcpParams::default(),
                HostPathCosts::athlon_pci(),
                InterruptCosts::athlon_linux24(),
                ModerationPolicy::syskonnect_default(),
            ),
        );
        sim.register(
            apps[i],
            ScriptedApp {
                nic: nics[i],
                script: if i == 0 {
                    std::mem::take(&mut vec![])
                } else {
                    vec![]
                },
                received: HashMap::new(),
                milestones: Vec::new(),
                total: 0,
            },
        );
    }
    // Install the script on app 0 (two-phase construction keeps the
    // closure-free builder simple).
    sim.component_mut::<ScriptedApp>(apps[0]).script = script;
    sim.register(switch_id, switch);
    sim.schedule_at(SimTime::ZERO, apps[0], ());
    (sim, apps, nics)
}

fn burst(peer: MacAddr, bytes: usize) -> TcpSend {
    TcpSend {
        peer,
        chan: 1,
        data: vec![0x5A; bytes],
    }
}

#[test]
fn idle_restart_resets_the_congestion_window() {
    // Two identical 64 KiB bursts. Back-to-back, the second rides the
    // opened window and finishes much faster; separated by more than an
    // RTO of idle time, slow-start restart makes it as slow as the
    // first.
    let peer = MacAddr::for_node(1, 0);
    let size = 64 * 1024;

    let run = |gap: SimDuration| -> (f64, f64) {
        let script = vec![
            (SimDuration::ZERO, burst(peer, size)),
            (gap, burst(peer, size)),
        ];
        let (mut sim, apps, _) = build_pair(
            script,
            SwitchParams::default(),
            [acc_net::EthernetKind::Gigabit; 2],
        );
        sim.run();
        let ms = &sim.component::<ScriptedApp>(apps[1]).milestones;
        let t_first = ms
            .iter()
            .find(|&&(total, _)| total >= size)
            .expect("first burst delivered")
            .1;
        let t_second = ms
            .iter()
            .find(|&&(total, _)| total >= 2 * size)
            .expect("second burst delivered")
            .1;
        (
            t_first.as_secs_f64(),
            t_second.as_secs_f64() - gap.as_secs_f64().max(t_first.as_secs_f64()),
        )
    };

    // Short gap (cwnd stays open): second burst well faster than first.
    let short_gap = SimDuration::from_millis(20);
    let (first_warm, second_warm) = run(short_gap);
    assert!(
        second_warm < 0.7 * first_warm,
        "warm window should be faster: first {first_warm:.6}s second {second_warm:.6}s"
    );

    // Long gap (> initial RTO 1 s): slow start restarts; the second
    // burst takes about as long as the first again.
    let long_gap = SimDuration::from_secs(2);
    let (first_cold, second_cold) = run(long_gap);
    assert!(
        second_cold > 0.8 * first_cold,
        "idle restart missing: first {first_cold:.6}s second {second_cold:.6}s"
    );
}

#[test]
fn sustained_loss_recovers_through_rto_and_all_bytes_arrive() {
    // A rate mismatch (Gigabit sender into a Fast Ethernet receiver
    // port) with a tiny switch buffer forces repeated drops; the stream
    // must still complete, with visible retransmission activity.
    let peer = MacAddr::for_node(1, 0);
    let size = 300_000;
    let sw = SwitchParams {
        port_buffer: DataSize::from_bytes(4500), // ~3 segments
        ..SwitchParams::default()
    };
    let script = vec![(SimDuration::ZERO, burst(peer, size))];
    let (mut sim, apps, nics) = build_pair(
        script,
        sw,
        [acc_net::EthernetKind::Gigabit, acc_net::EthernetKind::Fast],
    );
    sim.run();
    let got = &sim.component::<ScriptedApp>(apps[1]).received[&(MacAddr::for_node(0, 0), 1)];
    assert_eq!(got.len(), size, "stream incomplete under loss");
    assert!(got.iter().all(|&b| b == 0x5A));
    let sender = sim.component::<TcpHostNic>(nics[0]);
    assert!(sender.retransmits() > 0, "loss must force retransmissions");
    // With a 3-segment buffer, windows beyond ~4 segments always
    // overflow, so timeouts (not just fast retransmit) must appear.
    assert!(sender.rto_fires() > 0, "expected RTO-driven recovery");
}

#[test]
fn rto_backoff_grows_under_repeated_timeouts() {
    // Same pathological buffer; the total time must reflect exponential
    // backoff (not a livelock of instant retransmissions).
    let peer = MacAddr::for_node(1, 0);
    let size = 100_000;
    let sw = SwitchParams {
        port_buffer: DataSize::from_bytes(4500),
        ..SwitchParams::default()
    };
    let script = vec![(SimDuration::ZERO, burst(peer, size))];
    let (mut sim, apps, nics) = build_pair(
        script,
        sw,
        [acc_net::EthernetKind::Gigabit, acc_net::EthernetKind::Fast],
    );
    sim.run();
    let done = sim
        .component::<ScriptedApp>(apps[1])
        .milestones
        .last()
        .expect("delivered")
        .1;
    let rto_fires = sim.component::<TcpHostNic>(nics[0]).rto_fires();
    // Every RTO waits at least the 200 ms floor.
    assert!(
        done.as_secs_f64() >= 0.2 * rto_fires.min(3) as f64,
        "completion {done} too fast for {rto_fires} timeouts"
    );
}
