//! End-to-end behaviour tests for the TCP model over the simulated
//! Ethernet fabric: correctness of the byte stream, bulk goodput in the
//! calibrated range, the short-message/moderation pathology, slow-start
//! ramping, and loss recovery under incast.

use std::any::Any;
use std::collections::HashMap;

use acc_host::{InterruptCosts, ModerationPolicy};
use acc_net::port::EgressPort;
use acc_net::{LinkParams, MacAddr, Switch, SwitchParams};
use acc_proto::{HostPathCosts, TcpDelivered, TcpHostNic, TcpParams, TcpSend};
use acc_sim::{Component, ComponentId, Ctx, DataSize, SimTime, Simulation};

/// Test application: fires its outbox at t=0, records deliveries.
struct App {
    nic: ComponentId,
    outbox: Vec<TcpSend>,
    received: HashMap<(MacAddr, u16), Vec<u8>>,
    last_delivery: Option<SimTime>,
}

impl Component for App {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            for send in self.outbox.drain(..) {
                ctx.send_now(self.nic, send);
            }
        } else if let Ok(d) = ev.downcast::<TcpDelivered>() {
            self.last_delivery = Some(ctx.now());
            self.received
                .entry((d.peer, d.chan))
                .or_default()
                .extend_from_slice(&d.data);
        } else {
            panic!("app: unexpected event");
        }
    }
    fn name(&self) -> &str {
        "app"
    }
}

struct Cluster {
    sim: Simulation,
    apps: Vec<ComponentId>,
    nics: Vec<ComponentId>,
    macs: Vec<MacAddr>,
}

/// Build `n` TCP hosts on one switch. `outbox(i)` seeds node i's sends.
fn build(
    n: usize,
    sw_params: SwitchParams,
    policy: ModerationPolicy,
    outbox: impl Fn(usize, &[MacAddr]) -> Vec<TcpSend>,
) -> Cluster {
    let mut sim = Simulation::new(7);
    let link = LinkParams::for_kind(acc_net::EthernetKind::Gigabit);
    let macs: Vec<MacAddr> = (0..n).map(|i| MacAddr::for_node(i, 0)).collect();
    let app_ids: Vec<ComponentId> = (0..n).map(|_| sim.reserve_id()).collect();
    let nic_ids: Vec<ComponentId> = (0..n).map(|_| sim.reserve_id()).collect();
    let switch_id = sim.reserve_id();
    let mut switch = Switch::new("sw", sw_params);
    for i in 0..n {
        let sw_port = switch.attach(macs[i], nic_ids[i], 0, link);
        let uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_id,
            sw_port,
            0,
        );
        sim.register(
            nic_ids[i],
            TcpHostNic::new(
                format!("tcp{i}"),
                macs[i],
                app_ids[i],
                uplink,
                TcpParams::default(),
                HostPathCosts::athlon_pci(),
                InterruptCosts::athlon_linux24(),
                policy,
            ),
        );
        sim.register(
            app_ids[i],
            App {
                nic: nic_ids[i],
                outbox: outbox(i, &macs),
                received: HashMap::new(),
                last_delivery: None,
            },
        );
    }
    sim.register(switch_id, switch);
    for &a in &app_ids {
        sim.schedule_at(SimTime::ZERO, a, ());
    }
    Cluster {
        sim,
        apps: app_ids,
        nics: nic_ids,
        macs,
    }
}

fn pattern(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

#[test]
fn bulk_transfer_delivers_identical_bytes_at_calibrated_goodput() {
    let data = pattern(1_000_000, 3);
    let expect = data.clone();
    let mut c = build(
        2,
        SwitchParams::default(),
        ModerationPolicy::syskonnect_default(),
        |i, macs| {
            if i == 0 {
                vec![TcpSend {
                    peer: macs[1],
                    chan: 1,
                    data: pattern(1_000_000, 3),
                }]
            } else {
                vec![]
            }
        },
    );
    drop(data);
    c.sim.run();
    let app1 = c.sim.component::<App>(c.apps[1]);
    let got = &app1.received[&(c.macs[0], 1)];
    assert_eq!(got, &expect, "delivered bytes differ");
    let t = app1.last_delivery.expect("delivered").as_secs_f64();
    let goodput = 1.0e6 / t / 1.0e6; // MB/s
    assert!(
        (25.0..70.0).contains(&goodput),
        "bulk TCP goodput {goodput:.1} MB/s outside the calibrated band"
    );
}

#[test]
fn short_message_latency_includes_moderation_delay() {
    let mut c = build(
        2,
        SwitchParams::default(),
        ModerationPolicy::syskonnect_default(),
        |i, macs| {
            if i == 0 {
                vec![TcpSend {
                    peer: macs[1],
                    chan: 1,
                    data: vec![42u8; 512],
                }]
            } else {
                vec![]
            }
        },
    );
    c.sim.run();
    let app1 = c.sim.component::<App>(c.apps[1]);
    let t = app1.last_delivery.expect("delivered");
    // One 512-byte segment serialises in ~5 µs; the observed latency is
    // dominated by the 100 µs coalescing timeout plus service time.
    let micros = t.as_secs_f64() * 1e6;
    assert!(
        micros > 100.0,
        "latency {micros:.1} µs too low — moderation missing"
    );
    assert!(micros < 1_000.0, "latency {micros:.1} µs implausibly high");
}

#[test]
fn moderation_trades_small_message_latency_for_batch_size() {
    // A single small segment: with per-frame interrupts the receiver
    // services it immediately; with coalescing it waits out the 100 µs
    // timer — the exact latency tax Section 4.1 blames for the TCP
    // slow-start pathology.
    let latency = |policy| {
        let mut c = build(2, SwitchParams::default(), policy, |i, macs| {
            if i == 0 {
                vec![TcpSend {
                    peer: macs[1],
                    chan: 1,
                    data: vec![1u8; 256],
                }]
            } else {
                vec![]
            }
        });
        c.sim.run();
        c.sim
            .component::<App>(c.apps[1])
            .last_delivery
            .expect("delivered")
    };
    let t_per = latency(ModerationPolicy::PerFrame);
    let t_mod = latency(ModerationPolicy::syskonnect_default());
    let gap = t_mod.since(t_per).as_secs_f64() * 1e6;
    assert!(
        (80.0..130.0).contains(&gap),
        "coalescing should add ≈100 µs to a lone segment, added {gap:.1} µs"
    );

    // Bulk stream: under either policy, ISR masking plus (for the
    // coalesced case) the frame-count threshold keeps interrupts well
    // below the frame count.
    let mut c = build(
        2,
        SwitchParams::default(),
        ModerationPolicy::syskonnect_default(),
        |i, macs| {
            if i == 0 {
                vec![TcpSend {
                    peer: macs[1],
                    chan: 1,
                    data: pattern(200_000, 1),
                }]
            } else {
                vec![]
            }
        },
    );
    c.sim.run();
    let (frames, interrupts) = c.sim.component::<TcpHostNic>(c.nics[1]).interrupt_totals();
    assert!(
        interrupts * 4 < frames,
        "bulk stream should batch many frames per interrupt: {interrupts} vs {frames}"
    );
}

#[test]
fn slow_start_makes_short_transfers_far_slower_than_line_rate() {
    // 64 KiB should take several RTTs of ramping, an order of magnitude
    // beyond its ~0.5 ms wire time.
    let size = 64 * 1024;
    let mut c = build(
        2,
        SwitchParams::default(),
        ModerationPolicy::syskonnect_default(),
        move |i, macs| {
            if i == 0 {
                vec![TcpSend {
                    peer: macs[1],
                    chan: 1,
                    data: pattern(size, 9),
                }]
            } else {
                vec![]
            }
        },
    );
    c.sim.run();
    let t = c
        .sim
        .component::<App>(c.apps[1])
        .last_delivery
        .expect("delivered")
        .as_secs_f64();
    let wire = size as f64 / 125.0e6;
    assert!(
        t > 2.0 * wire,
        "64 KiB took {t:.6}s, wire time {wire:.6}s — slow start absent"
    );
    let got = &c.sim.component::<App>(c.apps[1]).received[&(c.macs[0], 1)];
    assert_eq!(got.len(), size);
}

#[test]
fn incast_loss_is_recovered_and_stream_stays_correct() {
    // Four senders blast one receiver through a switch with tiny output
    // buffers: drops are guaranteed, TCP must retransmit, and every byte
    // must still arrive exactly once, in order.
    let sw = SwitchParams {
        port_buffer: DataSize::from_kib(24),
        ..SwitchParams::default()
    };
    let per_sender = 200_000usize;
    let mut c = build(
        5,
        sw,
        ModerationPolicy::syskonnect_default(),
        move |i, macs| {
            if i > 0 {
                vec![TcpSend {
                    peer: macs[0],
                    chan: i as u16,
                    data: pattern(per_sender, i as u8),
                }]
            } else {
                vec![]
            }
        },
    );
    c.sim.run();
    let receiver = c.sim.component::<App>(c.apps[0]);
    for i in 1..5usize {
        let got = &receiver.received[&(c.macs[i], i as u16)];
        assert_eq!(
            got,
            &pattern(per_sender, i as u8),
            "stream from {i} corrupt"
        );
    }
    let retx: u64 = c
        .nics
        .iter()
        .map(|&id| c.sim.component::<TcpHostNic>(id).retransmits())
        .sum();
    assert!(retx > 0, "tiny buffers + incast must force retransmissions");
}

#[test]
fn concurrent_flows_between_same_pair_are_independent() {
    let mut c = build(
        2,
        SwitchParams::default(),
        ModerationPolicy::syskonnect_default(),
        |i, macs| {
            if i == 0 {
                (1..=3u16)
                    .map(|chan| TcpSend {
                        peer: macs[1],
                        chan,
                        data: pattern(50_000, chan as u8),
                    })
                    .collect()
            } else {
                vec![]
            }
        },
    );
    c.sim.run();
    let app1 = c.sim.component::<App>(c.apps[1]);
    for chan in 1..=3u16 {
        assert_eq!(
            app1.received[&(c.macs[0], chan)],
            pattern(50_000, chan as u8),
            "chan {chan}"
        );
    }
}

#[test]
fn bidirectional_transfer_works() {
    let mut c = build(
        2,
        SwitchParams::default(),
        ModerationPolicy::syskonnect_default(),
        |i, macs| {
            vec![TcpSend {
                peer: macs[1 - i],
                chan: 5,
                data: pattern(100_000, i as u8),
            }]
        },
    );
    c.sim.run();
    for i in 0..2usize {
        let app = c.sim.component::<App>(c.apps[i]);
        assert_eq!(
            app.received[&(c.macs[1 - i], 5)],
            pattern(100_000, (1 - i) as u8)
        );
    }
}

#[test]
fn runs_are_deterministic() {
    let run = || {
        let mut c = build(
            3,
            SwitchParams::default(),
            ModerationPolicy::syskonnect_default(),
            |i, macs| {
                vec![TcpSend {
                    peer: macs[(i + 1) % 3],
                    chan: 0,
                    data: pattern(30_000, i as u8),
                }]
            },
        );
        c.sim.run();
        c.sim.now()
    };
    assert_eq!(run(), run());
}
