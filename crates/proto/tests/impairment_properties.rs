//! Property tests for the TCP stack under link impairment: whatever a
//! link does to individual frames — drop them, flip their payload
//! bytes, deliver them late and out of order — the application must
//! still receive exactly the byte stream that was sent, and every frame
//! offered to the switch must be accounted for as delivered, dropped at
//! a full queue, or discarded by the fault model.
//!
//! No external property-testing crate: a seeded loop drives the
//! impairment configurations, so failures reproduce exactly.

use std::any::Any;
use std::collections::HashMap;

use acc_host::{InterruptCosts, ModerationPolicy};
use acc_net::port::EgressPort;
use acc_net::{Impairment, LinkParams, MacAddr, Switch, SwitchParams};
use acc_proto::{HostPathCosts, TcpDelivered, TcpHostNic, TcpParams, TcpSend};
use acc_sim::{Component, ComponentId, Ctx, SimDuration, SimRng, SimTime, Simulation};

/// Test application: fires its outbox at t=0, records deliveries.
struct App {
    nic: ComponentId,
    outbox: Vec<TcpSend>,
    received: HashMap<(MacAddr, u16), Vec<u8>>,
}

impl Component for App {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            for send in self.outbox.drain(..) {
                ctx.send_now(self.nic, send);
            }
        } else if let Ok(d) = ev.downcast::<TcpDelivered>() {
            self.received
                .entry((d.peer, d.chan))
                .or_default()
                .extend_from_slice(&d.data);
        } else {
            panic!("app: unexpected event");
        }
    }
    fn name(&self) -> &str {
        "app"
    }
}

/// What one property iteration injects on every link (both directions).
#[derive(Clone, Copy, Debug)]
struct Faults {
    loss: f64,
    corrupt: f64,
    reorder: f64,
    seed: u64,
}

fn impairment(f: Faults, stream: u64) -> Impairment {
    let mut imp = Impairment::new(SimRng::seed_from(
        f.seed
            .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    ));
    if f.loss > 0.0 {
        imp = imp.with_loss(f.loss);
    }
    if f.corrupt > 0.0 {
        imp = imp.with_corruption(f.corrupt);
    }
    if f.reorder > 0.0 {
        imp = imp.with_reorder(f.reorder, SimDuration::from_micros(200));
    }
    imp
}

struct Run {
    received: Vec<HashMap<(MacAddr, u16), Vec<u8>>>,
    retransmits: u64,
    frames_into_switch: u64,
    switch_sent: u64,
    switch_queue_drops: u64,
    switch_impair_lost: u64,
}

/// Build `n` TCP hosts on one impaired switch, run node-0 → others
/// transfers to quiescence, and collect the frame accounting.
fn run_impaired(n: usize, payload: &[u8], f: Faults) -> Run {
    let mut sim = Simulation::new(f.seed);
    let link = LinkParams::for_kind(acc_net::EthernetKind::Gigabit);
    let macs: Vec<MacAddr> = (0..n).map(|i| MacAddr::for_node(i, 0)).collect();
    let app_ids: Vec<ComponentId> = (0..n).map(|_| sim.reserve_id()).collect();
    let nic_ids: Vec<ComponentId> = (0..n).map(|_| sim.reserve_id()).collect();
    let switch_id = sim.reserve_id();
    let mut switch = Switch::new("sw", SwitchParams::default());
    for i in 0..n {
        let sw_port = switch.attach(macs[i], nic_ids[i], 0, link);
        switch.set_port_impairment(sw_port, impairment(f, 2 * i as u64 + 1));
        let mut uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_id,
            sw_port,
            0,
        );
        uplink.set_impairment(impairment(f, 2 * i as u64));
        sim.register(
            nic_ids[i],
            TcpHostNic::new(
                format!("tcp{i}"),
                macs[i],
                app_ids[i],
                uplink,
                TcpParams::default(),
                HostPathCosts::athlon_pci(),
                InterruptCosts::athlon_linux24(),
                ModerationPolicy::syskonnect_default(),
            ),
        );
        let outbox = if i == 0 {
            (1..n)
                .map(|q| TcpSend {
                    peer: macs[q],
                    chan: 5,
                    data: payload.to_vec(),
                })
                .collect()
        } else {
            Vec::new()
        };
        sim.register(
            app_ids[i],
            App {
                nic: nic_ids[i],
                outbox,
                received: HashMap::new(),
            },
        );
    }
    sim.register(switch_id, switch);
    for &a in &app_ids {
        sim.schedule_at(SimTime::ZERO, a, ());
    }
    sim.run();
    // Frames that actually left the NIC uplinks are exactly the frames
    // offered to the switch (uplink `sent` already excludes frames the
    // uplink's own fault model discarded).
    let frames_into_switch = nic_ids
        .iter()
        .map(|&id| sim.component::<TcpHostNic>(id).uplink().sent())
        .sum();
    let retransmits = nic_ids
        .iter()
        .map(|&id| sim.component::<TcpHostNic>(id).retransmits())
        .sum();
    let sw = sim.component::<Switch>(switch_id);
    let run = Run {
        received: app_ids
            .iter()
            .map(|&a| sim.component::<App>(a).received.clone())
            .collect(),
        retransmits,
        frames_into_switch,
        switch_sent: sw.total_sent(),
        switch_queue_drops: sw.total_drops(),
        switch_impair_lost: sw.impair_lost_total(),
    };
    run
}

fn pattern(n: usize, seed: u8) -> Vec<u8> {
    (0..n)
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

/// One property check: exact byte stream at every receiver plus the
/// switch frame-accounting identity.
fn check(f: Faults) {
    let n = 3;
    let payload = pattern(300_000, f.seed as u8);
    let r = run_impaired(n, &payload, f);
    for (q, received) in r.received.iter().enumerate().skip(1) {
        let got = received
            .get(&(MacAddr::for_node(0, 0), 5))
            .unwrap_or_else(|| panic!("node {q} received nothing under {f:?}"));
        assert_eq!(got, &payload, "node {q} byte stream diverged under {f:?}");
    }
    assert_eq!(
        r.frames_into_switch,
        r.switch_sent + r.switch_queue_drops + r.switch_impair_lost,
        "switch frame accounting broken under {f:?}"
    );
    // Any frame the fault model discarded forced a recovery.
    if r.switch_impair_lost > 0 {
        assert!(r.retransmits > 0, "lost frames but no retransmits: {f:?}");
    }
}

#[test]
fn byte_stream_survives_frame_loss() {
    for seed in [1u64, 2, 3] {
        check(Faults {
            loss: 0.02,
            corrupt: 0.0,
            reorder: 0.0,
            seed,
        });
    }
}

#[test]
fn byte_stream_survives_corruption() {
    for seed in [4u64, 5, 6] {
        check(Faults {
            loss: 0.0,
            corrupt: 0.02,
            reorder: 0.0,
            seed,
        });
    }
}

#[test]
fn byte_stream_survives_reordering() {
    for seed in [7u64, 8, 9] {
        check(Faults {
            loss: 0.0,
            corrupt: 0.0,
            reorder: 0.05,
            seed,
        });
    }
}

#[test]
fn byte_stream_survives_combined_impairment() {
    for seed in [10u64, 11] {
        check(Faults {
            loss: 0.01,
            corrupt: 0.01,
            reorder: 0.02,
            seed,
        });
    }
}

#[test]
fn pristine_links_need_no_recovery() {
    let f = Faults {
        loss: 0.0,
        corrupt: 0.0,
        reorder: 0.0,
        seed: 42,
    };
    let payload = pattern(100_000, 9);
    let r = run_impaired(2, &payload, f);
    assert_eq!(r.retransmits, 0);
    assert_eq!(r.switch_impair_lost, 0);
    assert_eq!(r.frames_into_switch, r.switch_sent + r.switch_queue_drops);
}
