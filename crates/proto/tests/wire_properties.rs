//! Property tests over the INIC wire protocol: packetization covers
//! every byte exactly once, headers round-trip, reassembly is
//! order-independent, and the demux never conflates streams.

use proptest::prelude::*;

use acc_proto::{InicPacket, StreamDemux, StreamRx, INIC_PAYLOAD};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn header_roundtrip(
        src in any::<u32>(),
        stream in any::<u32>(),
        offset in any::<u32>(),
        fin in any::<bool>(),
        data in prop::collection::vec(any::<u8>(), 0..=INIC_PAYLOAD),
    ) {
        let p = InicPacket {
            src_rank: src,
            stream,
            offset,
            fin,
            credit: false,
            data,
        };
        prop_assert_eq!(InicPacket::decode(&p.encode()), p);
    }

    #[test]
    fn packetize_reassembles_in_any_order(
        data in prop::collection::vec(any::<u8>(), 0..8000),
        seed in any::<u64>(),
    ) {
        let mut pkts = InicPacket::packetize(1, 2, &data);
        // Deterministic shuffle from the seed.
        let mut s = seed | 1;
        for i in (1..pkts.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            pkts.swap(i, j);
        }
        let mut rx = StreamRx::new_unknown();
        for p in &pkts {
            rx.accept(p);
        }
        prop_assert!(rx.complete());
        prop_assert_eq!(rx.into_bytes(), data);
    }

    #[test]
    fn packetize_structure_is_exact(data in prop::collection::vec(any::<u8>(), 1..8000)) {
        let pkts = InicPacket::packetize(0, 0, &data);
        // Exactly one fin, on the final packet.
        prop_assert_eq!(pkts.iter().filter(|p| p.fin).count(), 1);
        prop_assert!(pkts.last().unwrap().fin);
        // Offsets are contiguous multiples of the payload size.
        let mut expect = 0u32;
        for p in &pkts {
            prop_assert_eq!(p.offset, expect);
            expect += p.data.len() as u32;
        }
        prop_assert_eq!(expect as usize, data.len());
        // All but the last packet are full.
        for p in &pkts[..pkts.len() - 1] {
            prop_assert_eq!(p.data.len(), INIC_PAYLOAD);
        }
        // Wire accounting matches.
        prop_assert_eq!(
            InicPacket::packet_count(data.len() as u64),
            pkts.len() as u64
        );
    }

    #[test]
    fn demux_separates_streams(
        a in prop::collection::vec(any::<u8>(), 1..3000),
        b in prop::collection::vec(any::<u8>(), 1..3000),
    ) {
        let pa = InicPacket::packetize(0, 9, &a);
        let pb = InicPacket::packetize(1, 9, &b);
        let mut demux = StreamDemux::new();
        demux.expect(0, 9, a.len());
        demux.expect_unknown(1, 9);
        // Interleave.
        let mut done = Vec::new();
        let mut ia = pa.iter();
        let mut ib = pb.iter();
        loop {
            let mut progressed = false;
            if let Some(p) = ia.next() {
                if let Some(d) = demux.accept(p) {
                    done.push(d);
                }
                progressed = true;
            }
            if let Some(p) = ib.next() {
                if let Some(d) = demux.accept(p) {
                    done.push(d);
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        prop_assert_eq!(done.len(), 2);
        for (src, _stream, bytes) in done {
            if src == 0 {
                prop_assert_eq!(&bytes, &a);
            } else {
                prop_assert_eq!(&bytes, &b);
            }
        }
        prop_assert_eq!(demux.open_streams(), 0);
    }
}
