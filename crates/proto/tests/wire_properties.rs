//! Randomized invariant tests over the INIC wire protocol: packetization
//! covers every byte exactly once, checksummed headers round-trip,
//! reassembly is order-independent and duplicate-tolerant, and the demux
//! never conflates streams. Driven by a seeded splitmix64 stream so every
//! failure reproduces from the fixed seeds.

use acc_proto::{packet_count, packetize, InicPacket, StreamDemux, StreamRx, INIC_PAYLOAD};

/// Minimal splitmix64 stream for generating test cases.
struct Gen(u64);

impl Gen {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    fn bytes(&mut self, max_len: u64) -> Vec<u8> {
        let n = self.below(max_len) as usize;
        (0..n).map(|_| self.next_u64() as u8).collect()
    }

    fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }
}

#[test]
fn header_roundtrip() {
    let mut g = Gen(0xD1);
    for _ in 0..128 {
        let p = InicPacket {
            src_rank: g.below(u64::from(u16::MAX) + 1) as u32,
            stream: g.below(u64::from(u16::MAX) + 1) as u32,
            offset: g.next_u64() as u32,
            fin: g.below(2) == 1,
            credit: false,
            nack: false,
            ack: false,
            busy: g.below(2) == 1,
            data: g.bytes(INIC_PAYLOAD as u64 + 1),
        };
        assert_eq!(InicPacket::decode(&p.encode()).unwrap(), p);
    }
}

#[test]
fn corruption_never_decodes() {
    let mut g = Gen(0xD2);
    for _ in 0..128 {
        let p = InicPacket {
            src_rank: g.below(1 << 8) as u32,
            stream: g.below(1 << 8) as u32,
            offset: g.next_u64() as u32,
            fin: g.below(2) == 1,
            credit: false,
            nack: false,
            ack: false,
            busy: false,
            data: g.bytes(INIC_PAYLOAD as u64 + 1),
        };
        let mut bytes = p.encode();
        let i = g.below(bytes.len() as u64) as usize;
        let mask = 1u8 << g.below(8);
        bytes[i] ^= mask;
        assert!(
            InicPacket::decode(&bytes).is_err(),
            "flip of bit {mask:#x} at byte {i} went undetected"
        );
    }
}

#[test]
fn decode_never_panics_on_arbitrary_inputs() {
    // Property: `InicPacket::decode` is total — any byte string either
    // decodes or returns a `WireError`; no input may panic or read out
    // of bounds. Three adversarial shapes: pure noise, truncations of a
    // valid encode, and bit-flipped mutations of a valid encode.
    let mut g = Gen(0xD7);
    for _ in 0..256 {
        let noise = g.bytes(2200);
        let _ = InicPacket::decode(&noise);
    }
    for _ in 0..64 {
        let p = InicPacket {
            src_rank: g.below(1 << 16) as u32,
            stream: g.below(1 << 16) as u32,
            offset: g.next_u64() as u32,
            fin: g.below(2) == 1,
            credit: false,
            nack: false,
            ack: false,
            busy: false,
            data: g.bytes(INIC_PAYLOAD as u64 + 1),
        };
        let bytes = p.encode();
        let cut = g.below(bytes.len() as u64 + 1) as usize;
        let _ = InicPacket::decode(&bytes[..cut]);
        let mut bent = bytes.clone();
        for _ in 0..1 + g.below(4) {
            let i = g.below(bent.len() as u64) as usize;
            bent[i] ^= 1u8 << g.below(8);
        }
        let _ = InicPacket::decode(&bent);
    }
}

#[test]
fn packetize_reassembles_in_any_order_with_duplicates() {
    let mut g = Gen(0xD3);
    for _ in 0..96 {
        let data = g.bytes(8000);
        let mut pkts = packetize(1, 2, &data);
        // Inject duplicates (simulated retransmissions), then shuffle.
        let n = pkts.len();
        for _ in 0..g.below(4) {
            let i = g.below(n as u64) as usize;
            let dup = pkts[i].clone();
            pkts.push(dup);
        }
        g.shuffle(&mut pkts);
        let mut rx = StreamRx::new_unknown();
        for p in &pkts {
            rx.accept(p);
        }
        assert!(rx.complete());
        assert_eq!(rx.into_bytes(), data);
    }
}

#[test]
fn packetize_structure_is_exact() {
    let mut g = Gen(0xD4);
    for _ in 0..128 {
        let data = {
            let mut d = g.bytes(8000);
            if d.is_empty() {
                d.push(0);
            }
            d
        };
        let pkts = packetize(0, 0, &data);
        // Exactly one fin, on the final packet.
        assert_eq!(pkts.iter().filter(|p| p.fin).count(), 1);
        assert!(pkts.last().unwrap().fin);
        // Offsets are contiguous.
        let mut expect = 0u32;
        for p in &pkts {
            assert_eq!(p.offset, expect);
            expect += p.data.len() as u32;
        }
        assert_eq!(expect as usize, data.len());
        // All but the last packet are full.
        for p in &pkts[..pkts.len() - 1] {
            assert_eq!(p.data.len(), INIC_PAYLOAD);
        }
        assert_eq!(packet_count(data.len()), pkts.len());
    }
}

#[test]
fn demux_separates_streams() {
    let mut g = Gen(0xD5);
    for _ in 0..64 {
        let a = {
            let mut d = g.bytes(3000);
            d.push(1);
            d
        };
        let b = {
            let mut d = g.bytes(3000);
            d.push(2);
            d
        };
        let pa = packetize(0, 9, &a);
        let pb = packetize(1, 9, &b);
        let mut demux = StreamDemux::new();
        demux.expect(0, 9, a.len());
        demux.expect_unknown(1, 9);
        let mut done = Vec::new();
        let mut ia = pa.iter();
        let mut ib = pb.iter();
        loop {
            let mut progressed = false;
            for it in [&mut ia, &mut ib] {
                if let Some(p) = it.next() {
                    if let Some(d) = demux.accept(p) {
                        done.push(d);
                    }
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        assert_eq!(done.len(), 2);
        for (src, _stream, bytes) in done {
            assert_eq!(&bytes, if src == 0 { &a } else { &b });
        }
        assert_eq!(demux.open_streams(), 0);
    }
}

#[test]
fn missing_always_points_at_the_first_gap() {
    let mut g = Gen(0xD6);
    for _ in 0..96 {
        let len = 1 + g.below(8 * INIC_PAYLOAD as u64) as usize;
        let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
        let mut pkts = packetize(3, 1, &data);
        g.shuffle(&mut pkts);
        let mut rx = StreamRx::new(data.len());
        let mut seen = std::collections::HashSet::new();
        for p in &pkts {
            // While incomplete with a known total, `missing` must name
            // an offset whose packet has not been accepted yet.
            let m = rx.missing().expect("incomplete stream has a gap");
            assert!((m as usize) < data.len());
            assert!(!seen.contains(&m), "missing() named a received offset");
            rx.accept(p);
            seen.insert(p.offset);
        }
        assert!(rx.complete());
        assert_eq!(rx.missing(), None);
    }
}
