//! A TCP-like reliable byte stream coupled to the commodity host model.
//!
//! One [`TcpHostNic`] component per node models the NIC hardware, the
//! kernel TCP/IP stack, and their costs:
//!
//! * **Congestion control** (RFC 2581-era): slow start from a 2-MSS
//!   initial window, congestion avoidance above `ssthresh`, ×2 RTO
//!   backoff with a 200 ms floor (Linux 2.4), fast retransmit on three
//!   duplicate ACKs, and **slow-start restart after idle** — the paper's
//!   short-message pathology needs it: every transpose step's burst
//!   starts from a cold window.
//! * **Interrupt moderation**: received frames sit in the NIC ring until
//!   the [`InterruptModerator`] fires (count threshold or timeout); the
//!   ACK clock therefore runs late by the coalescing delay, which is
//!   what makes slow start so expensive for short transfers
//!   (Section 4.1).
//! * **Host datapath costs**: transmit DMA is paced by the effective
//!   PCI/driver rate with a fixed per-segment cost; receive service
//!   charges per-interrupt and per-segment CPU plus a per-byte copy
//!   through the kernel. These cap bulk TCP goodput near the
//!   ~45–55 MB/s a 2001 Athlon/SysKonnect pair actually achieved.
//!
//! The byte stream is real: applications hand `Vec<u8>` in and receive
//! the identical bytes in order on the far side, which the property
//! tests verify under loss and reordering.

use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

use acc_net::port::EgressPort;
use acc_net::{EtherType, Frame, FrameArrival, MacAddr, PortTxDone};
use acc_sim::{Bandwidth, Component, ComponentId, Ctx, DataSize, SimDuration, SimTime};

use acc_host::interrupts::{InterruptCosts, InterruptModerator, ModerationPolicy, ModeratorAction};

/// IP (20) + TCP (20) header bytes per segment.
pub const IP_TCP_HEADER: usize = 40;

/// Maximum segment size on standard Ethernet.
pub const MSS: usize = 1460;

/// TCP tunables (2001 Linux 2.4 defaults unless noted).
#[derive(Clone, Copy, Debug)]
pub struct TcpParams {
    /// Initial congestion window, in segments.
    pub initial_cwnd_segments: u32,
    /// Initial slow-start threshold, bytes.
    pub initial_ssthresh: u32,
    /// Receive window advertised (no window scaling): 64 KiB − 1.
    pub rwnd: u32,
    /// Minimum retransmission timeout.
    pub min_rto: SimDuration,
    /// RTO before any RTT sample exists.
    pub initial_rto: SimDuration,
    /// Restart slow start after this much connection idle time.
    pub idle_restart: bool,
}

impl Default for TcpParams {
    fn default() -> Self {
        TcpParams {
            initial_cwnd_segments: 2,
            initial_ssthresh: 64 * 1024,
            rwnd: 65_535,
            min_rto: SimDuration::from_millis(200),
            initial_rto: SimDuration::from_millis(1000),
            idle_restart: true,
        }
    }
}

/// Host datapath costs on the TCP path (everything the INIC bypasses).
#[derive(Clone, Copy, Debug)]
pub struct HostPathCosts {
    /// Per-segment transmit cost (syscall amortisation, descriptor setup,
    /// doorbell).
    pub per_segment_tx: SimDuration,
    /// Effective streaming rate host-memory→NIC across PCI (DMA and
    /// driver efficiency folded in).
    pub tx_stream_rate: Bandwidth,
    /// Effective per-byte receive cost: PCI crossing + kernel copies to
    /// user space, expressed as a rate.
    pub rx_copy_rate: Bandwidth,
}

impl HostPathCosts {
    /// Calibration for the testbed: the transmit path (socket copy +
    /// descriptor work + 32-bit PCI crossing shared with everything
    /// else) sustains ~60 MiB/s; the receive path (PCI + two kernel
    /// copies on a 400 MiB/s memory system) ~50 MiB/s; 5 µs fixed per
    /// segment. End-to-end this lands bulk TCP goodput near the
    /// ~35–40 MB/s a well-tuned SysKonnect/Athlon pair measured in
    /// 2001.
    pub fn athlon_pci() -> HostPathCosts {
        HostPathCosts {
            per_segment_tx: SimDuration::from_micros(5),
            tx_stream_rate: Bandwidth::from_mib_per_sec(60),
            rx_copy_rate: Bandwidth::from_mib_per_sec(50),
        }
    }

    /// An idealised host path (for ablations isolating protocol effects
    /// from host effects).
    pub fn ideal() -> HostPathCosts {
        HostPathCosts {
            per_segment_tx: SimDuration::ZERO,
            tx_stream_rate: Bandwidth::from_mib_per_sec(100_000),
            rx_copy_rate: Bandwidth::from_mib_per_sec(100_000),
        }
    }
}

/// Application request: send `data` reliably to `peer` on channel `chan`.
#[derive(Debug)]
pub struct TcpSend {
    /// Destination node's MAC.
    pub peer: MacAddr,
    /// Flow id multiplexing several streams per node pair.
    pub chan: u16,
    /// Bytes to deliver.
    pub data: Vec<u8>,
}

/// Delivered in-order bytes, sent to the application component.
#[derive(Debug)]
pub struct TcpDelivered {
    /// Sending node's MAC.
    pub peer: MacAddr,
    /// Flow id.
    pub chan: u16,
    /// In-order payload (concatenation of one interrupt batch's worth).
    pub data: Vec<u8>,
}

/// Wire header our segments carry inside the 40-byte IP+TCP space.
#[derive(Clone, Copy, Debug)]
struct SegHeader {
    chan: u16,
    seq: u64,
    ack: u64,
    has_data: bool,
    window: u32,
}

impl SegHeader {
    /// FNV-1a over the populated header fields plus the data — stands in
    /// for the real TCP checksum within the modelled 40-byte header.
    fn checksum(header: &[u8], data: &[u8]) -> u32 {
        let mut h: u32 = 0x811C_9DC5;
        for &b in header[0..23].iter().chain(data) {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        h
    }

    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; IP_TCP_HEADER];
        out[0..2].copy_from_slice(&self.chan.to_le_bytes());
        out[2..10].copy_from_slice(&self.seq.to_le_bytes());
        out[10..18].copy_from_slice(&self.ack.to_le_bytes());
        out[18] = u8::from(self.has_data);
        out[19..23].copy_from_slice(&self.window.to_le_bytes());
        let sum = SegHeader::checksum(&out, data);
        out[23..27].copy_from_slice(&sum.to_le_bytes());
        out.extend_from_slice(data);
        out
    }

    /// Parse a segment; `None` means the segment is malformed and must
    /// be discarded — either the checksum failed (corruption on the
    /// wire) or the reserved padding carries nonzero bytes — and the
    /// normal TCP loss recovery then repairs the stream.
    fn decode(payload: &[u8]) -> Option<(SegHeader, &[u8])> {
        if payload.len() < IP_TCP_HEADER {
            return None;
        }
        // The encoder always zeroes the reserved tail of the modelled
        // 40-byte header. The checksum deliberately skips it, so without
        // this check corrupted-but-accepted segments could differ on the
        // wire yet decode identically — a hole both the corruption
        // property tests and real middlebox behaviour care about.
        // acc-lint: allow(R8, reason = "reserved padding 27..40: the encoder zero-fills it implicitly (fresh buffer), and decode reads it only to reject nonzero bytes, never into a field")
        if payload[27..IP_TCP_HEADER].iter().any(|&b| b != 0) {
            return None;
        }
        let want = u32::from_le_bytes(
            payload[23..27]
                .try_into()
                .expect("tcp header checksum slice is 4 bytes"),
        );
        if SegHeader::checksum(payload, &payload[IP_TCP_HEADER..]) != want {
            return None;
        }
        let h = SegHeader {
            chan: u16::from_le_bytes(payload[0..2].try_into().expect("tcp chan slice is 2 bytes")),
            seq: u64::from_le_bytes(payload[2..10].try_into().expect("tcp seq slice is 8 bytes")),
            ack: u64::from_le_bytes(
                payload[10..18]
                    .try_into()
                    .expect("tcp ack slice is 8 bytes"),
            ),
            has_data: payload[18] != 0,
            window: u32::from_le_bytes(
                payload[19..23]
                    .try_into()
                    .expect("tcp window slice is 4 bytes"),
            ),
        };
        Some((h, &payload[IP_TCP_HEADER..]))
    }
}

/// Flow identity: (peer node, channel). `Ord` because flows are keyed
/// in ordered maps: iteration must be deterministic (lint rule R1).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
struct FlowKey {
    peer: MacAddr,
    chan: u16,
}

/// Effective send window in whole bytes: cwnd (which grows fractionally
/// during congestion avoidance) capped by the peer's advertised window.
fn effective_window(cwnd: f64, peer_window: u32) -> usize {
    let w = cwnd.min(f64::from(peer_window)).max(0.0);
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // acc-lint: allow(R3, reason = "congestion-window floor: intentional f64 -> bytes truncation, non-negative and bounded by the 64 KiB advertised window")
    let bytes = w as usize;
    bytes
}

/// A segment in flight.
struct SentSeg {
    len: usize,
    sent_at: SimTime,
    retransmitted: bool,
}

/// Per-connection TCP state (both directions).
struct TcpConn {
    // --- send side ---
    // acc-lint: allow(R9, reason = "send staging drained at MSS per window grant; the lockstep drivers offer one round's legs at a time, so occupancy is bounded by the per-round send volume")
    send_buf: VecDeque<u8>,
    snd_una: u64,
    snd_nxt: u64,
    inflight: BTreeMap<u64, SentSeg>,
    cwnd: f64,
    ssthresh: f64,
    peer_window: u32,
    dup_acks: u32,
    recovery_until: u64,
    srtt: Option<f64>,
    rttvar: f64,
    rto: SimDuration,
    rto_generation: u64,
    rto_armed: bool,
    last_activity: SimTime,
    // --- receive side ---
    rcv_nxt: u64,
    ooo: BTreeMap<u64, Vec<u8>>,
    segs_since_ack: u32,
    // --- stats ---
    retransmits: u64,
    rto_fires: u64,
}

impl TcpConn {
    fn new(p: &TcpParams, now: SimTime) -> TcpConn {
        TcpConn {
            send_buf: VecDeque::new(),
            snd_una: 0,
            snd_nxt: 0,
            inflight: BTreeMap::new(),
            cwnd: f64::from(p.initial_cwnd_segments) * MSS as f64,
            ssthresh: f64::from(p.initial_ssthresh),
            peer_window: p.rwnd,
            dup_acks: 0,
            recovery_until: 0,
            srtt: None,
            rttvar: 0.0,
            rto: p.initial_rto,
            rto_generation: 0,
            rto_armed: false,
            last_activity: now,
            rcv_nxt: 0,
            ooo: BTreeMap::new(),
            segs_since_ack: 0,
            retransmits: 0,
            rto_fires: 0,
        }
    }

    fn flight_size(&self) -> usize {
        self.inflight.values().map(|s| s.len).sum()
    }
}

// --- internal events ---

/// Interrupt-moderation timer.
struct ModTimer {
    generation: u64,
}

/// Retransmission timer for one flow.
struct RtoTimer {
    key: FlowKey,
    generation: u64,
}

/// Interrupt service completed; process this ring batch.
struct ServiceBatch {
    frames: Vec<Frame>,
}

/// Paced transmit: this frame's DMA across PCI has completed.
struct TxLaunch {
    frame: Frame,
}

/// The per-node NIC + kernel TCP stack component.
pub struct TcpHostNic {
    label: String,
    mac: MacAddr,
    /// Application component receiving [`TcpDelivered`].
    app: ComponentId,
    uplink: EgressPort,
    params: TcpParams,
    path: HostPathCosts,
    costs: InterruptCosts,
    moderator: InterruptModerator,
    conns: BTreeMap<FlowKey, TcpConn>,
    /// Bytes of every in-flight segment, for retransmission.
    retx_store: BTreeMap<(FlowKey, u64), Vec<u8>>,
    /// Frames received but not yet serviced by an interrupt.
    rx_ring: Vec<Frame>,
    /// Whether an interrupt is currently being serviced (batch queued).
    servicing: bool,
    /// Time the transmit DMA engine frees up.
    tx_free_at: SimTime,
    /// Total CPU time charged to TCP processing (for reports).
    cpu_time: SimDuration,
    bytes_delivered_total: u64,
}

impl TcpHostNic {
    /// Build the stack. `uplink` must already be wired to the switch.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        label: impl Into<String>,
        mac: MacAddr,
        app: ComponentId,
        uplink: EgressPort,
        params: TcpParams,
        path: HostPathCosts,
        costs: InterruptCosts,
        policy: ModerationPolicy,
    ) -> TcpHostNic {
        TcpHostNic {
            label: label.into(),
            mac,
            app,
            uplink,
            params,
            path,
            costs,
            moderator: InterruptModerator::new(policy),
            conns: BTreeMap::new(),
            retx_store: BTreeMap::new(),
            rx_ring: Vec::new(),
            servicing: false,
            tx_free_at: SimTime::ZERO,
            cpu_time: SimDuration::ZERO,
            bytes_delivered_total: 0,
        }
    }

    /// Total bytes delivered in order to the application.
    pub fn bytes_delivered(&self) -> u64 {
        self.bytes_delivered_total
    }

    /// Total retransmitted segments across flows.
    pub fn retransmits(&self) -> u64 {
        self.conns.values().map(|c| c.retransmits).sum()
    }

    /// Total RTO expirations across flows.
    pub fn rto_fires(&self) -> u64 {
        self.conns.values().map(|c| c.rto_fires).sum()
    }

    /// (frames seen, interrupts raised) on the receive path.
    pub fn interrupt_totals(&self) -> (u64, u64) {
        self.moderator.totals()
    }

    /// CPU time consumed by protocol processing.
    pub fn cpu_time(&self) -> SimDuration {
        self.cpu_time
    }

    /// The NIC-side egress port (frame counters and impairment state,
    /// for accounting checks and reports).
    pub fn uplink(&self) -> &EgressPort {
        &self.uplink
    }

    fn conn_mut(&mut self, key: FlowKey, now: SimTime) -> &mut TcpConn {
        let params = self.params;
        self.conns
            .entry(key)
            .or_insert_with(|| TcpConn::new(&params, now))
    }

    // ---- transmit path ----

    fn on_app_send(&mut self, send: TcpSend, ctx: &mut Ctx) {
        let key = FlowKey {
            peer: send.peer,
            chan: send.chan,
        };
        let params = self.params;
        let now = ctx.now();
        let conn = self.conn_mut(key, now);
        // Slow-start restart after idle (RFC 2581 §4.1): if the
        // connection has been quiet for an RTO, collapse cwnd back to the
        // initial window.
        if params.idle_restart
            && conn.inflight.is_empty()
            && now.saturating_since(conn.last_activity) > conn.rto
        {
            conn.cwnd = f64::from(params.initial_cwnd_segments) * MSS as f64;
        }
        conn.send_buf.extend(send.data.iter());
        self.pump(key, ctx);
    }

    /// Send as much of the flow's buffered data as cwnd/rwnd allow.
    fn pump(&mut self, key: FlowKey, ctx: &mut Ctx) {
        let now = ctx.now();
        loop {
            let (seq, data) = {
                let conn = self.conns.get_mut(&key).expect("pump on missing conn");
                let take = conn.send_buf.len().min(MSS);
                if take == 0 {
                    break;
                }
                // Effective window; never below one MSS so a tiny cwnd
                // cannot deadlock the flow.
                let window = effective_window(conn.cwnd, conn.peer_window).max(MSS);
                let flight = conn.flight_size();
                if flight > 0 && flight + take > window {
                    break;
                }
                let data: Vec<u8> = conn.send_buf.drain(..take).collect();
                let seq = conn.snd_nxt;
                conn.snd_nxt += take as u64;
                conn.inflight.insert(
                    seq,
                    SentSeg {
                        len: take,
                        sent_at: now,
                        retransmitted: false,
                    },
                );
                conn.last_activity = now;
                (seq, data)
            };
            self.retx_store.insert((key, seq), data.clone());
            self.arm_rto(key, ctx);
            self.transmit_segment(key, seq, &data, false, ctx);
        }
    }

    /// Build and pace one segment onto the wire (data or pure ACK).
    fn transmit_segment(
        &mut self,
        key: FlowKey,
        seq: u64,
        data: &[u8],
        ack_only: bool,
        ctx: &mut Ctx,
    ) {
        let conn = self.conns.get_mut(&key).expect("transmit on missing conn");
        let header = SegHeader {
            chan: key.chan,
            seq,
            ack: conn.rcv_nxt,
            has_data: !ack_only,
            window: self.params.rwnd,
        };
        conn.segs_since_ack = 0;
        let payload = header.encode(data);
        let frame = Frame::try_new(self.mac, key.peer, EtherType::Ipv4, payload)
            .unwrap_or_else(|e| panic!("{}: segment exceeds MTU ({e})", self.label));
        // Pace by the host TX path: fixed per-segment cost plus PCI
        // streaming time, serialized through one DMA engine.
        let dma = self.path.per_segment_tx
            + self
                .path
                .tx_stream_rate
                .transfer_time(DataSize::from_bytes(frame.payload.len() as u64));
        let start = self.tx_free_at.max(ctx.now());
        self.tx_free_at = start + dma;
        let delay = self.tx_free_at.since(ctx.now());
        ctx.self_in(delay, TxLaunch { frame });
    }

    fn arm_rto(&mut self, key: FlowKey, ctx: &mut Ctx) {
        let conn = self.conns.get_mut(&key).expect("arm_rto on missing conn");
        if conn.rto_armed || conn.inflight.is_empty() {
            return;
        }
        conn.rto_armed = true;
        conn.rto_generation += 1;
        let generation = conn.rto_generation;
        let delay = conn.rto;
        ctx.self_in(delay, RtoTimer { key, generation });
    }

    fn on_rto(&mut self, key: FlowKey, generation: u64, ctx: &mut Ctx) {
        let retransmit = {
            let Some(conn) = self.conns.get_mut(&key) else {
                return;
            };
            if generation != conn.rto_generation || conn.inflight.is_empty() {
                conn.rto_armed = false;
                return;
            }
            conn.rto_armed = false;
            conn.rto_fires += 1;
            // Multiplicative backoff, collapse to one-segment slow start.
            let flight = conn.flight_size() as f64;
            conn.ssthresh = (flight / 2.0).max(2.0 * MSS as f64);
            conn.cwnd = MSS as f64;
            conn.rto = SimDuration::from_secs_f64((conn.rto.as_secs_f64() * 2.0).min(60.0));
            conn.dup_acks = 0;
            // Retransmit the earliest unacked segment.
            let (&seq, seg) = conn.inflight.iter_mut().next().expect("non-empty");
            seg.retransmitted = true;
            seg.sent_at = ctx.now();
            conn.retransmits += 1;
            (seq, seg.len)
        };
        let (seq, _len) = retransmit;
        let data = self.retransmit_bytes(key, seq);
        self.arm_rto(key, ctx);
        self.transmit_segment(key, seq, &data, false, ctx);
        ctx.stats().counter(&self.label, "rto_retransmits").inc();
    }

    /// The bytes of an inflight segment for retransmission.
    ///
    /// TCP proper would re-read the socket buffer; we keep it simple and
    /// reconstruct from the retransmission store kept per segment.
    fn retransmit_bytes(&mut self, key: FlowKey, seq: u64) -> Vec<u8> {
        // Data for inflight segments is stored in `retx_store`.
        self.retx_store
            .get(&(key, seq))
            .cloned()
            .expect("retransmit store missing segment")
    }

    // ---- receive path ----

    fn on_frame(&mut self, frame: Frame, ctx: &mut Ctx) {
        self.rx_ring.push(frame);
        match self.moderator.on_frame() {
            ModeratorAction::FireNow => self.raise_interrupt(ctx),
            ModeratorAction::ArmTimer(d) => {
                let generation = self.moderator.timer_generation();
                ctx.self_in(d, ModTimer { generation });
            }
            ModeratorAction::None => {}
        }
    }

    fn on_mod_timer(&mut self, generation: u64, ctx: &mut Ctx) {
        if let ModeratorAction::FireNow = self.moderator.on_timer(generation) {
            self.raise_interrupt(ctx);
        }
    }

    fn raise_interrupt(&mut self, ctx: &mut Ctx) {
        if self.servicing {
            // Interrupt while the previous batch is still being serviced:
            // frames stay in the ring; the service loop re-checks.
            return;
        }
        let n = self.moderator.service();
        debug_assert_eq!(
            usize::try_from(n).expect("tcp rx batch count fits usize"),
            self.rx_ring.len()
        );
        let frames = std::mem::take(&mut self.rx_ring);
        let bytes: u64 = frames.iter().map(|f| f.payload.len() as u64).sum();
        let service = self.costs.service_time(n)
            + self
                .path
                .rx_copy_rate
                .transfer_time(DataSize::from_bytes(bytes));
        self.cpu_time += service;
        self.servicing = true;
        ctx.self_in(service, ServiceBatch { frames });
    }

    /// Debug-build guard for lint rule R1: the flow table must iterate
    /// in sorted key order. Trivially true for `BTreeMap`; fails loudly
    /// in tests if the connection table ever regresses to an unordered
    /// map, instead of silently reordering frames between runs.
    fn debug_assert_flow_order(&self) {
        debug_assert!(
            self.conns.keys().is_sorted(),
            "{}: TCP flow-table iteration is not in sorted key order — \
             campaign replay would reorder frames nondeterministically",
            self.label
        );
    }

    fn on_service_batch(&mut self, frames: Vec<Frame>, ctx: &mut Ctx) {
        self.servicing = false;
        self.debug_assert_flow_order();
        // Per-flow in-order data accumulated over the batch.
        let mut delivered: Vec<(FlowKey, Vec<u8>)> = Vec::new();
        let mut acks_to_send: Vec<FlowKey> = Vec::new();
        let mut pump_flows: Vec<FlowKey> = Vec::new();
        for frame in frames {
            let Some((h, data)) = SegHeader::decode(&frame.payload) else {
                // Corrupted on the wire: drop silently and let the
                // sender's RTO / fast-retransmit machinery recover.
                ctx.stats().counter(&self.label, "rx_checksum_drops").inc();
                continue;
            };
            let key = FlowKey {
                peer: frame.src,
                chan: h.chan,
            };
            let now = ctx.now();
            // --- data processing ---
            if h.has_data && !data.is_empty() {
                let conn = self.conn_mut(key, now);
                let seq = h.seq;
                let end = seq + data.len() as u64;
                if end <= conn.rcv_nxt {
                    // Old duplicate: re-ACK immediately.
                    if !acks_to_send.contains(&key) {
                        acks_to_send.push(key);
                    }
                } else if seq <= conn.rcv_nxt {
                    // In-order (possibly partly duplicate).
                    let skip = usize::try_from(conn.rcv_nxt - seq)
                        .expect("tcp in-order overlap fits usize");
                    let mut avail = data[skip..].to_vec();
                    conn.rcv_nxt = end;
                    // Drain contiguous out-of-order queue.
                    while let Some((&s, _)) = conn.ooo.iter().next() {
                        if s > conn.rcv_nxt {
                            break;
                        }
                        let (s, seg) = conn.ooo.pop_first().expect("peeked");
                        let seg_end = s + seg.len() as u64;
                        if seg_end > conn.rcv_nxt {
                            let skip = usize::try_from(conn.rcv_nxt - s)
                                .expect("tcp out-of-order overlap fits usize");
                            avail.extend_from_slice(&seg[skip..]);
                            conn.rcv_nxt = seg_end;
                        }
                    }
                    conn.segs_since_ack += 1;
                    let ack_now = conn.segs_since_ack >= 2 || !conn.ooo.is_empty();
                    if ack_now && !acks_to_send.contains(&key) {
                        acks_to_send.push(key);
                    }
                    match delivered.iter_mut().find(|(k, _)| *k == key) {
                        Some((_, buf)) => buf.extend_from_slice(&avail),
                        None => delivered.push((key, avail)),
                    }
                } else {
                    // Out of order: hold and send an immediate dup-ACK.
                    conn.ooo.entry(seq).or_insert_with(|| data.to_vec());
                    if !acks_to_send.contains(&key) {
                        acks_to_send.push(key);
                    }
                }
            }
            // --- ACK processing ---
            self.process_ack(key, h.ack, h.window, h.has_data, &mut pump_flows, ctx);
        }
        // Flush pending ACKs for flows that got data but under the
        // delayed-ACK threshold: the batch is done, don't sit on them
        // (moderation has already batched the wire traffic).
        for (key, _) in &delivered {
            if !acks_to_send.contains(key) {
                let conn = self.conns.get(key).expect("delivered flow exists");
                if conn.segs_since_ack > 0 {
                    acks_to_send.push(*key);
                }
            }
        }
        for key in acks_to_send {
            let seq = self.conns.get(&key).expect("ack flow").snd_nxt;
            self.transmit_segment(key, seq, &[], true, ctx);
        }
        for key in pump_flows {
            self.pump(key, ctx);
        }
        for (key, data) in delivered {
            self.bytes_delivered_total += data.len() as u64;
            ctx.stats()
                .counter(&self.label, "bytes_delivered")
                .add(data.len() as u64);
            ctx.send_now(
                self.app,
                TcpDelivered {
                    peer: key.peer,
                    chan: key.chan,
                    data,
                },
            );
        }
        // Frames may have arrived while we serviced: fire again.
        if self.moderator.pending() > 0 && !self.rx_ring.is_empty() {
            self.raise_interrupt(ctx);
        }
    }

    fn process_ack(
        &mut self,
        key: FlowKey,
        ack: u64,
        window: u32,
        carried_data: bool,
        pump_flows: &mut Vec<FlowKey>,
        ctx: &mut Ctx,
    ) {
        let now = ctx.now();
        let mut fast_retx: Option<u64> = None;
        let mut acked_seqs: Vec<u64> = Vec::new();
        {
            let params = self.params;
            let conn = self
                .conns
                .entry(key)
                .or_insert_with(|| TcpConn::new(&params, now));
            conn.peer_window = window;
            if ack > conn.snd_una {
                // New data acknowledged.
                let mut acked_bytes = 0u64;
                let mut rtt_sample: Option<f64> = None;
                while let Some((&seq, _)) = conn.inflight.iter().next() {
                    let seg_end = seq + conn.inflight[&seq].len as u64;
                    if seg_end > ack {
                        break;
                    }
                    let seg = conn.inflight.remove(&seq).expect("peeked");
                    acked_seqs.push(seq);
                    acked_bytes += seg.len as u64;
                    if !seg.retransmitted {
                        rtt_sample = Some(now.since(seg.sent_at).as_secs_f64());
                    }
                }
                conn.snd_una = ack;
                conn.dup_acks = 0;
                conn.last_activity = now;
                // RTT estimation (RFC 6298 structure, Karn's rule).
                if let Some(r) = rtt_sample {
                    match conn.srtt {
                        None => {
                            conn.srtt = Some(r);
                            conn.rttvar = r / 2.0;
                        }
                        Some(srtt) => {
                            conn.rttvar = 0.75 * conn.rttvar + 0.25 * (srtt - r).abs();
                            conn.srtt = Some(0.875 * srtt + 0.125 * r);
                        }
                    }
                    let rto = conn.srtt.expect("set") + 4.0 * conn.rttvar;
                    conn.rto = SimDuration::from_secs_f64(rto).max(params.min_rto);
                }
                // Window growth.
                if ack >= conn.recovery_until {
                    if conn.cwnd < conn.ssthresh {
                        // Slow start: one MSS per ACKed segment-worth.
                        conn.cwnd += (acked_bytes as f64).min(MSS as f64);
                    } else {
                        // Congestion avoidance: ~one MSS per RTT.
                        conn.cwnd += (MSS as f64) * (MSS as f64) / conn.cwnd;
                    }
                    conn.cwnd = conn.cwnd.min(f64::from(params.rwnd));
                }
                // Re-arm RTO for remaining flight.
                conn.rto_armed = false;
                conn.rto_generation += 1;
                if !conn.inflight.is_empty() {
                    let generation = conn.rto_generation + 1;
                    conn.rto_generation = generation;
                    conn.rto_armed = true;
                    let delay = conn.rto;
                    ctx.self_in(delay, RtoTimer { key, generation });
                }
                if !pump_flows.contains(&key) {
                    pump_flows.push(key);
                }
            } else if !carried_data && ack == conn.snd_una && !conn.inflight.is_empty() {
                // Duplicate ACK.
                conn.dup_acks += 1;
                if conn.dup_acks == 3 && ack >= conn.recovery_until {
                    // Fast retransmit + fast recovery entry.
                    let flight = conn.flight_size() as f64;
                    conn.ssthresh = (flight / 2.0).max(2.0 * MSS as f64);
                    conn.cwnd = conn.ssthresh + 3.0 * MSS as f64;
                    conn.recovery_until = conn.snd_nxt;
                    if let Some((&seq, seg)) = conn.inflight.iter_mut().next() {
                        seg.retransmitted = true;
                        seg.sent_at = now;
                        conn.retransmits += 1;
                        fast_retx = Some(seq);
                    }
                }
            }
        }
        for seq in acked_seqs {
            self.retx_store.remove(&(key, seq));
        }
        if let Some(seq) = fast_retx {
            let data = self.retransmit_bytes(key, seq);
            self.transmit_segment(key, seq, &data, false, ctx);
            ctx.stats().counter(&self.label, "fast_retransmits").inc();
        }
    }
}

impl Component for TcpHostNic {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        let ev = match ev.downcast::<TcpSend>() {
            Ok(send) => {
                // Keep a copy of the bytes for retransmission, indexed as
                // segments are cut in pump().
                self.on_app_send(*send, ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<FrameArrival>() {
            Ok(arrival) => {
                self.on_frame(arrival.frame, ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<PortTxDone>() {
            Ok(_) => {
                self.uplink.tx_done(ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<TxLaunch>() {
            Ok(launch) => {
                let ok = self.uplink.enqueue(launch.frame, ctx);
                if !ok {
                    // NIC buffer overrun: the segment is lost locally and
                    // will be recovered by RTO, exactly like wire loss.
                    ctx.stats().counter(&self.label, "nic_tx_drops").inc();
                }
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<ModTimer>() {
            Ok(t) => {
                self.on_mod_timer(t.generation, ctx);
                return;
            }
            Err(ev) => ev,
        };
        let ev = match ev.downcast::<RtoTimer>() {
            Ok(t) => {
                self.on_rto(t.key, t.generation, ctx);
                return;
            }
            Err(ev) => ev,
        };
        match ev.downcast::<ServiceBatch>() {
            Ok(batch) => self.on_service_batch(batch.frames, ctx),
            Err(_) => panic!("tcp {}: unknown event", self.label),
        }
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wait_state(&self) -> Option<String> {
        let buffered: usize = self.conns.values().map(|c| c.send_buf.len()).sum();
        let inflight: usize = self.conns.values().map(|c| c.inflight.len()).sum();
        let ooo: usize = self.conns.values().map(|c| c.ooo.len()).sum();
        if buffered == 0 && inflight == 0 && ooo == 0 && self.rx_ring.is_empty() {
            return None;
        }
        let worst_rto = self
            .conns
            .values()
            .filter(|c| c.rto_armed)
            .map(|c| c.rto)
            .max();
        let mut s = format!(
            "{} flow(s): {buffered} B unsent, {inflight} seg(s) in flight, \
             {ooo} out-of-order run(s), {} frame(s) unserviced",
            self.conns.len(),
            self.rx_ring.len(),
        );
        if let Some(rto) = worst_rto {
            s.push_str(&format!("; slowest armed RTO {rto}"));
        }
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64 — deterministic test-local byte stream generator.
    struct Gen(u64);

    impl Gen {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn bytes(&mut self, n: usize) -> Vec<u8> {
            (0..n).map(|_| self.next_u64().to_le_bytes()[0]).collect()
        }
    }

    #[test]
    fn seg_header_roundtrips() {
        let h = SegHeader {
            chan: 7,
            seq: 1 << 40,
            ack: 12345,
            has_data: true,
            window: 1 << 20,
        };
        let wire = h.encode(b"payload");
        let (back, data) = SegHeader::decode(&wire).expect("clean segment decodes");
        assert_eq!(back.chan, h.chan);
        assert_eq!(back.seq, h.seq);
        assert_eq!(back.ack, h.ack);
        assert_eq!(back.has_data, h.has_data);
        assert_eq!(back.window, h.window);
        assert_eq!(data, b"payload");
    }

    /// Property: `SegHeader::decode` must never panic — any slice of
    /// bytes off the wire either decodes or returns `None`. Random
    /// garbage, truncations of valid segments, and single-byte
    /// mutations all exercise the length and checksum guards.
    #[test]
    fn decode_never_panics_on_arbitrary_bytes() {
        let mut g = Gen(0x5EC_7C9);
        for round in 0..500 {
            let len = (g.next_u64() % 200) as usize;
            let noise = g.bytes(len);
            // Must not panic; almost surely fails the checksum.
            let _ = SegHeader::decode(&noise);
            let _ = round;
        }
    }

    #[test]
    fn decode_survives_truncations_and_mutations_of_valid_segments() {
        let mut g = Gen(0xDEC0DE);
        let h = SegHeader {
            chan: 3,
            seq: 999,
            ack: 42,
            has_data: true,
            window: 65535,
        };
        let data = g.bytes(256);
        let wire = h.encode(&data);
        assert!(SegHeader::decode(&wire).is_some());
        // Every truncation either decodes as a shorter (corrupt) view or
        // is rejected — never a panic or out-of-bounds read.
        for cut in 0..wire.len() {
            let _ = SegHeader::decode(&wire[..cut]);
        }
        // Single-byte mutations anywhere in the segment must be caught:
        // populated fields and data by the checksum, the checksum by
        // itself, and the reserved padding [27..40) by the explicit
        // must-be-zero rule (the checksum skips those bytes).
        for i in 0..wire.len() {
            let mut bent = wire.clone();
            bent[i] ^= 0x10;
            assert!(
                SegHeader::decode(&bent).is_none(),
                "mutation at byte {i} went undetected"
            );
        }
    }
}
