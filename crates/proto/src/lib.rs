//! # acc-proto — protocol models
//!
//! The paper's Section 4.1 argument is that the Gigabit Ethernet
//! cluster's poor scaling "is a characteristic of the TCP/IP protocol and
//! the PC system architecture", not of the wire. This crate implements
//! both protocol families so that claim can be reproduced rather than
//! asserted:
//!
//! * [`tcp`] — a TCP-like reliable byte stream over the simulated
//!   Ethernet: slow start (with idle restart), congestion avoidance,
//!   RTO + fast retransmit, delayed ACKs, a 64 KiB window (no window
//!   scaling — 2001 defaults), 40-byte IP+TCP header overhead, and full
//!   coupling to the host model: interrupt moderation on receive, paced
//!   PCI/DMA crossing on transmit, per-segment CPU costs.
//! * [`inic_wire`] — the INIC's application-specific protocol "built
//!   directly on Ethernet": fixed 1024-byte packets, a 16-byte
//!   checksummed header, sender-known transfer sizes, duplicate-tolerant
//!   stream reassembly, and ACK/NACK control packets for loss recovery
//!   under fault injection.

#![forbid(unsafe_code)]
#![deny(clippy::cast_possible_truncation)]

pub mod inic_wire;
pub mod tcp;

pub use inic_wire::{
    packet_count, packetize, wire_payload_bytes, InicPacket, StreamDemux, StreamRx, WireError,
    INIC_HEADER, INIC_PAYLOAD,
};
pub use tcp::{HostPathCosts, TcpDelivered, TcpHostNic, TcpParams, TcpSend};
