//! The INIC's application-specific wire protocol.
//!
//! Section 4.2: "A packet size of 1024 is reasonable since each design
//! can have a protocol built directly on Ethernet. This minimizes
//! overhead in the packets." And Section 4.1: "The protocol also has the
//! advantage of knowing exactly how much data to expect; hence, the
//! protocol needs minimal acknowledgement information."
//!
//! A transfer is a **stream**: `(src_rank, stream_id)` plus a byte total
//! that is either known a priori (the FFT transpose — the all-to-all
//! schedule fixes every block size) or learned from the final packet's
//! `fin` flag (the integer sort — bucket sizes are data-dependent, so
//! the sender marks its last packet). Packets carry a 16-byte header and
//! up to [`INIC_PAYLOAD`] data bytes; the receiver's [`StreamRx`]
//! tracker detects completion by byte count — no ACKs, no
//! retransmission machinery. Loss-freedom is an *invariant* the cluster
//! tests assert (the schedule never oversubscribes switch buffers), not
//! something the protocol recovers from.

use std::collections::{BTreeMap, HashMap};

/// Data bytes per INIC packet (the paper's 1024).
pub const INIC_PAYLOAD: usize = 1024;

/// Header bytes per INIC packet.
pub const INIC_HEADER: usize = 16;

/// One packet of an INIC stream.
#[derive(Clone, Debug, PartialEq)]
pub struct InicPacket {
    /// Sending rank (cluster-level id, not MAC).
    pub src_rank: u32,
    /// Stream identifier, unique per (src, transfer).
    pub stream: u32,
    /// Byte offset of this packet's payload within the stream.
    pub offset: u32,
    /// Marks the stream's final packet; `offset + data.len()` is then
    /// the stream total.
    pub fin: bool,
    /// A flow-control credit rather than data: `offset` carries the
    /// number of payload bytes the receiver has consumed and re-grants
    /// to the sender's window. Credits never enter stream reassembly.
    pub credit: bool,
    /// Payload bytes (≤ [`INIC_PAYLOAD`]).
    pub data: Vec<u8>,
}

impl InicPacket {
    /// Encode to the Ethernet payload: 16-byte header then data.
    pub fn encode(&self) -> Vec<u8> {
        assert!(self.data.len() <= INIC_PAYLOAD, "INIC packet over-long");
        let mut out = Vec::with_capacity(INIC_HEADER + self.data.len());
        out.extend_from_slice(&self.src_rank.to_le_bytes());
        out.extend_from_slice(&self.stream.to_le_bytes());
        out.extend_from_slice(&self.offset.to_le_bytes());
        out.extend_from_slice(&(self.data.len() as u16).to_le_bytes());
        let flags = u16::from(self.fin) | (u16::from(self.credit) << 1);
        out.extend_from_slice(&flags.to_le_bytes());
        out.extend_from_slice(&self.data);
        out
    }

    /// Decode from an Ethernet payload.
    ///
    /// # Panics
    /// Panics on malformed packets — corruption cannot occur in the
    /// simulator, so it indicates a datapath bug.
    pub fn decode(bytes: &[u8]) -> InicPacket {
        assert!(bytes.len() >= INIC_HEADER, "short INIC packet");
        let src_rank = u32::from_le_bytes(bytes[0..4].try_into().unwrap());
        let stream = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let offset = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        let len = u16::from_le_bytes(bytes[12..14].try_into().unwrap()) as usize;
        let flags = u16::from_le_bytes(bytes[14..16].try_into().unwrap());
        assert_eq!(bytes.len(), INIC_HEADER + len, "INIC length mismatch");
        InicPacket {
            src_rank,
            stream,
            offset,
            fin: flags & 1 != 0,
            credit: flags & 2 != 0,
            data: bytes[INIC_HEADER..].to_vec(),
        }
    }

    /// Split a buffer into a stream's packets, marking the last `fin`.
    /// An empty buffer yields one zero-length fin packet so the receiver
    /// still learns the (zero) total.
    pub fn packetize(src_rank: u32, stream: u32, data: &[u8]) -> Vec<InicPacket> {
        if data.is_empty() {
            return vec![InicPacket {
                src_rank,
                stream,
                offset: 0,
                fin: true,
                credit: false,
                data: vec![],
            }];
        }
        let n = data.len().div_ceil(INIC_PAYLOAD);
        data.chunks(INIC_PAYLOAD)
            .enumerate()
            .map(|(i, chunk)| InicPacket {
                src_rank,
                stream,
                offset: (i * INIC_PAYLOAD) as u32,
                fin: i == n - 1,
                credit: false,
                data: chunk.to_vec(),
            })
            .collect()
    }

    /// Packets needed for `bytes` of data (at least one — the fin).
    pub fn packet_count(bytes: u64) -> u64 {
        bytes.div_ceil(INIC_PAYLOAD as u64).max(1)
    }

    /// Total Ethernet payload bytes (headers included) for a `bytes`
    /// stream — the protocol-efficiency number the models use.
    pub fn wire_payload_bytes(bytes: u64) -> u64 {
        bytes + Self::packet_count(bytes) * INIC_HEADER as u64
    }
}

/// Reassembles one incoming stream. The total size may be known a
/// priori ([`StreamRx::new`]) or learned from the fin packet
/// ([`StreamRx::new_unknown`]).
#[derive(Debug)]
pub struct StreamRx {
    total: Option<usize>,
    received: usize,
    segments: BTreeMap<u32, Vec<u8>>,
}

impl StreamRx {
    /// Start expecting exactly `total` bytes.
    pub fn new(total: usize) -> StreamRx {
        StreamRx {
            total: Some(total),
            received: 0,
            segments: BTreeMap::new(),
        }
    }

    /// Start a stream whose size the fin packet will reveal.
    pub fn new_unknown() -> StreamRx {
        StreamRx {
            total: None,
            received: 0,
            segments: BTreeMap::new(),
        }
    }

    /// Accept one packet. Duplicate packets panic — the INIC protocol
    /// never retransmits, so a duplicate is a simulator bug.
    pub fn accept(&mut self, pkt: &InicPacket) {
        assert!(!pkt.credit, "credit packets never enter reassembly");
        if pkt.fin {
            let implied = pkt.offset as usize + pkt.data.len();
            if let Some(t) = self.total {
                assert_eq!(t, implied, "fin total disagrees with announced total");
            }
            self.total = Some(implied);
        }
        if pkt.data.is_empty() {
            return;
        }
        let prev = self.segments.insert(pkt.offset, pkt.data.clone());
        assert!(
            prev.is_none(),
            "duplicate INIC packet at offset {}",
            pkt.offset
        );
        self.received += pkt.data.len();
        if let Some(t) = self.total {
            assert!(self.received <= t, "stream overran its total");
        }
    }

    /// Bytes received so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Whether the whole stream has arrived (requires the total to be
    /// known, via announcement or fin).
    pub fn complete(&self) -> bool {
        self.total == Some(self.received)
    }

    /// Take the reassembled bytes.
    ///
    /// # Panics
    /// Panics if the stream is incomplete.
    pub fn into_bytes(self) -> Vec<u8> {
        assert!(
            self.complete(),
            "stream incomplete: {}/{:?}",
            self.received,
            self.total
        );
        let total = self.total.expect("complete implies known total");
        let mut out = Vec::with_capacity(total);
        let mut expect = 0u32;
        for (off, seg) in self.segments {
            assert_eq!(off, expect, "gap in completed stream");
            expect += seg.len() as u32;
            out.extend_from_slice(&seg);
        }
        assert_eq!(out.len(), total);
        out
    }
}

/// Tracks multiple concurrent inbound streams keyed by `(src, stream)` —
/// the receive side of the all-to-all, where P−1 streams interleave.
#[derive(Default, Debug)]
pub struct StreamDemux {
    streams: HashMap<(u32, u32), StreamRx>,
}

impl StreamDemux {
    /// Empty demux.
    pub fn new() -> StreamDemux {
        Self::default()
    }

    /// Announce an expected stream with a known size.
    pub fn expect(&mut self, src_rank: u32, stream: u32, total: usize) {
        let prev = self.streams.insert((src_rank, stream), StreamRx::new(total));
        assert!(prev.is_none(), "stream ({src_rank},{stream}) announced twice");
    }

    /// Announce an expected stream whose size the fin packet reveals.
    pub fn expect_unknown(&mut self, src_rank: u32, stream: u32) {
        let prev = self
            .streams
            .insert((src_rank, stream), StreamRx::new_unknown());
        assert!(prev.is_none(), "stream ({src_rank},{stream}) announced twice");
    }

    /// Feed one packet; returns the completed stream's bytes when this
    /// packet finishes it.
    pub fn accept(&mut self, pkt: &InicPacket) -> Option<(u32, u32, Vec<u8>)> {
        let key = (pkt.src_rank, pkt.stream);
        let rx = self
            .streams
            .get_mut(&key)
            .unwrap_or_else(|| panic!("packet for unannounced stream {key:?}"));
        rx.accept(pkt);
        if rx.complete() {
            let rx = self.streams.remove(&key).expect("present");
            Some((key.0, key.1, rx.into_bytes()))
        } else {
            None
        }
    }

    /// Number of still-open streams.
    pub fn open_streams(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credit_flag_roundtrips() {
        let c = InicPacket {
            src_rank: 5,
            stream: 1,
            offset: 16384, // credited bytes
            fin: false,
            credit: true,
            data: vec![],
        };
        let d = InicPacket::decode(&c.encode());
        assert!(d.credit && !d.fin);
        assert_eq!(d.offset, 16384);
    }

    #[test]
    #[should_panic(expected = "credit packets never enter reassembly")]
    fn reassembly_rejects_credits() {
        let mut rx = StreamRx::new_unknown();
        rx.accept(&InicPacket {
            src_rank: 0,
            stream: 0,
            offset: 0,
            fin: false,
            credit: true,
            data: vec![],
        });
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = InicPacket {
            src_rank: 3,
            stream: 9,
            offset: 2048,
            fin: true,
            credit: false,
            data: (0..100u8).collect(),
        };
        assert_eq!(InicPacket::decode(&p.encode()), p);
    }

    #[test]
    fn packetize_covers_data_exactly_and_marks_fin() {
        let data: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        let pkts = InicPacket::packetize(1, 2, &data);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts[0].data.len(), 1024);
        assert_eq!(pkts[2].data.len(), 952);
        assert_eq!(pkts[1].offset, 1024);
        assert!(!pkts[0].fin && !pkts[1].fin && pkts[2].fin);
        let total: usize = pkts.iter().map(|p| p.data.len()).sum();
        assert_eq!(total, data.len());
    }

    #[test]
    fn empty_stream_still_sends_a_fin() {
        let pkts = InicPacket::packetize(0, 0, &[]);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].fin && pkts[0].data.is_empty());
        let mut rx = StreamRx::new_unknown();
        rx.accept(&pkts[0]);
        assert!(rx.complete());
        assert!(rx.into_bytes().is_empty());
    }

    #[test]
    fn wire_overhead_is_under_two_percent() {
        // 16/1040 ≈ 1.5% — the "minimal overhead" claim.
        let data = 1_000_000u64;
        let wire = InicPacket::wire_payload_bytes(data);
        let overhead = wire as f64 / data as f64 - 1.0;
        assert!(overhead < 0.02, "overhead {overhead}");
    }

    #[test]
    fn stream_rx_reassembles_out_of_order() {
        let data: Vec<u8> = (0..2500).map(|i| (i % 241) as u8).collect();
        let pkts = InicPacket::packetize(0, 0, &data);
        let mut rx = StreamRx::new(data.len());
        for p in pkts.iter().rev() {
            rx.accept(p);
        }
        assert!(rx.complete());
        assert_eq!(rx.into_bytes(), data);
    }

    #[test]
    fn unknown_total_learned_from_fin() {
        let data = vec![7u8; 1500];
        let pkts = InicPacket::packetize(0, 0, &data);
        let mut rx = StreamRx::new_unknown();
        rx.accept(&pkts[0]);
        assert!(!rx.complete());
        rx.accept(&pkts[1]);
        assert!(rx.complete());
        assert_eq!(rx.into_bytes(), data);
    }

    #[test]
    #[should_panic(expected = "duplicate INIC packet")]
    fn duplicate_packet_panics() {
        let pkts = InicPacket::packetize(0, 0, &[1u8; 100]);
        let mut rx = StreamRx::new(100);
        rx.accept(&pkts[0]);
        rx.accept(&pkts[0]);
    }

    #[test]
    #[should_panic(expected = "fin total disagrees")]
    fn fin_mismatch_panics() {
        let mut rx = StreamRx::new(500);
        rx.accept(&InicPacket {
            src_rank: 0,
            stream: 0,
            offset: 0,
            fin: true,
            credit: false,
            data: vec![0; 100],
        });
    }

    #[test]
    fn demux_tracks_concurrent_streams() {
        let a: Vec<u8> = vec![1; 2048];
        let b: Vec<u8> = vec![2; 1024];
        let mut demux = StreamDemux::new();
        demux.expect(0, 7, a.len());
        demux.expect_unknown(1, 7);
        let pa = InicPacket::packetize(0, 7, &a);
        let pb = InicPacket::packetize(1, 7, &b);
        assert!(demux.accept(&pa[0]).is_none());
        let done_b = demux.accept(&pb[0]);
        assert_eq!(done_b, Some((1, 7, b)));
        let done_a = demux.accept(&pa[1]);
        assert_eq!(done_a, Some((0, 7, a)));
        assert_eq!(demux.open_streams(), 0);
    }

    #[test]
    #[should_panic(expected = "unannounced stream")]
    fn unannounced_stream_panics() {
        let mut demux = StreamDemux::new();
        let p = InicPacket::packetize(0, 0, &[0u8; 10]);
        demux.accept(&p[0]);
    }
}
