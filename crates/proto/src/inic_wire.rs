//! The INIC's lightweight application-specific protocol, built directly
//! on Ethernet (Section 4.2: "each design can have a protocol built
//! directly on Ethernet, lowering the processing requirements and
//! latency"; Section 4.1: "The protocol also has the advantage of
//! knowing exactly how much data to expect; hence, the protocol needs
//! minimal acknowledgement information").
//!
//! The wire format is a fixed 16-byte header in front of up to
//! [`INIC_PAYLOAD`] bytes of data:
//!
//! ```text
//! [0..2)   src_rank   u16 LE — sending node's rank
//! [2..4)   stream     u16 LE — application stream id
//! [4..8)   offset     u32 LE — byte offset of this payload in the stream
//! [8..10)  len        u16 LE — payload length
//! [10..12) flags      u16 LE — FIN | CREDIT | NACK | ACK | BUSY
//! [12..16) checksum   u32 LE — FNV-1a over header bytes [0..12) + data
//! ```
//!
//! The checksum makes corruption *detectable*; the `offset` field makes
//! retransmission *idempotent* (a duplicate lands on an already-filled
//! segment and is ignored); ACK/NACK control packets make loss
//! *recoverable* by the sender-side window in the card model. On a clean
//! fabric none of the recovery machinery runs — the header is the same
//! 16 bytes the paper's protocol pays either way.

use std::collections::{BTreeMap, BTreeSet};

/// Maximum data bytes per INIC packet. The paper's prototype uses
/// 1024-byte packets ("packets with 1 KB of data each").
pub const INIC_PAYLOAD: usize = 1024;

/// The fixed header size.
pub const INIC_HEADER: usize = 16;

const FLAG_FIN: u16 = 1 << 0;
const FLAG_CREDIT: u16 = 1 << 1;
const FLAG_NACK: u16 = 1 << 2;
const FLAG_ACK: u16 = 1 << 3;
const FLAG_BUSY: u16 = 1 << 4;

/// Why a packet failed to encode or decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WireError {
    /// Fewer bytes than one header.
    Short,
    /// The header's length field disagrees with the bytes present.
    LengthMismatch,
    /// The checksum does not cover the bytes received — corruption.
    Checksum,
    /// An id field (`src_rank` or `stream`) exceeds its 16-bit wire
    /// width — encoding would wrap it and deliver to the wrong peer.
    IdOverflow,
    /// The payload exceeds [`INIC_PAYLOAD`].
    Oversize,
}

/// FNV-1a over a couple of byte slices — cheap, deterministic, and
/// sensitive to single-bit flips anywhere in header or data.
fn fnv1a(parts: &[&[u8]]) -> u32 {
    let mut h: u32 = 0x811C_9DC5;
    for part in parts {
        for &b in *part {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
    }
    h
}

/// One packet of the INIC protocol.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct InicPacket {
    /// Sending node's rank.
    pub src_rank: u32,
    /// Application stream id.
    pub stream: u32,
    /// Byte offset of `data` within the stream; for a CREDIT packet the
    /// re-granted byte count; for a NACK the first missing offset.
    pub offset: u32,
    /// Last packet of the stream.
    pub fin: bool,
    /// Flow-control credit grant (no data).
    pub credit: bool,
    /// Receiver-side repair request: "resend from `offset`" (no data).
    pub nack: bool,
    /// Stream fully received (no data); the sender may drop its window.
    pub ack: bool,
    /// Sender's card is reconfiguring: "alive but dark, hold your
    /// retransmissions" — `offset` carries the hold in microseconds
    /// (no data).
    pub busy: bool,
    /// Payload bytes.
    pub data: Vec<u8>,
}

impl InicPacket {
    /// A flow-control credit grant of `amount` bytes for `stream`.
    pub fn credit_grant(src_rank: u32, stream: u32, amount: u32) -> InicPacket {
        InicPacket {
            src_rank,
            stream,
            offset: amount,
            fin: false,
            credit: true,
            nack: false,
            ack: false,
            busy: false,
            data: Vec::new(),
        }
    }

    /// A stream-complete acknowledgement.
    pub fn stream_ack(src_rank: u32, stream: u32) -> InicPacket {
        InicPacket {
            src_rank,
            stream,
            offset: 0,
            fin: false,
            credit: false,
            nack: false,
            ack: true,
            busy: false,
            data: Vec::new(),
        }
    }

    /// A repair request for the gap starting at `missing`.
    pub fn repair_nack(src_rank: u32, stream: u32, missing: u32) -> InicPacket {
        InicPacket {
            src_rank,
            stream,
            offset: missing,
            fin: false,
            credit: false,
            nack: true,
            ack: false,
            busy: false,
            data: Vec::new(),
        }
    }

    /// A "card reconfiguring" notice: the sender is alive but dark for
    /// `hold_micros` microseconds; peers should park retransmissions
    /// instead of counting them toward abandonment.
    pub fn reconfig_busy(src_rank: u32, hold_micros: u32) -> InicPacket {
        InicPacket {
            src_rank,
            stream: 0,
            offset: hold_micros,
            fin: false,
            credit: false,
            nack: false,
            ack: false,
            busy: true,
            data: Vec::new(),
        }
    }

    /// Whether this is a control packet that must never enter stream
    /// reassembly.
    pub fn is_control(&self) -> bool {
        self.credit || self.nack || self.ack || self.busy
    }

    /// Serialize to wire bytes.
    ///
    /// # Panics
    /// Panics if the payload exceeds [`INIC_PAYLOAD`] or an id field
    /// overflows its wire width — protocol bugs, not runtime
    /// conditions. Callers that would rather surface the error than
    /// unwind use [`try_encode`](Self::try_encode).
    pub fn encode(&self) -> Vec<u8> {
        self.try_encode().unwrap_or_else(|e| {
            panic!(
                "unencodable INIC packet (src_rank {}, stream {}, {} data bytes): {e:?}",
                self.src_rank,
                self.stream,
                self.data.len()
            )
        })
    }

    /// Serialize to wire bytes, rejecting packets the 16-byte header
    /// cannot faithfully represent.
    ///
    /// Regression guard: the wire format carries `src_rank` and
    /// `stream` as u16, and encode used to truncate the u32 fields with
    /// a bare `as u16` — a rank or stream id ≥ 65536 wrapped on the
    /// wire and decoded as the *wrong peer*. Out-of-range ids now fail
    /// with [`WireError::IdOverflow`] instead of wrapping.
    pub fn try_encode(&self) -> Result<Vec<u8>, WireError> {
        if self.data.len() > INIC_PAYLOAD {
            return Err(WireError::Oversize);
        }
        let src_rank = u16::try_from(self.src_rank).map_err(|_| WireError::IdOverflow)?;
        let stream = u16::try_from(self.stream).map_err(|_| WireError::IdOverflow)?;
        let len = u16::try_from(self.data.len())
            .expect("inic payload length bounded by INIC_PAYLOAD (1024)");
        let mut out = vec![0u8; INIC_HEADER + self.data.len()];
        out[0..2].copy_from_slice(&src_rank.to_le_bytes());
        out[2..4].copy_from_slice(&stream.to_le_bytes());
        out[4..8].copy_from_slice(&self.offset.to_le_bytes());
        out[8..10].copy_from_slice(&len.to_le_bytes());
        let mut flags = 0u16;
        if self.fin {
            flags |= FLAG_FIN;
        }
        if self.credit {
            flags |= FLAG_CREDIT;
        }
        if self.nack {
            flags |= FLAG_NACK;
        }
        if self.ack {
            flags |= FLAG_ACK;
        }
        if self.busy {
            flags |= FLAG_BUSY;
        }
        out[10..12].copy_from_slice(&flags.to_le_bytes());
        let sum = fnv1a(&[&out[0..12], &self.data]);
        out[12..16].copy_from_slice(&sum.to_le_bytes());
        out[INIC_HEADER..].copy_from_slice(&self.data);
        Ok(out)
    }

    /// Parse wire bytes, verifying structure and checksum.
    pub fn decode(bytes: &[u8]) -> Result<InicPacket, WireError> {
        if bytes.len() < INIC_HEADER {
            return Err(WireError::Short);
        }
        let len = usize::from(u16::from_le_bytes(
            bytes[8..10].try_into().expect("inic len slice is 2 bytes"),
        ));
        if bytes.len() != INIC_HEADER + len {
            return Err(WireError::LengthMismatch);
        }
        let want = u32::from_le_bytes(
            bytes[12..16]
                .try_into()
                .expect("inic checksum slice is 4 bytes"),
        );
        if fnv1a(&[&bytes[0..12], &bytes[INIC_HEADER..]]) != want {
            return Err(WireError::Checksum);
        }
        let flags = u16::from_le_bytes(
            bytes[10..12]
                .try_into()
                .expect("inic flags slice is 2 bytes"),
        );
        Ok(InicPacket {
            src_rank: u32::from(u16::from_le_bytes(
                bytes[0..2]
                    .try_into()
                    .expect("inic src_rank slice is 2 bytes"),
            )),
            stream: u32::from(u16::from_le_bytes(
                bytes[2..4]
                    .try_into()
                    .expect("inic stream slice is 2 bytes"),
            )),
            offset: u32::from_le_bytes(
                bytes[4..8]
                    .try_into()
                    .expect("inic offset slice is 4 bytes"),
            ),
            fin: flags & FLAG_FIN != 0,
            credit: flags & FLAG_CREDIT != 0,
            nack: flags & FLAG_NACK != 0,
            ack: flags & FLAG_ACK != 0,
            busy: flags & FLAG_BUSY != 0,
            data: bytes[INIC_HEADER..].to_vec(),
        })
    }
}

/// Split `data` into a stream of packets; the last carries FIN. Empty
/// data becomes a single zero-length FIN packet.
pub fn packetize(src_rank: u32, stream: u32, data: &[u8]) -> Vec<InicPacket> {
    if data.is_empty() {
        return vec![InicPacket {
            src_rank,
            stream,
            offset: 0,
            fin: true,
            credit: false,
            nack: false,
            ack: false,
            busy: false,
            data: Vec::new(),
        }];
    }
    let mut out = Vec::with_capacity(data.len().div_ceil(INIC_PAYLOAD));
    let mut offset = 0usize;
    while offset < data.len() {
        let end = (offset + INIC_PAYLOAD).min(data.len());
        out.push(InicPacket {
            src_rank,
            stream,
            offset: u32::try_from(offset).expect("inic stream offset fits the 32-bit wire field"),
            fin: end == data.len(),
            credit: false,
            nack: false,
            ack: false,
            busy: false,
            data: data[offset..end].to_vec(),
        });
        offset = end;
    }
    out
}

/// Number of packets `bytes` of data occupy.
pub fn packet_count(bytes: usize) -> usize {
    if bytes == 0 {
        1
    } else {
        bytes.div_ceil(INIC_PAYLOAD)
    }
}

/// Total wire payload (headers + data) for `bytes` of stream data.
pub fn wire_payload_bytes(bytes: usize) -> usize {
    bytes + packet_count(bytes) * INIC_HEADER
}

/// Reassembly state of one incoming stream from one source.
///
/// Duplicate packets (retransmissions) are detected by offset and
/// ignored, so sender-side recovery is idempotent here.
pub struct StreamRx {
    total: Option<usize>,
    received: usize,
    segments: BTreeMap<u32, Vec<u8>>,
}

impl StreamRx {
    /// Expect exactly `total` bytes.
    pub fn new(total: usize) -> StreamRx {
        StreamRx {
            total: Some(total),
            received: 0,
            segments: BTreeMap::new(),
        }
    }

    /// Expect an unknown number of bytes; the FIN packet announces the
    /// total.
    pub fn new_unknown() -> StreamRx {
        StreamRx {
            total: None,
            received: 0,
            segments: BTreeMap::new(),
        }
    }

    /// Fold one packet in. Returns `true` if it carried new bytes,
    /// `false` for a duplicate (already-seen offset), which is ignored.
    ///
    /// # Panics
    /// Panics on control packets and on structural inconsistencies
    /// (total mismatch, overrun) — those are protocol bugs; corruption
    /// is already filtered out by the decode checksum.
    pub fn accept(&mut self, pkt: &InicPacket) -> bool {
        assert!(!pkt.is_control(), "control packets never enter reassembly");
        if self.segments.contains_key(&pkt.offset) {
            // A retransmission of a segment we already hold.
            return false;
        }
        if pkt.fin {
            let announced =
                usize::try_from(pkt.offset).expect("inic offset fits usize") + pkt.data.len();
            match self.total {
                Some(t) => assert_eq!(t, announced, "fin total disagrees with announced total"),
                None => self.total = Some(announced),
            }
        }
        self.received += pkt.data.len();
        if let Some(t) = self.total {
            assert!(self.received <= t, "stream overran its total");
        }
        self.segments.insert(pkt.offset, pkt.data.clone());
        true
    }

    /// Bytes received so far.
    pub fn received(&self) -> usize {
        self.received
    }

    /// Whether every byte has arrived.
    pub fn complete(&self) -> bool {
        self.total == Some(self.received)
    }

    /// The first missing byte offset, or `None` if no gap is known
    /// (stream complete, or tail still open with an unknown total).
    pub fn missing(&self) -> Option<u32> {
        let mut expected = 0u32;
        for (&off, seg) in &self.segments {
            if off > expected {
                return Some(expected);
            }
            expected =
                off + u32::try_from(seg.len()).expect("inic segment length fits the 32-bit offset");
        }
        match self.total {
            Some(t) if usize::try_from(expected).expect("inic offset fits usize") < t => {
                Some(expected)
            }
            _ => None,
        }
    }

    /// Concatenate the stream.
    ///
    /// # Panics
    /// Panics if the stream is incomplete.
    pub fn into_bytes(self) -> Vec<u8> {
        assert!(self.complete(), "stream incomplete");
        let mut out = Vec::with_capacity(self.received);
        for (_, seg) in self.segments {
            out.extend_from_slice(&seg);
        }
        out
    }
}

/// Demultiplexes packets of many `(src_rank, stream)` flows into their
/// [`StreamRx`] states, remembering completed flows so that late
/// retransmissions are absorbed instead of resurrecting them.
#[derive(Default)]
pub struct StreamDemux {
    streams: BTreeMap<(u32, u32), StreamRx>,
    completed: BTreeSet<(u32, u32)>,
}

impl StreamDemux {
    /// Empty demux.
    pub fn new() -> StreamDemux {
        StreamDemux::default()
    }

    /// Announce a flow with a known total.
    pub fn expect(&mut self, src_rank: u32, stream: u32, total: usize) {
        let prev = self
            .streams
            .insert((src_rank, stream), StreamRx::new(total));
        assert!(
            prev.is_none(),
            "stream ({src_rank},{stream}) announced twice"
        );
    }

    /// Announce a flow whose total the FIN will reveal.
    pub fn expect_unknown(&mut self, src_rank: u32, stream: u32) {
        let prev = self
            .streams
            .insert((src_rank, stream), StreamRx::new_unknown());
        assert!(
            prev.is_none(),
            "stream ({src_rank},{stream}) announced twice"
        );
    }

    /// Fold one packet in; returns the assembled bytes when its flow
    /// completes. Packets for already-completed flows return `None`
    /// (late retransmissions are dropped silently).
    ///
    /// # Panics
    /// Panics on packets for flows never announced.
    pub fn accept(&mut self, pkt: &InicPacket) -> Option<(u32, u32, Vec<u8>)> {
        let key = (pkt.src_rank, pkt.stream);
        if self.completed.contains(&key) {
            return None;
        }
        let rx = self
            .streams
            .get_mut(&key)
            .unwrap_or_else(|| panic!("packet for unannounced stream {key:?}"));
        rx.accept(pkt);
        if rx.complete() {
            let rx = self
                .streams
                .remove(&key)
                .expect("demux: completed stream present in table");
            self.completed.insert(key);
            return Some((key.0, key.1, rx.into_bytes()));
        }
        None
    }

    /// Whether a flow has fully completed.
    pub fn is_completed(&self, src_rank: u32, stream: u32) -> bool {
        self.completed.contains(&(src_rank, stream))
    }

    /// The first missing offset of an open flow, if it has a known gap.
    pub fn missing(&self, src_rank: u32, stream: u32) -> Option<u32> {
        self.streams
            .get(&(src_rank, stream))
            .and_then(StreamRx::missing)
    }

    /// Number of announced, incomplete flows.
    pub fn open_streams(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data_pkt(src: u32, stream: u32, offset: u32, fin: bool, data: Vec<u8>) -> InicPacket {
        InicPacket {
            src_rank: src,
            stream,
            offset,
            fin,
            credit: false,
            nack: false,
            ack: false,
            busy: false,
            data,
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let pkt = data_pkt(3, 7, 2048, true, (0..255).collect());
        let decoded = InicPacket::decode(&pkt.encode()).unwrap();
        assert_eq!(decoded, pkt);
    }

    #[test]
    fn control_flags_roundtrip() {
        for pkt in [
            InicPacket::credit_grant(1, 2, 6144),
            InicPacket::stream_ack(4, 9),
            InicPacket::repair_nack(5, 1, 3072),
            InicPacket::reconfig_busy(3, 2000),
        ] {
            assert!(pkt.is_control());
            assert_eq!(InicPacket::decode(&pkt.encode()).unwrap(), pkt);
        }
    }

    #[test]
    fn try_encode_rejects_id_overflow_instead_of_truncating() {
        // Regression: encode used to cast src_rank/stream to u16 with a
        // bare `as`, so rank 65536 went out on the wire as rank 0 and
        // the receiver attributed the stream to the wrong peer.
        let bad_rank = data_pkt(1 << 16, 0, 0, true, vec![1, 2, 3]);
        assert_eq!(bad_rank.try_encode(), Err(WireError::IdOverflow));
        let bad_stream = data_pkt(0, u32::from(u16::MAX) + 1, 0, true, Vec::new());
        assert_eq!(bad_stream.try_encode(), Err(WireError::IdOverflow));
    }

    #[test]
    fn try_encode_accepts_maximum_representable_ids() {
        let max = u32::from(u16::MAX);
        let pkt = data_pkt(max, max, 0, true, vec![0xEE; 8]);
        let bytes = pkt.try_encode().expect("65535 fits the u16 wire field");
        assert_eq!(InicPacket::decode(&bytes).unwrap(), pkt);
    }

    #[test]
    fn try_encode_rejects_oversize_payload() {
        let pkt = data_pkt(0, 0, 0, true, vec![0; INIC_PAYLOAD + 1]);
        assert_eq!(pkt.try_encode(), Err(WireError::Oversize));
    }

    #[test]
    #[should_panic(expected = "unencodable INIC packet")]
    fn encode_panics_on_id_overflow() {
        data_pkt(1 << 16, 0, 0, true, Vec::new()).encode();
    }

    #[test]
    fn short_packet_rejected() {
        assert_eq!(InicPacket::decode(&[0u8; 5]), Err(WireError::Short));
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut bytes = data_pkt(0, 0, 0, true, vec![1; 100]).encode();
        bytes.truncate(bytes.len() - 1);
        assert_eq!(InicPacket::decode(&bytes), Err(WireError::LengthMismatch));
    }

    #[test]
    fn checksum_catches_single_byte_flips() {
        let clean = data_pkt(2, 3, 1024, false, vec![0xAB; 256]).encode();
        assert!(InicPacket::decode(&clean).is_ok());
        // Flip one byte anywhere — header, data, or the checksum field
        // itself — and decode must fail. (A flip in the length field is
        // caught as a length mismatch rather than a checksum error.)
        for i in 0..clean.len() {
            let mut bent = clean.clone();
            bent[i] ^= 0x40;
            assert!(
                InicPacket::decode(&bent).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn packetize_splits_and_sets_fin() {
        let data: Vec<u8> = (0..3000).map(|i| (i % 251) as u8).collect();
        let pkts = packetize(1, 5, &data);
        assert_eq!(pkts.len(), 3);
        assert_eq!(pkts.len(), packet_count(data.len()));
        assert_eq!(pkts[0].data.len(), INIC_PAYLOAD);
        assert_eq!(pkts[2].data.len(), 3000 - 2 * INIC_PAYLOAD);
        assert!(pkts[2].fin && !pkts[0].fin && !pkts[1].fin);
        assert_eq!(pkts[1].offset, 1024);
    }

    #[test]
    fn empty_stream_is_one_fin_packet() {
        let pkts = packetize(0, 1, &[]);
        assert_eq!(pkts.len(), 1);
        assert!(pkts[0].fin && pkts[0].data.is_empty());
        assert_eq!(packet_count(0), 1);
    }

    #[test]
    fn reassembly_in_any_order() {
        let data: Vec<u8> = (0..2500).map(|i| (i % 241) as u8).collect();
        let mut pkts = packetize(9, 2, &data);
        pkts.reverse();
        let mut rx = StreamRx::new(data.len());
        for p in &pkts {
            assert!(rx.accept(p));
        }
        assert!(rx.complete());
        assert_eq!(rx.into_bytes(), data);
    }

    #[test]
    fn duplicates_are_ignored_not_fatal() {
        let data = vec![7u8; 2000];
        let pkts = packetize(0, 1, &data);
        let mut rx = StreamRx::new(data.len());
        assert!(rx.accept(&pkts[0]));
        assert!(!rx.accept(&pkts[0]), "duplicate must be a no-op");
        assert!(rx.accept(&pkts[1]));
        assert!(!rx.accept(&pkts[1]), "duplicate after completion too");
        assert!(rx.complete());
        assert_eq!(rx.received(), data.len());
        assert_eq!(rx.into_bytes(), data);
    }

    #[test]
    fn missing_reports_first_gap() {
        let data = vec![1u8; 3 * INIC_PAYLOAD];
        let pkts = packetize(0, 1, &data);
        let mut rx = StreamRx::new(data.len());
        rx.accept(&pkts[2]);
        assert_eq!(rx.missing(), Some(0));
        rx.accept(&pkts[0]);
        assert_eq!(
            rx.missing(),
            Some(u32::try_from(INIC_PAYLOAD).expect("INIC_PAYLOAD fits u32"))
        );
        rx.accept(&pkts[1]);
        assert_eq!(rx.missing(), None);
    }

    #[test]
    fn missing_sees_open_tail_with_known_total() {
        let data = vec![1u8; 3 * INIC_PAYLOAD];
        let pkts = packetize(0, 1, &data);
        let mut rx = StreamRx::new(data.len());
        rx.accept(&pkts[0]);
        rx.accept(&pkts[1]);
        assert_eq!(
            rx.missing(),
            Some(2 * u32::try_from(INIC_PAYLOAD).expect("INIC_PAYLOAD fits u32"))
        );
    }

    #[test]
    #[should_panic(expected = "fin total disagrees")]
    fn fin_mismatch_panics() {
        let mut rx = StreamRx::new(100);
        rx.accept(&data_pkt(0, 0, 0, true, vec![0; 50]));
    }

    #[test]
    #[should_panic(expected = "never enter reassembly")]
    fn reassembly_rejects_credits() {
        let mut rx = StreamRx::new_unknown();
        rx.accept(&InicPacket::credit_grant(0, 0, 1024));
    }

    #[test]
    fn demux_routes_and_completes() {
        let a = vec![3u8; 1500];
        let b = vec![4u8; 800];
        let mut demux = StreamDemux::new();
        demux.expect(0, 1, a.len());
        demux.expect_unknown(1, 1);
        assert_eq!(demux.open_streams(), 2);
        let mut done = Vec::new();
        for p in packetize(0, 1, &a).iter().chain(packetize(1, 1, &b).iter()) {
            if let Some(d) = demux.accept(p) {
                done.push(d);
            }
        }
        assert_eq!(done, vec![(0, 1, a), (1, 1, b)]);
        assert_eq!(demux.open_streams(), 0);
        assert!(demux.is_completed(0, 1) && demux.is_completed(1, 1));
    }

    #[test]
    fn demux_absorbs_late_retransmissions() {
        let data = vec![9u8; 600];
        let pkts = packetize(2, 4, &data);
        let mut demux = StreamDemux::new();
        demux.expect(2, 4, data.len());
        assert!(demux.accept(&pkts[0]).is_some());
        // The flow is done; a straggling retransmission just vanishes.
        assert_eq!(demux.accept(&pkts[0]), None);
        assert!(demux.is_completed(2, 4));
    }

    #[test]
    #[should_panic(expected = "unannounced stream")]
    fn unannounced_stream_panics() {
        let mut demux = StreamDemux::new();
        demux.accept(&data_pkt(5, 5, 0, true, vec![1]));
    }

    #[test]
    #[should_panic(expected = "announced twice")]
    fn double_announce_panics() {
        let mut demux = StreamDemux::new();
        demux.expect(0, 0, 10);
        demux.expect_unknown(0, 0);
    }

    #[test]
    fn wire_overhead_is_under_two_percent() {
        // 16B header on 1024B payload ≈ 1.5% — the lightweight protocol
        // the paper contrasts with TCP/IP's 40+ bytes.
        let bytes = 1 << 20;
        let wire = wire_payload_bytes(bytes);
        let overhead = (wire - bytes) as f64 / bytes as f64;
        assert!(overhead < 0.02, "overhead {overhead}");
    }
}
