//! End-to-end liveness demo: seed a hang, watch the watchdog catch and
//! attribute it, minimize the fault plan, write the repro artifact, and
//! replay it. The recorded transcript lives in `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p acc-bench --example hang_demo
//! ```

use acc_bench::repro::{self, ReproArtifact, ReproWorkload, EXPECTED_CLEAN};
use acc_bench::Executor;
use acc_chaos::{FaultEvent, FaultPlan, LinkId};
use acc_core::{ClusterSpec, RunOutcome, RunRequest, Technology};
use acc_net::FabricSpec;
use acc_sim::{SimDuration, SimTime};

const P: usize = 4;
const KEYS: u64 = 1 << 12;

fn hang_plan() -> FaultPlan {
    // Two noise events plus the real culprit: a 30 s outage on rank 1's
    // uplink, far past the card's retransmission-abandonment horizon.
    FaultPlan::new(0xDEAD)
        .with(FaultEvent::FrameLoss {
            link: LinkId::All,
            prob: 0.002,
        })
        .with(FaultEvent::LinkJitter {
            link: LinkId::All,
            max: SimDuration::from_micros(5),
        })
        .with(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(1),
            from: SimTime::ZERO + SimDuration::from_micros(1),
            until: SimTime::ZERO + SimDuration::from_secs(30),
        })
}

fn spec() -> ClusterSpec {
    ClusterSpec::new(P, Technology::InicIdeal)
        .with_fault_plan(hang_plan())
        .with_quiet(true)
}

fn main() {
    let workload = ReproWorkload::Sort { keys: KEYS };
    println!(
        "seeded plan: {} events (seed {:#x}) on inic-ideal sort, P={P}, 2^12 keys",
        hang_plan().events().len(),
        hang_plan().seed(),
    );

    // 1. Detection and attribution.
    let outcome = RunRequest::sort(spec(), KEYS).execute();
    let RunOutcome::Hung(report) = &outcome else {
        panic!("demo plan should hang, got {outcome:?}");
    };
    println!(
        "detected:    {} at sim t={} ({} events) -> stuck in {}",
        report.cause,
        report.now,
        report.sim.as_ref().map(|s| s.events_processed).unwrap_or(0),
        report.attribution(),
    );
    let observed = repro::observe(spec(), workload).expect("hang is a failure");

    // 2. Minimization (parallel candidates, deterministic result).
    let minimal = repro::with_silent_panics(|| {
        repro::minimize_failure(
            &Executor::new(4),
            P,
            Technology::InicIdeal,
            workload,
            FabricSpec::SingleSwitch,
            &hang_plan(),
        )
    });
    println!(
        "minimized:   {} event(s): {:?}",
        minimal.events().len(),
        minimal.events()
    );

    // 3. Self-contained artifact, then replay it.
    let artifact = ReproArtifact {
        campaign_seed: 0xACC_50AC,
        round: 0,
        p: P,
        technology: Technology::InicIdeal,
        workload,
        fabric: FabricSpec::SingleSwitch,
        expected: EXPECTED_CLEAN.to_owned(),
        observed,
        plan: minimal,
    };
    let text = artifact.to_text();
    let parsed = ReproArtifact::from_text(&text).expect("artifact roundtrips");
    match repro::with_silent_panics(|| parsed.replay()) {
        Ok(observed) => println!("replayed:    reproduced — {observed}"),
        Err(diag) => println!("replayed:    NOT reproduced — {diag}"),
    }
    println!("--- artifact ---\n{text}");
}
