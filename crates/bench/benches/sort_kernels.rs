//! Benchmarks over the real sorting kernels.
//!
//! Re-measures the paper's in-text claims on this machine:
//!
//! * Section 3.2: count sort is "as much as 2.5× faster than quicksort"
//!   — compare `count_sort` (with its cache-sizing bucket pass) against
//!   `quicksort` and the standard library sort.
//! * Section 3.2.1: "a minimum of 128 buckets are needed for the
//!   problem to map well into cache" at 2²¹ keys — sweep the bucket
//!   count and watch the count-sort pipeline's throughput.

use std::hint::black_box;

use acc_algos::sort::{bucket_then_count_sort, count_sort, quicksort};
use acc_algos::workload::uniform_keys;
use acc_bench::harness::bench;

fn main() {
    let n = 1 << 21;
    let keys = uniform_keys(n, 2001);
    let g = "sort_comparison_2e21";
    bench(g, "count_sort_direct", 20, Some(n as u64), || {
        count_sort(black_box(&keys))
    });
    bench(g, "bucket128_then_count", 20, Some(n as u64), || {
        bucket_then_count_sort(black_box(&keys), 128)
    });
    bench(g, "quicksort", 20, Some(n as u64), || {
        let mut k = keys.clone();
        quicksort(&mut k);
        k
    });
    bench(g, "std_sort_unstable", 20, Some(n as u64), || {
        let mut k = keys.clone();
        k.sort_unstable();
        k
    });

    // The ≥128-bucket claim: pipeline throughput vs bucket count.
    let keys = uniform_keys(n, 31337);
    for k in [2usize, 16, 64, 128, 256, 1024] {
        bench(
            "bucket_count_sweep_2e21",
            &format!("{k}_buckets"),
            20,
            Some(n as u64),
            || bucket_then_count_sort(black_box(&keys), k),
        );
    }

    for shift in [16u32, 18, 20, 22] {
        let n = 1usize << shift;
        let keys = uniform_keys(n, u64::from(shift));
        bench(
            "count_sort_scaling",
            &format!("n_{n}"),
            20,
            Some(n as u64),
            || bucket_then_count_sort(black_box(&keys), 128),
        );
    }
}
