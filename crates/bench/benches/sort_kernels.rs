//! Criterion benchmarks over the real sorting kernels.
//!
//! Re-measures the paper's in-text claims on this machine:
//!
//! * Section 3.2: count sort is "as much as 2.5× faster than quicksort"
//!   — compare `count_sort` (with its cache-sizing bucket pass) against
//!   `quicksort` and the standard library sort.
//! * Section 3.2.1: "a minimum of 128 buckets are needed for the
//!   problem to map well into cache" at 2²¹ keys — sweep the bucket
//!   count and watch the count-sort pipeline's throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use std::hint::black_box;

use acc_algos::sort::{bucket_then_count_sort, count_sort, quicksort};
use acc_algos::workload::uniform_keys;

fn bench_sort_comparison(c: &mut Criterion) {
    let n = 1 << 21;
    let keys = uniform_keys(n, 2001);
    let mut g = c.benchmark_group("sort_comparison_2e21");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(5));
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("count_sort_direct", |b| {
        b.iter(|| count_sort(black_box(&keys)))
    });
    g.bench_function("bucket128_then_count", |b| {
        b.iter(|| bucket_then_count_sort(black_box(&keys), 128))
    });
    g.bench_function("quicksort", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            quicksort(&mut k);
            k
        })
    });
    g.bench_function("std_sort_unstable", |b| {
        b.iter(|| {
            let mut k = keys.clone();
            k.sort_unstable();
            k
        })
    });
    g.finish();
}

fn bench_bucket_sweep(c: &mut Criterion) {
    // The ≥128-bucket claim: pipeline throughput vs bucket count.
    let n = 1 << 21;
    let keys = uniform_keys(n, 31337);
    let mut g = c.benchmark_group("bucket_count_sweep_2e21");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(4));
    g.throughput(Throughput::Elements(n as u64));
    for k in [2usize, 16, 64, 128, 256, 1024] {
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| bucket_then_count_sort(black_box(&keys), k))
        });
    }
    g.finish();
}

fn bench_problem_size_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("count_sort_scaling");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    for shift in [16u32, 18, 20, 22] {
        let n = 1usize << shift;
        let keys = uniform_keys(n, u64::from(shift));
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &keys, |b, keys| {
            b.iter(|| bucket_then_count_sort(black_box(keys), 128))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_sort_comparison,
    bench_bucket_sweep,
    bench_problem_size_scaling
);
criterion_main!(benches);
