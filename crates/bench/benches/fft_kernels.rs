//! Benchmarks over the FFT and transpose kernels.

use std::hint::black_box;

use acc_algos::fft::{fft, fft_2d};
use acc_algos::transpose::{distributed_transpose, split_row_blocks};
use acc_algos::workload::{random_matrix, wave_matrix};
use acc_algos::Complex64;
use acc_bench::harness::bench;

fn main() {
    for log_n in [8u32, 10, 12, 14] {
        let n = 1usize << log_n;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.01).sin(), (i as f64 * 0.02).cos()))
            .collect();
        bench("fft_1d", &format!("n_{n}"), 30, Some(n as u64), || {
            fft(black_box(&input))
        });
    }

    for n in [64usize, 128, 256] {
        let m = wave_matrix(n);
        bench(
            "fft_2d",
            &format!("n_{n}"),
            20,
            Some((n * n) as u64),
            || fft_2d(black_box(&m)),
        );
    }

    // The pure data-manipulation cost of the three-phase transpose —
    // what the INIC absorbs into the datapath.
    let m = random_matrix(256, 7);
    for p in [2usize, 4, 8, 16] {
        let slabs = split_row_blocks(&m, p);
        bench(
            "distributed_transpose_256",
            &format!("p_{p}"),
            20,
            None,
            || distributed_transpose(black_box(&slabs)),
        );
    }
}
