//! Criterion benchmarks over the FFT and transpose kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::time::Duration;
use std::hint::black_box;

use acc_algos::fft::{fft, fft_2d};
use acc_algos::transpose::{distributed_transpose, split_row_blocks};
use acc_algos::workload::{random_matrix, wave_matrix};
use acc_algos::Complex64;

fn bench_fft_1d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_1d");
    g.sample_size(30);
    g.measurement_time(Duration::from_secs(3));
    for log_n in [8u32, 10, 12, 14] {
        let n = 1usize << log_n;
        let input: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64 * 0.01).sin(), (i as f64 * 0.02).cos()))
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &input, |b, input| {
            b.iter(|| fft(black_box(input)))
        });
    }
    g.finish();
}

fn bench_fft_2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft_2d");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(4));
    for n in [64usize, 128, 256] {
        let m = wave_matrix(n);
        g.throughput(Throughput::Elements((n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| fft_2d(black_box(m)))
        });
    }
    g.finish();
}

fn bench_distributed_transpose(c: &mut Criterion) {
    // The pure data-manipulation cost of the three-phase transpose —
    // what the INIC absorbs into the datapath.
    let mut g = c.benchmark_group("distributed_transpose_256");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(3));
    let m = random_matrix(256, 7);
    for p in [2usize, 4, 8, 16] {
        let slabs = split_row_blocks(&m, p);
        g.bench_with_input(BenchmarkId::from_parameter(p), &slabs, |b, slabs| {
            b.iter(|| distributed_transpose(black_box(slabs)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fft_1d, bench_fft_2d, bench_distributed_transpose);
criterion_main!(benches);
