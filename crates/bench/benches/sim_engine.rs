//! Benchmarks over the simulation substrate itself: raw event
//! throughput of the discrete-event kernel and end-to-end rates for the
//! two NIC stacks. Plain `harness = false` binaries on
//! [`acc_bench::harness`].

use std::any::Any;

use acc_bench::harness::bench;
use acc_core::cluster::{run_fft, run_sort, ClusterSpec, Technology};
use acc_net::{
    EtherType, EthernetKind, Frame, FrameArrival, LinkParams, MacAddr, Switch, SwitchParams,
};
use acc_sim::{
    Component, ComponentId, Ctx, EventQueue, SimDuration, SimTime, Simulation, StatsRegistry,
};

/// A component that bounces an event to itself `n` times.
struct Bouncer {
    remaining: u64,
}

impl Component for Bouncer {
    fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.self_in(SimDuration::from_nanos(10), ());
        }
    }
    fn name(&self) -> &str {
        "bouncer"
    }
}

/// Absorbs frame arrivals; the far end of every switch port in the
/// broadcast-fanout bench.
struct Sink;

impl Component for Sink {
    fn handle(&mut self, _ev: Box<dyn Any>, _ctx: &mut Ctx) {}
    fn name(&self) -> &str {
        "sink"
    }
}

fn main() {
    let events = 100_000u64;
    bench(
        "des_kernel",
        "self_event_chain_100k",
        20,
        Some(events),
        || {
            let mut sim = Simulation::new(0);
            let id = sim.add(Bouncer { remaining: events });
            sim.schedule_at(SimTime::ZERO, id, ());
            sim.run();
            sim.events_processed()
        },
    );

    // The scheduler under a deep pending set — the shape of sort_2e24
    // at p=1024, where the heap paid O(log n) per operation. Steady
    // state: 10k live events, every pop schedules a replacement far in
    // the future so events migrate down the wheel hierarchy.
    let churn_pops = 200_000u64;
    bench(
        "des_kernel",
        "queue_churn_depth_10k",
        20,
        Some(churn_pops),
        || {
            let mut q = EventQueue::new();
            let id = ComponentId::from_raw(0);
            for i in 0..10_000u64 {
                q.push(SimTime::from_ps(i * 37_321), id, Box::new(()));
            }
            let mut last = 0u64;
            for _ in 0..churn_pops {
                let ev = q.pop().expect("queue stays at depth 10k");
                last = ev.time.as_ps();
                q.push(SimTime::from_ps(last + 373_210_000), id, Box::new(()));
            }
            last
        },
    );

    // Broadcast fan-out through the store-and-forward switch: every
    // broadcast replicates to 31 egress ports, which before the shared
    // PayloadView deep-copied ~1 KiB per replica.
    let storms = 500u64;
    let fan_ports = 32usize;
    bench(
        "net_fabric",
        "broadcast_fanout_p32_500",
        10,
        Some(storms * (fan_ports as u64 - 1)),
        || {
            let mut sim = Simulation::new(7);
            let link = LinkParams::for_kind(EthernetKind::Gigabit);
            let sink_ids: Vec<_> = (0..fan_ports).map(|_| sim.reserve_id()).collect();
            let switch_id = sim.reserve_id();
            let mut switch = Switch::new("sw", SwitchParams::default());
            for (i, &sid) in sink_ids.iter().enumerate() {
                switch.attach(MacAddr::for_node(i, 0), sid, 0, link);
                sim.register(sid, Sink);
            }
            sim.register(switch_id, switch);
            for k in 0..storms {
                let frame = Frame::new(
                    MacAddr::for_node(0, 0),
                    MacAddr::BROADCAST,
                    EtherType::Other(0),
                    vec![k as u8; 1024],
                );
                sim.schedule_at(
                    SimTime::ZERO + SimDuration::from_micros(10 * k),
                    switch_id,
                    FrameArrival { port: 0, frame },
                );
            }
            sim.run();
            sim.events_processed()
        },
    );

    // The per-frame stats path: a switch bumps 2-3 counters per frame,
    // so counter lookup cost is pure simulation overhead. Hits an
    // existing counter the way components do — by &str pair.
    let hits = 1_000_000u64;
    bench("des_kernel", "counter_hit_1m", 20, Some(hits), || {
        let mut stats = StatsRegistry::new();
        for scope in ["switch", "nic0", "nic1", "nic2"] {
            stats.counter(scope, "frames_in");
            stats.counter(scope, "frames_fwd");
        }
        for i in 0..hits {
            let scope = match i & 3 {
                0 => "switch",
                1 => "nic0",
                2 => "nic1",
                _ => "nic2",
            };
            stats.counter(scope, "frames_in").inc();
        }
        stats.counter_value("switch", "frames_in").unwrap_or(0)
    });

    let spec = |tech| {
        let mut s = ClusterSpec::new(4, tech);
        s.verify = false;
        s
    };
    bench("cluster_scenarios", "fft_64_gigabit", 10, None, || {
        run_fft(spec(Technology::GigabitTcp), 64)
    });
    bench("cluster_scenarios", "fft_64_inic_ideal", 10, None, || {
        run_fft(spec(Technology::InicIdeal), 64)
    });
    bench("cluster_scenarios", "sort_2e16_gigabit", 10, None, || {
        run_sort(spec(Technology::GigabitTcp), 1 << 16)
    });
    bench(
        "cluster_scenarios",
        "sort_2e16_inic_ideal",
        10,
        None,
        || run_sort(spec(Technology::InicIdeal), 1 << 16),
    );
}
