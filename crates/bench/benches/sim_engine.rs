//! Benchmarks over the simulation substrate itself: raw event
//! throughput of the discrete-event kernel and end-to-end rates for the
//! two NIC stacks. Plain `harness = false` binaries on
//! [`acc_bench::harness`].

use std::any::Any;

use acc_bench::harness::bench;
use acc_core::cluster::{run_fft, run_sort, ClusterSpec, Technology};
use acc_sim::{Component, Ctx, SimDuration, SimTime, Simulation, StatsRegistry};

/// A component that bounces an event to itself `n` times.
struct Bouncer {
    remaining: u64,
}

impl Component for Bouncer {
    fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.self_in(SimDuration::from_nanos(10), ());
        }
    }
    fn name(&self) -> &str {
        "bouncer"
    }
}

fn main() {
    let events = 100_000u64;
    bench(
        "des_kernel",
        "self_event_chain_100k",
        20,
        Some(events),
        || {
            let mut sim = Simulation::new(0);
            let id = sim.add(Bouncer { remaining: events });
            sim.schedule_at(SimTime::ZERO, id, ());
            sim.run();
            sim.events_processed()
        },
    );

    // The per-frame stats path: a switch bumps 2-3 counters per frame,
    // so counter lookup cost is pure simulation overhead. Hits an
    // existing counter the way components do — by &str pair.
    let hits = 1_000_000u64;
    bench("des_kernel", "counter_hit_1m", 20, Some(hits), || {
        let mut stats = StatsRegistry::new();
        for scope in ["switch", "nic0", "nic1", "nic2"] {
            stats.counter(scope, "frames_in");
            stats.counter(scope, "frames_fwd");
        }
        for i in 0..hits {
            let scope = match i & 3 {
                0 => "switch",
                1 => "nic0",
                2 => "nic1",
                _ => "nic2",
            };
            stats.counter(scope, "frames_in").inc();
        }
        stats.counter_value("switch", "frames_in").unwrap_or(0)
    });

    let spec = |tech| {
        let mut s = ClusterSpec::new(4, tech);
        s.verify = false;
        s
    };
    bench("cluster_scenarios", "fft_64_gigabit", 10, None, || {
        run_fft(spec(Technology::GigabitTcp), 64)
    });
    bench("cluster_scenarios", "fft_64_inic_ideal", 10, None, || {
        run_fft(spec(Technology::InicIdeal), 64)
    });
    bench("cluster_scenarios", "sort_2e16_gigabit", 10, None, || {
        run_sort(spec(Technology::GigabitTcp), 1 << 16)
    });
    bench(
        "cluster_scenarios",
        "sort_2e16_inic_ideal",
        10,
        None,
        || run_sort(spec(Technology::InicIdeal), 1 << 16),
    );
}
