//! Criterion benchmarks over the simulation substrate itself: raw
//! event throughput of the discrete-event kernel and end-to-end rates
//! for the two NIC stacks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::time::Duration;
use std::any::Any;

use acc_core::cluster::{run_fft, run_sort, ClusterSpec, Technology};
use acc_sim::{Component, Ctx, SimDuration, SimTime, Simulation};

/// A component that bounces an event to itself `n` times.
struct Bouncer {
    remaining: u64,
}

impl Component for Bouncer {
    fn handle(&mut self, _ev: Box<dyn Any>, ctx: &mut Ctx) {
        if self.remaining > 0 {
            self.remaining -= 1;
            ctx.self_in(SimDuration::from_nanos(10), ());
        }
    }
    fn name(&self) -> &str {
        "bouncer"
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    let events = 100_000u64;
    let mut g = c.benchmark_group("des_kernel");
    g.sample_size(20);
    g.measurement_time(Duration::from_secs(4));
    g.throughput(Throughput::Elements(events));
    g.bench_function("self_event_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new(0);
            let id = sim.add(Bouncer { remaining: events });
            sim.schedule_at(SimTime::ZERO, id, ());
            sim.run();
            sim.events_processed()
        })
    });
    g.finish();
}

fn bench_cluster_scenarios(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster_scenarios");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(4));
    let spec = |tech| {
        let mut s = ClusterSpec::new(4, tech);
        s.verify = false;
        s
    };
    g.bench_function("fft_64_gigabit", |b| {
        b.iter(|| run_fft(spec(Technology::GigabitTcp), 64))
    });
    g.bench_function("fft_64_inic_ideal", |b| {
        b.iter(|| run_fft(spec(Technology::InicIdeal), 64))
    });
    g.bench_function("sort_2e16_gigabit", |b| {
        b.iter(|| run_sort(spec(Technology::GigabitTcp), 1 << 16))
    });
    g.bench_function("sort_2e16_inic_ideal", |b| {
        b.iter(|| run_sort(spec(Technology::InicIdeal), 1 << 16))
    });
    g.finish();
}

criterion_group!(benches, bench_event_throughput, bench_cluster_scenarios);
criterion_main!(benches);
