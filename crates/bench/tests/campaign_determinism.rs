//! The fault campaign is bit-deterministic: the same [`FaultPlan`] seed
//! must produce byte-identical reports across runs — the acceptance bar
//! for reproducible resilience experiments.

use acc_bench::campaign::{fault_campaign, CampaignConfig};
use acc_core::cluster::Technology;

fn small_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        p: 4,
        total_keys: 1 << 15,
        seed,
        loss_pcts: vec![0.0, 1.0, 2.0],
        technologies: vec![Technology::GigabitTcp, Technology::InicIdeal],
    }
}

#[test]
fn same_seed_produces_byte_identical_reports() {
    let a = fault_campaign(&small_config(0xFA17));
    let b = fault_campaign(&small_config(0xFA17));
    assert_eq!(a.to_table(), b.to_table());
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn different_seed_changes_the_fault_sequence() {
    let a = fault_campaign(&small_config(1));
    let b = fault_campaign(&small_config(2));
    // The pristine 0% column matches; the lossy columns should not all
    // be identical (different seeds lose different frames).
    assert_ne!(a.to_csv(), b.to_csv());
}
