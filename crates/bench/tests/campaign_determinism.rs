//! The fault campaign is bit-deterministic: the same [`FaultPlan`] seed
//! must produce byte-identical reports across runs — the acceptance bar
//! for reproducible resilience experiments.

use acc_bench::campaign::{fault_campaign, CampaignConfig};
use acc_bench::executor::Executor;
use acc_chaos::{FaultEvent, FaultPlan};
use acc_core::cluster::{run_sort, ClusterSpec, Technology};
use acc_sim::{SimDuration, SimTime};

fn small_config(seed: u64) -> CampaignConfig {
    CampaignConfig {
        p: 4,
        total_keys: 1 << 15,
        seed,
        loss_pcts: vec![0.0, 1.0, 2.0],
        technologies: vec![Technology::GigabitTcp, Technology::InicIdeal],
    }
}

#[test]
fn same_seed_produces_byte_identical_reports() {
    // Serial vs. pooled: the executor must not leak into the bytes.
    let a = fault_campaign(&Executor::serial(), &small_config(0xFA17));
    let b = fault_campaign(&Executor::new(4), &small_config(0xFA17));
    assert_eq!(a.to_table(), b.to_table());
    assert_eq!(a.to_csv(), b.to_csv());
}

#[test]
fn different_seed_changes_the_fault_sequence() {
    let ex = Executor::serial();
    let a = fault_campaign(&ex, &small_config(1));
    let b = fault_campaign(&ex, &small_config(2));
    // The pristine 0% column matches; the lossy columns should not all
    // be identical (different seeds lose different frames).
    assert_ne!(a.to_csv(), b.to_csv());
}

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

/// A structured transient plan — a node stall plus a card
/// reconfiguration window — is exactly as deterministic as frame loss:
/// the same seed replays the same run, byte for byte.
#[test]
fn transient_plan_replays_byte_identically() {
    let plan = FaultPlan::new(0x0DD5)
        .with(FaultEvent::NodeStall {
            node: 2,
            from: ms(60),
            until: ms(62),
        })
        .with(FaultEvent::CardReconfigure {
            node: 1,
            at: ms(61),
            hold: SimDuration::from_millis(2),
        });
    let run = || {
        let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan.clone());
        let r = run_sort(spec, 1 << 15);
        assert!(r.verified);
        format!("{:?} {:?} {:?}", r.total, r.faults, r.switch_drops)
    };
    assert_eq!(run(), run(), "same plan, same bytes");
}

/// Property: a `CardReconfigure` whose hold is shorter than the
/// protocol's retransmit-abandon horizon (12 retries × 2 ms) never
/// changes the *answer* — any hold in that range is absorbed by the
/// card's deferral buffers and the sender-side retransmit machinery,
/// with zero ranks degraded.
#[test]
fn bounded_hold_never_changes_the_answer() {
    for hold_ms in [1u64, 3, 7, 12, 20] {
        let plan = FaultPlan::new(0xB0B).with(FaultEvent::CardReconfigure {
            node: 3,
            at: ms(61),
            hold: SimDuration::from_millis(hold_ms),
        });
        let spec = ClusterSpec::new(4, Technology::InicIdeal).with_fault_plan(plan);
        let r = run_sort(spec, 1 << 15);
        assert!(r.verified, "hold={hold_ms}ms corrupted the sort");
        assert_eq!(
            r.faults.degraded_nodes, 0,
            "hold={hold_ms}ms degraded a rank"
        );
        assert_eq!(r.faults.resumed_from_phase, None);
        assert!(r.faults.reconfig_windows_survived >= 1);
    }
}
