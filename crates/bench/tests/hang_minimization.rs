//! End-to-end acceptance of the liveness layer: a seeded hang plan is
//! detected by the watchdog, attributed to a named phase and rank,
//! minimized to its essential fault events, and the resulting repro
//! artifact replays to the same failure — deterministically across
//! worker counts.
//!
//! The hang scenario: a 30-second outage on rank 1's uplink during an
//! INIC sort. Rank 1's bucket data never reaches its peers; the card
//! abandons its retransmissions after the backoff horizon (twelve
//! doubling timeouts from 2 ms ≈ 8.2 s), so even after the link heals
//! nobody ever completes the exchange. Two noise events (background
//! loss and jitter) ride along so the minimizer has something real to
//! discard, and the oversized window gives parameter shrinking
//! something real to halve.

use acc_bench::repro::{self, ReproArtifact, ReproWorkload, EXPECTED_CLEAN};
use acc_bench::Executor;
use acc_chaos::{FaultEvent, FaultPlan, LinkId};
use acc_core::{ClusterSpec, HangCause, RunOutcome, RunRequest, Technology};
use acc_net::FabricSpec;
use acc_sim::{SimDuration, SimTime};

const P: usize = 4;
const KEYS: u64 = 1 << 12;

fn outage() -> FaultEvent {
    FaultEvent::LinkOutage {
        link: LinkId::NodeUplink(1),
        from: SimTime::ZERO + SimDuration::from_micros(1),
        until: SimTime::ZERO + SimDuration::from_secs(30),
    }
}

fn hang_plan() -> FaultPlan {
    FaultPlan::new(0xDEAD)
        .with(FaultEvent::FrameLoss {
            link: LinkId::All,
            prob: 0.002,
        })
        .with(FaultEvent::LinkJitter {
            link: LinkId::All,
            max: SimDuration::from_micros(5),
        })
        .with(outage())
}

fn spec(plan: &FaultPlan) -> ClusterSpec {
    ClusterSpec::new(P, Technology::InicIdeal)
        .with_fault_plan(plan.clone())
        .with_quiet(true)
}

#[test]
fn seeded_hang_is_detected_attributed_minimized_and_replayable() {
    // --- Detection and attribution -----------------------------------
    let outcome = RunRequest::sort(spec(&hang_plan()), KEYS).execute();
    let report = match &outcome {
        RunOutcome::Hung(report) => report,
        other => panic!("expected a hang, got {other:?}"),
    };
    assert!(
        matches!(report.cause, HangCause::Watchdog(_)),
        "the watchdog, not a drained queue, must catch a faulted hang: {:?}",
        report.cause
    );
    let culprit = report.culprit.as_ref().expect("hang names a culprit");
    assert_eq!(culprit.phase, "exchange", "attributed to the stuck phase");
    assert_eq!(
        report.attribution(),
        format!("exchange on rank {}", culprit.rank)
    );

    // The observation string the minimizer and artifacts key on.
    let observed = repro::observe(spec(&hang_plan()), ReproWorkload::Sort { keys: KEYS })
        .expect("the hang is a failure");
    assert!(observed.contains("hung:"), "{observed}");
    assert!(observed.contains("exchange on rank"), "{observed}");

    // --- Minimization, at two worker counts --------------------------
    let workload = ReproWorkload::Sort { keys: KEYS };
    let minimize = |jobs: usize| {
        repro::with_silent_panics(|| {
            repro::minimize_failure(
                &Executor::new(jobs),
                P,
                Technology::InicIdeal,
                workload,
                FabricSpec::SingleSwitch,
                &hang_plan(),
            )
        })
    };
    let minimal = minimize(1);
    assert_eq!(
        minimal,
        minimize(4),
        "minimization must be byte-identical at --jobs 1 and --jobs 4"
    );
    assert!(
        minimal.events().len() <= 2,
        "locally minimal plan keeps at most the essential events: {:?}",
        minimal.events()
    );
    match minimal.events() {
        [FaultEvent::LinkOutage { link, from, until }] => {
            // The outage alone reproduces; both noise events are
            // discarded. Parameter shrinking halves the window once
            // (15 s still outlives the ~8.2 s retransmit-abandonment
            // horizon) but must reject the second halving, which would
            // heal the link while retries are still pending.
            assert_eq!(*link, LinkId::NodeUplink(1));
            assert_eq!(*from, SimTime::ZERO + SimDuration::from_micros(1));
            assert!(
                *until < SimTime::ZERO + SimDuration::from_secs(30),
                "window should have shrunk: {until}"
            );
            assert!(
                *until > SimTime::ZERO + SimDuration::from_secs(9),
                "window must still outlive retransmit abandonment: {until}"
            );
        }
        other => panic!("expected a lone shrunken outage, got {other:?}"),
    }
    assert_eq!(minimal.seed(), hang_plan().seed(), "seed survives");

    // --- Repro artifact round trip and replay ------------------------
    let artifact = ReproArtifact {
        campaign_seed: 0xACC_50AC,
        round: 0,
        p: P,
        technology: Technology::InicIdeal,
        workload,
        fabric: FabricSpec::SingleSwitch,
        expected: EXPECTED_CLEAN.to_owned(),
        observed: observed.clone(),
        plan: minimal,
    };
    let parsed = ReproArtifact::from_text(&artifact.to_text()).expect("artifact parses back");
    assert_eq!(parsed, artifact);
    let replayed = repro::with_silent_panics(|| parsed.replay())
        .expect("the minimized plan replays to the recorded failure");
    assert_eq!(replayed, observed, "same failure, not merely *a* failure");
}
