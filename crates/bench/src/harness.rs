//! A minimal wall-clock benchmark harness.
//!
//! The container has no benchmarking crate, so the `[[bench]]` targets
//! (`harness = false`) are plain binaries built on this module: each
//! case is warmed once, run a fixed number of iterations, and reported
//! as min / mean wall time plus element throughput when the case has a
//! natural element count. Numbers are indicative, not statistically
//! rigorous — the repository's quantitative claims all live in the
//! simulated experiments, not here.

use std::hint::black_box;
use std::time::Instant;

/// Run `f` `iters` times (after one warm-up call) and print one result
/// line. `elems` is the per-iteration element count for throughput, or
/// `None` for pure latency cases.
pub fn bench<R>(group: &str, name: &str, iters: u32, elems: Option<u64>, mut f: impl FnMut() -> R) {
    assert!(iters > 0);
    black_box(f());
    let mut min = f64::INFINITY;
    let mut total = 0.0f64;
    for _ in 0..iters {
        let t0 = Instant::now();
        black_box(f());
        let dt = t0.elapsed().as_secs_f64();
        min = min.min(dt);
        total += dt;
    }
    let mean = total / f64::from(iters);
    let rate = match elems {
        Some(n) if min > 0.0 => format!("  {:>9.2} Melem/s", n as f64 / min / 1e6),
        _ => String::new(),
    };
    println!(
        "{group:<24} {name:<28} min {:>9.3} ms  mean {:>9.3} ms{rate}",
        min * 1e3,
        mean * 1e3,
    );
}
