//! Figure 5(b): integer-sort parallel speedups — modelled ideal INIC
//! (Eqs. 11–17) vs the simulated Gigabit Ethernet implementation, for
//! 2²⁵ uniform keys.

use acc_bench::{sort_serial_time, sort_speedup_series, Executor};
use acc_core::cluster::Technology;
use acc_core::model::SortModel;
use acc_core::report::{FigureReport, Series};

fn main() {
    let ex = Executor::from_cli();
    let total_keys: u64 = 1 << 25;
    let mut fig = FigureReport::new(
        "Figure 5(b)",
        "Integer sort parallel speedups, INIC vs Gigabit Ethernet (2^25 keys)",
        "P",
        "speedup",
    );
    let serial = sort_serial_time(total_keys);
    fig.add(sort_speedup_series(
        &ex,
        "Gigabit Ethernet Speedup",
        Technology::GigabitTcp,
        total_keys,
        serial,
    ));
    let model = SortModel::new(total_keys);
    let mut inic = Series::new("INIC Speedup");
    for p in 1..=16usize {
        inic.push(p as f64, model.speedup(p));
    }
    fig.add(inic);
    fig.print();
}
