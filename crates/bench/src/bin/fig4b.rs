//! Figure 4(b): decomposition of the 512×512 transpose — Gigabit NIC
//! communication time, Gigabit NIC compute time (local transpose +
//! final permutation on the host), modelled INIC transpose time, and
//! partition size, vs the number of processors.

use acc_bench::{figure_spec, partition_series, Executor, SIM_PROCS};
use acc_core::cluster::Technology;
use acc_core::model::FftModel;
use acc_core::report::{FigureReport, Series};
use acc_core::RunRequest;

fn main() {
    let ex = Executor::from_cli();
    let rows = 512usize;
    let mut fig = FigureReport::new(
        "Figure 4(b)",
        "Decomposition of time spent in each transpose phase vs partition size (512x512)",
        "P",
        "time (ms) / partition (KiB)",
    );
    let mut comm = Series::new("NIC Transpose Comm. Time (ms)");
    let mut compute = Series::new("NIC Transpose Compute Time (ms)");
    // No transpose communication on one node, so the sweep starts at P=2.
    let procs: Vec<usize> = SIM_PROCS.iter().copied().filter(|&p| p > 1).collect();
    let requests = procs
        .iter()
        .map(|&p| RunRequest::fft(figure_spec(p, Technology::GigabitTcp), rows))
        .collect();
    for (&p, outcome) in procs.iter().zip(ex.run_all(requests)) {
        let r = outcome.into_fft();
        comm.push(p as f64, r.transpose_comm.as_millis_f64());
        compute.push(p as f64, r.transpose_compute.as_millis_f64());
    }
    fig.add(comm);
    fig.add(compute);

    let model = FftModel::new(rows);
    let mut inic = Series::new("INIC Transpose Time (ms)");
    for p in 2..=16usize {
        inic.push(p as f64, model.t_trans(p).as_millis_f64());
    }
    fig.add(inic);
    fig.add(partition_series(
        "Partition Size (KiB)",
        rows as u64 * rows as u64 * 16,
    ));
    fig.print();
}
