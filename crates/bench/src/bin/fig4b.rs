//! Figure 4(b): decomposition of the 512×512 transpose — Gigabit NIC
//! communication time, Gigabit NIC compute time (local transpose +
//! final permutation on the host), modelled INIC transpose time, and
//! partition size, vs the number of processors.

use acc_bench::{figure_spec, partition_series, SIM_PROCS};
use acc_core::cluster::{run_fft, Technology};
use acc_core::model::FftModel;
use acc_core::report::{FigureReport, Series};

fn main() {
    let rows = 512usize;
    let mut fig = FigureReport::new(
        "Figure 4(b)",
        "Decomposition of time spent in each transpose phase vs partition size (512x512)",
        "P",
        "time (ms) / partition (KiB)",
    );
    let mut comm = Series::new("NIC Transpose Comm. Time (ms)");
    let mut compute = Series::new("NIC Transpose Compute Time (ms)");
    for &p in &SIM_PROCS {
        if p == 1 {
            continue; // no transpose communication on one node
        }
        let r = run_fft(figure_spec(p, Technology::GigabitTcp), rows);
        comm.push(p as f64, r.transpose_comm.as_millis_f64());
        compute.push(p as f64, r.transpose_compute.as_millis_f64());
    }
    fig.add(comm);
    fig.add(compute);

    let model = FftModel::new(rows);
    let mut inic = Series::new("INIC Transpose Time (ms)");
    for p in 2..=16usize {
        inic.push(p as f64, model.t_trans(p).as_millis_f64());
    }
    fig.add(inic);
    fig.add(partition_series(
        "Partition Size (KiB)",
        rows as u64 * rows as u64 * 16,
    ));
    fig.print();
}
