//! Fault-recovery ablation for the collective engine: every operation
//! and both of its algorithms under a single mid-schedule card kill,
//! across the three recovery policies and a grid of kill times.
//!
//! The question is the recovery-cost crossover: **when does a full
//! restart beat a round-level resume?** `FullRestart` abandons every
//! card and re-runs the whole schedule on the commodity fallback NICs;
//! `Checkpointed` re-plans only the remaining rounds over the mixed
//! TCP/INIC cluster, resuming from the coordinator-agreed checkpoint;
//! `RankLocal` runs the same protocol without cross-rank checkpoint
//! agreement. Later kills leave round-resume less work to redo, so its
//! advantage should *grow* with the kill time — the table prices that.
//!
//! All cells fan out through the deterministic work-queue executor and
//! print in submission order, so the output is byte-identical at any
//! `--jobs` count. `--smoke` shrinks the sweep for CI.
//!
//! ```text
//! cargo run --release -p acc-bench --bin ablation_coll_faults
//! cargo run --release -p acc-bench --bin ablation_coll_faults -- --smoke
//! ```

use acc_bench::Executor;
use acc_chaos::{FaultEvent, FaultPlan};
use acc_coll::{supports, CollectiveOp};
use acc_core::cluster::{ClusterSpec, Technology};
use acc_core::{RecoveryPolicy, RunOutcome, RunRequest};
use acc_sim::{SimDuration, SimTime};

const P: usize = 4;

/// Column order of the policy sweep.
const POLICIES: [RecoveryPolicy; 3] = [
    RecoveryPolicy::FullRestart,
    RecoveryPolicy::RankLocal,
    RecoveryPolicy::Checkpointed,
];

/// One policy cell: clean total, or the faulted total plus the round
/// the coordinator resumed from (`-` for full restarts, which always
/// start over).
fn cell(outcome: RunOutcome) -> String {
    if outcome.is_hung() {
        let report = outcome.hang().expect("hung outcome carries its report");
        return format!("HUNG({})", report.attribution());
    }
    let r = outcome.into_coll();
    assert!(r.verified, "faulted collective produced wrong data");
    match r.faults.resumed_from_phase {
        Some(round) => format!("{:.3} (r{round})", r.total.as_millis_f64()),
        None => format!("{:.3}", r.total.as_millis_f64()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ex = Executor::from_cli();
    // The bitstream load gates every INIC schedule behind a 60 ms
    // configuration window, so the kill grid starts just past it and
    // walks through the schedule; the last point lands after most
    // schedules finish (recovery still runs, with nothing to redo).
    let (elems, kills_ms): (usize, &[u64]) = if smoke {
        (1 << 10, &[61])
    } else {
        (6144, &[61, 62, 63, 80])
    };
    let techs: &[Technology] = if smoke {
        &[Technology::InicIdeal]
    } else {
        &[Technology::InicIdeal, Technology::InicProtocol]
    };

    // Cell list first (skipping unsupported cells up front so requests
    // and results stay in lock step), then one deterministic fan-out.
    // Per (tech, op, algo) group: one clean run, then kills x policies.
    let mut groups = Vec::new();
    let mut requests = Vec::new();
    for &tech in techs {
        for op in CollectiveOp::ALL {
            for algo in op.algorithms() {
                if !supports(op, algo, P, elems) {
                    continue;
                }
                groups.push((tech, op, algo));
                requests.push(RunRequest::collective(
                    ClusterSpec::new(P, tech),
                    op,
                    algo,
                    elems,
                ));
                for &kill in kills_ms {
                    for policy in POLICIES {
                        let plan = FaultPlan::new(0xAB1A).with(FaultEvent::CardFailure {
                            node: 1,
                            at: SimTime::ZERO + SimDuration::from_millis(kill),
                        });
                        let spec = ClusterSpec::new(P, tech)
                            .with_fault_plan(plan)
                            .with_recovery_policy(policy);
                        requests.push(RunRequest::collective(spec, op, algo, elems));
                    }
                }
            }
        }
    }
    let mut outcomes = ex.run_all(requests).into_iter();

    println!(
        "# collective fault-recovery ablation: policy x kill time, {} f64 per rank, P={}{}",
        elems,
        P,
        if smoke { " (smoke)" } else { "" }
    );
    println!("# card on node 1 dies at t=kill; totals in ms; (rN) = resumed from round N");
    for (tech, op, algo) in groups {
        println!();
        println!("## {op} / {algo} — {}", tech.label());
        let clean = outcomes.next().expect("clean cell");
        println!(
            "{:>8} {:>16} {:>16} {:>16}   clean={}",
            "kill(ms)",
            "full-restart",
            "rank-local",
            "checkpointed",
            cell(clean)
        );
        for &kill in kills_ms {
            let full = cell(outcomes.next().expect("full-restart cell"));
            let local = cell(outcomes.next().expect("rank-local cell"));
            let ckpt = cell(outcomes.next().expect("checkpointed cell"));
            println!("{kill:>8} {full:>16} {local:>16} {ckpt:>16}");
        }
    }
    println!();
    println!("# Read down: round-resume redoes only the rounds past the last");
    println!("# checkpoint, so its cost falls as the kill moves later, while a");
    println!("# full restart re-runs the whole schedule on the fallback NICs");
    println!("# regardless of when the card died.");
}
