//! Ablation of the INIC's operating modes — the paper's central claim
//! (Section 2): "the introduction of an INIC does more than just add RC
//! or enhance networking. Rather, the two enable each other to succeed."
//!
//! Compare, on identical workloads:
//!
//! * **Gigabit TCP** — neither reconfigurable computing nor protocol
//!   offload;
//! * **INIC, protocol processor** — protocol offload alone (no
//!   interrupts, lightweight protocol, but the host still performs every
//!   data manipulation);
//! * **INIC, combined** — computing fused into the datapath.
//!
//! If the claim holds, protocol offload alone recovers only part of the
//! gap; the combined mode is required for the full win.

use acc_bench::{figure_spec, SIM_PROCS};
use acc_core::cluster::{run_fft, run_sort, Technology};

fn main() {
    println!("# INIC mode ablation: protocol offload alone vs combined datapath");
    println!();
    println!("## 2D FFT 512x512 — total time (ms)");
    println!(
        "{:>3} {:>12} {:>14} {:>12}",
        "P", "gigabit-tcp", "protocol-only", "combined"
    );
    for &p in &SIM_PROCS {
        if p == 1 {
            continue;
        }
        let tcp = run_fft(figure_spec(p, Technology::GigabitTcp), 512).total;
        let proto = run_fft(figure_spec(p, Technology::InicProtocol), 512).total;
        let comb = run_fft(figure_spec(p, Technology::InicIdeal), 512).total;
        println!(
            "{:>3} {:>9.2} ms {:>11.2} ms {:>9.2} ms",
            p,
            tcp.as_millis_f64(),
            proto.as_millis_f64(),
            comb.as_millis_f64()
        );
    }
    println!();
    println!("## Integer sort 2^22 keys — total time (ms)");
    println!(
        "{:>3} {:>12} {:>14} {:>12}",
        "P", "gigabit-tcp", "protocol-only", "combined"
    );
    for &p in &SIM_PROCS {
        if p == 1 {
            continue;
        }
        let tcp = run_sort(figure_spec(p, Technology::GigabitTcp), 1 << 22).total;
        let proto = run_sort(figure_spec(p, Technology::InicProtocol), 1 << 22).total;
        let comb = run_sort(figure_spec(p, Technology::InicIdeal), 1 << 22).total;
        println!(
            "{:>3} {:>9.2} ms {:>11.2} ms {:>9.2} ms",
            p,
            tcp.as_millis_f64(),
            proto.as_millis_f64(),
            comb.as_millis_f64()
        );
    }
    println!();
    println!("# Protocol offload alone removes the interrupt/slow-start tax but");
    println!("# leaves the host's memory passes; only the combined mode absorbs");
    println!("# the data manipulation — \"the two enable each other to succeed\".");
}
