//! Ablation of the INIC's operating modes — the paper's central claim
//! (Section 2): "the introduction of an INIC does more than just add RC
//! or enhance networking. Rather, the two enable each other to succeed."
//!
//! Compare, on identical workloads:
//!
//! * **Gigabit TCP** — neither reconfigurable computing nor protocol
//!   offload;
//! * **INIC, protocol processor** — protocol offload alone (no
//!   interrupts, lightweight protocol, but the host still performs every
//!   data manipulation);
//! * **INIC, combined** — computing fused into the datapath.
//!
//! If the claim holds, protocol offload alone recovers only part of the
//! gap; the combined mode is required for the full win.

use acc_bench::{figure_spec, Executor, SIM_PROCS};
use acc_core::cluster::Technology;
use acc_core::RunRequest;

/// The three modes, in column order.
const MODES: [Technology; 3] = [
    Technology::GigabitTcp,
    Technology::InicProtocol,
    Technology::InicIdeal,
];

fn main() {
    let ex = Executor::from_cli();
    let procs: Vec<usize> = SIM_PROCS.iter().copied().filter(|&p| p > 1).collect();
    // One request per (workload, P, mode) cell; the executor fans the
    // whole matrix out, the rows print from results in submission order.
    let requests: Vec<RunRequest> = procs
        .iter()
        .flat_map(|&p| {
            MODES
                .iter()
                .map(move |&t| RunRequest::fft(figure_spec(p, t), 512))
        })
        .chain(procs.iter().flat_map(|&p| {
            MODES
                .iter()
                .map(move |&t| RunRequest::sort(figure_spec(p, t), 1 << 22))
        }))
        .collect();
    let mut outcomes = ex.run_all(requests).into_iter();

    println!("# INIC mode ablation: protocol offload alone vs combined datapath");
    println!();
    println!("## 2D FFT 512x512 — total time (ms)");
    println!(
        "{:>3} {:>12} {:>14} {:>12}",
        "P", "gigabit-tcp", "protocol-only", "combined"
    );
    for &p in &procs {
        let tcp = outcomes.next().expect("fft tcp cell").total();
        let proto = outcomes.next().expect("fft protocol cell").total();
        let comb = outcomes.next().expect("fft combined cell").total();
        println!(
            "{:>3} {:>9.2} ms {:>11.2} ms {:>9.2} ms",
            p,
            tcp.as_millis_f64(),
            proto.as_millis_f64(),
            comb.as_millis_f64()
        );
    }
    println!();
    println!("## Integer sort 2^22 keys — total time (ms)");
    println!(
        "{:>3} {:>12} {:>14} {:>12}",
        "P", "gigabit-tcp", "protocol-only", "combined"
    );
    for &p in &procs {
        let tcp = outcomes.next().expect("sort tcp cell").total();
        let proto = outcomes.next().expect("sort protocol cell").total();
        let comb = outcomes.next().expect("sort combined cell").total();
        println!(
            "{:>3} {:>9.2} ms {:>11.2} ms {:>9.2} ms",
            p,
            tcp.as_millis_f64(),
            proto.as_millis_f64(),
            comb.as_millis_f64()
        );
    }
    println!();
    println!("# Protocol offload alone removes the interrupt/slow-start tax but");
    println!("# leaves the host's memory passes; only the combined mode absorbs");
    println!("# the data manipulation — \"the two enable each other to succeed\".");
}
