//! Ablation of the prototype's architectural deficiency: the single
//! shared 132 MB/s on-card bus (Section 6) versus the ideal card's
//! independent host/network ports (Section 4). Same applications, same
//! switch, same FPGA operators — only the card's internal datapath
//! changes.

use acc_bench::{figure_spec, Executor, SIM_PROCS};
use acc_core::cluster::Technology;
use acc_core::RunRequest;

const CARDS: [Technology; 2] = [Technology::InicIdeal, Technology::InicPrototype];

fn main() {
    let ex = Executor::from_cli();
    let procs: Vec<usize> = SIM_PROCS.iter().copied().filter(|&p| p > 1).collect();
    let requests: Vec<RunRequest> = procs
        .iter()
        .flat_map(|&p| {
            CARDS
                .iter()
                .map(move |&t| RunRequest::fft(figure_spec(p, t), 512))
        })
        .chain(procs.iter().flat_map(|&p| {
            CARDS
                .iter()
                .map(move |&t| RunRequest::sort(figure_spec(p, t), 1 << 22))
        }))
        .collect();
    let mut outcomes = ex.run_all(requests).into_iter();

    println!("# Card-bus ablation: shared 132 MB/s bus (ACEII) vs dual-ported card");
    println!();
    println!("## 2D FFT 512x512 — transpose time (ms)");
    println!(
        "{:>3} {:>12} {:>12} {:>8}",
        "P", "ideal", "prototype", "penalty"
    );
    for &p in &procs {
        let ideal = outcomes
            .next()
            .expect("ideal fft cell")
            .into_fft()
            .transpose;
        let proto = outcomes
            .next()
            .expect("prototype fft cell")
            .into_fft()
            .transpose;
        println!(
            "{:>3} {:>9.2} ms {:>9.2} ms {:>7.2}x",
            p,
            ideal.as_millis_f64(),
            proto.as_millis_f64(),
            proto.as_secs_f64() / ideal.as_secs_f64()
        );
    }
    println!();
    println!("## Integer sort 2^22 keys — redistribution time (ms)");
    println!(
        "{:>3} {:>12} {:>12} {:>8}",
        "P", "ideal", "prototype", "penalty"
    );
    for &p in &procs {
        let ideal = outcomes.next().expect("ideal sort cell").into_sort().comm;
        let proto = outcomes
            .next()
            .expect("prototype sort cell")
            .into_sort()
            .comm;
        println!(
            "{:>3} {:>9.2} ms {:>9.2} ms {:>7.2}x",
            p,
            ideal.as_millis_f64(),
            proto.as_millis_f64(),
            proto.as_secs_f64() / ideal.as_secs_f64()
        );
    }
    println!();
    println!("# The shared bus serializes host-DMA against MAC traffic in both");
    println!("# directions: the penalty approaches the 2x the paper predicts for");
    println!("# bidirectional phases, plus per-transaction arbitration overhead.");
}
