//! Ablation of the prototype's architectural deficiency: the single
//! shared 132 MB/s on-card bus (Section 6) versus the ideal card's
//! independent host/network ports (Section 4). Same applications, same
//! switch, same FPGA operators — only the card's internal datapath
//! changes.

use acc_bench::{figure_spec, SIM_PROCS};
use acc_core::cluster::{run_fft, run_sort, Technology};

fn main() {
    println!("# Card-bus ablation: shared 132 MB/s bus (ACEII) vs dual-ported card");
    println!();
    println!("## 2D FFT 512x512 — transpose time (ms)");
    println!(
        "{:>3} {:>12} {:>12} {:>8}",
        "P", "ideal", "prototype", "penalty"
    );
    for &p in &SIM_PROCS {
        if p == 1 {
            continue;
        }
        let ideal = run_fft(figure_spec(p, Technology::InicIdeal), 512).transpose;
        let proto = run_fft(figure_spec(p, Technology::InicPrototype), 512).transpose;
        println!(
            "{:>3} {:>9.2} ms {:>9.2} ms {:>7.2}x",
            p,
            ideal.as_millis_f64(),
            proto.as_millis_f64(),
            proto.as_secs_f64() / ideal.as_secs_f64()
        );
    }
    println!();
    println!("## Integer sort 2^22 keys — redistribution time (ms)");
    println!(
        "{:>3} {:>12} {:>12} {:>8}",
        "P", "ideal", "prototype", "penalty"
    );
    for &p in &SIM_PROCS {
        if p == 1 {
            continue;
        }
        let ideal = run_sort(figure_spec(p, Technology::InicIdeal), 1 << 22).comm;
        let proto = run_sort(figure_spec(p, Technology::InicPrototype), 1 << 22).comm;
        println!(
            "{:>3} {:>9.2} ms {:>9.2} ms {:>7.2}x",
            p,
            ideal.as_millis_f64(),
            proto.as_millis_f64(),
            proto.as_secs_f64() / ideal.as_secs_f64()
        );
    }
    println!();
    println!("# The shared bus serializes host-DMA against MAC traffic in both");
    println!("# directions: the penalty approaches the 2x the paper predicts for");
    println!("# bidirectional phases, plus per-transaction arbitration overhead.");
}
