//! Ablation of the collective engine: every operation, both of its
//! algorithms, across the three INIC-mode columns and a processor
//! sweep — the collective-layer counterpart of `ablation_modes`.
//!
//! Two questions, one table each per collective:
//!
//! * does the **algorithm policy** pick the right schedule — i.e. does
//!   the ring family win where its 1/p-sized segments amortize, and the
//!   logarithmic family where round count dominates?
//! * does **offload** pay — protocol processing alone
//!   (`inic-protocol-only`) vs the combined datapath (`inic-ideal`,
//!   where `Sum` rounds fold in the card's `ReduceSum` operator)?
//!
//! All cells fan out through the deterministic work-queue executor and
//! print in submission order, so the output is byte-identical at any
//! `--jobs` count. `--smoke` shrinks the sweep for CI.
//!
//! ```text
//! cargo run --release -p acc-bench --bin ablation_collectives
//! cargo run --release -p acc-bench --bin ablation_collectives -- --smoke
//! ```

use acc_bench::{figure_spec, Executor};
use acc_coll::{supports, CollectiveOp};
use acc_core::cluster::Technology;
use acc_core::RunRequest;

/// The three modes, in column order (as in `ablation_modes`).
const MODES: [Technology; 3] = [
    Technology::GigabitTcp,
    Technology::InicProtocol,
    Technology::InicIdeal,
];

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ex = Executor::from_cli();
    let (procs, elems): (&[usize], usize) = if smoke {
        (&[2, 4], 1 << 10)
    } else {
        (&[2, 4, 8, 16], 1 << 15)
    };

    // The full cell list first (skipping unsupported cells up front so
    // requests and results stay in lock step), then one fan-out.
    let mut cells = Vec::new();
    for op in CollectiveOp::ALL {
        for algo in op.algorithms() {
            for &p in procs {
                if !supports(op, algo, p, elems) {
                    continue;
                }
                for tech in MODES {
                    cells.push((op, algo, p, tech));
                }
            }
        }
    }
    let requests: Vec<RunRequest> = cells
        .iter()
        .map(|&(op, algo, p, tech)| RunRequest::collective(figure_spec(p, tech), op, algo, elems))
        .collect();
    let mut outcomes = ex.run_all(requests).into_iter();

    println!(
        "# collective engine ablation: algorithm x mode, {} f64 per rank{}",
        elems,
        if smoke { " (smoke)" } else { "" }
    );
    let mut at = 0;
    while at < cells.len() {
        let (op, algo, _, _) = cells[at];
        println!();
        println!("## {op} / {algo} — total time (ms)");
        println!(
            "{:>3} {:>12} {:>14} {:>12}",
            "P", "gigabit-tcp", "protocol-only", "combined"
        );
        while at < cells.len() && (cells[at].0, cells[at].1) == (op, algo) {
            let p = cells[at].2;
            let tcp = outcomes.next().expect("tcp cell").into_coll();
            let proto = outcomes.next().expect("protocol cell").into_coll();
            let comb = outcomes.next().expect("combined cell").into_coll();
            println!(
                "{:>3} {:>9.3} ms {:>11.3} ms {:>9.3} ms",
                p,
                tcp.total.as_millis_f64(),
                proto.total.as_millis_f64(),
                comb.total.as_millis_f64()
            );
            at += MODES.len();
        }
    }
    println!();
    println!("# Read across: protocol offload removes the per-round interrupt");
    println!("# and slow-start tax; the combined column additionally absorbs the");
    println!("# Sum folds — at the cost of looping each rank's own contribution");
    println!("# through the card, which the reduction rows price honestly.");
}
