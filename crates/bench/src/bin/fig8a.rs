//! Figure 8(a): 2D-FFT parallel speedup on three technologies — Fast
//! Ethernet, Gigabit Ethernet, and the *prototype* INIC (ACEII card,
//! shared 132 MB/s bus) — for 256×256 and 512×512 matrices, all from
//! the discrete-event simulation.

use acc_bench::{fft_serial_time, fft_speedup_series, Executor};
use acc_core::cluster::Technology;
use acc_core::report::FigureReport;

fn main() {
    let ex = Executor::from_cli();
    let mut fig = FigureReport::new(
        "Figure 8(a)",
        "2D-FFT parallel speedup: Fast Ethernet, Gigabit Ethernet, prototype INIC",
        "P",
        "speedup",
    );
    for rows in [256usize, 512] {
        let serial = fft_serial_time(rows);
        fig.add(fft_speedup_series(
            &ex,
            &format!("Prototype INIC Speedup {rows}x{rows}"),
            Technology::InicPrototype,
            rows,
            serial,
        ));
        fig.add(fft_speedup_series(
            &ex,
            &format!("Gigabit Ethernet Speedup {rows}x{rows}"),
            Technology::GigabitTcp,
            rows,
            serial,
        ));
        fig.add(fft_speedup_series(
            &ex,
            &format!("Fast Ethernet Speedup {rows}x{rows}"),
            Technology::FastEthernet,
            rows,
            serial,
        ));
    }
    fig.print();
}
