//! Figure 8(b): integer-sort parallel speedup — prototype INIC vs
//! Gigabit Ethernet, 2²⁵ uniform keys, from the discrete-event
//! simulation. The prototype pays the shared-card-bus penalty and the
//! host-side phase-2 bucket sort, yet still beats the commodity NIC.

use acc_bench::{sort_serial_time, sort_speedup_series, Executor};
use acc_core::cluster::Technology;
use acc_core::report::FigureReport;

fn main() {
    let ex = Executor::from_cli();
    let total_keys: u64 = 1 << 25;
    let mut fig = FigureReport::new(
        "Figure 8(b)",
        "Integer sort parallel speedup: prototype INIC vs Gigabit Ethernet (2^25 keys)",
        "P",
        "speedup",
    );
    let serial = sort_serial_time(total_keys);
    fig.add(sort_speedup_series(
        &ex,
        "Gigabit Ethernet Speedup",
        Technology::GigabitTcp,
        total_keys,
        serial,
    ));
    fig.add(sort_speedup_series(
        &ex,
        "Prototype INIC Speedup",
        Technology::InicPrototype,
        total_keys,
        serial,
    ));
    fig.print();
}
