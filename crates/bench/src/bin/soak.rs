//! Chaos soak: seeded rounds of randomized mixed fault plans against
//! both evaluation workloads on every technology, with result
//! verification **and** the online invariant Auditor on. Each round
//! draws a fresh plan — background frame loss, jitter, corruption and
//! reordering on every link, plus coin-flipped link outages, buffer
//! squeezes, node stalls, card reconfiguration windows and (one round
//! in four) a permanent card failure — validates it against the cluster
//! size, then runs the FFT and the integer sort across all four
//! technologies under it.
//!
//! Everything is deterministic: round `i` of seed `s` always builds the
//! same plan, so every run (and therefore every output line) is
//! byte-for-byte reproducible. A failing cell — wrong answer, Auditor
//! violation, wedged protocol, liveness-watchdog hang — no longer
//! aborts the campaign: the cell is reported, its fault plan is
//! automatically **minimized** (delta debugging over the deterministic
//! simulator, candidates fanned across the same `--jobs` workers), and
//! a self-contained repro artifact is written to `soak-repro.txt`
//! before the process exits nonzero. Clean output and exit 0 mean the
//! cluster survived every round.
//!
//! Every fourth round (see [`round_fabric`]) runs on a 4-switch torus
//! fabric instead of the single switch — one host per switch, trunk
//! hops on every exchange, and a coin-flipped trunk outage the routing
//! layer must detour around — so multi-switch wiring, re-route epochs
//! and the per-trunk conservation audit soak under the same chaos as
//! everything else. Repro artifacts record the topology and replay it.
//!
//! `--coll` adds one engine collective per `(round, technology)` cell,
//! rotating through all six operations (see `COLL_ROTATION`). The
//! collective cell runs the round's full plan — permanent card deaths
//! included: the engine's round-level checkpoints and mixed-technology
//! re-planning recover the schedule, and the cell line records the
//! `degraded=`/`resumed=` diagnostics like any other workload. The
//! flag is purely additive: without it the campaign and its output are
//! byte-for-byte unchanged.
//!
//! ```text
//! cargo run --release -p acc-bench --bin soak -- --rounds 32 --seed 0xACC
//! cargo run --release -p acc-bench --bin soak -- --rounds 12 --coll
//! cargo run --release -p acc-bench --bin soak -- --repro soak-repro.txt
//! ```

use acc_bench::repro::{
    self, execute_caught, failure_of, ReproArtifact, ReproWorkload, EXPECTED_CLEAN,
};
use acc_bench::Executor;
use acc_chaos::{FaultEvent, FaultPlan, LinkId};
use acc_coll::{Algorithm, CollectiveOp};
use acc_core::cluster::{ClusterSpec, Technology};
use acc_core::{FaultDiagnostics, RunRequest};
use acc_net::FabricSpec;
use acc_sim::{DataSize, SimDuration, SimRng, SimTime};

/// Cluster size every round runs on.
const P: usize = 4;
/// Keys sorted per round.
const SORT_KEYS: u64 = 1 << 14;
/// FFT matrix rows per round.
const FFT_ROWS: usize = 32;

const TECHNOLOGIES: [Technology; 4] = [
    Technology::GigabitTcp,
    Technology::InicIdeal,
    Technology::InicPrototype,
    Technology::InicProtocol,
];

/// The `--coll` rotation: round `r` additionally soaks cell
/// `COLL_ROTATION[r % 6]`, so 6 rounds cover every collective with a
/// mix of both algorithm families. Sizes keep each cell in sort/FFT
/// territory (a few ms of simulated time under faults).
const COLL_ROTATION: [(CollectiveOp, Algorithm, usize); 6] = [
    (CollectiveOp::AllReduce, Algorithm::Ring, 4096),
    (
        CollectiveOp::ReduceScatter,
        Algorithm::RecursiveHalving,
        4096,
    ),
    (CollectiveOp::AllGather, Algorithm::RecursiveDoubling, 1024),
    (CollectiveOp::Broadcast, Algorithm::BinomialTree, 4096),
    (CollectiveOp::AllToAll, Algorithm::Bruck, 1024),
    (CollectiveOp::Barrier, Algorithm::Dissemination, 16),
];

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

/// The fabric round `round` runs on: every fourth round swaps the
/// single switch for a 4-switch torus ring (one host per switch), so
/// the nightly campaign soaks multi-switch routing — trunk hops,
/// re-route epochs, per-trunk conservation audits — under the same
/// randomized background faults as the classic rounds. Purely a
/// function of the round index, so artifacts can rebuild it.
fn round_fabric(round: u64) -> FabricSpec {
    if round % 4 == 2 {
        FabricSpec::Torus3D { dims: [2, 2, 1] }
    } else {
        FabricSpec::SingleSwitch
    }
}

/// Build round `round`'s randomized plan. All randomness comes from the
/// (seed, round) pair; the returned plan validates against [`P`].
///
/// The transient windows are sized to stay inside the protocol's
/// retransmit-abandon horizon, so every fault here is *survivable* by
/// design — a run that fails anyway found a real bug.
fn round_plan(seed: u64, round: u64, fabric: &FabricSpec) -> FaultPlan {
    let mut rng = SimRng::seed_from(seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut plan = FaultPlan::new(rng.next_u64());
    // Always-on background noise on every link.
    plan.push(FaultEvent::FrameLoss {
        link: LinkId::All,
        prob: rng.gen_range(1500) as f64 / 100_000.0, // <= 1.5%
    });
    plan.push(FaultEvent::LinkJitter {
        link: LinkId::All,
        max: SimDuration::from_micros(1 + rng.gen_range(50)),
    });
    plan.push(FaultEvent::FrameCorruption {
        link: LinkId::All,
        prob: rng.gen_range(500) as f64 / 100_000.0, // <= 0.5%
    });
    plan.push(FaultEvent::FrameReorder {
        link: LinkId::All,
        prob: rng.gen_range(2000) as f64 / 100_000.0, // <= 2%
        delay: SimDuration::from_micros(50 + rng.gen_range(150)),
    });
    // Coin-flipped structured faults.
    if rng.gen_bool(0.5) {
        let node = rng.gen_range(P as u64) as u32;
        let from = ms(1 + rng.gen_range(60));
        plan.push(FaultEvent::LinkOutage {
            link: LinkId::NodeUplink(node),
            from,
            until: from + SimDuration::from_micros(200 + rng.gen_range(1300)),
        });
    }
    if rng.gen_bool(0.5) {
        let node = rng.gen_range(P as u64) as u32;
        let from = ms(1 + rng.gen_range(60));
        plan.push(FaultEvent::BufferSqueeze {
            link: LinkId::SwitchDownlink(node),
            from,
            until: from + SimDuration::from_millis(1 + rng.gen_range(2)),
            capacity: DataSize::from_kib(16 + rng.gen_range(16)),
        });
    }
    if rng.gen_bool(0.5) {
        let node = rng.gen_range(P as u64) as u32;
        let from = ms(1 + rng.gen_range(62));
        plan.push(FaultEvent::NodeStall {
            node,
            from,
            until: from + SimDuration::from_millis(1 + rng.gen_range(2)),
        });
    }
    if rng.gen_bool(0.5) {
        plan.push(FaultEvent::CardReconfigure {
            node: rng.gen_range(P as u64) as u32,
            at: ms(1 + rng.gen_range(62)),
            hold: SimDuration::from_millis(1 + rng.gen_range(4)),
        });
    }
    if rng.gen_bool(0.25) {
        plan.push(FaultEvent::CardFailure {
            node: rng.gen_range(P as u64) as u32,
            at: ms(1 + rng.gen_range(65)),
        });
    }
    // Fabric rounds additionally coin-flip a trunk outage. The torus
    // ring always has a detour around any one down trunk and routing
    // re-plans at the outage edges, so the window can be generous and
    // the fault stays survivable. Drawn last: single-switch rounds use
    // exactly the draw sequence they always did.
    let trunks = fabric.build(P).trunks;
    if !trunks.is_empty() && rng.gen_bool(0.5) {
        let (a, b) = trunks[rng.gen_range(trunks.len() as u64) as usize];
        let from = ms(1 + rng.gen_range(60));
        plan.push(FaultEvent::LinkDown {
            a: a as u32,
            b: b as u32,
            from,
            until: from + SimDuration::from_millis(1 + rng.gen_range(3)),
        });
    }
    plan
}

fn tech_label(t: Technology) -> &'static str {
    match t {
        Technology::FastEthernet => "fast",
        Technology::GigabitTcp => "gigabit",
        Technology::InicIdeal => "inic-ideal",
        Technology::InicPrototype => "inic-proto",
        Technology::InicProtocol => "inic-pp",
    }
}

fn fault_line(f: &FaultDiagnostics) -> String {
    format!(
        "retrans={} degraded={} stalled={} reconf_ok={} resumed={}",
        f.retransmits,
        f.degraded_nodes,
        f.stalled_nodes,
        f.reconfig_windows_survived,
        f.resumed_from_phase
            .map_or_else(|| "-".to_owned(), |p| p.to_string()),
    )
}

/// One failing `(round, technology, workload)` cell: everything needed
/// to report it deterministically and to rebuild its plan for
/// minimization.
struct CellFailure {
    round: u64,
    tech: Technology,
    workload: ReproWorkload,
    observed: String,
}

/// The formatted report lines for one `(round, technology)` cell: sort
/// then FFT (then, under `--coll`, the round's rotation collective),
/// all verified. Runs in a worker thread; only the serial print loop
/// below touches stdout, so line order never depends on scheduling. A
/// failure (hang, divergence, panic) comes back as a [`CellFailure`]
/// instead of killing the campaign.
fn run_cell(
    round: u64,
    tech: Technology,
    fabric: FabricSpec,
    plan: &FaultPlan,
    coll: Option<(CollectiveOp, Algorithm, usize)>,
) -> Result<Vec<String>, CellFailure> {
    let line = |kind: &str, total: SimDuration, faults: &FaultDiagnostics| {
        format!(
            "round {round:03} {kind} {:<10} total={:>10.3}ms {}",
            tech_label(tech),
            total.as_millis_f64(),
            fault_line(faults),
        )
    };
    let spec = ClusterSpec::new(P, tech)
        .with_fabric(fabric)
        .with_fault_plan(plan.clone());
    let outcome = execute_caught(RunRequest::sort(spec, SORT_KEYS));
    let sort_line = match failure_of(&outcome) {
        Some(observed) => {
            return Err(CellFailure {
                round,
                tech,
                workload: ReproWorkload::Sort { keys: SORT_KEYS },
                observed,
            });
        }
        None => {
            let r = outcome.expect("no failure implies an outcome").into_sort();
            line("sort", r.total, &r.faults)
        }
    };
    let spec = ClusterSpec::new(P, tech)
        .with_fabric(fabric)
        .with_fault_plan(plan.clone());
    let outcome = execute_caught(RunRequest::fft(spec, FFT_ROWS));
    let fft_line = match failure_of(&outcome) {
        Some(observed) => {
            return Err(CellFailure {
                round,
                tech,
                workload: ReproWorkload::Fft { rows: FFT_ROWS },
                observed,
            });
        }
        None => {
            let r = outcome.expect("no failure implies an outcome").into_fft();
            line("fft ", r.total, &r.faults)
        }
    };
    let mut lines = vec![sort_line, fft_line];
    if let Some((op, algo, elems)) = coll {
        let spec = ClusterSpec::new(P, tech)
            .with_fabric(fabric)
            .with_fault_plan(plan.clone());
        let outcome = execute_caught(RunRequest::collective(spec, op, algo, elems));
        match failure_of(&outcome) {
            Some(observed) => {
                return Err(CellFailure {
                    round,
                    tech,
                    workload: ReproWorkload::Coll { op, algo, elems },
                    observed,
                });
            }
            None => {
                let r = outcome.expect("no failure implies an outcome").into_coll();
                lines.push(line("coll", r.total, &r.faults));
            }
        }
    }
    Ok(lines)
}

/// Replay a repro artifact (`--repro <file>`): exit 0 iff the recorded
/// failure reproduces exactly.
fn replay(path: &str) -> ! {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read repro artifact {path}: {e}"));
    let artifact = ReproArtifact::from_text(&text)
        .unwrap_or_else(|e| panic!("malformed repro artifact {path}: {e}"));
    println!(
        "replaying {path}: round {} {} {} under a {}-event plan",
        artifact.round,
        artifact.workload.label(),
        artifact.technology.label(),
        artifact.plan.events().len(),
    );
    match repro::with_silent_panics(|| artifact.replay()) {
        Ok(observed) => {
            println!("reproduced: {observed}");
            std::process::exit(0);
        }
        Err(diagnosis) => {
            println!("NOT reproduced: {diagnosis}");
            std::process::exit(1);
        }
    }
}

/// Minimize the first failing cell's plan, write the repro artifact,
/// and report — the deterministic failure epilogue of a soak run.
fn emit_repro(ex: &Executor, seed: u64, failure: &CellFailure) {
    // Every cell — collectives included — ran the round's full plan on
    // the round's fabric.
    let fabric = round_fabric(failure.round);
    let plan = round_plan(seed, failure.round, &fabric);
    println!(
        "minimizing round {:03} {} {} plan ({} events) ...",
        failure.round,
        failure.workload.label(),
        tech_label(failure.tech),
        plan.events().len(),
    );
    let minimized = repro::with_silent_panics(|| {
        repro::minimize_failure(ex, P, failure.tech, failure.workload, fabric, &plan)
    });
    let artifact = ReproArtifact {
        campaign_seed: seed,
        round: failure.round,
        p: P,
        technology: failure.tech,
        workload: failure.workload,
        fabric,
        expected: EXPECTED_CLEAN.to_owned(),
        observed: failure.observed.clone(),
        plan: minimized,
    };
    let path = "soak-repro.txt";
    std::fs::write(path, artifact.to_text())
        .unwrap_or_else(|e| panic!("cannot write repro artifact {path}: {e}"));
    println!(
        "minimized to {} event(s); repro artifact: {path} (replay with --repro {path})",
        artifact.plan.events().len(),
    );
}

fn main() {
    let ex = Executor::from_cli();
    let mut rounds: u64 = 32;
    let mut seed: u64 = 0xACC_50AC;
    let mut coll = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let parse = |v: Option<String>, what: &str| -> u64 {
            let v = v.unwrap_or_else(|| panic!("missing value for {what}"));
            let v = v.trim();
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).unwrap_or_else(|e| panic!("bad {what}: {e}"))
            } else {
                v.parse().unwrap_or_else(|e| panic!("bad {what}: {e}"))
            }
        };
        match a.as_str() {
            "--rounds" => rounds = parse(args.next(), "--rounds"),
            "--seed" => seed = parse(args.next(), "--seed"),
            "--coll" => coll = true,
            "--repro" => {
                let path = args
                    .next()
                    .unwrap_or_else(|| panic!("missing value for --repro"));
                replay(&path);
            }
            // Already consumed by Executor::from_cli; skip the value.
            "--jobs" => drop(args.next()),
            jobs_eq if jobs_eq.starts_with("--jobs=") => {}
            other => {
                panic!("unknown argument {other} (expected --rounds/--seed/--jobs/--coll/--repro)")
            }
        }
    }
    println!(
        "chaos soak: {rounds} rounds, seed {seed:#x}, P={P}, verification + auditor ON{}",
        if coll { ", collectives ON" } else { "" }
    );
    // Describe the whole campaign first: per round a plan line, per
    // (round, technology) one work-queue task computing its two report
    // lines. The executor returns results in submission order, so the
    // output below is byte-identical to the old serial loop at any
    // worker count.
    let mut plan_lines = Vec::new();
    type CellTask = Box<dyn FnOnce() -> Result<Vec<String>, CellFailure> + Send>;
    let mut tasks: Vec<CellTask> = Vec::new();
    for round in 0..rounds {
        let fabric = round_fabric(round);
        let plan = round_plan(seed, round, &fabric);
        plan.validate_for_fabric(P as u32, SimTime::MAX, &fabric)
            .unwrap_or_else(|e| panic!("round {round} built an invalid plan: {e}"));
        let coll_cell = coll.then(|| COLL_ROTATION[(round % COLL_ROTATION.len() as u64) as usize]);
        let kinds: Vec<&str> = plan
            .events()
            .iter()
            .map(|ev| match ev {
                FaultEvent::FrameLoss { .. } => "loss",
                FaultEvent::FrameCorruption { .. } => "corrupt",
                FaultEvent::FrameReorder { .. } => "reorder",
                FaultEvent::LinkJitter { .. } => "jitter",
                FaultEvent::LinkOutage { .. } => "outage",
                FaultEvent::BufferSqueeze { .. } => "squeeze",
                FaultEvent::NodeStall { .. } => "stall",
                FaultEvent::CardFailure { .. } => "card-kill",
                FaultEvent::CardReconfigure { .. } => "reconfig",
                FaultEvent::LinkDown { .. } => "link-down",
                FaultEvent::SwitchFailure { .. } => "switch-kill",
            })
            .collect();
        let topology = match fabric {
            FabricSpec::SingleSwitch => String::new(),
            other => format!(" topology={}", other.label()),
        };
        plan_lines.push(format!(
            "round {round:03}: plan [{}]{topology}",
            kinds.join(" ")
        ));
        for tech in TECHNOLOGIES {
            let plan = plan.clone();
            tasks.push(Box::new(move || {
                run_cell(round, tech, fabric, &plan, coll_cell)
            }));
        }
    }
    let runs = (if coll { 3 } else { 2 }) * tasks.len() as u64;
    let mut cells = ex.map(tasks).into_iter();
    let mut failures: Vec<CellFailure> = Vec::new();
    for plan_line in plan_lines {
        println!("{plan_line}");
        for _ in TECHNOLOGIES {
            match cells.next().expect("one cell per (round, tech)") {
                Ok(lines) => {
                    for l in lines {
                        println!("{l}");
                    }
                }
                Err(failure) => {
                    println!(
                        "round {:03} {} {:<10} FAILED: {}",
                        failure.round,
                        failure.workload.label(),
                        tech_label(failure.tech),
                        failure.observed,
                    );
                    failures.push(failure);
                }
            }
        }
    }
    if let Some(first) = failures.first() {
        println!(
            "soak FAILED: {} failing cell(s); first: round {:03} {} {}",
            failures.len(),
            first.round,
            first.workload.label(),
            tech_label(first.tech),
        );
        emit_repro(&ex, seed, first);
        std::process::exit(1);
    }
    println!("soak complete: {runs} runs, 0 verification failures, 0 audit violations");
}
