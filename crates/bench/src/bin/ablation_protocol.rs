//! Ablation: interrupt moderation × message size on the TCP path.
//!
//! Reproduces the Section 4.1 argument: interrupt mitigation is
//! *necessary* at Gigabit rates (per-frame interrupts cost more CPU
//! than the inter-arrival time) but *poisonous* for short transfers,
//! because the coalescing timeout inflates every ACK-clocked round
//! trip while TCP is still in slow start. The INIC sidesteps the whole
//! trade-off: one completion interrupt per transfer.
//!
//! For each message size we report the TCP transfer time under
//! per-frame and coalesced policies, and the INIC protocol's time for
//! the same bytes (Eqs. 6–7 pipeline: bounded by the 80 MiB/s host
//! port, 16-byte headers per 1024-byte packet).

use std::any::Any;
use std::collections::BTreeMap;

use acc_host::{InterruptCosts, ModerationPolicy};
use acc_net::port::EgressPort;
use acc_net::{EthernetKind, LinkParams, MacAddr, Switch, SwitchParams};
use acc_proto::{HostPathCosts, TcpDelivered, TcpHostNic, TcpParams, TcpSend};
use acc_sim::{Bandwidth, Component, ComponentId, Ctx, DataSize, SimTime, Simulation};

/// Sender/receiver application for one point of the sweep.
struct App {
    nic: ComponentId,
    send: Option<TcpSend>,
    expected: usize,
    received: usize,
    done_at: Option<SimTime>,
}

impl Component for App {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            if let Some(send) = self.send.take() {
                ctx.send_now(self.nic, send);
            }
        } else if let Ok(d) = ev.downcast::<TcpDelivered>() {
            self.received += d.data.len();
            if self.received >= self.expected {
                self.done_at = Some(ctx.now());
            }
        } else {
            panic!("app: unexpected event");
        }
    }
    fn name(&self) -> &str {
        "app"
    }
}

/// One TCP transfer of `bytes` under `policy`; returns the delivery time.
fn tcp_transfer_time(bytes: usize, policy: ModerationPolicy) -> f64 {
    let mut sim = Simulation::new(99);
    let link = LinkParams::for_kind(EthernetKind::Gigabit);
    let macs = [MacAddr::for_node(0, 0), MacAddr::for_node(1, 0)];
    let apps = [sim.reserve_id(), sim.reserve_id()];
    let nics = [sim.reserve_id(), sim.reserve_id()];
    let switch_id = sim.reserve_id();
    let mut switch = Switch::new("sw", SwitchParams::default());
    for i in 0..2 {
        let sw_port = switch.attach(macs[i], nics[i], 0, link);
        let uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_id,
            sw_port,
            0,
        );
        sim.register(
            nics[i],
            TcpHostNic::new(
                format!("tcp{i}"),
                macs[i],
                apps[i],
                uplink,
                TcpParams::default(),
                HostPathCosts::athlon_pci(),
                InterruptCosts::athlon_linux24(),
                policy,
            ),
        );
        sim.register(
            apps[i],
            App {
                nic: nics[i],
                send: (i == 0).then(|| TcpSend {
                    peer: macs[1],
                    chan: 1,
                    data: vec![0xA5; bytes],
                }),
                expected: if i == 1 { bytes } else { usize::MAX },
                received: 0,
                done_at: None,
            },
        );
        sim.schedule_at(SimTime::ZERO, apps[i], ());
    }
    sim.register(switch_id, switch);
    // acc-lint: allow(R6, reason = "bounded two-node TCP micro-sim on a clean wire: one transfer, terminates when the stream drains")
    sim.run();
    let mut done: BTreeMap<usize, SimTime> = BTreeMap::new();
    if let Some(t) = sim.component::<App>(apps[1]).done_at {
        done.insert(1, t);
    }
    done[&1].as_secs_f64()
}

/// The INIC protocol's modelled time for the same bytes: pipelined
/// through the slowest port (80 MiB/s host side), 16 B header per
/// 1024 B packet, one completion interrupt.
fn inic_transfer_time(bytes: usize) -> f64 {
    let wire = acc_proto::wire_payload_bytes(bytes);
    let port = Bandwidth::from_mib_per_sec(80);
    let t = port.transfer_time(DataSize::from_bytes(wire as u64));
    t.as_secs_f64() + 12e-6 // completion interrupt
}

fn main() {
    let ex = acc_bench::Executor::from_cli();
    let sizes: Vec<usize> = [9usize, 11, 13, 15, 17, 19, 21, 23]
        .into_iter()
        .map(|shift| 1usize << shift)
        .collect();
    // Every (size, policy) transfer is its own simulation — fan the
    // sweep out, then print rows from the results in submission order.
    let tasks: Vec<_> = sizes
        .iter()
        .flat_map(|&bytes| {
            [
                ModerationPolicy::PerFrame,
                ModerationPolicy::syskonnect_default(),
            ]
            .map(move |policy| move || tcp_transfer_time(bytes, policy))
        })
        .collect();
    let mut times = ex.map(tasks).into_iter();
    println!("# Protocol ablation: one-way transfer time (ms) by message size");
    println!(
        "{:>10} {:>16} {:>16} {:>16} {:>10}",
        "bytes", "tcp per-frame", "tcp coalesced", "inic protocol", "tcp/inic"
    );
    for &bytes in &sizes {
        let per_frame = times.next().expect("per-frame point");
        let coalesced = times.next().expect("coalesced point");
        let inic = inic_transfer_time(bytes);
        println!(
            "{:>10} {:>13.3} ms {:>13.3} ms {:>13.3} ms {:>9.1}x",
            bytes,
            per_frame * 1e3,
            coalesced * 1e3,
            inic * 1e3,
            coalesced / inic
        );
    }
    println!();
    println!("# The short-message pathology: coalescing adds ~100us per ACK round");
    println!("# trip, so TCP's slow-start ramp pays it repeatedly; the INIC's");
    println!("# application-specific protocol needs no per-packet ACKs at all.");
}
