//! Ablation over the INIC design constants the paper argues for:
//!
//! * **packet size** (Section 4.2 picks 1024 bytes: "there is no
//!   particular incentive to maximize the packet size") — Eqs. 13–14
//!   scale linearly with it, and header overhead scales inversely;
//! * **DMA threshold** (Eq. 15's 64 KiB minimum card→host transfer) —
//!   the N-bucket fill latency scales with it, while small transfers
//!   waste DMA efficiency;
//! * **receive bucket count N** — more buckets make count sort
//!   cache-resident (host time down) but raise Eq. 15's fill latency.

use acc_core::model::sort::{SortModel, DMA_MIN, KEY_BYTES};
use acc_sim::{Bandwidth, DataSize};

fn main() {
    let total_keys: u64 = 1 << 25;
    let p = 8usize;
    let model = SortModel::new(total_keys);

    println!("# Packet-size ablation (Eqs. 13-14 latency terms, P = {p})");
    println!(
        "{:>8} {:>14} {:>14} {:>12}",
        "packet", "Tdtc+Tdtg", "hdr overhead", ""
    );
    for pkt in [256u64, 512, 1024, 2048, 4096] {
        let t_dtc = DataSize::from_bytes(p as u64 * pkt) / Bandwidth::from_mib_per_sec(80);
        let t_dtg = DataSize::from_bytes(p as u64 * pkt) / Bandwidth::from_mib_per_sec(90);
        let overhead = 16.0 / (pkt as f64 + 16.0) * 100.0;
        println!(
            "{:>8} {:>11.1} us {:>12.2} % {:>12}",
            pkt,
            (t_dtc + t_dtg).as_secs_f64() * 1e6,
            overhead,
            if pkt == 1024 { "<- paper" } else { "" }
        );
    }
    println!("# Latency stays microseconds at any size; 1024 B keeps overhead");
    println!("# under 2% — the paper's \"no incentive to maximize\" holds.\n");

    println!("# DMA-threshold ablation (Eq. 15 fill latency, P = {p})");
    let n = model.recv_buckets(p);
    println!("{:>10} {:>14} {:>12}", "threshold", "Tdfg", "");
    for thresh in [8u64 * 1024, 16 * 1024, 32 * 1024, 65_536, 131_072, 262_144] {
        let t = DataSize::from_bytes(n * thresh) / Bandwidth::from_mib_per_sec(90);
        println!(
            "{:>10} {:>11.1} ms {:>12}",
            thresh,
            t.as_secs_f64() * 1e3,
            if thresh == DMA_MIN { "<- paper" } else { "" }
        );
    }
    println!("# Smaller thresholds cut the fill latency linearly but sacrifice");
    println!("# DMA efficiency; 64 KiB is where 2001 PCI DMA saturates.\n");

    println!("# Receive-bucket ablation (host count-sort time vs Eq. 15, P = {p})");
    println!(
        "{:>8} {:>14} {:>14} {:>14}",
        "N", "bucket KiB", "Tcount", "Tdfg"
    );
    let keys_per_node = total_keys / p as u64;
    for n in [16u64, 64, 128, 256, 512, 1024] {
        let bucket_bytes = DataSize::from_bytes((keys_per_node * KEY_BYTES / n).max(1));
        let t_count = model.kernels.count_sort_time(keys_per_node, bucket_bytes);
        let t_dfg = DataSize::from_bytes(n * DMA_MIN) / Bandwidth::from_mib_per_sec(90);
        println!(
            "{:>8} {:>14.0} {:>11.0} ms {:>11.1} ms",
            n,
            bucket_bytes.as_kib_f64(),
            t_count.as_secs_f64() * 1e3,
            t_dfg.as_secs_f64() * 1e3
        );
    }
    println!("# Too few buckets leave count sort DRAM-bound (3x slower); past");
    println!("# cache residency, more buckets only add fill latency — matching");
    println!("# the paper's \">= 128 buckets\" rule for 2^21-key partitions.");
}
