//! Ablation: key-distribution skew × partitioning strategy.
//!
//! The paper sorts uniformly distributed keys and admits "this is not a
//! realistic assumption", pointing at "sampling in a pre-sort phase" as
//! the known fix. This binary quantifies both halves of that remark on
//! the simulated cluster:
//!
//! * Gaussian keys under the paper's top-bits partitioning overload the
//!   middle ranks — the makespan balloons with P;
//! * the same keys under sampled range splitters restore near-uniform
//!   balance and the uniform-key speedups.

use acc_bench::{figure_spec, Executor};
use acc_core::cluster::{KeyDistribution, PartitionStrategy, Technology};
use acc_core::RunRequest;

/// The three columns: (distribution, partitioning).
const CONFIGS: [(KeyDistribution, PartitionStrategy); 3] = [
    (KeyDistribution::Uniform, PartitionStrategy::TopBits),
    (KeyDistribution::Gaussian, PartitionStrategy::TopBits),
    (
        KeyDistribution::Gaussian,
        PartitionStrategy::SampledSplitters,
    ),
];

fn main() {
    let ex = Executor::from_cli();
    let total_keys: u64 = 1 << 22;
    let tech = Technology::InicIdeal;
    let procs = [2usize, 4, 8, 16];
    let requests: Vec<RunRequest> = procs
        .iter()
        .flat_map(|&p| {
            CONFIGS.iter().map(move |&(dist, strat)| {
                RunRequest::sort_custom(figure_spec(p, tech), total_keys, dist, strat)
            })
        })
        .collect();
    let mut outcomes = ex.run_all(requests).into_iter();
    println!("# Skew ablation: integer sort, 2^22 keys, ideal INIC");
    println!(
        "{:>3} {:>16} {:>18} {:>20}",
        "P", "uniform/topbits", "gaussian/topbits", "gaussian/splitters"
    );
    for p in procs {
        let uniform = outcomes.next().expect("uniform cell").total();
        let skewed = outcomes.next().expect("skewed cell").total();
        let balanced = outcomes.next().expect("balanced cell").total();
        println!(
            "{:>3} {:>13.2} ms {:>15.2} ms {:>17.2} ms",
            p,
            uniform.as_millis_f64(),
            skewed.as_millis_f64(),
            balanced.as_millis_f64()
        );
    }
    println!();
    println!("# Top-bits partitioning sends nearly all Gaussian keys to the");
    println!("# middle ranks: their count-sort dominates the makespan. Sampled");
    println!("# splitters recover the uniform-key behaviour, validating the");
    println!("# paper's pre-sort sampling remark.");
}
