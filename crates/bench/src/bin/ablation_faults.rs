//! Fault-injection campaign: completion time, goodput, and recovery
//! effort for the integer sort under swept frame-loss rates, per
//! technology. The paper evaluates the INIC protocol only on a
//! loss-free switched network ("no packet loss as the total amount of
//! data put into the network never exceeds the network buffers"); this
//! ablation asks what each stack pays once that assumption breaks, with
//! the lightweight protocol extended by checksums, NACKs, and sender
//! timeout-retransmission (see DESIGN.md §5.11).
//!
//! Deterministic end to end: the fault-plan seed fixes every per-link
//! loss sequence, so re-running this binary reproduces the table
//! byte-for-byte.

use acc_bench::campaign::{fault_campaign, CampaignConfig};
use acc_bench::Executor;

fn main() {
    let report = fault_campaign(&Executor::from_cli(), &CampaignConfig::default());
    report.print();
}
