//! Fabric fault-tolerance ablation: topology × fault kind × recovery
//! policy for a mid-run allreduce, up to p=128.
//!
//! The question is **what a fabric fault actually costs** once routing
//! failover and recovery are wired through the whole stack. A trunk
//! outage should price as re-route detour latency only (no rank
//! degrades, all policies identical); a switch kill splits by where the
//! hosts sit — a dead fat-tree core reroutes invisibly, while a dead
//! host-bearing torus switch takes its rank's card with it and the
//! recovery-policy column spread mirrors the card-death ablation.
//!
//! All cells fan out through the deterministic work-queue executor and
//! print in submission order, so the output is byte-identical at any
//! `--jobs` count. `--smoke` shrinks the sweep for CI.
//!
//! ```text
//! cargo run --release -p acc-bench --bin ablation_fabric_faults
//! cargo run --release -p acc-bench --bin ablation_fabric_faults -- --smoke
//! ```

use acc_bench::Executor;
use acc_chaos::{FaultEvent, FaultPlan};
use acc_coll::{Algorithm, CollectiveOp};
use acc_core::cluster::{ClusterSpec, Technology};
use acc_core::{RecoveryPolicy, RunOutcome, RunRequest};
use acc_net::FabricSpec;
use acc_sim::{SimDuration, SimTime};

/// Column order of the policy sweep.
const POLICIES: [RecoveryPolicy; 3] = [
    RecoveryPolicy::FullRestart,
    RecoveryPolicy::RankLocal,
    RecoveryPolicy::Checkpointed,
];

fn ms(n: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_millis(n)
}

/// The two fabric fault kinds of the sweep, instantiated per topology:
/// the first trunk down for [61 ms, 64 ms), or a switch dead at 61 ms
/// (a core on fat-trees — pure failover; the last rank's home on the
/// torus — a real casualty).
fn fault(spec: FabricSpec, p: usize, kind: &str) -> FaultEvent {
    let topo = spec.build(p);
    match kind {
        "link-down" => {
            let (a, b) = topo.trunks[0];
            FaultEvent::LinkDown {
                a: a as u32,
                b: b as u32,
                from: ms(61),
                until: ms(64),
            }
        }
        "switch-kill" => {
            let switch = match spec {
                FabricSpec::FatTree { k } => k * k, // first core
                _ => topo.home[p - 1],
            };
            FaultEvent::SwitchFailure {
                switch: switch as u32,
                at: ms(61),
            }
        }
        other => panic!("unknown fault kind {other}"),
    }
}

/// One policy cell: total in ms, the resume round when the coordinator
/// resumed, or an attributed HUNG marker (a hang here is a finding, not
/// a crash — the table prints it and the process still exits 0 only on
/// verified completions).
fn cell(outcome: RunOutcome) -> String {
    if outcome.is_hung() {
        let report = outcome.hang().expect("hung outcome carries its report");
        return format!("HUNG({})", report.attribution());
    }
    let r = outcome.into_coll();
    assert!(r.verified, "faulted collective produced wrong data");
    match r.faults.resumed_from_phase {
        Some(round) => format!("{:.3} (r{round})", r.total.as_millis_f64()),
        None => format!("{:.3}", r.total.as_millis_f64()),
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ex = Executor::from_cli();
    let elems: usize = if smoke { 1 << 10 } else { 6144 };
    let topologies: Vec<(FabricSpec, usize)> = if smoke {
        vec![(FabricSpec::FatTree { k: 4 }, 16)]
    } else {
        vec![
            (FabricSpec::FatTree { k: 4 }, 16),
            (FabricSpec::Torus3D { dims: [2, 2, 2] }, 8),
            (FabricSpec::FatTree { k: 8 }, 128),
        ]
    };
    const KINDS: [&str; 2] = ["link-down", "switch-kill"];

    // Request list first, then one deterministic fan-out; results come
    // back in submission order at any worker count.
    let mut requests = Vec::new();
    for &(spec, p) in &topologies {
        requests.push(RunRequest::collective(
            ClusterSpec::new(p, Technology::InicIdeal).with_fabric(spec),
            CollectiveOp::AllReduce,
            Algorithm::Ring,
            elems,
        ));
        for kind in KINDS {
            for policy in POLICIES {
                let plan = FaultPlan::new(0xFAB1).with(fault(spec, p, kind));
                let cluster = ClusterSpec::new(p, Technology::InicIdeal)
                    .with_fabric(spec)
                    .with_fault_plan(plan)
                    .with_recovery_policy(policy);
                requests.push(RunRequest::collective(
                    cluster,
                    CollectiveOp::AllReduce,
                    Algorithm::Ring,
                    elems,
                ));
            }
        }
    }
    let mut outcomes = ex.run_all(requests).into_iter();

    println!(
        "# fabric fault ablation: topology x fault kind x recovery policy, \
         ring allreduce, {} f64 per rank{}",
        elems,
        if smoke { " (smoke)" } else { "" }
    );
    println!("# trunk down [61ms, 64ms) or switch dead at 61ms; totals in ms; (rN) = resumed");
    for (spec, p) in topologies {
        println!();
        println!("## {spec} — p={p}, inic-ideal");
        let clean = outcomes.next().expect("clean cell");
        println!(
            "{:>12} {:>16} {:>16} {:>16}   clean={}",
            "fault",
            "full-restart",
            "rank-local",
            "checkpointed",
            cell(clean)
        );
        for kind in KINDS {
            let full = cell(outcomes.next().expect("full-restart cell"));
            let local = cell(outcomes.next().expect("rank-local cell"));
            let ckpt = cell(outcomes.next().expect("checkpointed cell"));
            println!("{kind:>12} {full:>16} {local:>16} {ckpt:>16}");
        }
    }
    println!();
    println!("# Read across: a trunk outage is pure detour latency (the policy");
    println!("# columns agree), a dead core switch is pure ECMP failover, and a");
    println!("# dead host-bearing switch behaves exactly like that rank's card");
    println!("# dying — the policy spread matches the card-death ablation.");
}
