//! Ablation of the credit-window extension: per-destination window size
//! vs incast behaviour.
//!
//! The INIC protocol's loss-freedom guarantee requires that concurrent
//! senders never oversubscribe a switch output buffer. With `P−1`
//! senders converging on one hot receiver, each sender's un-credited
//! window `W` must satisfy `(P−1) × W ≤ buffer` (512 KiB here). This
//! sweep shows both failure modes:
//!
//! * too large — the switch drops frames and (with no retransmission)
//!   the collective can deadlock;
//! * very small — extra credit round trips pace the senders below the
//!   receiver's line rate.

use std::any::Any;

use acc_fpga::{
    Bitstream, CardPorts, FpgaDevice, GatherKind, InicCard, InicConfigure, InicConfigured,
    InicExpect, InicGatherComplete, InicScatter, InicScatterDone, ScatterKind,
};
use acc_net::port::EgressPort;
use acc_net::{EthernetKind, LinkParams, MacAddr, Switch, SwitchParams};
use acc_sim::{Component, ComponentId, Ctx, SimTime, Simulation};

struct Incast {
    card: ComponentId,
    rank: u32,
    p: usize,
    macs: Vec<MacAddr>,
    payload: usize,
    done_at: Option<SimTime>,
}

impl Component for Incast {
    fn handle(&mut self, ev: Box<dyn Any>, ctx: &mut Ctx) {
        if ev.downcast_ref::<()>().is_some() {
            ctx.send_now(
                self.card,
                InicConfigure {
                    bitstream: Bitstream::protocol_only(),
                },
            );
            return;
        }
        let ev = match ev.downcast::<InicConfigured>() {
            Err(ev) => ev,
            Ok(_) => {
                if self.rank == 0 {
                    ctx.send_now(
                        self.card,
                        InicExpect {
                            stream: 1,
                            kind: GatherKind::Raw,
                            sources: (1..self.p as u32)
                                .map(|s| (s, Some(self.payload)))
                                .collect(),
                        },
                    );
                } else {
                    let mut parts = vec![0usize; self.p];
                    parts[0] = self.payload;
                    ctx.send_now(
                        self.card,
                        InicScatter {
                            stream: 1,
                            kind: ScatterKind::Raw { parts },
                            data: vec![self.rank as u8; self.payload],
                            dests: self.macs.clone(),
                        },
                    );
                }
                return;
            }
        };
        let ev = match ev.downcast::<InicGatherComplete>() {
            Err(ev) => ev,
            Ok(_) => {
                self.done_at = Some(ctx.now());
                return;
            }
        };
        if ev.downcast_ref::<InicScatterDone>().is_some() {
            return;
        }
        panic!("incast: unexpected event");
    }
    fn name(&self) -> &str {
        "incast"
    }
}

/// Run the 8-into-1 incast with the given window; returns
/// `(completion_ms_if_any, switch_drops)`.
fn run_incast(window: u64) -> (Option<f64>, u64) {
    let p = 9usize;
    let payload = 256 * 1024;
    let mut sim = Simulation::new(5);
    // Bound runaway scenarios (a deadlocked run simply drains early).
    sim.set_event_limit(50_000_000);
    let link = LinkParams::for_kind(EthernetKind::Gigabit);
    let macs: Vec<MacAddr> = (0..p).map(|i| MacAddr::for_node(i, 2)).collect();
    let drivers: Vec<ComponentId> = (0..p).map(|_| sim.reserve_id()).collect();
    let cards: Vec<ComponentId> = (0..p).map(|_| sim.reserve_id()).collect();
    let switch_id = sim.reserve_id();
    let mut switch = Switch::new("sw", SwitchParams::default());
    for i in 0..p {
        let sw_port = switch.attach(macs[i], cards[i], 0, link);
        let uplink = EgressPort::new(
            link.rate,
            link.prop_delay,
            acc_net::presets::NIC_BUFFER,
            switch_id,
            sw_port,
            0,
        );
        sim.register(
            cards[i],
            InicCard::new(
                format!("inic{i}"),
                i as u32,
                macs[i],
                drivers[i],
                uplink,
                FpgaDevice::virtex_next_gen(),
                CardPorts::ideal(),
            )
            .with_credit_window(window),
        );
        sim.register(
            drivers[i],
            Incast {
                card: cards[i],
                rank: i as u32,
                p,
                macs: macs.clone(),
                payload,
                done_at: None,
            },
        );
        sim.schedule_at(SimTime::ZERO, drivers[i], ());
    }
    sim.register(switch_id, switch);
    // acc-lint: allow(R6, reason = "bounded incast micro-sim: fixed payload, no retransmit loop can outlive the drained queue")
    sim.run();
    let done = sim
        .component::<Incast>(drivers[0])
        .done_at
        .map(|t| t.as_millis_f64());
    let drops = sim.component::<Switch>(switch_id).total_drops();
    (done, drops)
}

fn main() {
    let ex = acc_bench::Executor::from_cli();
    let windows = [4u64, 8, 16, 24, 32, 48, 64, 128].map(|k| k * 1024);
    let results = ex.map(windows.iter().map(|&w| move || run_incast(w)).collect());
    println!("# Credit-window ablation: 8 senders x 256 KiB into one receiver");
    println!("# switch output buffer = 512 KiB; safe bound: 8 x W <= 512 KiB");
    println!(
        "{:>10} {:>14} {:>10} {:>10}",
        "window", "completion", "drops", ""
    );
    for (window, (done, drops)) in windows.into_iter().zip(results) {
        let outcome = match done {
            Some(ms) => format!("{ms:>11.2} ms"),
            None => format!("{:>14}", "DEADLOCK"),
        };
        println!(
            "{:>9}K {} {:>10} {:>10}",
            window / 1024,
            outcome,
            drops,
            if window == 24 * 1024 {
                "<- default"
            } else {
                ""
            }
        );
    }
    println!();
    println!("# Windows past the safe bound drop frames; the lossless protocol");
    println!("# then waits forever for data that will never arrive. Small");
    println!("# windows stay safe and cost little until they can no longer");
    println!("# cover the credit round-trip.");
}
