//! Figure 5(a): timed components of the serialized parallel integer
//! sort on Gigabit Ethernet — count-sort time, phase-1 and phase-2
//! bucket-sort times, communication time, and partition size, vs the
//! number of processors, for 2²⁵ uniform keys.

use acc_bench::{figure_spec, partition_series, Executor, SIM_PROCS};
use acc_core::cluster::Technology;
use acc_core::report::{FigureReport, Series};
use acc_core::RunRequest;

fn main() {
    let ex = Executor::from_cli();
    let total_keys: u64 = 1 << 25;
    let mut fig = FigureReport::new(
        "Figure 5(a)",
        "Sort phase times and partition size vs processors (2^25 keys, Gigabit Ethernet)",
        "P",
        "time (ms) / partition (KiB)",
    );
    let mut count = Series::new("Count Sort Time (ms)");
    let mut b1 = Series::new("Phase 1 Bucket Sort Time (ms)");
    let mut b2 = Series::new("Phase 2 Bucket Sort Time (ms)");
    let mut comm = Series::new("Communication Time (ms)");
    let requests = SIM_PROCS
        .iter()
        .map(|&p| RunRequest::sort(figure_spec(p, Technology::GigabitTcp), total_keys))
        .collect();
    for (&p, outcome) in SIM_PROCS.iter().zip(ex.run_all(requests)) {
        let r = outcome.into_sort();
        count.push(p as f64, r.count.as_millis_f64());
        b1.push(p as f64, r.bucket1.as_millis_f64());
        b2.push(p as f64, r.bucket2.as_millis_f64());
        if p > 1 {
            comm.push(p as f64, r.comm.as_millis_f64());
        }
    }
    fig.add(count);
    fig.add(b1);
    fig.add(b2);
    fig.add(comm);
    fig.add(partition_series("Partition Size (KiB)", total_keys * 4));
    fig.print();
}
