//! Ablation: recovery cost of a permanent card failure versus *when*
//! the failure lands, for each [`RecoveryPolicy`].
//!
//! One rank's INIC dies at the swept fault time while the 4-node
//! cluster sorts 2¹⁶ keys over ideal INICs (bitstream configuration
//! occupies the first 60 ms, the bucket exchange runs after it). Each
//! policy pays a different price: `full-restart` throws every rank's
//! work away and redoes the collective over the commodity fallback
//! NICs; `rank-local` keeps the survivors' cards but restarts from
//! scratch; `checkpointed` (the default) resumes from the last phase
//! every rank completed. The fault-free run is included as the
//! baseline; result verification is ON for every point.
//!
//! ```text
//! cargo run --release -p acc-bench --bin ablation_transient
//! ```

use acc_bench::Executor;
use acc_chaos::{FaultEvent, FaultPlan};
use acc_core::cluster::{run_sort, ClusterSpec, Technology};
use acc_core::report::{FigureReport, Series};
use acc_core::{RecoveryPolicy, RunRequest};
use acc_sim::{SimDuration, SimTime};

const P: usize = 4;
const KEYS: u64 = 1 << 16;
/// Rank whose card dies.
const VICTIM: u32 = 1;

/// Fault times swept (milliseconds). 1 and 30 land inside the 60 ms
/// bitstream-configuration window; the rest land in the post-config
/// exchange/sort phases.
const FAULT_MS: [u64; 5] = [1, 30, 61, 62, 64];

const POLICIES: [(RecoveryPolicy, &str); 3] = [
    (RecoveryPolicy::FullRestart, "full-restart"),
    (RecoveryPolicy::RankLocal, "rank-local"),
    (RecoveryPolicy::Checkpointed, "checkpointed"),
];

fn main() {
    let ex = Executor::from_cli();
    let mut fig = FigureReport::new(
        "Ablation T",
        format!("Card-failure recovery cost vs fault time (sort, {KEYS} keys, P={P}, ideal INIC)"),
        "fault ms",
        "completion ms (post-config)",
    );

    // Fault-free baseline: the same spec with an armed-but-empty plan,
    // so the protocol overhead matches the faulted runs.
    let baseline = {
        let spec =
            ClusterSpec::new(P, Technology::InicIdeal).with_fault_plan(FaultPlan::new(0x7E57));
        let r = run_sort(spec, KEYS);
        assert!(r.verified, "baseline run diverged");
        r.total.as_millis_f64()
    };
    let mut base = Series::new("no-fault baseline");
    for &at_ms in &FAULT_MS {
        base.push(at_ms as f64, baseline);
    }
    fig.add(base);

    // The policy × fault-time matrix fans out across the executor; the
    // series and diagnostics are rebuilt from results in submission
    // order, so the report is identical at any worker count.
    let requests: Vec<RunRequest> = POLICIES
        .iter()
        .flat_map(|&(policy, _)| {
            FAULT_MS.iter().map(move |&at_ms| {
                let plan = FaultPlan::new(0x7E57).with(FaultEvent::CardFailure {
                    node: VICTIM,
                    at: SimTime::ZERO + SimDuration::from_millis(at_ms),
                });
                let spec = ClusterSpec::new(P, Technology::InicIdeal)
                    .with_fault_plan(plan)
                    .with_recovery_policy(policy);
                RunRequest::sort(spec, KEYS)
            })
        })
        .collect();
    let mut outcomes = ex.run_all(requests).into_iter();
    let mut notes = Vec::new();
    for (_, name) in POLICIES {
        let mut s = Series::new(name);
        for &at_ms in &FAULT_MS {
            let r = outcomes.next().expect("one outcome per point").into_sort();
            assert!(r.verified, "{name} @ {at_ms}ms diverged from the oracle");
            s.push(at_ms as f64, r.total.as_millis_f64());
            notes.push(format!(
                "{name:<13} fault@{at_ms:>2}ms: degraded={} resumed={}",
                r.faults.degraded_nodes,
                r.faults
                    .resumed_from_phase
                    .map_or_else(|| "-".to_owned(), |p| p.to_string()),
            ));
        }
        fig.add(s);
    }

    fig.print();
    println!("--- diagnostics ---");
    for n in notes {
        println!("{n}");
    }
}
