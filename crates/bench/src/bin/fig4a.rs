//! Figure 4(a): FFTW speedups for an Intelligent NIC vs a Gigabit
//! Ethernet cluster, 256×256 and 512×512, P = 1..16.
//!
//! As in the paper, the INIC curves come from the Section 4 analytic
//! model (Eqs. 3–10, evaluated at every P) and the Gigabit curves from
//! measurement — here, the discrete-event simulation of the TCP
//! cluster at power-of-two P.

use acc_bench::{fft_serial_time, fft_speedup_series, Executor};
use acc_core::cluster::Technology;
use acc_core::model::FftModel;
use acc_core::report::{FigureReport, Series};

fn main() {
    let ex = Executor::from_cli();
    let mut fig = FigureReport::new(
        "Figure 4(a)",
        "FFTW speedups for an Intelligent NIC and a cluster based on Gigabit Ethernet",
        "P",
        "speedup",
    );
    for rows in [256usize, 512] {
        let model = FftModel::new(rows);
        let mut inic = Series::new(format!("INIC Speedup {rows}x{rows}"));
        for p in 1..=16usize {
            inic.push(p as f64, model.speedup(p));
        }
        fig.add(inic);
        let serial = fft_serial_time(rows);
        fig.add(fft_speedup_series(
            &ex,
            &format!("Gigabit Ethernet Speedup {rows}x{rows}"),
            Technology::GigabitTcp,
            rows,
            serial,
        ));
    }
    fig.print();
}
