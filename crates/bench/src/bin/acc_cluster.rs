//! Command-line scenario runner: pick an application, a technology, a
//! node count and a problem size, get the verified timing decomposition.
//!
//! ```sh
//! cargo run --release -p acc-bench --bin acc_cluster -- fft inic-ideal 8 256
//! cargo run --release -p acc-bench --bin acc_cluster -- sort gigabit-tcp 4 1048576
//! cargo run --release -p acc-bench --bin acc_cluster -- allreduce inic-prototype 8 262144
//! cargo run --release -p acc-bench --bin acc_cluster -- --topology=fat-tree:4 allreduce inic-ideal 16 262144
//! ```

use acc_core::cluster::{run_allreduce, run_fft, run_sort, ClusterSpec, Technology};
use acc_net::FabricSpec;

fn usage() -> ! {
    eprintln!(
        "usage: acc_cluster [--topology=<fabric>] <fft|sort|allreduce> <technology> <P> <size>\n\
         technologies: fast-ethernet gigabit-tcp inic-ideal inic-prototype inic-protocol-only\n\
         fabric: single (default) | fat-tree:<k> | torus:<dx>x<dy>x<dz>\n\
         size: matrix edge (fft), total keys (sort), vector elements (allreduce)"
    );
    std::process::exit(2);
}

fn parse_tech(s: &str) -> Technology {
    Technology::ALL
        .into_iter()
        .find(|t| t.label() == s)
        .unwrap_or_else(|| {
            eprintln!("unknown technology {s:?}");
            usage()
        })
}

fn main() {
    let mut fabric = FabricSpec::SingleSwitch;
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| match a.strip_prefix("--topology=") {
            Some(label) => {
                fabric = FabricSpec::parse(label).unwrap_or_else(|e| {
                    eprintln!("{e}");
                    usage()
                });
                false
            }
            None => true,
        })
        .collect();
    let [app, tech, p, size] = args.as_slice() else {
        usage();
    };
    let tech = parse_tech(tech);
    let p: usize = p.parse().unwrap_or_else(|_| usage());
    let size: u64 = size.parse().unwrap_or_else(|_| usage());
    if let Err(e) = fabric.validate(p) {
        eprintln!("topology does not fit p={p}: {e}");
        usage()
    }
    let spec = ClusterSpec::new(p, tech).with_fabric(fabric);
    match app.as_str() {
        "fft" => {
            let r = run_fft(spec, size as usize);
            println!(
                "fft {}x{} on {} x{}: total {:.3} ms (compute {:.3} ms, transpose {:.3} ms \
                 [comm {:.3} / host {:.3}]), verified={}",
                size,
                size,
                tech.label(),
                p,
                r.total.as_millis_f64(),
                r.compute.as_millis_f64(),
                r.transpose.as_millis_f64(),
                r.transpose_comm.as_millis_f64(),
                r.transpose_compute.as_millis_f64(),
                r.verified
            );
        }
        "sort" => {
            let r = run_sort(spec, size);
            println!(
                "sort {} keys on {} x{}: total {:.3} ms (bucket1 {:.3}, comm {:.3}, \
                 bucket2 {:.3}, count {:.3}), verified={}",
                size,
                tech.label(),
                p,
                r.total.as_millis_f64(),
                r.bucket1.as_millis_f64(),
                r.comm.as_millis_f64(),
                r.bucket2.as_millis_f64(),
                r.count.as_millis_f64(),
                r.verified
            );
        }
        "allreduce" => {
            let r = run_allreduce(spec, size as usize);
            println!(
                "allreduce {} f64 on {} x{}: total {:.3} ms (comm {:.3}, host reduce {:.3}), \
                 verified={}",
                size,
                tech.label(),
                p,
                r.total.as_millis_f64(),
                r.comm.as_millis_f64(),
                r.reduce.as_millis_f64(),
                r.verified
            );
        }
        _ => usage(),
    }
}
