//! Wall-clock baseline for the campaign executor: how long the
//! representative campaign points take serially vs fanned across the
//! machine, written as `BENCH_campaign.json` at the repository root.
//!
//! Two passes over the same run matrix (sort + FFT on each of the four
//! technologies, plus the allreduce algorithm-pair microbenches):
//!
//! 1. **serial** — `Executor::new(1)`, with each point timed
//!    individually (the per-point table in the JSON);
//! 2. **parallel** — the auto worker count (or `--jobs`/`ACC_JOBS`),
//!    wall-timed as one batch.
//!
//! The simulated results of both passes are asserted identical — the
//! executor's determinism contract, checked on every invocation — and
//! the JSON records both wall times plus the measured speedup. On a
//! single-core host (`host_parallelism: 1`) the parallel pass degrades
//! to the serial loop and the speedup hovers around 1.
//!
//! ```text
//! cargo run --release -p acc-bench --bin bench_wallclock            # full
//! cargo run --release -p acc-bench --bin bench_wallclock -- --smoke # CI
//! ```
//!
//! `--smoke` shrinks every point (seconds, not minutes), writes
//! `BENCH_campaign.smoke.json` instead, and is wired into
//! `scripts/check.sh` so the executor's two code paths are exercised on
//! every push; the timings are recorded, never gated on.

use std::fmt::Write as _;
use std::time::Instant;

use acc_bench::{executor, figure_spec, Executor};
use acc_coll::{Algorithm, CollectiveOp};
use acc_core::cluster::Technology;
use acc_core::{RunOutcome, RunRequest};

const TECHNOLOGIES: [Technology; 4] = [
    Technology::GigabitTcp,
    Technology::InicIdeal,
    Technology::InicPrototype,
    Technology::InicProtocol,
];

fn tech_label(t: Technology) -> &'static str {
    match t {
        Technology::FastEthernet => "fast",
        Technology::GigabitTcp => "gigabit",
        Technology::InicIdeal => "inic-ideal",
        Technology::InicPrototype => "inic-proto",
        Technology::InicProtocol => "inic-pp",
    }
}

/// The run matrix: one sort and one FFT point per technology, plus the
/// collective microbench points (ring vs recursive-doubling allreduce,
/// small vs large vectors, host-TCP vs combined INIC).
fn points(smoke: bool) -> Vec<(String, RunRequest)> {
    // Smoke sizes finish in seconds on one core; full sizes are the
    // campaign scale the figures actually run at.
    let (p, keys, rows) = if smoke {
        (4usize, 1u64 << 14, 32usize)
    } else {
        (8, 1 << 24, 512)
    };
    let mut out = Vec::new();
    for tech in TECHNOLOGIES {
        out.push((
            format!("sort_2e{}_{}_p{p}", keys.ilog2(), tech_label(tech)),
            RunRequest::sort(figure_spec(p, tech), keys),
        ));
        out.push((
            format!("fft_{rows}_{}_p{p}", tech_label(tech)),
            RunRequest::fft(figure_spec(p, tech), rows),
        ));
    }
    // Allreduce algorithm pair: the latency-bound size where recursive
    // doubling should win, and the bandwidth-bound size where the ring
    // should win, on both a host path and the combined INIC.
    let coll_cells: &[(usize, usize)] = if smoke {
        &[(4, 1 << 10), (4, 1 << 14)]
    } else {
        &[(8, 1 << 10), (8, 1 << 17), (16, 1 << 17)]
    };
    for &(p, elems) in coll_cells {
        for algo in [Algorithm::Ring, Algorithm::RecursiveDoubling] {
            for tech in [Technology::GigabitTcp, Technology::InicIdeal] {
                out.push((
                    format!(
                        "allreduce_{}_2e{}_{}_p{p}",
                        algo.label(),
                        elems.ilog2(),
                        tech_label(tech)
                    ),
                    RunRequest::collective(
                        figure_spec(p, tech),
                        CollectiveOp::AllReduce,
                        algo,
                        elems,
                    ),
                ));
            }
        }
    }
    out
}

/// Simulated-result fingerprint for the determinism cross-check.
fn fingerprint(outcomes: &[RunOutcome]) -> Vec<u64> {
    outcomes.iter().map(|o| o.total().as_ps()).collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let ex = Executor::from_cli();
    let matrix = points(smoke);
    let labels: Vec<&str> = matrix.iter().map(|(l, _)| l.as_str()).collect();

    // Pass 1: serial, each point timed on its own.
    let serial_ex = Executor::serial();
    let mut per_point = Vec::new();
    let mut serial_outcomes = Vec::new();
    let serial_started = Instant::now();
    for (label, request) in &matrix {
        let started = Instant::now();
        let mut outcome = serial_ex.run_all(vec![request.clone()]);
        per_point.push((label.as_str(), started.elapsed().as_secs_f64()));
        serial_outcomes.append(&mut outcome);
    }
    let serial_secs = serial_started.elapsed().as_secs_f64();

    // Pass 2: the same matrix as one parallel batch.
    let parallel_started = Instant::now();
    let parallel_outcomes = ex.run_all(matrix.iter().map(|(_, r)| r.clone()).collect());
    let parallel_secs = parallel_started.elapsed().as_secs_f64();

    assert_eq!(
        fingerprint(&serial_outcomes),
        fingerprint(&parallel_outcomes),
        "parallel outcomes diverged from serial — determinism contract broken"
    );

    let speedup = serial_secs / parallel_secs;
    let mode = if smoke { "smoke" } else { "full" };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"generated_by\": \"cargo run --release -p acc-bench --bin bench_wallclock{}\",",
        if smoke { " -- --smoke" } else { "" }
    );
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(
        json,
        "  \"host_parallelism\": {},",
        executor::default_parallelism()
    );
    let _ = writeln!(json, "  \"jobs\": {},", ex.jobs());
    let _ = writeln!(json, "  \"points\": [");
    for (i, (label, secs)) in per_point.iter().enumerate() {
        let comma = if i + 1 < per_point.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"label\": \"{}\", \"serial_secs\": {secs:.3}}}{comma}",
            json_escape(label)
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"serial_secs\": {serial_secs:.3},");
    let _ = writeln!(json, "  \"parallel_secs\": {parallel_secs:.3},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.3}");
    let _ = writeln!(json, "}}");

    let file = if smoke {
        "BENCH_campaign.smoke.json"
    } else {
        "BENCH_campaign.json"
    };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join(file);
    std::fs::write(&path, &json).unwrap_or_else(|e| panic!("writing {}: {e}", path.display()));
    let path = path.canonicalize().unwrap_or(path);

    println!("# campaign wall-clock ({mode}): {} points", labels.len());
    for (label, secs) in &per_point {
        println!("{label:<28} {:>8.3} s", secs);
    }
    println!(
        "serial {serial_secs:.3} s | parallel {parallel_secs:.3} s (jobs={}) | speedup {speedup:.2}x",
        ex.jobs()
    );
    println!("wrote {}", path.display());
}
